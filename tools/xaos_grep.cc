// xaos_grep — command-line streaming XPath over XML files.
//
//   xaos_grep [options] '<xpath>' [file.xml ...]
//
// Evaluates the expression over each file (or standard input) in a single
// streaming pass with constant memory, and prints the selected nodes.
// Backward axes (parent/ancestor) work, unlike in forward-only streaming
// tools.
//
// Options:
//   --count        print only the number of selected nodes per file
//   --match        print only whether each file matches (exit code 1 if
//                  nothing matched anywhere); stops reading each file as
//                  soon as a match is guaranteed
//   --xml          print each selected element's subtree as XML
//   --tuples       print output tuples (for $-marked multi-output queries)
//   --stats        print engine statistics per file (--stats=json for a
//                  structured JSON object on stderr instead of text)
//   --explain      print the compiled x-tree/x-dag and exit
//   --trace        print a Table-2-style event trace while evaluating
//   --trace-json   like --trace but one JSON object per event (JSON lines)
//   --metrics-json=FILE
//                  enable instrumentation and write the full metrics
//                  registry (phase timings, parser/engine counters, peak
//                  structure bytes) as JSON to FILE ("-" for stdout)
//   --flight-trace=FILE
//                  arm the flight recorder and write the run's span trace
//                  as Chrome trace-event JSON to FILE ("-" for stdout);
//                  load it in Perfetto or chrome://tracing. Implies
//                  instrumentation (like --metrics-json)
//   --no-projection
//                  disable document projection. By default the parser
//                  skip-scans subtrees the query provably cannot touch
//                  (query/projection.h); results are identical either way,
//                  so this is a debugging/benchmarking switch
//   --scanner=BACKEND
//                  pin the structural-scanner kernel: scalar, swar, sse2,
//                  avx2, or auto (the default: the XAOS_SCANNER environment
//                  variable if set, else the best the CPU supports). Every
//                  backend produces identical results; this is a
//                  benchmarking/debugging switch
//
// Parser guardrails (see xml::ParserLimits; a file that exceeds a bound is
// reported and skipped, exit code 2):
//   --max-depth=N             element nesting depth
//   --max-attrs=N             attributes per start tag
//   --max-attr-value-bytes=N  decoded size of one attribute value
//   --max-name-bytes=N        element/attribute/PI name length
//   --max-token-bytes=N       bytes buffered for one incomplete token
//   --max-entity-refs=N       references decoded per document (0 = off)
//   --max-total-bytes=N       total document size (0 = off)
//
// --count, --match, --xml and --tuples are mutually exclusive output modes;
// combining them is an error (exit 2).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "xaos.h"
#include "xml/file_source.h"

namespace {

struct Options {
  xaos::xml::ParserLimits limits;
  bool count = false;
  bool match_only = false;
  bool capture = false;
  bool tuples = false;
  bool stats = false;
  bool stats_json = false;
  bool explain = false;
  bool no_projection = false;
  bool trace = false;
  bool trace_json = false;
  std::string metrics_json_path;
  std::string flight_trace_path;
  std::string expression;
  std::vector<std::string> files;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: xaos_grep [--count|--match|--xml|--tuples] [--stats[=json]] "
      "[--explain] [--trace|--trace-json] [--metrics-json=FILE] "
      "[--flight-trace=FILE] [--no-projection] [--scanner=BACKEND] "
      "[--max-depth=N] [--max-attrs=N] [--max-attr-value-bytes=N] "
      "[--max-name-bytes=N] [--max-token-bytes=N] [--max-entity-refs=N] "
      "[--max-total-bytes=N] '<xpath>' [file.xml ...]\n"
      "reads standard input when no file is given (or for '-')\n");
  return 2;
}

// Matches "--NAME=N"; on a match parses N into *value (returning false and
// diagnosing a malformed number). *consumed says whether the flag matched.
bool MatchLimitFlag(const std::string& arg, const char* name, uint64_t* value,
                    bool* consumed) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return true;
  *consumed = true;
  const char* text = arg.c_str() + prefix.size();
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(text, &end, 10);
  if (*text == '\0' || (end != nullptr && *end != '\0')) {
    std::fprintf(stderr, "%s: expects a non-negative integer\n", arg.c_str());
    return false;
  }
  *value = parsed;
  return true;
}

// Applies every --max-* flag to `limits`. Returns false (after diagnosing)
// on a malformed value; *consumed says whether `arg` was a limits flag.
bool MatchLimitsFlags(const std::string& arg, xaos::xml::ParserLimits* limits,
                      bool* consumed) {
  *consumed = false;
  uint64_t depth = 0;
  bool depth_consumed = false;
  if (!MatchLimitFlag(arg, "max-depth", &depth, &depth_consumed)) return false;
  if (depth_consumed) {
    limits->max_depth = static_cast<int>(depth);
    *consumed = true;
    return true;
  }
  struct {
    const char* name;
    uint64_t* target;
  } flags[] = {
      {"max-entity-refs", &limits->max_entity_references},
      {"max-total-bytes", &limits->max_total_bytes},
  };
  for (auto& flag : flags) {
    if (!MatchLimitFlag(arg, flag.name, flag.target, consumed)) return false;
    if (*consumed) return true;
  }
  struct {
    const char* name;
    size_t* target;
  } size_flags[] = {
      {"max-attrs", &limits->max_attribute_count},
      {"max-attr-value-bytes", &limits->max_attribute_value_bytes},
      {"max-name-bytes", &limits->max_name_bytes},
      {"max-token-bytes", &limits->max_token_bytes},
  };
  for (auto& flag : size_flags) {
    uint64_t value = 0;
    if (!MatchLimitFlag(arg, flag.name, &value, consumed)) return false;
    if (*consumed) {
      *flag.target = static_cast<size_t>(value);
      return true;
    }
  }
  return true;
}

void PrintItem(const xaos::core::OutputItem& item, const Options& options) {
  if (options.capture && !item.captured_xml.empty()) {
    std::printf("%s\n", item.captured_xml.c_str());
    return;
  }
  std::printf("%s\n", item.info.ToString().c_str());
}

// Prints one file's aggregated engine statistics to stderr, as text or as
// a single JSON object.
void PrintStats(const xaos::core::EngineStats& stats, const char* prefix,
                const char* sep, bool as_json) {
  if (as_json) {
    xaos::obs::MetricsRegistry registry;
    stats.ToMetrics(&registry);
    std::string json = xaos::obs::ToJson(registry);
    std::fprintf(stderr, "%s%s%s\n", prefix, sep, json.c_str());
    return;
  }
  std::fprintf(stderr,
               "%s%s%llu elements, %.2f%% discarded, %llu structures, "
               "peak %llu (%llu bytes)\n",
               prefix, sep,
               static_cast<unsigned long long>(stats.elements_total),
               100.0 * stats.DiscardedFraction(),
               static_cast<unsigned long long>(stats.structures_created),
               static_cast<unsigned long long>(stats.structures_live_peak),
               static_cast<unsigned long long>(
                   stats.structure_memory.peak_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--count") {
      options.count = true;
    } else if (arg == "--match") {
      options.match_only = true;
    } else if (arg == "--xml") {
      options.capture = true;
    } else if (arg == "--tuples") {
      options.tuples = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--stats=json") {
      options.stats = true;
      options.stats_json = true;
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--no-projection") {
      options.no_projection = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--trace-json") {
      options.trace = true;
      options.trace_json = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      options.metrics_json_path = arg.substr(std::strlen("--metrics-json="));
      if (options.metrics_json_path.empty()) {
        std::fprintf(stderr, "--metrics-json needs a file path\n");
        return Usage();
      }
    } else if (arg.rfind("--flight-trace=", 0) == 0) {
      options.flight_trace_path = arg.substr(std::strlen("--flight-trace="));
      if (options.flight_trace_path.empty()) {
        std::fprintf(stderr, "--flight-trace needs a file path\n");
        return Usage();
      }
    } else if (arg.rfind("--scanner=", 0) == 0) {
      xaos::StatusOr<xaos::xml::ScannerBackend> backend =
          xaos::xml::ResolveScannerBackend(
              arg.substr(std::strlen("--scanner=")));
      if (!backend.ok()) {
        std::fprintf(stderr, "--scanner: %s\n",
                     std::string(backend.status().message()).c_str());
        return Usage();
      }
      xaos::xml::SetDefaultScannerBackend(*backend);
    } else if (arg.rfind("--", 0) == 0) {
      bool consumed = false;
      if (!MatchLimitsFlags(arg, &options.limits, &consumed)) return Usage();
      if (consumed) continue;
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage();
    } else if (options.expression.empty()) {
      options.expression = arg;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.expression.empty()) return Usage();
  int output_modes = static_cast<int>(options.count) +
                     static_cast<int>(options.match_only) +
                     static_cast<int>(options.capture) +
                     static_cast<int>(options.tuples);
  if (output_modes > 1) {
    std::fprintf(stderr,
                 "conflicting output modes: --count, --match, --xml and "
                 "--tuples are mutually exclusive\n");
    return 2;
  }
  if (options.files.empty()) options.files.push_back("-");

  // Instrumentation must be on before compilation so the query-compile
  // phase and the parser/engine counters reach the default registry.
  bool collect_metrics =
      !options.metrics_json_path.empty() || !options.flight_trace_path.empty();
  xaos::obs::PhaseTimers timers;
  if (collect_metrics) xaos::obs::SetEnabled(true);
  if (!options.flight_trace_path.empty()) {
    xaos::obs::flight::Arm();
    xaos::obs::flight::SetCurrentThreadName("main");
  }

  uint64_t compile_start = collect_metrics ? xaos::obs::NowNs() : 0;
  xaos::StatusOr<xaos::core::Query> query =
      xaos::core::Query::Compile(options.expression);
  if (collect_metrics) {
    timers.Add(xaos::obs::Phase::kCompile,
               xaos::obs::NowNs() - compile_start);
  }
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 2;
  }

  if (options.explain) {
    for (const xaos::query::XTree& tree : query->trees()) {
      std::printf("x-tree: %s\n", tree.ToString().c_str());
      std::printf("x-dag:  %s\n", xaos::query::XDag(tree).ToString().c_str());
    }
    std::printf("projection: %s\n",
                xaos::query::ProjectionSpec::Analyze(query->trees())
                    .ToString()
                    .c_str());
    return 0;
  }

  xaos::xml::ParserOptions parser_options;
  parser_options.limits = options.limits;
  if (collect_metrics) parser_options.phase_timers = &timers;

  if (options.trace) {
    if (query->trees().size() != 1) {
      std::fprintf(stderr, "--trace requires a single-disjunct query\n");
      return 2;
    }
    xaos::core::XaosEngine engine(&query->trees().front());
    xaos::core::TraceHandler tracer(
        &engine,
        [](std::string_view line) {
          std::fwrite(line.data(), 1, line.size(), stdout);
        },
        options.trace_json ? xaos::core::TraceFormat::kJsonLines
                           : xaos::core::TraceFormat::kTable2);
    for (const std::string& path : options.files) {
      xaos::Status status =
          xaos::xml::ParseFile(path, &tracer, 1 << 16, parser_options);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 2;
      }
    }
    return 0;
  }

  xaos::core::EngineOptions engine_options;
  engine_options.capture_output_subtrees = options.capture;
  engine_options.stop_after_confirmed_match = options.match_only;
  xaos::core::StreamingEvaluator evaluator(*query, engine_options);
  // Events reach the evaluator through batched dispatch (results are
  // byte-identical to per-event delivery; EngineOptions keeps the
  // per-event path available as the differential oracle).
  xaos::core::BatchedDispatcher dispatcher(&evaluator);
  xaos::xml::ContentHandler* sink =
      engine_options.enable_batched_dispatch
          ? static_cast<xaos::xml::ContentHandler*>(&dispatcher)
          : &evaluator;
  if (!options.no_projection) {
    parser_options.projection_filter = evaluator.projection_filter();
  }

  bool multiple_files = options.files.size() > 1;
  bool any_match = false;
  bool any_error = false;
  for (const std::string& path : options.files) {
    xaos::Status status =
        xaos::xml::ParseFile(path, sink, 1 << 16, parser_options);
    if (!status.ok()) {
      // Close out the abandoned document so the evaluator is clean for the
      // remaining files; one bad input must not mask the others.
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   status.ToString().c_str());
      if (sink == &dispatcher) {
        dispatcher.AbortDocument(status);
      } else {
        evaluator.AbortDocument(status);
      }
      any_error = true;
      continue;
    }
    if (!evaluator.status().ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   evaluator.status().ToString().c_str());
      any_error = true;
      continue;
    }

    xaos::core::QueryResult result = evaluator.Result();
    any_match = any_match || result.matched;
    const char* prefix = multiple_files ? path.c_str() : "";
    const char* sep = multiple_files ? ": " : "";

    if (options.match_only) {
      std::printf("%s%s%s\n", prefix, sep,
                  result.matched ? "match" : "no match");
    } else if (options.count) {
      std::printf("%s%s%zu\n", prefix, sep, result.items.size());
    } else if (options.tuples) {
      for (const auto& engine : evaluator.engines()) {
        for (const xaos::core::OutputTuple& tuple :
             engine->OutputTuples().tuples) {
          std::string line;
          for (size_t i = 0; i < tuple.size(); ++i) {
            if (i > 0) line += "\t";
            line += tuple[i].ToString();
          }
          std::printf("%s%s%s\n", prefix, sep, line.c_str());
        }
      }
    } else {
      for (const xaos::core::OutputItem& item : result.items) {
        if (multiple_files) std::printf("%s: ", path.c_str());
        PrintItem(item, options);
      }
    }

    if (options.stats) {
      PrintStats(evaluator.AggregateStats(), prefix, sep, options.stats_json);
    }
  }

  if (collect_metrics && !options.metrics_json_path.empty()) {
    xaos::obs::MetricsRegistry& registry =
        xaos::obs::MetricsRegistry::Default();
    timers.ExportTo(&registry);
    evaluator.ExportMetrics(&registry);
    xaos::Status status =
        xaos::obs::WriteMetricsJson(registry, options.metrics_json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  if (!options.flight_trace_path.empty()) {
    // All parsing happened on this thread, so the rings are quiescent here.
    xaos::obs::flight::Disarm();
    xaos::Status status =
        xaos::obs::flight::WriteChromeTrace(options.flight_trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "flight trace: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  if (any_error) return 2;
  return any_match ? 0 : 1;
}
