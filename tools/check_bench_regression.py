#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json reports.

Compares a directory of freshly produced benchmark reports against the
committed baselines (bench/baselines/) and fails when throughput dropped
beyond tolerance or a latency percentile blew up:

  * throughput: each result row's best-of-repetitions throughput (derived
    from min_s, so one slow rep doesn't fail the gate) must stay within
    --tolerance (default 15%) of the baseline.
  * latency: any per-row metric ending in `_p99_ns` must not exceed
    max(baseline * --latency-factor, --latency-floor-ns). The floor keeps
    microsecond-scale numbers from tripping the factor on scheduler noise.
  * peak memory: any per-row metric ending in `_peak_bytes` must not exceed
    baseline * --memory-factor. Benchmarks opt in by using that suffix
    (bench_earliest's matching_peak_bytes); older reports use `_bytes_peak`
    names, which stay ungated because their values are environment-sensitive.

Exit codes: 0 = pass, 1 = at least one regression, 2 = operational error
(no baselines, unreadable directories, unexpected exception). Malformed
rows or missing fields in individual reports produce warnings and are
skipped — this script must never die with a traceback.

With --normalize (what CI uses), every current throughput is first divided
by the median current/baseline ratio across ALL rows. That cancels uniform
host drift — baselines recorded on one machine, checked on another — while
still failing any row that regressed relative to the rest of the suite: an
accidental O(n^2) or a lost fast path moves its own rows, not the median.
Latency checks are normalized by the same factor.

Rows or files present on one side only produce warnings, not failures —
adding a benchmark or a configuration must not break CI for unrelated
changes. Schema: bench/bench_util.h (BenchReporter, schema_version 1).

Usage:
  tools/check_bench_regression.py --baseline-dir=bench/baselines \
      --current-dir=build --normalize [--tolerance=0.15] \
      [--latency-factor=2.0] [--latency-floor-ns=10000]
"""

import argparse
import glob
import json
import os
import sys


def load_reports(directory):
    """Maps benchmark name -> parsed report for every BENCH_*.json in dir."""
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: cannot read {path}: {error}")
            continue
        name = report.get("benchmark")
        if not name:
            print(f"warning: {path} has no 'benchmark' field; skipped")
            continue
        if report.get("schema_version") != 1:
            print(f"warning: {path} has unknown schema_version; skipped")
            continue
        reports[name] = report
    return reports


def best_throughput(row):
    """Best-of-repetitions MB/s for a result row, or None when underivable.

    The report stores throughput_mb_per_s = megabytes / mean_s; rescaling by
    mean_s / min_s recovers megabytes / min_s, the fastest repetition.
    """
    throughput = row.get("throughput_mb_per_s")
    if throughput is None or throughput <= 0:
        return None
    mean_s = row.get("mean_s", 0)
    min_s = row.get("min_s", 0)
    if mean_s > 0 and min_s > 0:
        return throughput * mean_s / min_s
    return throughput


# Provenance params BenchReporter stamps into every report (bench_util.h).
# A mismatch means baseline and candidate ran with different hardware
# capabilities or a pinned scanner kernel — the numbers are still compared
# (with --normalize absorbing uniform drift), but the mismatch is called
# out so a "regression" can be recognized as an environment change.
ENVIRONMENT_PARAMS = ("cpu_features", "hardware_concurrency",
                      "scanner_backend")


def warn_environment_mismatches(baselines, currents):
    for name, baseline in sorted(baselines.items()):
        current = currents.get(name)
        if current is None:
            continue
        base_params = baseline.get("params", {})
        cur_params = current.get("params", {})
        for key in ENVIRONMENT_PARAMS:
            base_value = base_params.get(key)
            cur_value = cur_params.get(key)
            if base_value is None and cur_value is None:
                continue  # reports predate provenance stamping
            if base_value != cur_value:
                print(f"warning: '{name}': {key} differs from baseline "
                      f"({base_value!r} -> {cur_value!r}); throughput "
                      f"comparisons may reflect the environment, not the "
                      f"code")


def collect_comparisons(baselines, currents):
    """Pairs up baseline and current rows across all reports.

    Returns (throughput_rows, latency_rows, memory_rows):
      throughput_rows: [(qualified_label, base_mb_s, cur_mb_s), ...]
      latency_rows:    [(qualified_label, metric, base_ns, cur_ns), ...]
      memory_rows:     [(qualified_label, metric, base_b, cur_b), ...]

    Tolerates reports predating newer schema additions: rows without a
    label, non-dict metrics, or non-list results are warned about and
    skipped, never a crash (baselines in bench/baselines/ span many PRs).
    """
    throughput_rows = []
    latency_rows = []
    memory_rows = []

    def labelled_rows(report, where):
        rows = report.get("results")
        if not isinstance(rows, list):
            print(f"warning: {where}: 'results' is not a list; skipped")
            return []
        usable = []
        for row in rows:
            if not isinstance(row, dict) or not isinstance(
                    row.get("label"), str):
                print(f"warning: {where}: row without a label; skipped")
                continue
            usable.append(row)
        return usable

    for name, baseline in sorted(baselines.items()):
        current = currents.get(name)
        if current is None:
            print(f"warning: no current report for '{name}'")
            continue
        current_rows = {r["label"]: r
                        for r in labelled_rows(current, f"current '{name}'")}
        for row in labelled_rows(baseline, f"baseline '{name}'"):
            label = row["label"]
            fresh = current_rows.get(label)
            qualified = f"{name}/{label}"
            if fresh is None:
                print(f"warning: {qualified}: row missing from current run")
                continue
            base_tp = best_throughput(row)
            cur_tp = best_throughput(fresh)
            if base_tp is not None and cur_tp is not None:
                throughput_rows.append((qualified, base_tp, cur_tp))
            cur_metrics = fresh.get("metrics")
            if not isinstance(cur_metrics, dict):
                cur_metrics = {}
            base_metrics = row.get("metrics")
            if not isinstance(base_metrics, dict):
                base_metrics = {}
            for key, base_value in sorted(base_metrics.items()):
                is_latency = key.endswith("_p99_ns")
                is_memory = key.endswith("_peak_bytes")
                if not (is_latency or is_memory):
                    continue
                cur_value = cur_metrics.get(key)
                if not isinstance(cur_value, (int, float)) or not isinstance(
                        base_value, (int, float)):
                    print(f"warning: {qualified}: metric '{key}' missing or "
                          f"non-numeric in one of the runs")
                    continue
                if is_latency:
                    latency_rows.append((qualified, key, base_value,
                                         cur_value))
                else:
                    memory_rows.append((qualified, key, base_value,
                                        cur_value))
    return throughput_rows, latency_rows, memory_rows


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def main():
    parser = argparse.ArgumentParser(
        description="fail CI when benchmark reports regress vs baselines")
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional throughput drop (0.15=15%%)")
    parser.add_argument("--latency-factor", type=float, default=2.0,
                        help="allowed p99 latency growth factor")
    parser.add_argument("--latency-floor-ns", type=float, default=10000,
                        help="p99 values below this never fail (noise floor)")
    parser.add_argument("--memory-factor", type=float, default=1.5,
                        help="allowed growth factor for *_peak_bytes metrics")
    parser.add_argument("--normalize", action="store_true",
                        help="divide current numbers by the median "
                             "current/baseline ratio first (cancels uniform "
                             "host drift; use when baselines come from a "
                             "different machine)")
    args = parser.parse_args()

    baselines = load_reports(args.baseline_dir)
    currents = load_reports(args.current_dir)
    if not baselines:
        print(f"error: no baselines found in {args.baseline_dir}")
        return 2
    for name in sorted(set(currents) - set(baselines)):
        print(f"warning: '{name}' has no committed baseline "
              f"(add one under {args.baseline_dir})")

    warn_environment_mismatches(baselines, currents)
    throughput_rows, latency_rows, memory_rows = collect_comparisons(
        baselines, currents)

    drift = 1.0
    if args.normalize and throughput_rows:
        ratios = [cur / base for _, base, cur in throughput_rows if base > 0]
        if ratios:
            observed = median(ratios)
            # Only forgive uniform slowness. A current run FASTER than
            # baseline is never evidence of regression, so dividing by a >1
            # drift (which would penalize rows that sped up less than the
            # median) is wrong. A non-positive median (degenerate baseline
            # rows) would turn the division below into nonsense — skip
            # normalization instead of crashing or inverting signs.
            if observed > 0:
                drift = min(1.0, observed)
                print(f"normalizing by median host drift: x{drift:.3f} "
                      f"(observed x{observed:.3f} across "
                      f"{len(ratios)} rows)")
            else:
                print(f"warning: median drift x{observed:.3f} is not "
                      f"positive; skipping normalization")
        else:
            print("warning: no usable rows for drift normalization")

    failures = []
    for qualified, base_tp, cur_tp in throughput_rows:
        adjusted = cur_tp / drift
        floor = base_tp * (1.0 - args.tolerance)
        if adjusted < floor:
            failures.append(
                f"{qualified}: throughput {adjusted:.2f} MB/s "
                f"(raw {cur_tp:.2f}) is "
                f"{100 * (1 - adjusted / base_tp):.1f}% below baseline "
                f"{base_tp:.2f} MB/s (tolerance {100 * args.tolerance:.0f}%)")
        else:
            print(f"ok: {qualified}: {adjusted:.2f} MB/s "
                  f"(baseline {base_tp:.2f})")

    for qualified, key, base_value, cur_value in latency_rows:
        adjusted = cur_value * drift  # slower host => scale latency down
        limit = max(base_value * args.latency_factor, args.latency_floor_ns)
        if adjusted > limit:
            failures.append(
                f"{qualified}: {key} = {adjusted:.0f} ns "
                f"(raw {cur_value:.0f}) exceeds limit {limit:.0f} ns "
                f"(baseline {base_value:.0f}, "
                f"factor {args.latency_factor})")
        else:
            print(f"ok: {qualified}: {key} = {adjusted:.0f} ns "
                  f"(limit {limit:.0f})")

    for qualified, key, base_value, cur_value in memory_rows:
        # Peak bytes are not host-speed-sensitive; no drift scaling.
        limit = base_value * args.memory_factor
        if cur_value > limit:
            failures.append(
                f"{qualified}: {key} = {cur_value:.0f} B exceeds limit "
                f"{limit:.0f} B (baseline {base_value:.0f}, "
                f"factor {args.memory_factor})")
        else:
            print(f"ok: {qualified}: {key} = {cur_value:.0f} B "
                  f"(limit {limit:.0f})")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        print("\nIf this is expected (intentional tradeoff, new baseline "
              "hardware), refresh bench/baselines/ by re-running the "
              "benchmarks with --json-out=bench/baselines and commit the "
              "result alongside the change that moved the numbers.")
        return 1
    print("\nPASS: no benchmark regressions")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Exception as error:  # noqa: BLE001 - documented exit code 2
        print(f"error: unexpected failure: {type(error).__name__}: {error}")
        sys.exit(2)
