// Shared helpers for the paper-reproduction benchmark binaries: flag
// parsing, wall-clock timing, mean/stddev, and table formatting.

#ifndef XAOS_BENCH_BENCH_UTIL_H_
#define XAOS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace xaos::bench {

// Minimal --key=value flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  double GetDouble(const std::string& name, double fallback) const {
    std::string value;
    return Lookup(name, &value) ? std::atof(value.c_str()) : fallback;
  }
  int GetInt(const std::string& name, int fallback) const {
    std::string value;
    return Lookup(name, &value) ? std::atoi(value.c_str()) : fallback;
  }
  bool GetBool(const std::string& name, bool fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return value != "0" && value != "false";
  }

 private:
  bool Lookup(const std::string& name, std::string* value) const {
    std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
};

// Returns the wall-clock seconds taken by fn().
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Series {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
};

inline Series Summarize(const std::vector<double>& samples) {
  Series s;
  if (samples.empty()) return s;
  double sum = 0;
  s.min = samples[0];
  s.max = samples[0];
  for (double v : samples) {
    sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

// Prints a horizontal rule sized for `width` columns of 12 chars.
inline void Rule(int width) {
  for (int i = 0; i < width * 13; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace xaos::bench

#endif  // XAOS_BENCH_BENCH_UTIL_H_
