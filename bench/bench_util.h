// Shared helpers for the paper-reproduction benchmark binaries: flag
// parsing (with unknown-flag detection), wall-clock timing, mean/stddev,
// table formatting, and a JSON reporter producing machine-readable
// BENCH_<name>.json files for CI and regression tracking.

#ifndef XAOS_BENCH_BENCH_UTIL_H_
#define XAOS_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_stats.h"
#include "obs/json.h"
#include "util/cpu_features.h"
#include "xml/structural_scanner.h"

namespace xaos::bench {

// Minimal --key=value flag reader. Every Get* call registers the flag name;
// call FailOnUnknown() after the last Get* to reject mistyped flags and
// stray positional arguments with a clear error instead of silently
// falling back to defaults.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  // All Get* parsers reject malformed or out-of-range values with the
  // offending flag named on stderr and exit status 2 (the same contract as
  // FailOnUnknown) instead of silently reading 0/garbage via atoi/atof.
  double GetDouble(const std::string& name, double fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    // strtod with a full-consumption check: FP from_chars is still spotty
    // across standard libraries.
    const char* text = value.c_str();
    char* end = nullptr;
    errno = 0;
    double parsed = std::strtod(text, &end);
    if (value.empty() || end != text + value.size() || errno == ERANGE) {
      std::fprintf(stderr, "error: --%s=%s is not a valid number\n",
                   name.c_str(), value.c_str());
      PrintKnownAndExit();
    }
    return parsed;
  }
  int GetInt(const std::string& name, int fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    int parsed = 0;
    auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                     parsed);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
      std::fprintf(stderr,
                   "error: --%s=%s is not a valid integer (or out of range)\n",
                   name.c_str(), value.c_str());
      PrintKnownAndExit();
    }
    return parsed;
  }
  bool GetBool(const std::string& name, bool fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    if (value == "1" || value == "true") return true;
    if (value == "0" || value == "false") return false;
    std::fprintf(stderr, "error: --%s=%s is not a boolean (0/1/true/false)\n",
                 name.c_str(), value.c_str());
    PrintKnownAndExit();
    return fallback;  // unreachable; PrintKnownAndExit does not return
  }
  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    std::string value;
    return Lookup(name, &value) ? value : fallback;
  }

  // Exits with status 2 if any argument is not `--name=value` for a `name`
  // some Get* call asked about. Must run after all Get* calls.
  void FailOnUnknown() const {
    for (const std::string& arg : args_) {
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "error: unexpected positional argument '%s'\n",
                     arg.c_str());
        PrintKnownAndExit();
      }
      size_t eq = arg.find('=');
      std::string name = arg.substr(2, eq == std::string::npos
                                           ? std::string::npos
                                           : eq - 2);
      if (accessed_.count(name) == 0) {
        std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
        PrintKnownAndExit();
      }
    }
  }

 private:
  bool Lookup(const std::string& name, std::string* value) const {
    accessed_.insert(name);
    std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
      }
    }
    return false;
  }

  void PrintKnownAndExit() const {
    std::fprintf(stderr, "known flags:");
    for (const std::string& name : accessed_) {
      std::fprintf(stderr, " --%s=...", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }

  std::vector<std::string> args_;
  // Names queried via Get*; mutable so the const getters can record them.
  mutable std::set<std::string> accessed_;
};

// Returns the wall-clock seconds taken by fn().
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Series {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
};

inline Series Summarize(const std::vector<double>& samples) {
  Series s;
  if (samples.empty()) return s;
  double sum = 0;
  s.min = samples[0];
  s.max = samples[0];
  for (double v : samples) {
    sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

// Prints a horizontal rule sized for `width` columns of 12 chars.
inline void Rule(int width) {
  for (int i = 0; i < width * 13; ++i) std::putchar('-');
  std::putchar('\n');
}

// Collects benchmark parameters and per-configuration results and writes
// them as BENCH_<name>.json, the machine-readable companion to the printed
// tables. Schema (version 1):
//   {"benchmark": "...", "schema_version": 1,
//    "params": {"max-scale": 0.32, ...},
//    "results": [{"label": "scale=0.01", "mean_s": ..., "stddev_s": ...,
//                 "min_s": ..., "max_s": ..., "throughput_mb_per_s": ...,
//                 "metrics": {"elements_total": ..., ...}}, ...]}
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {
    // Hardware/backend provenance, recorded into every BENCH_*.json so the
    // regression gate (tools/check_bench_regression.py) can tell when a
    // baseline and a candidate ran with different vector capabilities or a
    // pinned scanner kernel — those comparisons warn instead of failing.
    SetParam("cpu_features", util::CpuFeatureSummary());
    SetParam("hardware_concurrency",
             static_cast<double>(util::DetectCpuFeatures().hardware_concurrency));
    SetParam("scanner_backend",
             xml::ScannerBackendName(xml::DefaultScannerBackend()));
  }

  void SetParam(const std::string& key, double value) {
    params_.emplace_back(key, obs::JsonNumber(value));
  }
  void SetParam(const std::string& key, const std::string& value) {
    params_.emplace_back(key, "\"" + obs::JsonEscape(value) + "\"");
  }

  // Starts a result row. `megabytes` is the data volume one iteration
  // processes; when > 0 a throughput_mb_per_s field is derived from it.
  void AddResult(const std::string& label, const Series& series,
                 double megabytes = 0) {
    results_.push_back(Result{label, series, megabytes, {}});
  }

  // Attaches a named metric to the most recent AddResult row.
  void AddResultMetric(const std::string& key, double value) {
    if (!results_.empty()) results_.back().metrics.emplace_back(key, value);
  }

  const std::string& name() const { return name_; }

  std::string ToJson() const {
    std::string out = "{\"benchmark\":\"" + obs::JsonEscape(name_) + "\"";
    out += ",\"schema_version\":1,\"params\":{";
    bool first = true;
    for (const auto& [key, value] : params_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + obs::JsonEscape(key) + "\":" + value;
    }
    out += "},\"results\":[";
    first = true;
    for (const Result& r : results_) {
      if (!first) out += ",";
      first = false;
      out += "{\"label\":\"" + obs::JsonEscape(r.label) + "\"";
      out += ",\"mean_s\":" + obs::JsonNumber(r.series.mean);
      out += ",\"stddev_s\":" + obs::JsonNumber(r.series.stddev);
      out += ",\"min_s\":" + obs::JsonNumber(r.series.min);
      out += ",\"max_s\":" + obs::JsonNumber(r.series.max);
      if (r.megabytes > 0 && r.series.mean > 0) {
        out += ",\"throughput_mb_per_s\":" +
               obs::JsonNumber(r.megabytes / r.series.mean);
      }
      out += ",\"metrics\":{";
      bool first_metric = true;
      for (const auto& [key, value] : r.metrics) {
        if (!first_metric) out += ",";
        first_metric = false;
        out += "\"" + obs::JsonEscape(key) + "\":" + obs::JsonNumber(value);
      }
      out += "}}";
    }
    out += "]}";
    return out;
  }

  // Writes BENCH_<name>.json into `dir`. Returns false (with a message on
  // stderr) if the file cannot be written.
  bool WriteJson(const std::string& dir = ".") const {
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    json += "\n";
    size_t written = std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    if (written != json.size()) {
      std::fprintf(stderr, "error: short write to %s\n", path.c_str());
      return false;
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Result {
    std::string label;
    Series series;
    double megabytes;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string name_;
  // Values are pre-rendered JSON fragments (number or quoted string).
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<Result> results_;
};

// Flattens the engine counters into the reporter's most recent result row.
inline void AddEngineStats(BenchReporter* reporter,
                           const core::EngineStats& stats) {
  reporter->AddResultMetric("elements_total",
                            static_cast<double>(stats.elements_total));
  reporter->AddResultMetric("elements_discarded",
                            static_cast<double>(stats.elements_discarded));
  reporter->AddResultMetric("structures_created",
                            static_cast<double>(stats.structures_created));
  reporter->AddResultMetric("structures_undone",
                            static_cast<double>(stats.structures_undone));
  reporter->AddResultMetric("structures_live_peak",
                            static_cast<double>(stats.structures_live_peak));
  reporter->AddResultMetric(
      "structure_bytes_peak",
      static_cast<double>(stats.structure_memory.peak_bytes));
  reporter->AddResultMetric("propagations",
                            static_cast<double>(stats.propagations));
  reporter->AddResultMetric(
      "optimistic_propagations",
      static_cast<double>(stats.optimistic_propagations));
  reporter->AddResultMetric(
      "arena_bytes_allocated",
      static_cast<double>(stats.arena_bytes_allocated));
  reporter->AddResultMetric(
      "candidates_emitted_early",
      static_cast<double>(stats.candidates_emitted_early));
  reporter->AddResultMetric("candidates_reclaimed",
                            static_cast<double>(stats.candidates_reclaimed));
}

}  // namespace xaos::bench

#endif  // XAOS_BENCH_BENCH_UTIL_H_
