// Parallel fleet scaling: one XMark document, parsed once per iteration and
// fanned out to N worker threads that each own a disjoint shard of the
// subscription pool. Rows sweep worker count × subscription count against
// the sequential label-indexed MultiQueryEvaluator baseline, and every
// parallel run is verdict-checked against that baseline — a divergence is a
// correctness bug and fails the run.
//
// The interesting regime is many subscriptions: matching cost dominates the
// single parse, so sharding it across workers scales until the parse thread
// itself becomes the bottleneck.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

namespace {

using namespace xaos;

// Same pool shape as bench_multi_query: label-driven templates over the
// XMark vocabulary interleaved with never-matching synthetic subscriptions.
const char* const kTemplates[] = {
    "/site/regions//item/name",
    "//person/name",
    "//open_auction/bidder/personref",
    "//category/description",
    "//item[payment]/name",
    "//closed_auction/seller",
    "//listitem/text",
    "//catgraph/edge",
    "//mail/text",
    "//item/incategory",
    "//watches/watch",
    "//annotation/description",
};

std::vector<std::string> MakeExpressions(int count) {
  std::vector<std::string> expressions;
  expressions.reserve(static_cast<size_t>(count));
  constexpr int kNumTemplates =
      static_cast<int>(sizeof(kTemplates) / sizeof(kTemplates[0]));
  for (int i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      expressions.push_back(kTemplates[(i / 2) % kNumTemplates]);
    } else {
      expressions.push_back("//inbox_rule_" + std::to_string(i) + "/name");
    }
  }
  return expressions;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.02);
  int repetitions = flags.GetInt("repetitions", 3);
  int max_subs = flags.GetInt("max-subs", 1000);
  int max_workers = flags.GetInt("max-workers", 8);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("parallel_fleet");
  reporter.SetParam("scale", scale);
  reporter.SetParam("repetitions", repetitions);
  reporter.SetParam("max-subs", max_subs);
  reporter.SetParam("max-workers", max_workers);
  // Scaling numbers are only meaningful up to the core count; on a 1-core
  // host any speedup comes from per-shard cache locality, not parallelism.
  const unsigned cores = std::thread::hardware_concurrency();
  reporter.SetParam("hardware_concurrency", static_cast<double>(cores));

  gen::XMarkOptions doc_options;
  doc_options.scale = scale;
  const std::string doc = gen::GenerateXMark(doc_options);
  const double megabytes = static_cast<double>(doc.size()) / (1 << 20);

  std::printf("Parallel fleet scaling: XMark scale %.3f (%.1f MB), "
              "%d repetitions per row, %u hardware threads\n",
              scale, megabytes, repetitions, cores);
  if (cores < 4) {
    std::printf("note: fewer than 4 cores — worker counts beyond %u "
                "measure locality, not parallel speedup\n",
                cores);
  }
  std::printf("\n");
  std::printf("%-24s %-10s %-10s %-10s %-12s %-10s\n", "configuration",
              "time(s)", "MB/s", "matched", "stalls/doc", "speedup");
  bench::Rule(6);

  for (int subs : {100, 1000}) {
    if (subs > max_subs) continue;
    std::vector<std::string> expressions = MakeExpressions(subs);
    std::vector<core::Query> queries;
    for (const std::string& expression : expressions) {
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*query));
    }

    // Sequential label-indexed baseline: the reference verdicts and the
    // denominator for every speedup column in this subscription block.
    core::MultiQueryEvaluator sequential;
    for (const core::Query& query : queries) sequential.AddQuery(query);
    std::vector<double> seq_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      seq_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &sequential).ok()) std::abort();
      }));
    }
    std::vector<bool> reference;
    uint64_t seq_count = 0;
    for (int q = 0; q < subs; ++q) {
      bool m = sequential.Matched(static_cast<size_t>(q));
      reference.push_back(m);
      seq_count += m ? 1 : 0;
    }
    bench::Series seq = bench::Summarize(seq_times);

    char label[64];
    std::snprintf(label, sizeof(label), "sequential/subs=%d", subs);
    std::printf("%-24s %-10.4f %-10.2f %-10llu %-12s %-10s\n", label,
                seq.mean, megabytes / seq.mean,
                static_cast<unsigned long long>(seq_count), "-", "-");
    reporter.AddResult(label, seq, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("workers", 0);
    reporter.AddResultMetric("matched", static_cast<double>(seq_count));

    double one_worker_mean = 0;
    for (int workers : {1, 2, 4, 8}) {
      if (workers > max_workers) break;
      core::ParallelFleetOptions options;
      options.num_workers = static_cast<size_t>(workers);
      core::ParallelFleet fleet(options);
      for (const core::Query& query : queries) fleet.AddQuery(query);

      std::vector<double> par_times;
      uint64_t stalls_before = 0;
      uint64_t stalls_per_doc = 0;
      for (int rep = 0; rep < repetitions; ++rep) {
        stalls_before = fleet.publish_stalls();
        par_times.push_back(bench::TimeSeconds([&] {
          if (!xml::ParseString(doc, &fleet).ok()) std::abort();
        }));
        stalls_per_doc = fleet.publish_stalls() - stalls_before;
      }

      uint64_t par_count = 0;
      for (int q = 0; q < subs; ++q) {
        bool m = fleet.Matched(static_cast<size_t>(q));
        par_count += m ? 1 : 0;
        if (m != reference[static_cast<size_t>(q)]) {
          std::fprintf(stderr,
                       "VERDICT MISMATCH at %d subscriptions, %d workers, "
                       "query %d (%s): sequential=%d parallel=%d\n",
                       subs, workers, q,
                       expressions[static_cast<size_t>(q)].c_str(),
                       reference[static_cast<size_t>(q)] ? 1 : 0, m ? 1 : 0);
          return 1;
        }
      }

      // Producer/worker stall accounting, cumulative across the reps above
      // (the fleet is fresh per configuration). Publish stalls are the
      // producer blocked on a full ring; park time is a worker idle on an
      // empty one — together they say which side of the pipe is the
      // bottleneck at this worker count.
      const double reps = static_cast<double>(repetitions);
      const double stall_ns_per_doc =
          static_cast<double>(fleet.publish_stall_ns()) / reps;
      std::vector<core::ParallelShardStats> shard_stats = fleet.ShardStats();
      double park_ns_per_doc = 0;
      for (const core::ParallelShardStats& s : shard_stats) {
        park_ns_per_doc += static_cast<double>(s.park_wait_ns) / reps;
      }

      bench::Series par = bench::Summarize(par_times);
      if (workers == 1) one_worker_mean = par.mean;
      double speedup_vs_seq = par.mean > 0 ? seq.mean / par.mean : 0.0;
      double speedup_vs_one =
          (par.mean > 0 && one_worker_mean > 0) ? one_worker_mean / par.mean
                                                : 0.0;

      std::snprintf(label, sizeof(label), "parallel/subs=%d/w=%d", subs,
                    workers);
      std::printf("%-24s %-10.4f %-10.2f %-10llu %-12llu %-10.2f\n", label,
                  par.mean, megabytes / par.mean,
                  static_cast<unsigned long long>(par_count),
                  static_cast<unsigned long long>(stalls_per_doc),
                  speedup_vs_seq);
      reporter.AddResult(label, par, megabytes);
      reporter.AddResultMetric("subscriptions", subs);
      reporter.AddResultMetric("workers", workers);
      reporter.AddResultMetric("matched", static_cast<double>(par_count));
      reporter.AddResultMetric("publish_stalls_per_doc",
                               static_cast<double>(stalls_per_doc));
      reporter.AddResultMetric("speedup_vs_sequential", speedup_vs_seq);
      reporter.AddResultMetric("speedup_vs_one_worker", speedup_vs_one);
      reporter.AddResultMetric("publish_stall_ns_per_doc", stall_ns_per_doc);
      reporter.AddResultMetric("park_wait_ns_per_doc", park_ns_per_doc);
      // Where the adaptive coalescing policy settled: equals the configured
      // base when the ring never back-pressured, grows toward the cap when
      // publishes stalled (larger batches -> fewer ring operations).
      reporter.AddResultMetric(
          "batch_events_final",
          static_cast<double>(fleet.current_batch_events()));
      for (size_t s = 0; s < shard_stats.size(); ++s) {
        std::printf("  worker %zu: publish stall %8.3f ms/doc, "
                    "park %8.3f ms/doc (%llu parks)\n",
                    s,
                    static_cast<double>(shard_stats[s].publish_stall_ns) /
                        reps / 1e6,
                    static_cast<double>(shard_stats[s].park_wait_ns) / reps /
                        1e6,
                    static_cast<unsigned long long>(shard_stats[s].parks));
        std::string prefix = "shard" + std::to_string(s);
        reporter.AddResultMetric(
            prefix + "_publish_stall_ns_per_doc",
            static_cast<double>(shard_stats[s].publish_stall_ns) / reps);
        reporter.AddResultMetric(
            prefix + "_park_wait_ns_per_doc",
            static_cast<double>(shard_stats[s].park_wait_ns) / reps);
      }
    }
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: identical per-query verdicts across every "
              "worker count; throughput at 1000 subscriptions scales with "
              "workers until the single parse thread saturates.\n");
  return 0;
}
