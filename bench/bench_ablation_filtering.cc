// Ablation: the looking-for relevance filter of Section 4.1.
//
// χαoς filters every start event against the x-dag before allocating any
// state. This bench runs the same query with the filter disabled: results
// are identical, but the number of matching structures (and hence memory)
// grows by orders of magnitude on selective queries, and time follows.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.05);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("ablation_filtering");
  reporter.SetParam("scale", scale);

  gen::XMarkOptions options;
  options.scale = scale;
  std::string document = gen::GenerateXMark(options);

  const std::vector<const char*> queries = {
      gen::kXMarkPaperQuery,
      "//category//name",
      "//person/name",
      "//listitem/ancestor::description",
  };

  std::printf("Ablation: relevance filter (Section 4.1) on XMark scale %.3f "
              "(%.1f MB)\n\n", scale,
              static_cast<double>(document.size()) / (1 << 20));
  std::printf("%-45s | %-9s %-11s %-10s | %-9s %-11s %-10s | %-9s\n", "query",
              "on(s)", "structs", "peak", "off(s)", "structs", "peak",
              "x-structs");
  bench::Rule(10);

  for (const char* expression : queries) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    if (!query.ok()) return 1;

    auto run = [&](bool filter_on, double* seconds, core::EngineStats* stats,
                   size_t* results) {
      core::EngineOptions engine_options;
      engine_options.enable_relevance_filter = filter_on;
      core::StreamingEvaluator evaluator(*query, engine_options);
      *seconds = bench::TimeSeconds([&] {
        if (!xml::ParseString(document, &evaluator).ok()) std::abort();
      });
      *stats = evaluator.AggregateStats();
      *results = evaluator.Result().items.size();
    };

    double on_s, off_s;
    core::EngineStats on_stats, off_stats;
    size_t on_results, off_results;
    run(true, &on_s, &on_stats, &on_results);
    run(false, &off_s, &off_stats, &off_results);
    if (on_results != off_results) {
      std::printf("RESULT MISMATCH\n");
      return 1;
    }

    std::printf("%-45s | %-9.4f %-11llu %-10llu | %-9.4f %-11llu %-10llu | "
                "%-9.1f\n",
                expression, on_s,
                static_cast<unsigned long long>(on_stats.structures_created),
                static_cast<unsigned long long>(on_stats.structures_live_peak),
                off_s,
                static_cast<unsigned long long>(off_stats.structures_created),
                static_cast<unsigned long long>(off_stats.structures_live_peak),
                on_stats.structures_created > 0
                    ? static_cast<double>(off_stats.structures_created) /
                          static_cast<double>(on_stats.structures_created)
                    : 0.0);

    double size_mb = static_cast<double>(document.size()) / (1 << 20);
    reporter.AddResult(std::string("filter_on/") + expression,
                       bench::Summarize({on_s}), size_mb);
    bench::AddEngineStats(&reporter, on_stats);
    reporter.AddResult(std::string("filter_off/") + expression,
                       bench::Summarize({off_s}), size_mb);
    bench::AddEngineStats(&reporter, off_stats);
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: identical results; with the filter off, the "
              "engine allocates a structure for every label-matching\n"
              "element instead of only the relevant ones — the allocation "
              "ratio mirrors Table 3's kept/total fraction. (Most\n"
              "irrelevant structures die at their end event, so peak "
              "residency moves less than the allocation count.)\n");
  return 0;
}
