// Earliest answering payoff: time-to-first-match and peak
// matching-structure bytes with earliest emission off (collect at end of
// document) vs on (emit at the earliest provable event, reclaim eagerly),
// across growing document sizes and two shapes:
//
//   * wide:  a flat catalog of closed <item><name/><price/></item> rows
//     matched by //item/name — the streaming-friendly case where the
//     buffered peak should collapse from O(document) to O(open depth);
//   * deep:  a spine of <x> levels carrying closed self-recursive
//     <a><a/></a> teeth matched by //a//a — recursion plus noise depth.
//
// Every on-row is item-checked against its off-row (earliest emission must
// be byte-invisible in the final result); any divergence exits 1.
//
// JSON metrics feed tools/check_bench_regression.py: ttfm_p99_ns rides the
// existing `_p99_ns` latency rule and matching_peak_bytes the
// `_peak_bytes` memory rule, so losing either the early emission point or
// the eager reclaim fails CI.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

namespace {

using namespace xaos;

std::string WideDocument(int items) {
  std::string xml = "<catalog>";
  for (int i = 0; i < items; ++i) {
    xml += "<item><name/><price/></item>";
  }
  xml += "</catalog>";
  return xml;
}

std::string DeepDocument(int depth, int teeth_per_level) {
  std::string xml;
  for (int d = 0; d < depth; ++d) {
    xml += "<x>";
    for (int i = 0; i < teeth_per_level; ++i) xml += "<a><a/></a>";
  }
  for (int d = 0; d < depth; ++d) xml += "</x>";
  return xml;
}

struct RunResult {
  bench::Series time;
  double ttfm_p99_ns = 0;
  core::EngineStats stats;
  std::vector<core::ElementId> item_ids;
};

double PercentileNs(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

// Parses `doc` into one engine `repetitions` times (per-document reset
// makes it reusable) and reports wall time, time-to-first-match p99 and
// the final repetition's per-document stats. With earliest emission on,
// TTFM is the first early_item_sink callback; off, the first item only
// exists once the document ends, so TTFM equals the full parse.
RunResult RunConfig(const query::XTree* tree, const std::string& doc,
                    bool earliest, int repetitions) {
  uint64_t parse_start_ns = 0;
  uint64_t first_item_ns = 0;
  core::EngineOptions options;
  options.enable_earliest_emission = earliest;
  options.early_item_sink = [&](const core::OutputItem&) {
    if (first_item_ns == 0) first_item_ns = obs::NowNs();
  };
  core::XaosEngine engine(tree, options);

  if (!xml::ParseString(doc, &engine).ok()) std::abort();  // warmup

  std::vector<double> times;
  std::vector<double> ttfm;
  for (int rep = 0; rep < repetitions; ++rep) {
    first_item_ns = 0;
    parse_start_ns = obs::NowNs();
    if (!xml::ParseString(doc, &engine).ok()) std::abort();
    uint64_t end_ns = obs::NowNs();
    times.push_back(static_cast<double>(end_ns - parse_start_ns) * 1e-9);
    uint64_t first = first_item_ns != 0 ? first_item_ns : end_ns;
    ttfm.push_back(static_cast<double>(first - parse_start_ns));
  }

  RunResult result;
  result.time = bench::Summarize(times);
  result.ttfm_p99_ns = PercentileNs(ttfm, 0.99);
  result.stats = engine.stats();
  result.item_ids = engine.result().ItemIds();
  return result;
}

struct Shape {
  const char* name;
  std::string expression;
  std::string doc;
  int size;  // row-label size knob (items or teeth)
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int repetitions = flags.GetInt("repetitions", 5);
  int small_items = flags.GetInt("small-items", 2000);
  int large_items = flags.GetInt("large-items", 50000);
  int deep_levels = flags.GetInt("deep-levels", 12);
  int deep_teeth = flags.GetInt("deep-teeth", 2000);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("earliest");
  reporter.SetParam("repetitions", repetitions);
  reporter.SetParam("small-items", small_items);
  reporter.SetParam("large-items", large_items);
  reporter.SetParam("deep-levels", deep_levels);
  reporter.SetParam("deep-teeth", deep_teeth);

  std::vector<Shape> shapes;
  shapes.push_back({"wide", "//item/name", WideDocument(small_items),
                    small_items});
  shapes.push_back({"wide", "//item/name", WideDocument(large_items),
                    large_items});
  shapes.push_back({"deep", "//a//a",
                    DeepDocument(deep_levels, deep_teeth),
                    deep_levels * deep_teeth});

  std::printf("%-28s %-10s %-12s %-12s %-12s %-10s\n", "config", "mean_s",
              "MB/s", "ttfm_p99_us", "peak_KiB", "reclaimed");
  bench::Rule(7);

  for (const Shape& shape : shapes) {
    auto trees = query::CompileToXTrees(shape.expression);
    if (!trees.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", shape.expression.c_str(),
                   std::string(trees.status().message()).c_str());
      return 2;
    }
    double megabytes =
        static_cast<double>(shape.doc.size()) / (1024.0 * 1024.0);

    RunResult off =
        RunConfig(&trees->front(), shape.doc, false, repetitions);
    RunResult on = RunConfig(&trees->front(), shape.doc, true, repetitions);

    if (off.item_ids != on.item_ids) {
      std::fprintf(stderr,
                   "ITEM MISMATCH shape=%s n=%d: earliest emission changed "
                   "the result (%zu vs %zu items)\n",
                   shape.name, shape.size, off.item_ids.size(),
                   on.item_ids.size());
      return 1;
    }

    for (bool earliest : {false, true}) {
      const RunResult& run = earliest ? on : off;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/n=%d/earliest=%s", shape.name,
                    shape.size, earliest ? "on" : "off");
      std::printf("%-28s %-10.4f %-12.2f %-12.1f %-12llu %-10llu\n", label,
                  run.time.mean, megabytes / run.time.mean,
                  run.ttfm_p99_ns / 1000.0,
                  static_cast<unsigned long long>(
                      run.stats.structure_memory.peak_bytes / 1024),
                  static_cast<unsigned long long>(
                      run.stats.candidates_reclaimed));
      reporter.AddResult(label, run.time, megabytes);
      reporter.AddResultMetric("earliest", earliest ? 1 : 0);
      reporter.AddResultMetric("items", static_cast<double>(
                                            run.item_ids.size()));
      reporter.AddResultMetric("ttfm_p99_ns", run.ttfm_p99_ns);
      reporter.AddResultMetric(
          "matching_peak_bytes",
          static_cast<double>(run.stats.structure_memory.peak_bytes));
      bench::AddEngineStats(&reporter, run.stats);
    }

    double peak_ratio =
        on.stats.structure_memory.peak_bytes > 0
            ? static_cast<double>(off.stats.structure_memory.peak_bytes) /
                  static_cast<double>(on.stats.structure_memory.peak_bytes)
            : 0.0;
    std::printf("%-28s peak-bytes reduction: %.1fx, ttfm: %.1fx\n", "",
                peak_ratio,
                on.ttfm_p99_ns > 0 ? off.ttfm_p99_ns / on.ttfm_p99_ns : 0.0);
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: identical items in every pair; on-rows show "
              "order-of-magnitude smaller matching_peak_bytes on large "
              "documents and ttfm_p99_ns far below the full parse time.\n");
  return 0;
}
