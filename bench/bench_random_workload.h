// Shared runner for the Section 6.2 experiments (Figures 6 and 7): random
// 6-node-test expressions, each with a random document generated from it,
// evaluated by χαoς(SAX), χαoς(DOM) and the navigational baseline.

#ifndef XAOS_BENCH_BENCH_RANDOM_WORKLOAD_H_
#define XAOS_BENCH_BENCH_RANDOM_WORKLOAD_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

namespace xaos::bench {

struct RunTimes {
  // Overall wall time including parsing (Figure 6).
  double xaos_sax_total = 0;
  double baseline_total = 0;
  double xaos_dom_total = 0;
  // Search-only time, excluding parse and tree construction (Figure 7).
  double xaos_dom_search = 0;
  double baseline_search = 0;
  bool baseline_ok = true;
  size_t result_count = 0;
};

// Runs one (query, document) workload through all three configurations.
// `visit_budget` bounds the baseline's node visits (0 = unlimited).
inline RunTimes RunWorkload(const gen::RandomWorkload& workload,
                            uint64_t visit_budget) {
  RunTimes times;

  StatusOr<core::Query> query = core::Query::Compile(workload.expression);
  if (!query.ok()) std::abort();

  // χαoς(SAX): parse + evaluate in one streaming pass.
  {
    core::StreamingEvaluator evaluator(*query);
    times.xaos_sax_total = TimeSeconds([&] {
      if (!xml::ParseString(workload.document, &evaluator).ok()) std::abort();
    });
    times.result_count = evaluator.Result().items.size();
  }

  // Common DOM for the two tree-based configurations.
  StatusOr<dom::Document> doc{dom::Document{}};
  double build_seconds = TimeSeconds([&] {
    doc = dom::ParseToDocument(workload.document);
  });
  if (!doc.ok()) std::abort();

  // Navigational baseline (Xalan-style): repeated tree traversals.
  {
    baseline::BaselineOptions options;
    options.max_node_visits = visit_budget;
    baseline::NavigationalEngine nav(&*doc, options);
    StatusOr<std::vector<baseline::NodeRef>> refs = std::vector<baseline::NodeRef>{};
    times.baseline_search = TimeSeconds([&] {
      refs = nav.Evaluate(workload.expression);
    });
    times.baseline_ok = refs.ok();
    times.baseline_total = build_seconds + times.baseline_search;
    if (refs.ok() && refs->size() != times.result_count) {
      std::fprintf(stderr, "RESULT MISMATCH on %s\n",
                   workload.expression.c_str());
      std::abort();
    }
  }

  // χαoς(DOM): the same engine driven by replaying the tree — isolates
  // search cost from parsing exactly as the paper's Section 6.2 does.
  {
    core::StreamingEvaluator evaluator(*query);
    times.xaos_dom_search = TimeSeconds([&] {
      dom::ReplayDocument(*doc, &evaluator);
    });
    times.xaos_dom_total = build_seconds + times.xaos_dom_search;
    if (evaluator.Result().items.size() != times.result_count) std::abort();
  }
  return times;
}

inline std::vector<size_t> SizesUpTo(size_t max_elements) {
  std::vector<size_t> sizes;
  for (size_t n = 20000; n <= max_elements; n *= 2) sizes.push_back(n);
  return sizes;
}

}  // namespace xaos::bench

#endif  // XAOS_BENCH_BENCH_RANDOM_WORKLOAD_H_
