// Shared runner for the Section 6.2 experiments (Figures 6 and 7): random
// 6-node-test expressions, each with a random document generated from it,
// evaluated by χαoς(SAX), χαoς(DOM) and the navigational baseline.

#ifndef XAOS_BENCH_BENCH_RANDOM_WORKLOAD_H_
#define XAOS_BENCH_BENCH_RANDOM_WORKLOAD_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

namespace xaos::bench {

// --- Zipf-popularity subscription pools (bench_multi_query) -----------------
//
// Real pub/sub workloads repeat a small set of popular queries with a long
// tail of rare ones. The pool draws `subs` expressions from a deterministic
// template universe of `distinct` linear forward chains over the XMark
// vocabulary (plus never-matching synthetic leaves under real prefixes, so
// shared prefixes still collide across matching and dead subscriptions),
// with template rank r sampled proportionally to 1/(r+1)^exponent.

struct ZipfPoolOptions {
  int subs = 1000;
  // Distinct templates; 0 derives clamp(subs/5, 64, 4000).
  int distinct = 0;
  double exponent = 1.0;
  uint64_t seed = 42;
};

inline std::vector<std::string> MakeZipfTemplates(int distinct) {
  static const char* const kPrefixes[] = {
      "/site/regions",        "/site/people",       "/site/open_auctions",
      "/site/closed_auctions", "/site/categories",  "/site/catgraph",
      "//item",               "//person",           "//open_auction",
      "//closed_auction",     "//category",         "//annotation",
  };
  static const char* const kSteps[] = {
      "name",     "description", "text",     "emailaddress", "incategory",
      "quantity", "location",    "payment",  "shipping",     "mailbox",
      "bidder",   "personref",   "seller",   "price",        "itemref",
      "edge",     "watch",       "address",  "city",         "country",
      "date",     "author",      "current",  "parlist",      "listitem",
  };
  constexpr int kNumPrefixes =
      static_cast<int>(sizeof(kPrefixes) / sizeof(kPrefixes[0]));
  constexpr int kNumSteps = static_cast<int>(sizeof(kSteps) / sizeof(kSteps[0]));
  std::vector<std::string> templates;
  templates.reserve(static_cast<size_t>(distinct));
  for (int i = 0; i < distinct; ++i) {
    std::string expr = kPrefixes[i % kNumPrefixes];
    if (i % 4 == 3) {
      // Dead leaf under a live prefix: never matches, but its prefix states
      // merge with the matching subscriptions'.
      expr += "/zzq" + std::to_string(i / 4);
    } else {
      expr += (i % 3 == 0) ? "//" : "/";
      expr += kSteps[(i * 7) % kNumSteps];
      if (i % 5 == 0) {
        expr += "/";
        expr += kSteps[(i * 11 + 3) % kNumSteps];
      }
    }
    templates.push_back(std::move(expr));
  }
  return templates;
}

inline std::vector<std::string> MakeZipfSubscriptionPool(
    const ZipfPoolOptions& options) {
  int distinct = options.distinct;
  if (distinct <= 0) {
    distinct = std::clamp(options.subs / 5, 64, 4000);
  }
  std::vector<std::string> templates = MakeZipfTemplates(distinct);
  // Zipf CDF over template ranks.
  std::vector<double> cdf(templates.size());
  double total = 0;
  for (size_t r = 0; r < templates.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), options.exponent);
    cdf[r] = total;
  }
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, total);
  std::vector<std::string> pool;
  pool.reserve(static_cast<size_t>(options.subs));
  for (int i = 0; i < options.subs; ++i) {
    size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uniform(rng)) - cdf.begin());
    if (rank >= templates.size()) rank = templates.size() - 1;
    pool.push_back(templates[rank]);
  }
  return pool;
}

struct RunTimes {
  // Overall wall time including parsing (Figure 6).
  double xaos_sax_total = 0;
  double baseline_total = 0;
  double xaos_dom_total = 0;
  // Search-only time, excluding parse and tree construction (Figure 7).
  double xaos_dom_search = 0;
  double baseline_search = 0;
  bool baseline_ok = true;
  size_t result_count = 0;
};

// Runs one (query, document) workload through all three configurations.
// `visit_budget` bounds the baseline's node visits (0 = unlimited).
inline RunTimes RunWorkload(const gen::RandomWorkload& workload,
                            uint64_t visit_budget) {
  RunTimes times;

  StatusOr<core::Query> query = core::Query::Compile(workload.expression);
  if (!query.ok()) std::abort();

  // χαoς(SAX): parse + evaluate in one streaming pass.
  {
    core::StreamingEvaluator evaluator(*query);
    times.xaos_sax_total = TimeSeconds([&] {
      if (!xml::ParseString(workload.document, &evaluator).ok()) std::abort();
    });
    times.result_count = evaluator.Result().items.size();
  }

  // Common DOM for the two tree-based configurations.
  StatusOr<dom::Document> doc{dom::Document{}};
  double build_seconds = TimeSeconds([&] {
    doc = dom::ParseToDocument(workload.document);
  });
  if (!doc.ok()) std::abort();

  // Navigational baseline (Xalan-style): repeated tree traversals.
  {
    baseline::BaselineOptions options;
    options.max_node_visits = visit_budget;
    baseline::NavigationalEngine nav(&*doc, options);
    StatusOr<std::vector<baseline::NodeRef>> refs = std::vector<baseline::NodeRef>{};
    times.baseline_search = TimeSeconds([&] {
      refs = nav.Evaluate(workload.expression);
    });
    times.baseline_ok = refs.ok();
    times.baseline_total = build_seconds + times.baseline_search;
    if (refs.ok() && refs->size() != times.result_count) {
      std::fprintf(stderr, "RESULT MISMATCH on %s\n",
                   workload.expression.c_str());
      std::abort();
    }
  }

  // χαoς(DOM): the same engine driven by replaying the tree — isolates
  // search cost from parsing exactly as the paper's Section 6.2 does.
  {
    core::StreamingEvaluator evaluator(*query);
    times.xaos_dom_search = TimeSeconds([&] {
      dom::ReplayDocument(*doc, &evaluator);
    });
    times.xaos_dom_total = build_seconds + times.xaos_dom_search;
    if (evaluator.Result().items.size() != times.result_count) std::abort();
  }
  return times;
}

inline std::vector<size_t> SizesUpTo(size_t max_elements) {
  std::vector<size_t> sizes;
  for (size_t n = 20000; n <= max_elements; n *= 2) sizes.push_back(n);
  return sizes;
}

}  // namespace xaos::bench

#endif  // XAOS_BENCH_BENCH_RANDOM_WORKLOAD_H_
