// Figure 5 reproduction: χαoς vs the navigational (Xalan-style) baseline on
// XMark-generated documents, query //listitem/ancestor::category//name.
//
// The paper sweeps XMark scale factors 1/32..4 (3.5 MB..446 MB) on a
// 550 MHz / 256 MB machine; Xalan spikes when the DOM starts thrashing and
// fails outright above ~200 MB, while χαoς stays linear in document size.
// Here both engines run over the same documents at laptop-friendly default
// scales (--max-scale enlarges the sweep), the baseline's DOM memory is
// reported, and a configurable --mem-cap-mb emulates the paper's physical
// memory limit: the baseline FAILs once its in-memory tree exceeds the cap
// (χαoς has no such cap — it never builds the tree).
//
// Expected shape: χαoς total time linear in size; baseline slower (DOM
// build + repeated traversals) with memory growing linearly until the cap
// kills it.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  double max_scale = flags.GetDouble("max-scale", 0.32);
  double mem_cap_mb = flags.GetDouble("mem-cap-mb", 256);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("fig5_xmark");
  reporter.SetParam("max-scale", max_scale);
  reporter.SetParam("mem-cap-mb", mem_cap_mb);
  reporter.SetParam("query", gen::kXMarkPaperQuery);

  std::vector<double> scales;
  for (double s = 0.01; s <= max_scale * 1.0001; s *= 2) scales.push_back(s);

  std::printf("Figure 5: time vs document size — xaos vs navigational "
              "baseline (Xalan-style)\n");
  std::printf("query: %s   (baseline memory cap: %.0f MB)\n\n",
              gen::kXMarkPaperQuery, mem_cap_mb);
  std::printf("%-8s %-10s %-10s %-12s %-12s %-12s %-12s %-8s\n", "scale",
              "size(MB)", "elements", "xaos(s)", "baseline(s)", "dom(MB)",
              "results", "baseline");
  bench::Rule(8);

  for (double scale : scales) {
    gen::XMarkOptions options;
    options.scale = scale;
    std::string document = gen::GenerateXMark(options);
    double size_mb = static_cast<double>(document.size()) / (1 << 20);

    // --- χαoς: single streaming pass over the text ---
    StatusOr<core::Query> query = core::Query::Compile(gen::kXMarkPaperQuery);
    if (!query.ok()) return 1;
    core::StreamingEvaluator evaluator(*query);
    double xaos_seconds = bench::TimeSeconds([&] {
      Status s = xml::ParseString(document, &evaluator);
      if (!s.ok()) std::abort();
    });
    size_t xaos_results = evaluator.Result().items.size();
    uint64_t elements = evaluator.AggregateStats().elements_total;

    // --- baseline: parse to DOM, then navigate ---
    double baseline_seconds = 0;
    std::string baseline_state = "ok";
    size_t baseline_results = 0;
    double dom_mb = 0;
    {
      StatusOr<dom::Document> doc{dom::Document{}};
      double build_seconds = bench::TimeSeconds([&] {
        doc = dom::ParseToDocument(document);
      });
      if (!doc.ok()) return 1;
      dom_mb = static_cast<double>(doc->ApproximateMemoryBytes()) / (1 << 20);
      if (dom_mb > mem_cap_mb) {
        baseline_state = "FAIL(mem)";
      } else {
        baseline::NavigationalEngine nav(&*doc);
        StatusOr<std::vector<baseline::NodeRef>> refs =
            std::vector<baseline::NodeRef>{};
        double eval_seconds = bench::TimeSeconds(
            [&] { refs = nav.Evaluate(gen::kXMarkPaperQuery); });
        if (!refs.ok()) {
          baseline_state = "FAIL(eval)";
        } else {
          baseline_results = refs->size();
          baseline_seconds = build_seconds + eval_seconds;
        }
      }
    }

    if (baseline_state == "ok" && baseline_results != xaos_results) {
      std::printf("RESULT MISMATCH: %zu vs %zu\n", xaos_results,
                  baseline_results);
      return 1;
    }
    std::printf("%-8.3f %-10.2f %-10llu %-12.4f %-12.4f %-12.1f %-12zu %-8s\n",
                scale, size_mb, static_cast<unsigned long long>(elements),
                xaos_seconds,
                baseline_state == "ok" ? baseline_seconds : 0.0, dom_mb,
                xaos_results, baseline_state.c_str());

    char label[32];
    std::snprintf(label, sizeof(label), "scale=%.3f", scale);
    reporter.AddResult(label, bench::Summarize({xaos_seconds}), size_mb);
    bench::AddEngineStats(&reporter, evaluator.AggregateStats());
    reporter.AddResultMetric("results", static_cast<double>(xaos_results));
    reporter.AddResultMetric("baseline_s", baseline_seconds);
    reporter.AddResultMetric("dom_mb", dom_mb);
    reporter.AddResultMetric("baseline_ok", baseline_state == "ok" ? 1 : 0);
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check (paper): xaos grows linearly with document "
              "size; the baseline pays DOM construction plus repeated\n"
              "traversals and stops completing once the tree exceeds "
              "memory, as Xalan did above ~200 MB on the paper's machine.\n");
  return 0;
}
