// Microbenchmarks for the χαoς engine: per-event cost for different query
// shapes. The paper's complexity claim (Section 6) is that each event is
// processed in constant time for a fixed query, so events/second should be
// roughly independent of document size and degrade only mildly with query
// complexity.
//
// This binary also replaces the global allocator with a counting shim so it
// can report heap allocations per element event. With the interning + arena
// hot path, steady-state passes (evaluator and parser reused across
// documents) should amortize to ~0 allocations per event: matching
// structures come from the engine's pool arena, attribute views alias the
// parser buffer, and candidate lookup is an integer-indexed table.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

// --- global allocation counter -------------------------------------------
// Counts every path into the heap; reads are taken before/after the timed
// region, so reporter/setup allocations never pollute the measurement.

namespace {
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}

// -------------------------------------------------------------------------

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.02);
  int repetitions = flags.GetInt("repetitions", 5);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("micro_engine");
  reporter.SetParam("scale", scale);
  reporter.SetParam("repetitions", repetitions);

  gen::XMarkOptions doc_options;
  doc_options.scale = scale;
  const std::string doc = gen::GenerateXMark(doc_options);
  const double megabytes = static_cast<double>(doc.size()) / (1 << 20);

  struct Shape {
    const char* label;
    const char* expression;
  };
  const Shape shapes[] = {
      {"forward_shallow", "/site/categories/category/name"},
      {"forward_descendant", "//category//name"},
      {"backward_paper_query", gen::kXMarkPaperQuery},
      {"branching_predicates",
       "//item[payment and shipping]/description//listitem[text]"},
      // listitem is recursive in XMark; ancestor::listitem forces deep
      // optimistic matching.
      {"heavy_recursive_match", "//listitem/ancestor::listitem"},
      {"attribute_tests", "//item[@id]/incategory[@category]"},
      {"union_of_four", "//name | //price | //listitem | //edge"},
      // Deferred-completion machinery: every name is followed by a
      // description sibling in items/categories.
      {"sibling_axes", "//name[following-sibling::description]"},
      {"following_axis_desugared", "//catgraph/following::person/name"},
  };

  std::printf("Engine micro: XMark scale %.3f (%.1f MB), %d repetitions\n\n",
              scale, megabytes, repetitions);
  std::printf("%-26s %-10s %-12s %-12s %-12s %-12s\n", "query shape",
              "time(s)", "elems/s", "allocs/event", "arena KB", "items");
  bench::Rule(7);

  for (const Shape& shape : shapes) {
    StatusOr<core::Query> query = core::Query::Compile(shape.expression);
    if (!query.ok()) {
      std::fprintf(stderr, "%s: compile failed: %s\n", shape.label,
                   query.status().ToString().c_str());
      return 1;
    }
    // One evaluator reused across all passes: after the warmup the arena
    // slabs, parser buffers and dispatch scratch are all retained, so the
    // measured passes show the steady-state allocation behavior.
    core::StreamingEvaluator evaluator(*query, {});
    for (int warm = 0; warm < 2; ++warm) {
      if (!xml::ParseString(doc, &evaluator).ok() ||
          !evaluator.status().ok()) {
        std::fprintf(stderr, "%s: warmup parse failed\n", shape.label);
        return 1;
      }
    }
    uint64_t elements = evaluator.AggregateStats().elements_total;

    std::vector<double> times;
    uint64_t allocs = 0;
    size_t items = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
      double seconds = bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &evaluator).ok()) std::abort();
      });
      allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
      times.push_back(seconds);
      items = evaluator.Result().items.size();  // outside the counter read
    }

    bench::Series series = bench::Summarize(times);
    uint64_t events = elements * static_cast<uint64_t>(repetitions);
    double allocs_per_event =
        events == 0 ? 0.0
                    : static_cast<double>(allocs) / static_cast<double>(events);
    core::EngineStats stats = evaluator.AggregateStats();
    std::printf("%-26s %-10.4f %-12.0f %-12.4f %-12.1f %-12zu\n", shape.label,
                series.mean,
                series.mean > 0 ? static_cast<double>(elements) / series.mean
                                : 0.0,
                allocs_per_event,
                static_cast<double>(stats.arena_bytes_allocated) / 1024.0,
                items);

    reporter.AddResult(shape.label, series, megabytes);
    reporter.AddResultMetric(
        "elements_per_s",
        series.mean > 0 ? static_cast<double>(elements) / series.mean : 0.0);
    reporter.AddResultMetric("allocations_per_event", allocs_per_event);
    reporter.AddResultMetric("result_items", static_cast<double>(items));
    bench::AddEngineStats(&reporter, stats);
  }

  // --- dispatch-only rows ---------------------------------------------------
  // A pool of never-matching subscriptions: the label index wakes no engine
  // for any event, so the measured cost is pure dispatch — SAX delivery,
  // candidate lookup, cursor upkeep. Per-event (one virtual hop per event)
  // vs batched (pooled EventBatch replay through the devirtualized run
  // loop) isolates exactly the overhead the batched path removes.
  {
    constexpr int kZeroMatchSubs = 512;
    std::vector<core::Query> queries;
    for (int i = 0; i < kZeroMatchSubs; ++i) {
      std::string expression =
          "//inbox_rule_" + std::to_string(i) + "/name";
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) {
        std::fprintf(stderr, "dispatch_only: compile failed: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*query));
    }
    core::EngineOptions options;
    options.enable_shared_index = false;
    core::MultiQueryEvaluator per_event(options);
    core::MultiQueryEvaluator batched(options);
    for (const core::Query& query : queries) {
      per_event.AddQuery(query);
      batched.AddQuery(query);
    }
    core::BatchedDispatcher dispatcher(&batched);
    // Warmup retains parser buffers, dispatch scratch and the batch pool.
    if (!xml::ParseString(doc, &per_event).ok() ||
        !xml::ParseString(doc, &dispatcher).ok()) {
      std::fprintf(stderr, "dispatch_only: warmup parse failed\n");
      return 1;
    }
    // The pool is zero-match, so engine stats stay flat; count document
    // elements once via a throwaway matching evaluator instead.
    uint64_t elements = 0;
    {
      StatusOr<core::Query> probe = core::Query::Compile("//site");
      core::StreamingEvaluator counter(*probe, {});
      if (!xml::ParseString(doc, &counter).ok()) std::abort();
      elements = counter.AggregateStats().elements_total;
    }

    struct Mode {
      const char* label;
      xml::ContentHandler* handler;
      core::MultiQueryEvaluator* evaluator;
    };
    const Mode modes[] = {
        {"dispatch_per_event", &per_event, &per_event},
        {"dispatch_batched", &dispatcher, &batched},
    };
    double per_event_mean = 0.0;
    for (const Mode& mode : modes) {
      std::vector<double> times;
      uint64_t allocs = 0;
      for (int rep = 0; rep < repetitions; ++rep) {
        uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
        times.push_back(bench::TimeSeconds([&] {
          if (!xml::ParseString(doc, mode.handler).ok()) std::abort();
        }));
        allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
      }
      for (int q = 0; q < kZeroMatchSubs; ++q) {
        if (mode.evaluator->Matched(static_cast<size_t>(q))) {
          std::fprintf(stderr, "%s: zero-match pool matched query %d\n",
                       mode.label, q);
          return 1;
        }
      }
      bench::Series series = bench::Summarize(times);
      if (mode.handler == &per_event) per_event_mean = series.mean;
      uint64_t events = elements * static_cast<uint64_t>(repetitions);
      double allocs_per_event =
          events == 0
              ? 0.0
              : static_cast<double>(allocs) / static_cast<double>(events);
      double speedup = (series.mean > 0 && per_event_mean > 0)
                           ? per_event_mean / series.mean
                           : 0.0;
      std::printf("%-26s %-10.4f %-12.0f %-12.4f %-12s %-12d\n", mode.label,
                  series.mean,
                  series.mean > 0
                      ? static_cast<double>(elements) / series.mean
                      : 0.0,
                  allocs_per_event, "-", 0);
      reporter.AddResult(mode.label, series, megabytes);
      reporter.AddResultMetric(
          "elements_per_s",
          series.mean > 0 ? static_cast<double>(elements) / series.mean
                          : 0.0);
      reporter.AddResultMetric("allocations_per_event", allocs_per_event);
      reporter.AddResultMetric("subscriptions", kZeroMatchSubs);
      reporter.AddResultMetric("speedup_vs_per_event", speedup);
    }
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: elements/s roughly flat across shapes "
              "(constant per-event cost, Section 6); allocs/event ~0 in "
              "steady state — structures live in the pool arena and "
              "attribute views alias the parse buffer.\n");
  return 0;
}
