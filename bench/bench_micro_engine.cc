// Microbenchmarks for the χαoς engine: per-event cost for different query
// shapes. The paper's complexity claim (Section 6) is that each event is
// processed in constant time for a fixed query, so events/second should be
// roughly independent of document size and degrade only mildly with query
// complexity.

#include <benchmark/benchmark.h>

#include <string>

#include "core/multi_engine.h"
#include "core/xaos_engine.h"
#include "gen/xmark_generator.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace {

const std::string& Document() {
  static const std::string* doc = [] {
    xaos::gen::XMarkOptions options;
    options.scale = 0.02;
    return new std::string(xaos::gen::GenerateXMark(options));
  }();
  return *doc;
}

void RunQuery(benchmark::State& state, const char* expression) {
  const std::string& doc = Document();
  xaos::StatusOr<xaos::core::Query> query =
      xaos::core::Query::Compile(expression);
  if (!query.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  uint64_t elements = 0;
  for (auto _ : state) {
    xaos::core::StreamingEvaluator evaluator(*query);
    if (!xaos::xml::ParseString(doc, &evaluator).ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    elements = evaluator.AggregateStats().elements_total;
    benchmark::DoNotOptimize(evaluator.Result().items.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(elements));
  state.counters["elements"] = static_cast<double>(elements);
}

void BM_ForwardShallow(benchmark::State& state) {
  RunQuery(state, "/site/categories/category/name");
}
BENCHMARK(BM_ForwardShallow);

void BM_ForwardDescendant(benchmark::State& state) {
  RunQuery(state, "//category//name");
}
BENCHMARK(BM_ForwardDescendant);

void BM_BackwardPaperQuery(benchmark::State& state) {
  RunQuery(state, xaos::gen::kXMarkPaperQuery);
}
BENCHMARK(BM_BackwardPaperQuery);

void BM_BranchingPredicates(benchmark::State& state) {
  RunQuery(state,
           "//item[payment and shipping]/description//listitem[text]");
}
BENCHMARK(BM_BranchingPredicates);

void BM_HeavyRecursiveMatch(benchmark::State& state) {
  // listitem is recursive in XMark; ancestor::listitem forces deep
  // optimistic matching.
  RunQuery(state, "//listitem/ancestor::listitem");
}
BENCHMARK(BM_HeavyRecursiveMatch);

void BM_AttributeTests(benchmark::State& state) {
  RunQuery(state, "//item[@id]/incategory[@category]");
}
BENCHMARK(BM_AttributeTests);

void BM_UnionOfFour(benchmark::State& state) {
  RunQuery(state, "//name | //price | //listitem | //edge");
}
BENCHMARK(BM_UnionOfFour);

void BM_SiblingAxes(benchmark::State& state) {
  // Deferred-completion machinery: every name is followed by a
  // description sibling in items/categories.
  RunQuery(state, "//name[following-sibling::description]");
}
BENCHMARK(BM_SiblingAxes);

void BM_FollowingAxisDesugared(benchmark::State& state) {
  RunQuery(state, "//catgraph/following::person/name");
}
BENCHMARK(BM_FollowingAxisDesugared);

}  // namespace

BENCHMARK_MAIN();
