// Multi-query dispatch throughput: one XMark document streamed through N
// simultaneous subscriptions, comparing naive fan-out (every event pushed
// into every per-query evaluator) against the label-indexed
// MultiQueryEvaluator (an event only reaches engines whose x-dag mentions
// one of its labels). The subscription pool mixes query templates over the
// XMark vocabulary with never-matching synthetic tags, the realistic
// pub/sub shape: most subscriptions are irrelevant to most events.
//
// Both modes must deliver identical per-query verdicts; any divergence is a
// correctness bug and fails the run.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_random_workload.h"
#include "bench_util.h"
#include "xaos.h"

namespace {

using namespace xaos;

// Label-driven templates over tags the XMark generator actually emits.
const char* const kTemplates[] = {
    "/site/regions//item/name",
    "//person/name",
    "//open_auction/bidder/personref",
    "//category/description",
    "//item[payment]/name",
    "//closed_auction/seller",
    "//listitem/text",
    "//catgraph/edge",
    "//mail/text",
    "//item/incategory",
    "//watches/watch",
    "//annotation/description",
};

std::vector<std::string> MakeExpressions(int count) {
  std::vector<std::string> expressions;
  expressions.reserve(static_cast<size_t>(count));
  constexpr int kNumTemplates =
      static_cast<int>(sizeof(kTemplates) / sizeof(kTemplates[0]));
  for (int i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      expressions.push_back(kTemplates[(i / 2) % kNumTemplates]);
    } else {
      // Distinct label absent from the document: the subscription can never
      // match, and the dispatch index never wakes its engine.
      expressions.push_back("//inbox_rule_" + std::to_string(i) + "/name");
    }
  }
  return expressions;
}

// Captures a whole document's event stream into owned batches, so the
// dispatch-rate rows can replay the identical events repeatedly without
// re-tokenizing: per-event virtual delivery (EventBatch::Replay) vs the
// devirtualized batch loop (MultiQueryEvaluator::ReplayBatch).
struct StoreSink : xml::EventBatcher::Sink {
  std::vector<std::unique_ptr<xml::EventBatch>> batches;
  xml::EventBatch* AcquireBatch() override {
    batches.push_back(std::make_unique<xml::EventBatch>());
    return batches.back().get();
  }
  void PublishBatch(xml::EventBatch*) override {}
};

// Fans one parse out to independent per-query evaluators — the baseline
// whose per-event cost is linear in the subscription count.
struct Fanout : xml::ContentHandler {
  std::vector<std::unique_ptr<core::StreamingEvaluator>>* subs = nullptr;
  void StartDocument() override {
    for (auto& s : *subs) s->StartDocument();
  }
  void EndDocument() override {
    for (auto& s : *subs) s->EndDocument();
  }
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override {
    for (auto& s : *subs) s->StartElement(name, attributes);
  }
  void EndElement(std::string_view name) override {
    for (auto& s : *subs) s->EndElement(name);
  }
  void Characters(std::string_view text) override {
    for (auto& s : *subs) s->Characters(text);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.02);
  int repetitions = flags.GetInt("repetitions", 3);
  int max_subs = flags.GetInt("max-subs", 1000);
  // --threads=N adds a parallel/subs=M row per block: the same subscription
  // pool sharded across N ParallelFleet workers, verdict-checked against
  // the naive baseline like the indexed mode. 0 disables.
  int threads = flags.GetInt("threads", 0);
  // --zipf-max-subs=N adds zipf-indexed/zipf-shared rows for subscription
  // counts {1000, 10000, 100000} up to N: a Zipf-popularity template pool
  // run through the per-engine indexed path vs the shared-prefix automaton
  // (plus zipf-parallel with --threads, and a fallback-parity row over a
  // non-shareable pool). 0 (default) skips them — they dominate runtime.
  int zipf_max_subs = flags.GetInt("zipf-max-subs", 0);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("multi_query");
  reporter.SetParam("scale", scale);
  reporter.SetParam("repetitions", repetitions);
  reporter.SetParam("max-subs", max_subs);
  reporter.SetParam("threads", threads);
  reporter.SetParam("zipf-max-subs", zipf_max_subs);

  gen::XMarkOptions doc_options;
  doc_options.scale = scale;
  const std::string doc = gen::GenerateXMark(doc_options);
  const double megabytes = static_cast<double>(doc.size()) / (1 << 20);

  std::printf("Multi-query dispatch: XMark scale %.3f (%.1f MB), "
              "%d repetitions per row\n\n",
              scale, megabytes, repetitions);
  std::printf("%-20s %-10s %-10s %-10s %-14s %-10s\n", "configuration",
              "time(s)", "MB/s", "matched", "skipped/doc", "speedup");
  bench::Rule(6);

  for (int subs : {1, 10, 100, 1000}) {
    if (subs > max_subs) break;
    std::vector<std::string> expressions = MakeExpressions(subs);
    std::vector<core::Query> queries;
    for (const std::string& expression : expressions) {
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*query));
    }

    // Naive fan-out.
    std::vector<std::unique_ptr<core::StreamingEvaluator>> evaluators;
    for (const core::Query& query : queries) {
      evaluators.push_back(
          std::make_unique<core::StreamingEvaluator>(query, core::EngineOptions{}));
    }
    Fanout fanout;
    fanout.subs = &evaluators;
    std::vector<double> naive_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      naive_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &fanout).ok()) std::abort();
      }));
    }
    std::vector<bool> naive_matched;
    uint64_t naive_count = 0;
    for (auto& evaluator : evaluators) {
      bool m = evaluator->Result().matched;
      naive_matched.push_back(m);
      naive_count += m ? 1 : 0;
    }

    // Label-indexed dispatch. The shared-prefix backend is forced off so
    // these rows keep measuring the per-engine path the committed baselines
    // were recorded against; the shared backend gets its own zipf-* rows.
    core::EngineOptions indexed_options;
    indexed_options.enable_shared_index = false;
    core::MultiQueryEvaluator multi(indexed_options);
    for (const core::Query& query : queries) multi.AddQuery(query);
    std::vector<double> indexed_times;
    uint64_t skipped_before = 0;
    uint64_t skipped_per_doc = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      skipped_before = multi.engines_skipped();
      indexed_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &multi).ok()) std::abort();
      }));
      skipped_per_doc = multi.engines_skipped() - skipped_before;
    }
    uint64_t indexed_count = 0;
    for (int q = 0; q < subs; ++q) {
      bool m = multi.Matched(static_cast<size_t>(q));
      indexed_count += m ? 1 : 0;
      if (m != naive_matched[static_cast<size_t>(q)]) {
        std::fprintf(stderr,
                     "VERDICT MISMATCH at %d subscriptions, query %d (%s): "
                     "naive=%d indexed=%d\n",
                     subs, q, expressions[static_cast<size_t>(q)].c_str(),
                     naive_matched[static_cast<size_t>(q)] ? 1 : 0, m ? 1 : 0);
        return 1;
      }
    }

    // Batched dispatch over the same per-engine pool: the identical
    // evaluator configuration fed through pooled EventBatch replay
    // (devirtualized run loop) instead of one virtual call per event.
    core::MultiQueryEvaluator batched_multi(indexed_options);
    for (const core::Query& query : queries) batched_multi.AddQuery(query);
    core::BatchedDispatcher batched_dispatcher(&batched_multi);
    std::vector<double> batched_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      batched_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &batched_dispatcher).ok()) std::abort();
      }));
    }
    for (int q = 0; q < subs; ++q) {
      if (batched_multi.Matched(static_cast<size_t>(q)) !=
          naive_matched[static_cast<size_t>(q)]) {
        std::fprintf(stderr,
                     "VERDICT MISMATCH at %d subscriptions, query %d (%s): "
                     "naive vs batched\n",
                     subs, q, expressions[static_cast<size_t>(q)].c_str());
        return 1;
      }
    }

    // One instrumented pass over the same pool: per-subscription match
    // latency and time-to-first-match (each matched subscription contributes
    // one sample), reduced to exact percentiles across subscriptions. Runs
    // outside the timed reps so instrumentation cannot perturb the
    // throughput rows; the regression gate watches the p99 columns.
    obs::SetEnabled(true);
    obs::MetricsRegistry latency_registry;
    core::EngineOptions obs_options;
    obs_options.metrics_registry = &latency_registry;
    obs_options.enable_shared_index = false;
    core::MultiQueryEvaluator instrumented(obs_options);
    for (const core::Query& query : queries) instrumented.AddQuery(query);
    if (!xml::ParseString(doc, &instrumented).ok()) std::abort();
    obs::SetEnabled(false);
    std::vector<double> latencies;
    std::vector<double> ttfms;
    for (int q = 0; q < subs; ++q) {
      std::string selector = "{subscription=\"" +
                             instrumented.query_label(static_cast<size_t>(q)) +
                             "\"}";
      obs::Histogram* latency = latency_registry.GetHistogram(
          "xaos_sub_match_latency_ns" + selector);
      // One document pass: count is 0 (no match) or 1, so Sum() is the
      // sample itself — exact, no bucket rounding.
      if (latency->Count() > 0) {
        latencies.push_back(static_cast<double>(latency->Sum()));
      }
      obs::Histogram* first_match =
          latency_registry.GetHistogram("xaos_sub_first_match_ns" + selector);
      if (first_match->Count() > 0) {
        ttfms.push_back(static_cast<double>(first_match->Sum()));
      }
    }
    auto percentile = [](std::vector<double>* samples, double q) {
      if (samples->empty()) return 0.0;
      std::sort(samples->begin(), samples->end());
      double rank = q * static_cast<double>(samples->size() - 1);
      return (*samples)[static_cast<size_t>(rank + 0.5)];
    };
    const double latency_p50 = percentile(&latencies, 0.50);
    const double latency_p99 = percentile(&latencies, 0.99);
    const double ttfm_p50 = percentile(&ttfms, 0.50);
    const double ttfm_p99 = percentile(&ttfms, 0.99);

    bench::Series naive = bench::Summarize(naive_times);
    bench::Series indexed = bench::Summarize(indexed_times);
    double speedup = indexed.mean > 0 ? naive.mean / indexed.mean : 0.0;

    char label[64];
    std::snprintf(label, sizeof(label), "naive/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10s\n", label,
                naive.mean, megabytes / naive.mean,
                static_cast<unsigned long long>(naive_count), "-", "-");
    reporter.AddResult(label, naive, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("matched", static_cast<double>(naive_count));

    std::snprintf(label, sizeof(label), "indexed/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10llu %-14llu %-10.2f\n", label,
                indexed.mean, megabytes / indexed.mean,
                static_cast<unsigned long long>(indexed_count),
                static_cast<unsigned long long>(skipped_per_doc), speedup);
    reporter.AddResult(label, indexed, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("matched", static_cast<double>(indexed_count));
    reporter.AddResultMetric("engines_skipped_per_doc",
                             static_cast<double>(skipped_per_doc));
    reporter.AddResultMetric("speedup_vs_naive", speedup);
    reporter.AddResultMetric("match_latency_p50_ns", latency_p50);
    reporter.AddResultMetric("match_latency_p99_ns", latency_p99);
    reporter.AddResultMetric("ttfm_p50_ns", ttfm_p50);
    reporter.AddResultMetric("ttfm_p99_ns", ttfm_p99);
    std::printf("  latency across %zu matched subs: p50 %.0f us, "
                "p99 %.0f us (first match p99 %.0f us)\n",
                latencies.size(), latency_p50 / 1e3, latency_p99 / 1e3,
                ttfm_p99 / 1e3);

    bench::Series batched_series = bench::Summarize(batched_times);
    double batched_speedup = batched_series.mean > 0
                                 ? indexed.mean / batched_series.mean
                                 : 0.0;
    std::snprintf(label, sizeof(label), "batched/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10.2f\n", label,
                batched_series.mean, megabytes / batched_series.mean,
                static_cast<unsigned long long>(indexed_count), "-",
                batched_speedup);
    reporter.AddResult(label, batched_series, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("matched", static_cast<double>(indexed_count));
    reporter.AddResultMetric("speedup_vs_per_event", batched_speedup);
    reporter.AddResultMetric(
        "batches_per_doc",
        static_cast<double>(batched_dispatcher.batches_replayed()) /
            std::max(repetitions, 1));

    // Sharded parallel fleet.
    if (threads > 0) {
      core::ParallelFleetOptions options;
      options.num_workers = static_cast<size_t>(threads);
      options.engine_options.enable_shared_index = false;  // baseline row
      core::ParallelFleet fleet(options);
      for (const core::Query& query : queries) fleet.AddQuery(query);
      std::vector<double> parallel_times;
      for (int rep = 0; rep < repetitions; ++rep) {
        parallel_times.push_back(bench::TimeSeconds([&] {
          if (!xml::ParseString(doc, &fleet).ok()) std::abort();
        }));
      }
      uint64_t parallel_count = 0;
      for (int q = 0; q < subs; ++q) {
        bool m = fleet.Matched(static_cast<size_t>(q));
        parallel_count += m ? 1 : 0;
        if (m != naive_matched[static_cast<size_t>(q)]) {
          std::fprintf(stderr,
                       "VERDICT MISMATCH at %d subscriptions, query %d (%s): "
                       "naive=%d parallel=%d\n",
                       subs, q, expressions[static_cast<size_t>(q)].c_str(),
                       naive_matched[static_cast<size_t>(q)] ? 1 : 0,
                       m ? 1 : 0);
          return 1;
        }
      }
      bench::Series parallel = bench::Summarize(parallel_times);
      double parallel_speedup =
          parallel.mean > 0 ? naive.mean / parallel.mean : 0.0;
      std::snprintf(label, sizeof(label), "parallel/subs=%d", subs);
      std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10.2f\n", label,
                  parallel.mean, megabytes / parallel.mean,
                  static_cast<unsigned long long>(parallel_count), "-",
                  parallel_speedup);
      reporter.AddResult(label, parallel, megabytes);
      reporter.AddResultMetric("subscriptions", subs);
      reporter.AddResultMetric("workers", threads);
      reporter.AddResultMetric("matched",
                               static_cast<double>(parallel_count));
      reporter.AddResultMetric("speedup_vs_naive", parallel_speedup);
    }
  }

  // --- Zipf-popularity scaling: shared-prefix automaton vs per-engine ------
  // The naive fan-out is hopeless at these sizes; the per-engine indexed
  // evaluator (shared backend off) is the oracle and the comparison bar.
  for (int subs : {1000, 10000, 100000}) {
    if (subs > zipf_max_subs) break;
    bench::ZipfPoolOptions pool_options;
    pool_options.subs = subs;
    std::vector<std::string> expressions =
        bench::MakeZipfSubscriptionPool(pool_options);
    std::vector<core::Query> queries;
    for (const std::string& expression : expressions) {
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*query));
    }

    core::EngineOptions engine_only;
    engine_only.enable_shared_index = false;
    core::MultiQueryEvaluator indexed(engine_only);
    for (const core::Query& query : queries) indexed.AddQuery(query);
    std::vector<double> indexed_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      indexed_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &indexed).ok()) std::abort();
      }));
    }

    core::MultiQueryEvaluator shared;  // enable_shared_index defaults on
    for (const core::Query& query : queries) shared.AddQuery(query);
    std::vector<double> shared_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      shared_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &shared).ok()) std::abort();
      }));
    }

    // The same shared-backend pool fed through batched dispatch: flat
    // transition tables + step cache only engage on this path, so this row
    // against zipf-shared is the tentpole's headline comparison.
    core::MultiQueryEvaluator batched_shared;
    for (const core::Query& query : queries) batched_shared.AddQuery(query);
    core::BatchedDispatcher zipf_dispatcher(&batched_shared);
    std::vector<double> batched_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      batched_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &zipf_dispatcher).ok()) std::abort();
      }));
    }
    for (int q = 0; q < subs; ++q) {
      if (batched_shared.Matched(static_cast<size_t>(q)) !=
          indexed.Matched(static_cast<size_t>(q))) {
        std::fprintf(stderr,
                     "VERDICT MISMATCH at %d zipf subscriptions, query %d "
                     "(%s): indexed vs batched\n",
                     subs, q, expressions[static_cast<size_t>(q)].c_str());
        return 1;
      }
    }

    uint64_t matched = 0;
    for (int q = 0; q < subs; ++q) {
      bool m = shared.Matched(static_cast<size_t>(q));
      matched += m ? 1 : 0;
      if (m != indexed.Matched(static_cast<size_t>(q))) {
        std::fprintf(stderr,
                     "VERDICT MISMATCH at %d zipf subscriptions, query %d "
                     "(%s): indexed=%d shared=%d\n",
                     subs, q, expressions[static_cast<size_t>(q)].c_str(),
                     indexed.Matched(static_cast<size_t>(q)) ? 1 : 0,
                     m ? 1 : 0);
        return 1;
      }
    }

    bench::Series indexed_series = bench::Summarize(indexed_times);
    bench::Series shared_series = bench::Summarize(shared_times);
    double speedup = shared_series.mean > 0
                         ? indexed_series.mean / shared_series.mean
                         : 0.0;

    char label[64];
    std::snprintf(label, sizeof(label), "zipf-indexed/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10s\n", label,
                indexed_series.mean, megabytes / indexed_series.mean,
                static_cast<unsigned long long>(matched), "-", "-");
    reporter.AddResult(label, indexed_series, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("matched", static_cast<double>(matched));

    std::snprintf(label, sizeof(label), "zipf-shared/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10.2f\n", label,
                shared_series.mean, megabytes / shared_series.mean,
                static_cast<unsigned long long>(matched), "-", speedup);
    reporter.AddResult(label, shared_series, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("matched", static_cast<double>(matched));
    reporter.AddResultMetric("speedup_vs_indexed", speedup);
    reporter.AddResultMetric("shared_subscriptions",
                             static_cast<double>(
                                 shared.shared_subscription_count()));
    reporter.AddResultMetric("alias_subscriptions",
                             static_cast<double>(shared.alias_count()));
    reporter.AddResultMetric("shared_states",
                             static_cast<double>(shared.shared_state_count()));
    std::printf("  zipf pool: %zu shared subs (%zu aliases) -> %zu automaton "
                "states, %.2fx over per-engine indexed\n",
                shared.shared_subscription_count(), shared.alias_count(),
                shared.shared_state_count(), speedup);

    bench::Series batched_series = bench::Summarize(batched_times);
    double batched_speedup = batched_series.mean > 0
                                 ? shared_series.mean / batched_series.mean
                                 : 0.0;
    std::snprintf(label, sizeof(label), "zipf-batched/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10.2f\n", label,
                batched_series.mean, megabytes / batched_series.mean,
                static_cast<unsigned long long>(matched), "-",
                batched_speedup);
    reporter.AddResult(label, batched_series, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("matched", static_cast<double>(matched));
    reporter.AddResultMetric("speedup_vs_per_event", batched_speedup);
    reporter.AddResultMetric(
        "batches_per_doc",
        static_cast<double>(zipf_dispatcher.batches_replayed()) /
            static_cast<double>(repetitions));
    std::printf("  batched dispatch: %.2fx over the per-event shared path\n",
                batched_speedup);

    // Dispatch-rate rows: tokenization excluded. The document's events are
    // captured once (lean, as BatchedDispatcher would for this pool), then
    // the identical stream drives the same evaluator configuration through
    // one virtual callback per event vs the devirtualized batch loop —
    // the isolated cost of the match path the tentpole restructures.
    {
      core::MultiQueryEvaluator dispatch_eval;
      for (const core::Query& query : queries) dispatch_eval.AddQuery(query);
      StoreSink store;
      xml::EventBatcher capture(&store, 256, 32 * 1024);
      capture.set_lean_payload(!dispatch_eval.wants_text_events());
      if (!xml::ParseString(doc, &capture).ok()) std::abort();
      std::vector<xml::AttributeView> scratch;

      std::vector<double> per_event_times, batched_dispatch_times;
      for (int rep = 0; rep < repetitions; ++rep) {
        per_event_times.push_back(bench::TimeSeconds([&] {
          for (const auto& b : store.batches) {
            b->Replay(&dispatch_eval, &scratch);
          }
        }));
        batched_dispatch_times.push_back(bench::TimeSeconds([&] {
          for (const auto& b : store.batches) {
            dispatch_eval.ReplayBatch(*b, &scratch);
          }
        }));
      }
      for (int q = 0; q < subs; ++q) {
        if (dispatch_eval.Matched(static_cast<size_t>(q)) !=
            indexed.Matched(static_cast<size_t>(q))) {
          std::fprintf(stderr,
                       "VERDICT MISMATCH at %d zipf subscriptions, query %d "
                       "(%s): indexed vs dispatch replay\n",
                       subs, q, expressions[static_cast<size_t>(q)].c_str());
          return 1;
        }
      }
      bench::Series pe_series = bench::Summarize(per_event_times);
      bench::Series bd_series = bench::Summarize(batched_dispatch_times);
      double dispatch_speedup =
          bd_series.mean > 0 ? pe_series.mean / bd_series.mean : 0.0;
      std::snprintf(label, sizeof(label), "zipf-dispatch-pe/subs=%d", subs);
      std::printf("%-20s %-10.4f %-10.2f %-10s %-14s %-10s\n", label,
                  pe_series.mean, megabytes / pe_series.mean, "-", "-", "-");
      reporter.AddResult(label, pe_series, megabytes);
      reporter.AddResultMetric("subscriptions", subs);
      std::snprintf(label, sizeof(label), "zipf-dispatch-batched/subs=%d",
                    subs);
      std::printf("%-20s %-10.4f %-10.2f %-10s %-14s %-10.2f\n", label,
                  bd_series.mean, megabytes / bd_series.mean, "-", "-",
                  dispatch_speedup);
      reporter.AddResult(label, bd_series, megabytes);
      reporter.AddResultMetric("subscriptions", subs);
      reporter.AddResultMetric("dispatch_speedup_vs_per_event",
                               dispatch_speedup);
      std::printf("  dispatch rate (parse excluded): %.2fx over per-event "
                  "delivery\n", dispatch_speedup);
    }

    if (threads > 0) {
      core::ParallelFleetOptions options;
      options.num_workers = threads;
      core::ParallelFleet fleet(options);
      for (const core::Query& query : queries) fleet.AddQuery(query);
      std::vector<double> parallel_times;
      for (int rep = 0; rep < repetitions; ++rep) {
        parallel_times.push_back(bench::TimeSeconds([&] {
          if (!xml::ParseString(doc, &fleet).ok()) std::abort();
        }));
      }
      for (int q = 0; q < subs; ++q) {
        if (fleet.Matched(static_cast<size_t>(q)) !=
            indexed.Matched(static_cast<size_t>(q))) {
          std::fprintf(stderr,
                       "VERDICT MISMATCH at %d zipf subscriptions, query %d "
                       "(%s): indexed vs parallel\n",
                       subs, q, expressions[static_cast<size_t>(q)].c_str());
          return 1;
        }
      }
      bench::Series parallel_series = bench::Summarize(parallel_times);
      std::snprintf(label, sizeof(label), "zipf-parallel/subs=%d", subs);
      std::printf("%-20s %-10.4f %-10.2f %-10llu %-14s %-10.2f\n", label,
                  parallel_series.mean, megabytes / parallel_series.mean,
                  static_cast<unsigned long long>(matched), "-",
                  parallel_series.mean > 0
                      ? indexed_series.mean / parallel_series.mean
                      : 0.0);
      reporter.AddResult(label, parallel_series, megabytes);
      reporter.AddResultMetric("subscriptions", subs);
      reporter.AddResultMetric("workers", threads);
    }
  }

  // Fallback parity: a pool the merger cannot share (every chain carries a
  // predicate) must not pay for the shared backend being enabled — both
  // evaluators route everything to per-engine matching.
  if (zipf_max_subs >= 1000) {
    const int subs = 1000;
    bench::ZipfPoolOptions pool_options;
    pool_options.subs = subs;
    std::vector<std::string> expressions =
        bench::MakeZipfSubscriptionPool(pool_options);
    std::vector<core::Query> queries;
    for (std::string& expression : expressions) {
      expression += "[zzqpred]";  // existential child predicate: unshareable
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*query));
    }
    core::EngineOptions engine_only;
    engine_only.enable_shared_index = false;
    core::MultiQueryEvaluator off(engine_only);
    core::MultiQueryEvaluator on;  // shared enabled, nothing shareable
    for (const core::Query& query : queries) {
      off.AddQuery(query);
      on.AddQuery(query);
    }
    std::vector<double> off_times, on_times;
    for (int rep = 0; rep < repetitions; ++rep) {
      off_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &off).ok()) std::abort();
      }));
      on_times.push_back(bench::TimeSeconds([&] {
        if (!xml::ParseString(doc, &on).ok()) std::abort();
      }));
    }
    bench::Series off_series = bench::Summarize(off_times);
    bench::Series on_series = bench::Summarize(on_times);
    double parity = on_series.mean > 0 ? off_series.mean / on_series.mean : 0.0;
    char label[64];
    std::snprintf(label, sizeof(label), "zipf-fallback/subs=%d", subs);
    std::printf("%-20s %-10.4f %-10.2f %-10s %-14s %-10.2f\n", label,
                on_series.mean, megabytes / on_series.mean, "-", "-", parity);
    reporter.AddResult(label, on_series, megabytes);
    reporter.AddResultMetric("subscriptions", subs);
    reporter.AddResultMetric("parity_vs_shared_off", parity);
    std::printf("  fallback pool parity (shared-off time / shared-on time): "
                "%.3f\n", parity);
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: identical per-query verdicts in both modes; "
              "indexed throughput degrades sub-linearly with subscription "
              "count because events only reach engines whose labels they "
              "carry.\n");
  return 0;
}
