// Figure 6 reproduction: overall execution time (including parsing) versus
// document size for random 6-node-test XPath expressions —
// χαoς(SAX) vs the navigational baseline vs χαoς(DOM).
//
// The paper runs 10 (query, document) pairs per size from 20k to 640k
// elements and reports mean ± stddev. Expected shape: χαoς(SAX) ~25%
// faster than the baseline overall, with a small, stable stddev; the
// baseline's stddev is large because its cost depends heavily on the
// drawn expression (bimodal behaviour, discussed with Figure 7).

#include <cstdio>
#include <vector>

#include "bench_random_workload.h"
#include "bench_util.h"
#include "xaos.h"

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  size_t max_elements =
      static_cast<size_t>(flags.GetInt("max-elements", 160000));
  int runs = flags.GetInt("runs", 10);
  uint64_t visit_budget =
      static_cast<uint64_t>(flags.GetDouble("visit-budget", 2e9));
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("fig6_overall");
  reporter.SetParam("max-elements", static_cast<double>(max_elements));
  reporter.SetParam("runs", runs);

  std::printf("Figure 6: overall time (s, incl. parsing) vs #elements — "
              "%d random 6-node-test queries per size\n\n", runs);
  std::printf("%-10s | %-12s %-10s | %-12s %-10s | %-12s %-10s\n", "elements",
              "xaos(SAX)", "stddev", "baseline", "stddev", "xaos(DOM)",
              "stddev");
  bench::Rule(7);

  for (size_t n : bench::SizesUpTo(max_elements)) {
    std::vector<double> sax, nav, dom;
    for (int run = 0; run < runs; ++run) {
      gen::RandomDocOptions doc_options;
      doc_options.target_elements = n;
      StatusOr<gen::RandomWorkload> workload = gen::GenerateWorkload(
          {}, doc_options, /*seed=*/1000 + static_cast<uint64_t>(run));
      if (!workload.ok()) return 1;
      bench::RunTimes times = bench::RunWorkload(*workload, visit_budget);
      sax.push_back(times.xaos_sax_total);
      dom.push_back(times.xaos_dom_total);
      if (times.baseline_ok) nav.push_back(times.baseline_total);
    }
    bench::Series s_sax = bench::Summarize(sax);
    bench::Series s_nav = bench::Summarize(nav);
    bench::Series s_dom = bench::Summarize(dom);
    std::printf("%-10zu | %-12.4f %-10.4f | %-12.4f %-10.4f | %-12.4f "
                "%-10.4f%s\n",
                n, s_sax.mean, s_sax.stddev, s_nav.mean, s_nav.stddev,
                s_dom.mean, s_dom.stddev,
                nav.size() < static_cast<size_t>(runs) ? "  (baseline censored)"
                                                       : "");

    reporter.AddResult("xaos_sax/elements=" + std::to_string(n), s_sax);
    reporter.AddResult("baseline/elements=" + std::to_string(n), s_nav);
    reporter.AddResultMetric(
        "censored_runs",
        static_cast<double>(runs) - static_cast<double>(nav.size()));
    reporter.AddResult("xaos_dom/elements=" + std::to_string(n), s_dom);
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check (paper): xaos(SAX) beats the baseline overall "
              "(~25%% in the paper); baseline stddev is much larger than\n"
              "xaos stddev because bad expressions make it re-traverse "
              "subtrees.\n");
  return 0;
}
