// Ablation: cost of backward axes (the paper's headline capability).
//
// The workload is a synthetic deep document — k independent "towers", each
// a nested chain of <sec> elements of depth d (element count held fixed
// while d varies), with optional <meta> marker children and <p> leaves at
// the bottom. Two equivalent phrasings of the same query are measured:
//
//   forward:   //sec[meta][descendant::p]
//   backward:  //p/ancestor::sec[meta]
//
// For χαoς both phrasings compile to x-dags with only forward constraints
// (Section 3.2) and cost about the same, flat in d. The navigational
// baseline evaluates the forward phrasing with one descendant walk *per
// sec context* — overlapping subtrees, Θ(n·d) — so its cost explodes as
// the document gets deeper, and the gap between its best and worst
// phrasing widens: exactly the unpredictability the paper's introduction
// attributes to Xalan.

#include <cstdio>
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

namespace {

// Builds k towers of depth d with meta markers and bottom p leaves.
std::string BuildTowers(int towers, int depth, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::string out;
  xaos::xml::XmlWriter writer(&out, 0);
  writer.StartElement("doc");
  for (int t = 0; t < towers; ++t) {
    for (int level = 0; level < depth; ++level) {
      writer.StartElement("sec");
      if (rng() % 2 == 0) {
        writer.StartElement("meta");
        writer.EndElement();
      }
    }
    int leaves = 1 + static_cast<int>(rng() % 3);
    for (int leaf = 0; leaf < leaves; ++leaf) {
      writer.StartElement("p");
      writer.EndElement();
    }
    for (int level = 0; level < depth; ++level) writer.EndElement();
  }
  writer.EndElement();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  int total_elements = flags.GetInt("elements", 120000);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("ablation_axes");
  reporter.SetParam("elements", total_elements);

  const char* kForward = "//sec[meta][descendant::p]";
  const char* kBackward = "//p/ancestor::sec[meta]";

  std::printf("Ablation: backward vs forward phrasing on deep documents "
              "(~%d elements, depth varies)\n", total_elements);
  std::printf("queries: forward %s == backward %s\n\n", kForward, kBackward);
  std::printf("%-6s | %-11s %-11s %-7s | %-12s %-12s %-7s | %-12s\n", "depth",
              "xaos fwd(s)", "xaos bwd(s)", "ratio", "base fwd(s)",
              "base bwd(s)", "ratio", "base visits");
  bench::Rule(9);

  for (int depth : {8, 32, 128, 512}) {
    // ~2.7 elements per tower level (sec + ~0.5 meta + leaves).
    int towers = total_elements / (depth * 2 + 4);
    std::string document = BuildTowers(towers, depth, 99);

    auto run_xaos = [&](const char* expression) {
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) std::abort();
      core::StreamingEvaluator evaluator(*query);
      // Best of three to suppress cold-cache noise.
      double seconds = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        seconds = std::min(seconds, bench::TimeSeconds([&] {
          if (!xml::ParseString(document, &evaluator).ok()) std::abort();
        }));
      }
      return std::make_pair(seconds, evaluator.Result().items.size());
    };

    StatusOr<dom::Document> doc = dom::ParseToDocument(document);
    if (!doc.ok()) return 1;
    uint64_t visits = 0;
    auto run_baseline = [&](const char* expression) {
      baseline::NavigationalEngine nav(&*doc);
      StatusOr<std::vector<baseline::NodeRef>> refs =
          std::vector<baseline::NodeRef>{};
      double seconds =
          bench::TimeSeconds([&] { refs = nav.Evaluate(expression); });
      if (!refs.ok()) std::abort();
      visits += nav.node_visits();
      return std::make_pair(seconds, refs->size());
    };

    auto [xf, nxf] = run_xaos(kForward);
    auto [xb, nxb] = run_xaos(kBackward);
    auto [bf, nbf] = run_baseline(kForward);
    auto [bb, nbb] = run_baseline(kBackward);
    if (nxf != nxb || nxf != nbf || nbf != nbb) {
      std::printf("RESULT MISMATCH (%zu/%zu/%zu/%zu)\n", nxf, nxb, nbf, nbb);
      return 1;
    }
    std::printf("%-6d | %-11.4f %-11.4f %-7.2f | %-12.4f %-12.4f %-7.2f | "
                "%-12llu\n",
                depth, xf, xb, xb / xf, bf, bb, bf / bb,
                static_cast<unsigned long long>(visits));

    reporter.AddResult("xaos_forward/depth=" + std::to_string(depth),
                       bench::Summarize({xf}));
    reporter.AddResult("xaos_backward/depth=" + std::to_string(depth),
                       bench::Summarize({xb}));
    reporter.AddResult("baseline_forward/depth=" + std::to_string(depth),
                       bench::Summarize({bf}));
    reporter.AddResult("baseline_backward/depth=" + std::to_string(depth),
                       bench::Summarize({bb}));
    reporter.AddResultMetric("node_visits", static_cast<double>(visits));
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: xaos ratios stay near 1 and its time is flat "
              "in depth (each event processed once, Section 6); the\n"
              "baseline's forward/backward ratio grows with depth because "
              "per-context descendant walks overlap (the O(D^n)\n"
              "re-traversal behaviour of Section 1).\n");
  return 0;
}
