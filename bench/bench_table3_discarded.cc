// Table 3 reproduction: number and fraction of elements discarded by the
// χαoς relevance filter on XMark documents, per scale factor.
//
// The paper reports that under //listitem/ancestor::category//name fewer
// than 0.2% of elements are retained at every scale (≥ 99.8% discarded).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  double max_scale = flags.GetDouble("max-scale", 0.32);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("table3_discarded");
  reporter.SetParam("max-scale", max_scale);
  reporter.SetParam("query", gen::kXMarkPaperQuery);

  std::vector<double> scales;
  for (double s = 0.01; s <= max_scale * 1.0001; s *= 2) scales.push_back(s);

  std::printf("Table 3: elements discarded by the relevance filter\n");
  std::printf("query: %s\n\n", gen::kXMarkPaperQuery);
  std::printf("%-8s %-10s %-12s %-12s %-12s %-10s\n", "scale", "size(MB)",
              "elements", "discarded", "kept", "%discard");
  bench::Rule(7);

  for (double scale : scales) {
    gen::XMarkOptions options;
    options.scale = scale;
    std::string document = gen::GenerateXMark(options);

    StatusOr<core::Query> query = core::Query::Compile(gen::kXMarkPaperQuery);
    if (!query.ok()) return 1;
    core::StreamingEvaluator evaluator(*query);
    if (!xml::ParseString(document, &evaluator).ok()) return 1;

    core::EngineStats stats = evaluator.AggregateStats();
    std::printf("%-8.3f %-10.2f %-12llu %-12llu %-12llu %-10.3f\n", scale,
                static_cast<double>(document.size()) / (1 << 20),
                static_cast<unsigned long long>(stats.elements_total),
                static_cast<unsigned long long>(stats.elements_discarded),
                static_cast<unsigned long long>(stats.elements_total -
                                                stats.elements_discarded),
                100.0 * stats.DiscardedFraction());

    char label[32];
    std::snprintf(label, sizeof(label), "scale=%.3f", scale);
    reporter.AddResult(label, bench::Series{},
                       static_cast<double>(document.size()) / (1 << 20));
    bench::AddEngineStats(&reporter, stats);
    reporter.AddResultMetric("discarded_fraction", stats.DiscardedFraction());
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check (paper): >= 99.8%% of elements discarded at "
              "every scale; storage is proportional to the relevant\n"
              "fraction only.\n");
  return 0;
}
