// Microbenchmarks for the streaming XML parser substrate (supporting
// infrastructure; no paper counterpart): throughput in MB/s, chunked
// feeding overhead, DOM construction cost.

#include <benchmark/benchmark.h>

#include <string>

#include "dom/dom_builder.h"
#include "gen/xmark_generator.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xml/skip_scanner.h"

namespace {

const std::string& Document() {
  static const std::string* doc = [] {
    xaos::gen::XMarkOptions options;
    options.scale = 0.02;
    return new std::string(xaos::gen::GenerateXMark(options));
  }();
  return *doc;
}

// Sink that forces event materialization without storing anything.
class CountingHandler : public xaos::xml::ContentHandler {
 public:
  void StartElement(const xaos::xml::QName& name,
                    xaos::xml::AttributeSpan attrs) override {
    count_ += name.text.size() + attrs.size();
  }
  void Characters(std::string_view text) override { count_ += text.size(); }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

void BM_ParseOneShot(benchmark::State& state) {
  const std::string& doc = Document();
  for (auto _ : state) {
    CountingHandler handler;
    xaos::Status status = xaos::xml::ParseString(doc, &handler);
    if (!status.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(handler.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseOneShot);

void BM_ParseChunked(benchmark::State& state) {
  const std::string& doc = Document();
  size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CountingHandler handler;
    xaos::xml::SaxParser parser(&handler);
    for (size_t i = 0; i < doc.size(); i += chunk) {
      if (!parser.Feed(std::string_view(doc).substr(i, chunk)).ok()) {
        state.SkipWithError("feed failed");
        break;
      }
    }
    if (!parser.Finish().ok()) state.SkipWithError("finish failed");
    benchmark::DoNotOptimize(handler.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseChunked)->Arg(4096)->Arg(65536);

// Raw skip-scan throughput ceiling: every subtree below the root is
// declared irrelevant, so the whole document body runs through the
// SkipScanner's memchr race instead of the full tokenizer. The gap to
// BM_ParseOneShot is the per-byte work projection removes.
void BM_ParseSkipAll(benchmark::State& state) {
  const std::string& doc = Document();
  class SkipBelowRoot : public xaos::xml::ProjectionFilter {
   public:
    bool ShouldSkipSubtree(std::string_view, size_t open_depth) override {
      return open_depth > 0;
    }
  };
  SkipBelowRoot filter;
  for (auto _ : state) {
    CountingHandler handler;
    xaos::xml::ParserOptions options;
    options.projection_filter = &filter;
    xaos::Status status = xaos::xml::ParseString(doc, &handler, options);
    if (!status.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(handler.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseSkipAll);

void BM_BuildDom(benchmark::State& state) {
  const std::string& doc = Document();
  for (auto _ : state) {
    xaos::StatusOr<xaos::dom::Document> built =
        xaos::dom::ParseToDocument(doc);
    if (!built.ok()) state.SkipWithError("build failed");
    benchmark::DoNotOptimize(built->node_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_BuildDom);

}  // namespace

BENCHMARK_MAIN();
