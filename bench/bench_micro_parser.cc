// Microbenchmarks for the streaming XML parser substrate (supporting
// infrastructure; no paper counterpart): throughput in MB/s, chunked
// feeding overhead, DOM construction cost.
//
// `--json-out=DIR` (handled before google-benchmark sees the argv) writes a
// BENCH_micro_parser.json in the shared BenchReporter schema, so the
// regression gate can compare these rows like the table benches'.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dom/dom_builder.h"
#include "gen/xmark_generator.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xml/skip_scanner.h"

namespace {

const std::string& Document() {
  static const std::string* doc = [] {
    xaos::gen::XMarkOptions options;
    options.scale = 0.02;
    return new std::string(xaos::gen::GenerateXMark(options));
  }();
  return *doc;
}

// Sink that forces event materialization without storing anything.
class CountingHandler : public xaos::xml::ContentHandler {
 public:
  void StartElement(const xaos::xml::QName& name,
                    xaos::xml::AttributeSpan attrs) override {
    count_ += name.text.size() + attrs.size();
  }
  void Characters(std::string_view text) override { count_ += text.size(); }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

void BM_ParseOneShot(benchmark::State& state) {
  const std::string& doc = Document();
  for (auto _ : state) {
    CountingHandler handler;
    xaos::Status status = xaos::xml::ParseString(doc, &handler);
    if (!status.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(handler.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseOneShot);

void BM_ParseChunked(benchmark::State& state) {
  const std::string& doc = Document();
  size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CountingHandler handler;
    xaos::xml::SaxParser parser(&handler);
    for (size_t i = 0; i < doc.size(); i += chunk) {
      if (!parser.Feed(std::string_view(doc).substr(i, chunk)).ok()) {
        state.SkipWithError("feed failed");
        break;
      }
    }
    if (!parser.Finish().ok()) state.SkipWithError("finish failed");
    benchmark::DoNotOptimize(handler.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseChunked)->Arg(4096)->Arg(65536);

// Raw skip-scan throughput ceiling: every subtree below the root is
// declared irrelevant, so the whole document body runs through the
// SkipScanner's memchr race instead of the full tokenizer. The gap to
// BM_ParseOneShot is the per-byte work projection removes.
void BM_ParseSkipAll(benchmark::State& state) {
  const std::string& doc = Document();
  class SkipBelowRoot : public xaos::xml::ProjectionFilter {
   public:
    bool ShouldSkipSubtree(std::string_view, size_t open_depth) override {
      return open_depth > 0;
    }
  };
  SkipBelowRoot filter;
  for (auto _ : state) {
    CountingHandler handler;
    xaos::xml::ParserOptions options;
    options.projection_filter = &filter;
    xaos::Status status = xaos::xml::ParseString(doc, &handler, options);
    if (!status.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(handler.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParseSkipAll);

void BM_BuildDom(benchmark::State& state) {
  const std::string& doc = Document();
  for (auto _ : state) {
    xaos::StatusOr<xaos::dom::Document> built =
        xaos::dom::ParseToDocument(doc);
    if (!built.ok()) state.SkipWithError("build failed");
    benchmark::DoNotOptimize(built->node_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_BuildDom);

// Console output plus a captured row per benchmark for the JSON report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double seconds_per_iteration = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      Row row;
      row.name = run.benchmark_name();
      row.seconds_per_iteration =
          run.real_accumulated_time / static_cast<double>(run.iterations);
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark's flag parser rejects them.
  std::string json_out;
  std::vector<char*> remaining;
  remaining.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--scanner=", 10) == 0) {
      xaos::StatusOr<xaos::xml::ScannerBackend> backend =
          xaos::xml::ResolveScannerBackend(argv[i] + 10);
      if (!backend.ok()) {
        std::fprintf(stderr, "--scanner: %s\n",
                     std::string(backend.status().message()).c_str());
        return 2;
      }
      xaos::xml::SetDefaultScannerBackend(*backend);
    } else {
      remaining.push_back(argv[i]);
    }
  }
  int remaining_argc = static_cast<int>(remaining.size());
  benchmark::Initialize(&remaining_argc, remaining.data());
  if (benchmark::ReportUnrecognizedArguments(remaining_argc,
                                             remaining.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_out.empty()) {
    // Every benchmark above processes the same document once per iteration,
    // so megabytes/iteration is uniform and throughput_mb_per_s derives
    // from the per-iteration time.
    const double megabytes = static_cast<double>(Document().size()) / (1 << 20);
    xaos::bench::BenchReporter out("micro_parser");
    out.SetParam("scale", 0.02);
    out.SetParam("document_mb", megabytes);
    for (const CapturingReporter::Row& row : reporter.rows) {
      xaos::bench::Series series;
      series.mean = row.seconds_per_iteration;
      series.min = row.seconds_per_iteration;
      series.max = row.seconds_per_iteration;
      out.AddResult(row.name, series, megabytes);
    }
    if (!out.WriteJson(json_out)) return 1;
  }
  return 0;
}
