// Document projection payoff: the same XMark document matched with the
// parser's skip-scan projection off vs on, across subscription pools of
// varying selectivity. Selective pools (rooted paths touching a few
// percent of the document) should parse several times faster because the
// scanner races over irrelevant subtrees; the keep-all pool (unanchored
// '//' queries) measures the worst-case overhead of the projection gate
// when nothing can be skipped.
//
// Every projected run is verdict- AND item-checked against the
// unprojected baseline — projection must be invisible to results, so any
// divergence is a correctness bug and fails the run with exit 1.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/compare.h"
#include "bench_util.h"
#include "xaos.h"

namespace {

using namespace xaos;

// Rooted paths confined to the two smallest XMark sections (catgraph and
// categories together hold well under 1% of the document): the union spec
// skips regions, people and both auction lists outright, so nearly every
// byte runs through the raw skip scanner. Attribute and text() variants
// exercise the needs_attributes/needs_text flags of the kept levels.
const char* const kSelectiveTemplates[] = {
    "/site/catgraph/edge",
    "/site/catgraph/edge/@from",
    "/site/categories/category/name",
    "/site/categories/category/name/text()",
    "/site/categories/category/description",
    "/site/categories/category",
};

// Rooted paths into the mid-size sections: people and closed_auctions make
// up roughly 30% of the document's elements, and every person /
// closed_auction is a live match candidate, so matching work — which
// projection cannot remove — bounds the achievable speedup here.
const char* const kModerateTemplates[] = {
    "/site/catgraph/edge",
    "/site/categories/category/name",
    "/site/people/person/address/city",
    "/site/people/person/emailaddress",
    "/site/closed_auctions/closed_auction/price",
    "/site/closed_auctions/closed_auction/date",
};

// Unanchored queries: each alone degrades the projection spec to
// keep-all. The evaluator then hands out no filter at all
// (projection_filter() returns nullptr), so this row checks the
// worst case costs nothing beyond an unprojected parse.
const char* const kKeepAllTemplates[] = {
    "//person/name",
    "//open_auction/bidder/personref",
    "//category/description",
    "//closed_auction/seller",
    "//listitem/text",
    "//catgraph/edge",
};

// Selective pools model a pub-sub router: a fixed handful of live
// subscriptions (the templates) plus a long tail of subscriptions this
// document is irrelevant to. The dead tail stays rooted, so each padding
// query only adds one never-occurring level-1 name to the union spec
// instead of degrading it. Keep-all pools interleave live and dead the
// way bench_multi_query does — their spec is keep-all either way.
std::vector<std::string> MakeExpressions(const char* const* templates,
                                         int num_templates, int count,
                                         bool rooted_padding) {
  std::vector<std::string> expressions;
  expressions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (rooted_padding) {
      if (i < num_templates) {
        expressions.push_back(templates[i]);
      } else {
        expressions.push_back("/site/routing_rule_" + std::to_string(i) +
                              "/target");
      }
    } else if (i % 2 == 0) {
      expressions.push_back(templates[(i / 2) % num_templates]);
    } else {
      expressions.push_back("//inbox_rule_" + std::to_string(i) + "/name");
    }
  }
  return expressions;
}

struct PoolRun {
  bench::Series series;
  uint64_t matched = 0;
};

// Per-query verdicts and canonical result items after one document.
struct Snapshot {
  std::vector<bool> matched;
  std::vector<std::vector<baseline::CanonicalItem>> items;
};

Snapshot TakeSnapshot(const core::MultiQueryEvaluator& evaluator,
                      size_t query_count) {
  Snapshot snapshot;
  for (size_t q = 0; q < query_count; ++q) {
    snapshot.matched.push_back(evaluator.Matched(q));
    snapshot.items.push_back(baseline::CanonicalFromResult(evaluator.Result(q)));
  }
  return snapshot;
}

// Times `repetitions` unprojected and projected parses of `doc` into ONE
// evaluator (per-document reset makes it reusable), interleaving the two
// sides so clock-frequency or cache drift hits both equally and neither
// side is biased by allocation order. The projected side installs the
// evaluator's own filter (nullptr when the union is keep-all, which makes
// that side an ordinary parse — exactly what the engine ships).
void RunPool(const std::string& doc, int repetitions,
             core::MultiQueryEvaluator* evaluator, PoolRun* off,
             PoolRun* on) {
  xml::ParserOptions off_options;
  xml::ParserOptions on_options;
  on_options.projection_filter = evaluator->projection_filter();
  // One untimed warmup each: the evaluator touches its arenas lazily.
  if (!xml::ParseString(doc, evaluator, off_options).ok()) std::abort();
  if (!xml::ParseString(doc, evaluator, on_options).ok()) std::abort();
  std::vector<double> off_times;
  std::vector<double> on_times;
  for (int rep = 0; rep < repetitions; ++rep) {
    off_times.push_back(bench::TimeSeconds([&] {
      if (!xml::ParseString(doc, evaluator, off_options).ok()) std::abort();
    }));
    on_times.push_back(bench::TimeSeconds([&] {
      if (!xml::ParseString(doc, evaluator, on_options).ok()) std::abort();
    }));
  }
  off->series = bench::Summarize(off_times);
  on->series = bench::Summarize(on_times);
}

// Compares per-query verdicts and canonical item sets between an
// unprojected and a projected parse of the same document.
bool VerifyInvisible(const std::vector<std::string>& expressions,
                     const char* pool, const Snapshot& off,
                     const Snapshot& on) {
  for (size_t q = 0; q < expressions.size(); ++q) {
    if (off.matched[q] != on.matched[q]) {
      std::fprintf(stderr,
                   "VERDICT MISMATCH pool=%s query %zu (%s): off=%d on=%d\n",
                   pool, q, expressions[q].c_str(), off.matched[q] ? 1 : 0,
                   on.matched[q] ? 1 : 0);
      return false;
    }
    if (!(off.items[q] == on.items[q])) {
      std::fprintf(stderr, "ITEM MISMATCH pool=%s query %zu (%s)\n", pool, q,
                   expressions[q].c_str());
      return false;
    }
  }
  return true;
}

struct SkipCounters {
  double subtrees = 0;
  double bytes = 0;
};

// One extra untimed projected parse with observability enabled, reading
// the skip counters off the default registry. Kept out of the timed loop
// so metric bookkeeping never pollutes the measured numbers.
SkipCounters MeasureSkips(const std::string& doc,
                          core::MultiQueryEvaluator* evaluator) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* subtrees =
      registry.GetCounter("xaos_projection_subtrees_skipped_total");
  obs::Counter* bytes =
      registry.GetCounter("xaos_projection_bytes_skipped_total");
  uint64_t subtrees_before = subtrees->Value();
  uint64_t bytes_before = bytes->Value();
  obs::SetEnabled(true);
  xml::ParserOptions options;
  options.projection_filter = evaluator->projection_filter();
  if (!xml::ParseString(doc, evaluator, options).ok()) std::abort();
  obs::SetEnabled(false);
  SkipCounters counters;
  counters.subtrees =
      static_cast<double>(subtrees->Value() - subtrees_before);
  counters.bytes = static_cast<double>(bytes->Value() - bytes_before);
  return counters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.02);
  int repetitions = flags.GetInt("repetitions", 3);
  int max_subs = flags.GetInt("max-subs", 1000);
  std::string json_out = flags.GetString("json-out", "");
  std::string scanner = flags.GetString("scanner", "");
  flags.FailOnUnknown();
  if (!scanner.empty()) {
    StatusOr<xml::ScannerBackend> backend =
        xml::ResolveScannerBackend(scanner);
    if (!backend.ok()) {
      std::fprintf(stderr, "--scanner: %s\n",
                   std::string(backend.status().message()).c_str());
      return 2;
    }
    xml::SetDefaultScannerBackend(*backend);
  }

  bench::BenchReporter reporter("projection");
  reporter.SetParam("scale", scale);
  reporter.SetParam("repetitions", repetitions);
  reporter.SetParam("max-subs", max_subs);

  gen::XMarkOptions doc_options;
  doc_options.scale = scale;
  const std::string doc = gen::GenerateXMark(doc_options);
  const double megabytes = static_cast<double>(doc.size()) / (1 << 20);
  reporter.SetParam("document_bytes", static_cast<double>(doc.size()));

  std::printf("Document projection: XMark scale %.3f (%.1f MB), "
              "%d repetitions per row\n\n",
              scale, megabytes, repetitions);
  std::printf("%-26s %-10s %-10s %-10s %-10s %-12s\n", "configuration",
              "time(s)", "MB/s", "matched", "speedup", "skipped");
  bench::Rule(6);

  struct PoolSpec {
    const char* name;
    const char* const* templates;
    int num_templates;
    bool rooted_padding;
    int subs;
  };
  std::vector<PoolSpec> pools;
  constexpr int kNumSelective = static_cast<int>(
      sizeof(kSelectiveTemplates) / sizeof(kSelectiveTemplates[0]));
  constexpr int kNumModerate = static_cast<int>(
      sizeof(kModerateTemplates) / sizeof(kModerateTemplates[0]));
  constexpr int kNumKeepAll = static_cast<int>(sizeof(kKeepAllTemplates) /
                                               sizeof(kKeepAllTemplates[0]));
  for (int subs : {1, 100, 1000}) {
    if (subs > max_subs) continue;
    pools.push_back(
        {"selective", kSelectiveTemplates, kNumSelective, true, subs});
  }
  pools.push_back({"moderate", kModerateTemplates, kNumModerate, true,
                   std::min(100, max_subs)});
  pools.push_back({"keep-all", kKeepAllTemplates, kNumKeepAll, false,
                   std::min(100, max_subs)});

  for (const PoolSpec& pool : pools) {
    std::vector<std::string> expressions = MakeExpressions(
        pool.templates, pool.num_templates, pool.subs, pool.rooted_padding);
    std::vector<core::Query> queries;
    for (const std::string& expression : expressions) {
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(*query));
    }

    // The evaluator is built before any timing (and with observability
    // disabled) so engine construction and sampler arming stay off the
    // clock; the reps then reuse it, resetting per document.
    core::MultiQueryEvaluator evaluator;
    for (const core::Query& query : queries) evaluator.AddQuery(query);

    PoolRun off;
    PoolRun on;
    RunPool(doc, repetitions, &evaluator, &off, &on);
    // Untimed verification parses: one per side, snapshotting verdicts and
    // canonical items so projection's invisibility is checked exactly.
    xml::ParserOptions verify_options;
    if (!xml::ParseString(doc, &evaluator, verify_options).ok()) return 1;
    Snapshot off_snapshot = TakeSnapshot(evaluator, queries.size());
    verify_options.projection_filter = evaluator.projection_filter();
    if (!xml::ParseString(doc, &evaluator, verify_options).ok()) return 1;
    Snapshot on_snapshot = TakeSnapshot(evaluator, queries.size());
    if (!VerifyInvisible(expressions, pool.name, off_snapshot, on_snapshot)) {
      return 1;
    }
    for (bool m : off_snapshot.matched) off.matched += m ? 1 : 0;
    for (bool m : on_snapshot.matched) on.matched += m ? 1 : 0;
    SkipCounters skips = MeasureSkips(doc, &evaluator);
    double speedup = on.series.mean > 0 ? off.series.mean / on.series.mean
                                        : 0.0;
    double skipped_fraction =
        doc.empty() ? 0.0 : skips.bytes / static_cast<double>(doc.size());

    char label[64];
    std::snprintf(label, sizeof(label), "off/%s/subs=%d", pool.name,
                  pool.subs);
    std::printf("%-26s %-10.4f %-10.2f %-10llu %-10s %-12s\n", label,
                off.series.mean, megabytes / off.series.mean,
                static_cast<unsigned long long>(off.matched), "-", "-");
    reporter.AddResult(label, off.series, megabytes);
    reporter.AddResultMetric("subscriptions", pool.subs);
    reporter.AddResultMetric("projection", 0);
    reporter.AddResultMetric("matched", static_cast<double>(off.matched));

    std::snprintf(label, sizeof(label), "on/%s/subs=%d", pool.name,
                  pool.subs);
    std::printf("%-26s %-10.4f %-10.2f %-10llu %-10.2f %-12.1f%%\n", label,
                on.series.mean, megabytes / on.series.mean,
                static_cast<unsigned long long>(on.matched), speedup,
                skipped_fraction * 100.0);
    reporter.AddResult(label, on.series, megabytes);
    reporter.AddResultMetric("subscriptions", pool.subs);
    reporter.AddResultMetric("projection", 1);
    reporter.AddResultMetric("matched", static_cast<double>(on.matched));
    reporter.AddResultMetric("speedup_vs_off", speedup);
    reporter.AddResultMetric("subtrees_skipped", skips.subtrees);
    reporter.AddResultMetric("bytes_skipped", skips.bytes);
    reporter.AddResultMetric("bytes_skipped_fraction", skipped_fraction);
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: identical verdicts and items in every row; "
              "selective pools skip most of the document and speed up "
              "severalfold, the keep-all pool installs no filter and tracks "
              "the unprojected baseline.\n");
  return 0;
}
