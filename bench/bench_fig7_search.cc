// Figure 7 reproduction: searching time (excluding parsing and DOM
// construction) versus document size — χαoς(DOM) vs the navigational
// baseline, on the Section 6.2 random workload.
//
// The paper: with parsing factored out, χαoς is more than 2× faster than
// Xalan, whose variance is high and bimodal — "good" expressions are close
// to χαoς, "bad" ones (descendant-heavy with predicates) are ~4× worse.
// The min/max columns expose the bimodality.

#include <cstdio>
#include <vector>

#include "bench_random_workload.h"
#include "bench_util.h"
#include "xaos.h"

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  size_t max_elements =
      static_cast<size_t>(flags.GetInt("max-elements", 160000));
  int runs = flags.GetInt("runs", 10);
  uint64_t visit_budget =
      static_cast<uint64_t>(flags.GetDouble("visit-budget", 2e9));
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("fig7_search");
  reporter.SetParam("max-elements", static_cast<double>(max_elements));
  reporter.SetParam("runs", runs);

  std::printf("Figure 7: searching time (s, parse excluded) vs #elements — "
              "%d random queries per size\n\n", runs);
  std::printf("%-10s | %-10s %-9s | %-10s %-9s %-9s %-9s | %-7s\n",
              "elements", "xaos(DOM)", "stddev", "baseline", "stddev", "min",
              "max", "ratio");
  bench::Rule(8);

  for (size_t n : bench::SizesUpTo(max_elements)) {
    std::vector<double> xaos_search, nav_search;
    for (int run = 0; run < runs; ++run) {
      gen::RandomDocOptions doc_options;
      doc_options.target_elements = n;
      StatusOr<gen::RandomWorkload> workload = gen::GenerateWorkload(
          {}, doc_options, /*seed=*/1000 + static_cast<uint64_t>(run));
      if (!workload.ok()) return 1;
      bench::RunTimes times = bench::RunWorkload(*workload, visit_budget);
      xaos_search.push_back(times.xaos_dom_search);
      if (times.baseline_ok) nav_search.push_back(times.baseline_search);
    }
    bench::Series sx = bench::Summarize(xaos_search);
    bench::Series sn = bench::Summarize(nav_search);
    std::printf("%-10zu | %-10.4f %-9.4f | %-10.4f %-9.4f %-9.4f %-9.4f | "
                "%-7.2f%s\n",
                n, sx.mean, sx.stddev, sn.mean, sn.stddev, sn.min, sn.max,
                sx.mean > 0 ? sn.mean / sx.mean : 0.0,
                nav_search.size() < static_cast<size_t>(runs)
                    ? "  (baseline censored)"
                    : "");

    reporter.AddResult("xaos_dom/elements=" + std::to_string(n), sx);
    reporter.AddResult("baseline/elements=" + std::to_string(n), sn);
    reporter.AddResultMetric(
        "censored_runs",
        static_cast<double>(runs) - static_cast<double>(nav_search.size()));
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check (paper): excluding parsing, xaos is >2x faster "
              "on average; the baseline's min is near xaos (good\n"
              "expressions) while its max is several times worse (bad "
              "expressions) — the bimodal variance of Section 6.2.2.\n");
  return 0;
}
