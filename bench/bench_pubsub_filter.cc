// Publish/subscribe filtering throughput — the XFilter/YFilter workload of
// the paper's introduction, which motivated streaming XPath in the first
// place, here with subscriptions that use backward axes (inexpressible in
// forward-only filters).
//
// A pool of random subscriptions is compiled once; a stream of documents
// is pushed through all of them in a single parse per document. Reported:
// documents/second and MB/s, with and without early match termination
// (Section 5.1 eager emission), and the navigational baseline for
// reference (parse + DOM + per-subscription evaluation).

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xaos.h"

int main(int argc, char** argv) {
  using namespace xaos;
  bench::Flags flags(argc, argv);
  int num_subscriptions = flags.GetInt("subscriptions", 50);
  int num_documents = flags.GetInt("documents", 40);
  int doc_elements = flags.GetInt("doc-elements", 4000);
  bool include_baseline = flags.GetBool("baseline", true);
  std::string json_out = flags.GetString("json-out", "");
  flags.FailOnUnknown();

  bench::BenchReporter reporter("pubsub_filter");
  reporter.SetParam("subscriptions", num_subscriptions);
  reporter.SetParam("documents", num_documents);
  reporter.SetParam("doc-elements", doc_elements);

  // Subscriptions: random 4-test expressions over the shared alphabet.
  std::mt19937_64 rng(7);
  gen::RandomQueryOptions query_options;
  query_options.node_tests = 4;
  std::vector<std::string> expressions;
  for (int i = 0; i < num_subscriptions; ++i) {
    expressions.push_back(
        xpath::ToString(gen::GenerateRandomPath(query_options, rng)));
  }

  // Documents: random, from unrelated random queries (so match rates vary).
  std::vector<std::string> documents;
  size_t total_bytes = 0;
  for (int i = 0; i < num_documents; ++i) {
    gen::RandomQueryOptions shape;
    shape.node_tests = 4;
    xpath::LocationPath path = gen::GenerateRandomPath(shape, rng);
    gen::RandomDocOptions doc_options;
    doc_options.target_elements = static_cast<size_t>(doc_elements);
    StatusOr<std::string> doc =
        gen::GenerateDocumentForPath(path, doc_options, rng);
    if (!doc.ok()) return 1;
    total_bytes += doc->size();
    documents.push_back(std::move(*doc));
  }

  auto run = [&](bool stop_early, uint64_t* matches) {
    core::EngineOptions options;
    options.stop_after_confirmed_match = stop_early;
    std::vector<std::unique_ptr<core::Query>> queries;
    std::vector<std::unique_ptr<core::StreamingEvaluator>> evaluators;
    for (const std::string& expression : expressions) {
      StatusOr<core::Query> query = core::Query::Compile(expression);
      if (!query.ok()) std::abort();
      queries.push_back(std::make_unique<core::Query>(std::move(*query)));
      evaluators.push_back(std::make_unique<core::StreamingEvaluator>(
          *queries.back(), options));
    }

    // Fan one parse out to all subscriptions.
    struct Fanout : xml::ContentHandler {
      std::vector<std::unique_ptr<core::StreamingEvaluator>>* subs;
      void StartDocument() override {
        for (auto& s : *subs) s->StartDocument();
      }
      void EndDocument() override {
        for (auto& s : *subs) s->EndDocument();
      }
      void StartElement(const xml::QName& name,
                        xml::AttributeSpan a) override {
        for (auto& s : *subs) s->StartElement(name, a);
      }
      void EndElement(std::string_view name) override {
        for (auto& s : *subs) s->EndElement(name);
      }
      void Characters(std::string_view text) override {
        for (auto& s : *subs) s->Characters(text);
      }
    } fanout;
    fanout.subs = &evaluators;

    *matches = 0;
    return bench::TimeSeconds([&] {
      for (const std::string& document : documents) {
        if (!xml::ParseString(document, &fanout).ok()) std::abort();
        for (auto& evaluator : evaluators) {
          if (evaluator->Result().matched) ++*matches;
        }
      }
    });
  };

  std::printf("Pub/sub filtering: %d subscriptions x %d documents "
              "(%.1f MB total, ~%d elements each)\n\n",
              num_subscriptions, num_documents,
              static_cast<double>(total_bytes) / (1 << 20), doc_elements);
  std::printf("%-26s %-10s %-10s %-12s %-12s\n", "configuration", "time(s)",
              "docs/s", "MB/s", "deliveries");
  bench::Rule(6);

  uint64_t matches_full = 0, matches_early = 0;
  double full = run(/*stop_early=*/false, &matches_full);
  double early = run(/*stop_early=*/true, &matches_early);
  if (matches_full != matches_early) {
    std::printf("DELIVERY MISMATCH: %llu vs %llu\n",
                static_cast<unsigned long long>(matches_full),
                static_cast<unsigned long long>(matches_early));
    return 1;
  }

  auto row = [&](const char* label, double seconds, uint64_t deliveries) {
    std::printf("%-26s %-10.3f %-10.1f %-12.2f %-12llu\n", label, seconds,
                num_documents / seconds,
                static_cast<double>(total_bytes) / (1 << 20) / seconds,
                static_cast<unsigned long long>(deliveries));
    reporter.AddResult(label, bench::Summarize({seconds}),
                       static_cast<double>(total_bytes) / (1 << 20));
    reporter.AddResultMetric("docs_per_s", num_documents / seconds);
    reporter.AddResultMetric("deliveries", static_cast<double>(deliveries));
  };
  row("xaos", full, matches_full);
  row("xaos + early termination", early, matches_early);

  if (include_baseline) {
    uint64_t deliveries = 0;
    double seconds = bench::TimeSeconds([&] {
      for (const std::string& document : documents) {
        StatusOr<dom::Document> doc = dom::ParseToDocument(document);
        if (!doc.ok()) std::abort();
        for (const std::string& expression : expressions) {
          baseline::NavigationalEngine nav(&*doc);
          StatusOr<std::vector<baseline::NodeRef>> refs =
              nav.Evaluate(expression);
          if (refs.ok() && !refs->empty()) ++deliveries;
        }
      }
    });
    row("navigational baseline", seconds, deliveries);
    if (deliveries != matches_full) {
      std::printf("DELIVERY MISMATCH vs baseline: %llu vs %llu\n",
                  static_cast<unsigned long long>(matches_full),
                  static_cast<unsigned long long>(deliveries));
      return 1;
    }
  }

  if (!json_out.empty() && !reporter.WriteJson(json_out)) return 1;

  std::printf("\nShape check: identical deliveries across all "
              "configurations; early match termination (Section 5.1)\n"
              "multiplies filtering throughput because most matching "
              "documents confirm long before their end.\n");
  return 0;
}
