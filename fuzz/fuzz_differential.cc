// libFuzzer entry point: "<xpath>\n<xml>" inputs checked χαoς-vs-oracle.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunDifferentialInput(data, size);
}
