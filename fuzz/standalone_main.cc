// File-replay driver substituted for libFuzzer when the toolchain has no
// -fsanitize=fuzzer (e.g. gcc): runs every argument (file or directory,
// recursively) through the target's LLVMFuzzerTestOneInput once. This is
// what the corpus regression step and local gcc builds execute; actual
// coverage-guided fuzzing needs the clang build (see fuzz/CMakeLists.txt).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    fs::path path(argv[i]);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const fs::directory_entry& entry :
           fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "standalone: skipping %s\n", argv[i]);
    }
  }

  int runs = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++runs;
  }
  std::fprintf(stderr, "standalone: replayed %d input(s)\n", runs);
  return 0;
}
