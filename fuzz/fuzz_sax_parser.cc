// libFuzzer entry point: hostile bytes into the streaming SAX parser.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunSaxParserInput(data, size);
}
