// libFuzzer entry point: hostile bytes into the XPath compiler.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunXPathInput(data, size);
}
