// Shared fuzz-target bodies, compiler-agnostic: each function is the body
// of one libFuzzer entry point (fuzz_*.cc wraps them in
// LLVMFuzzerTestOneInput), but lives in a plain library so the same logic
// also runs under gcc via the standalone replay driver and inside the
// regular test suite (tests/fuzz_corpus_test.cc replays fuzz/corpus/).
//
// Contract: return 0 always (libFuzzer ignores other values); report an
// invariant violation by trapping (__builtin_trap), which both libFuzzer
// and the sanitizers turn into a reproducible crash with the offending
// input.

#ifndef XAOS_FUZZ_TARGETS_H_
#define XAOS_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace xaos::fuzz {

// Feeds `data` to the SAX parser under tight ParserLimits, twice: one-shot
// and through an adversarial chunk schedule. Traps if the event streams or
// outcomes diverge, or if the handler observes an unbalanced stream.
int RunSaxParserInput(const uint8_t* data, size_t size);

// Treats `data` as an XPath expression: compile, and when that succeeds,
// evaluate over a small fixed document (exercises x-tree building and
// engine construction on hostile expressions).
int RunXPathInput(const uint8_t* data, size_t size);

// Differential target. Input layout: "<xpath>\n<xml document>". When both
// sides are valid, χαoς streaming results must equal the brute-force
// oracle on the DOM; any disagreement traps.
int RunDifferentialInput(const uint8_t* data, size_t size);

// Projection differential. Same input layout as RunDifferentialInput.
// Whenever the unprojected parse+evaluation succeeds, re-running with the
// query's projection filter installed — one-shot and through an adversarial
// chunk schedule — must succeed with the identical verdict and items.
// (Projection may accept documents the baseline rejects, never the
// converse; see xml/skip_scanner.h.)
int RunProjectionDifferentialInput(const uint8_t* data, size_t size);

// Structural-scanner differential. Treats `data` as an XML document and
// checks the tentpole invariant of xml/structural_scanner.h at two levels:
// every available classify kernel must produce the scalar kernel's exact
// BlockMasks for every 64-byte block of the input, and a full parse under
// every available backend — one-shot and through an adversarial chunk
// schedule — must yield the scalar backend's byte-identical event stream,
// outcome and error position.
int RunScannerDiffInput(const uint8_t* data, size_t size);

// Shared-index differential. Input layout:
// "<xpath>;<xpath>;...\n<xml document>" — a multi-query pool evaluated
// through the shared-prefix automaton backend and through the per-engine
// path (EngineOptions::enable_shared_index off). Any divergence in per-query
// verdicts, mid-stream confirmations or result items traps.
int RunSharedIndexDiffInput(const uint8_t* data, size_t size);

// Batched-dispatch differential. Input layout:
// "<batch byte><xpath>;<xpath>;...\n<xml document>" — the first byte picks
// the EventBatch size budget (1..64 events), the rest is a multi-query pool
// plus a document. The pool is evaluated once through BatchedDispatcher
// (pooled EventBatch replay, flat matcher stepping) and once per-event; any
// divergence in parse outcome, per-query verdicts, mid-stream confirmations
// or result items traps. A failed parse additionally drives the
// dispatcher's AbortDocument path, which must leave the pool consistent.
int RunBatchedDispatchDiffInput(const uint8_t* data, size_t size);

}  // namespace xaos::fuzz

#endif  // XAOS_FUZZ_TARGETS_H_
