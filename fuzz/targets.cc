#include "targets.h"

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/brute_force_matcher.h"
#include "baseline/compare.h"
#include "core/batched_dispatch.h"
#include "core/multi_engine.h"
#include "dom/dom_builder.h"
#include "query/xtree.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xml/structural_scanner.h"

namespace xaos::fuzz {
namespace {

// Tight enough that a hostile input can't make one iteration slow or
// memory-hungry, loose enough that real documents in the corpus pass.
xml::ParserOptions FuzzParserOptions() {
  xml::ParserOptions options;
  options.limits.max_depth = 256;
  options.limits.max_attribute_count = 64;
  options.limits.max_attribute_value_bytes = 64u << 10;
  options.limits.max_name_bytes = 4096;
  options.limits.max_token_bytes = 1u << 20;
  options.limits.max_entity_references = 1u << 16;
  options.limits.max_total_bytes = 8u << 20;
  return options;
}

// Traps on any stream-invariant violation; the fuzzer keeps the input.
class TrapHandler : public xml::ContentHandler {
 public:
  void StartDocument() override {
    if (started_) __builtin_trap();
    started_ = true;
  }
  void EndDocument() override {
    if (!started_ || depth_ != 0) __builtin_trap();
  }
  void StartElement(const xml::QName& name, xml::AttributeSpan) override {
    if (!started_ || name.text.empty()) __builtin_trap();
    ++depth_;
  }
  void EndElement(std::string_view) override {
    if (depth_ <= 0) __builtin_trap();
    --depth_;
  }
  void Characters(std::string_view text) override {
    if (depth_ <= 0 || text.empty()) __builtin_trap();
  }

 private:
  bool started_ = false;
  int depth_ = 0;
};

}  // namespace

int RunSaxParserInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::string_view doc(reinterpret_cast<const char*>(data), size);
  xml::ParserOptions options = FuzzParserOptions();

  TrapHandler invariants;
  xml::ParseString(doc, &invariants, options);

  // One-shot vs chunked must agree exactly: same ok-ness, same events.
  xml::EventRecorder one_shot;
  bool one_shot_ok = xml::ParseString(doc, &one_shot, options).ok();

  static constexpr size_t kSchedule[] = {1, 3, 7, 2, 16, 64, 5};
  xml::EventRecorder chunked;
  xml::SaxParser parser(&chunked, options);
  Status status;
  for (size_t step = size; !doc.empty() && status.ok(); ++step) {
    size_t n = kSchedule[step % (sizeof(kSchedule) / sizeof(kSchedule[0]))];
    if (n > doc.size()) n = doc.size();
    status = parser.Feed(doc.substr(0, n));
    doc.remove_prefix(n);
  }
  if (status.ok()) status = parser.Finish();
  if (status.ok() != one_shot_ok) __builtin_trap();
  if (status.ok() && !(chunked.events() == one_shot.events())) {
    __builtin_trap();
  }
  return 0;
}

int RunXPathInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;
  std::string expression(reinterpret_cast<const char*>(data), size);
  StatusOr<core::Query> query = core::Query::Compile(expression,
                                                     /*max_paths=*/8);
  if (!query.ok()) return 0;
  // A compiled expression must also build engines and survive a document.
  core::StreamingEvaluator evaluator(*query);
  xml::ParseString("<a x=\"1\"><b><c>text</c></b><b y=\"2\"/></a>",
                   &evaluator);
  (void)evaluator.Result();
  return 0;
}

int RunDifferentialInput(const uint8_t* data, size_t size) {
  if (size > (1u << 14)) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  size_t newline = input.find('\n');
  if (newline == std::string_view::npos) return 0;
  std::string expression(input.substr(0, newline));
  std::string document(input.substr(newline + 1));

  StatusOr<core::Query> query = core::Query::Compile(expression,
                                                     /*max_paths=*/4);
  if (!query.ok()) return 0;

  xml::ParserOptions options = FuzzParserOptions();
  StatusOr<dom::Document> dom = dom::ParseToDocument(document, options);
  if (!dom.ok()) return 0;

  core::StreamingEvaluator evaluator(*query);
  Status parse = xml::ParseString(document, &evaluator, options);
  // The same parser accepted the document a line above.
  if (!parse.ok()) __builtin_trap();
  if (!evaluator.status().ok()) return 0;

  std::set<baseline::CanonicalItem> expected;
  for (const query::XTree& tree : query->trees()) {
    baseline::BruteForceOutcome outcome =
        baseline::BruteForceMatch(*dom, tree, /*max_explored=*/200'000);
    if (!outcome.complete) return 0;  // too expensive to oracle; skip
    expected.insert(outcome.items.begin(), outcome.items.end());
  }

  std::vector<baseline::CanonicalItem> actual =
      baseline::CanonicalFromResult(evaluator.Result());
  std::vector<baseline::CanonicalItem> oracle(expected.begin(),
                                              expected.end());
  if (!(actual == oracle)) __builtin_trap();
  return 0;
}

int RunProjectionDifferentialInput(const uint8_t* data, size_t size) {
  if (size > (1u << 14)) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  size_t newline = input.find('\n');
  if (newline == std::string_view::npos) return 0;
  std::string expression(input.substr(0, newline));
  std::string document(input.substr(newline + 1));

  StatusOr<core::Query> query = core::Query::Compile(expression,
                                                     /*max_paths=*/4);
  if (!query.ok()) return 0;

  // Baseline: no projection. Only a successful baseline constrains the
  // projected runs (projection checks less well-formedness inside skips).
  xml::ParserOptions options = FuzzParserOptions();
  core::StreamingEvaluator baseline_eval(*query);
  if (!xml::ParseString(document, &baseline_eval, options).ok()) return 0;
  if (!baseline_eval.status().ok()) return 0;
  core::QueryResult baseline_result = baseline_eval.Result();
  std::vector<baseline::CanonicalItem> expected =
      baseline::CanonicalFromResult(baseline_result);

  // Projected, one-shot and chunked: must accept and agree exactly.
  for (int chunked = 0; chunked < 2; ++chunked) {
    core::StreamingEvaluator evaluator(*query);
    xml::ParserOptions projected = options;
    projected.projection_filter = evaluator.projection_filter();
    Status status;
    if (chunked == 0) {
      status = xml::ParseString(document, &evaluator, projected);
    } else {
      xml::SaxParser parser(&evaluator, projected);
      std::string_view rest(document);
      static constexpr size_t kSchedule[] = {1, 3, 7, 2, 16, 64, 5};
      for (size_t step = size; !rest.empty() && status.ok(); ++step) {
        size_t n =
            kSchedule[step % (sizeof(kSchedule) / sizeof(kSchedule[0]))];
        if (n > rest.size()) n = rest.size();
        status = parser.Feed(rest.substr(0, n));
        rest.remove_prefix(n);
      }
      if (status.ok()) status = parser.Finish();
    }
    if (!status.ok() || !evaluator.status().ok()) __builtin_trap();
    core::QueryResult result = evaluator.Result();
    if (result.matched != baseline_result.matched) __builtin_trap();
    if (!(baseline::CanonicalFromResult(result) == expected)) {
      __builtin_trap();
    }
  }
  return 0;
}

int RunScannerDiffInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::string_view doc(reinterpret_cast<const char*>(data), size);

  constexpr xml::ScannerBackend kBackends[] = {
      xml::ScannerBackend::kScalar, xml::ScannerBackend::kSwar,
      xml::ScannerBackend::kSse2, xml::ScannerBackend::kAvx2};

  // Level 1: raw kernels. Every available kernel must reproduce the scalar
  // kernel's masks bit-for-bit on every block, partial tail included
  // (staged zero-padded exactly as StructuralScanner stages it).
  xml::ClassifyBlockFn scalar =
      xml::ScannerKernelForTest(xml::ScannerBackend::kScalar);
  for (size_t off = 0; off < size; off += xml::kScannerBlockBytes) {
    char staged[xml::kScannerBlockBytes] = {};
    size_t len = size - off;
    if (len > xml::kScannerBlockBytes) len = xml::kScannerBlockBytes;
    for (size_t i = 0; i < len; ++i) staged[i] = doc[off + i];
    xml::BlockMasks want;
    scalar(staged, &want);
    for (xml::ScannerBackend backend : kBackends) {
      xml::ClassifyBlockFn kernel = xml::ScannerKernelForTest(backend);
      if (kernel == nullptr || kernel == scalar) continue;
      xml::BlockMasks got;
      kernel(staged, &got);
      if (got.lt != want.lt || got.gt != want.gt ||
          got.dquote != want.dquote || got.squote != want.squote ||
          got.amp != want.amp || got.rbracket != want.rbracket ||
          got.newline != want.newline || got.ws != want.ws ||
          got.ctl != want.ctl) {
        __builtin_trap();
      }
    }
  }

  // Level 2: full parses. Backends may only differ in how fast they
  // classify, so the event stream, the outcome and the error text (which
  // embeds the line/column position) must all match scalar's — one-shot
  // and under a chunk schedule that splits tags and quoted values.
  xml::ParserOptions options = FuzzParserOptions();
  static constexpr size_t kSchedule[] = {1, 63, 2, 64, 7, 129, 3};
  xml::EventRecorder want_one_shot;
  Status want_status;
  xml::EventRecorder want_chunked;
  Status want_chunked_status;
  bool have_oracle = false;
  for (xml::ScannerBackend backend : kBackends) {
    if (!xml::ScannerBackendAvailable(backend)) continue;
    options.scanner_backend = backend;

    xml::EventRecorder one_shot;
    Status status = xml::ParseString(doc, &one_shot, options);

    xml::EventRecorder chunked;
    xml::SaxParser parser(&chunked, options);
    std::string_view rest = doc;
    Status chunked_status;
    for (size_t step = size; !rest.empty() && chunked_status.ok(); ++step) {
      size_t n = kSchedule[step % (sizeof(kSchedule) / sizeof(kSchedule[0]))];
      if (n > rest.size()) n = rest.size();
      chunked_status = parser.Feed(rest.substr(0, n));
      rest.remove_prefix(n);
    }
    if (chunked_status.ok()) chunked_status = parser.Finish();

    if (!have_oracle) {
      // kScalar is first in kBackends and always available.
      want_one_shot = std::move(one_shot);
      want_status = status;
      want_chunked = std::move(chunked);
      want_chunked_status = chunked_status;
      have_oracle = true;
      continue;
    }
    if (status.code() != want_status.code() ||
        status.message() != want_status.message() ||
        !(one_shot.events() == want_one_shot.events())) {
      __builtin_trap();
    }
    if (chunked_status.code() != want_chunked_status.code() ||
        chunked_status.message() != want_chunked_status.message() ||
        !(chunked.events() == want_chunked.events())) {
      __builtin_trap();
    }
  }
  return 0;
}

int RunSharedIndexDiffInput(const uint8_t* data, size_t size) {
  if (size > (1u << 14)) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  size_t newline = input.find('\n');
  if (newline == std::string_view::npos) return 0;
  std::string_view query_list = input.substr(0, newline);
  std::string document(input.substr(newline + 1));

  std::vector<core::Query> queries;
  while (!query_list.empty() && queries.size() < 16) {
    size_t semi = query_list.find(';');
    std::string_view expression = query_list.substr(0, semi);
    query_list.remove_prefix(
        semi == std::string_view::npos ? query_list.size() : semi + 1);
    if (expression.empty()) continue;
    StatusOr<core::Query> query =
        core::Query::Compile(expression, /*max_paths=*/4);
    if (!query.ok()) continue;  // keep fuzzing the pool shape
    queries.push_back(std::move(*query));
  }
  if (queries.empty()) return 0;

  core::MultiQueryEvaluator shared;  // enable_shared_index defaults on
  core::EngineOptions oracle_options;
  oracle_options.enable_shared_index = false;
  core::MultiQueryEvaluator oracle(oracle_options);
  for (const core::Query& query : queries) {
    shared.AddQuery(query);
    oracle.AddQuery(query);
  }

  xml::ParserOptions options = FuzzParserOptions();
  Status shared_parse = xml::ParseString(document, &shared, options);
  Status oracle_parse = xml::ParseString(document, &oracle, options);
  if (shared_parse.ok() != oracle_parse.ok()) __builtin_trap();
  if (!shared_parse.ok()) return 0;
  if (shared.status().ok() != oracle.status().ok()) __builtin_trap();
  if (!shared.status().ok()) return 0;

  for (size_t q = 0; q < queries.size(); ++q) {
    if (shared.Matched(q) != oracle.Matched(q)) __builtin_trap();
    if (shared.MatchConfirmed(q) != oracle.MatchConfirmed(q)) {
      __builtin_trap();
    }
    if (!(baseline::CanonicalFromResult(shared.Result(q)) ==
          baseline::CanonicalFromResult(oracle.Result(q)))) {
      __builtin_trap();
    }
  }
  return 0;
}

int RunBatchedDispatchDiffInput(const uint8_t* data, size_t size) {
  if (size < 2 || size > (1u << 14)) return 0;
  size_t batch_events = 1 + (data[0] & 63);
  std::string_view input(reinterpret_cast<const char*>(data + 1), size - 1);
  size_t newline = input.find('\n');
  if (newline == std::string_view::npos) return 0;
  std::string_view query_list = input.substr(0, newline);
  std::string document(input.substr(newline + 1));

  std::vector<core::Query> queries;
  while (!query_list.empty() && queries.size() < 16) {
    size_t semi = query_list.find(';');
    std::string_view expression = query_list.substr(0, semi);
    query_list.remove_prefix(
        semi == std::string_view::npos ? query_list.size() : semi + 1);
    if (expression.empty()) continue;
    StatusOr<core::Query> query =
        core::Query::Compile(expression, /*max_paths=*/4);
    if (!query.ok()) continue;  // keep fuzzing the pool shape
    queries.push_back(std::move(*query));
  }
  if (queries.empty()) return 0;

  core::MultiQueryEvaluator batched;
  core::MultiQueryEvaluator oracle;
  for (const core::Query& query : queries) {
    batched.AddQuery(query);
    oracle.AddQuery(query);
  }
  core::BatchedDispatchOptions dispatch_options;
  dispatch_options.max_batch_events = batch_events;
  dispatch_options.max_batch_text_bytes = 256;
  core::BatchedDispatcher dispatcher(&batched, dispatch_options);

  xml::ParserOptions options = FuzzParserOptions();
  Status batched_parse = xml::ParseString(document, &dispatcher, options);
  Status oracle_parse = xml::ParseString(document, &oracle, options);
  if (batched_parse.ok() != oracle_parse.ok()) __builtin_trap();
  if (!batched_parse.ok()) {
    // Exercise the mid-stream abort path: buffered events must be
    // discarded and the batch pool must stay reusable (no double release).
    dispatcher.AbortDocument(batched_parse);
    return 0;
  }
  if (batched.status().ok() != oracle.status().ok()) __builtin_trap();
  if (!batched.status().ok()) return 0;

  for (size_t q = 0; q < queries.size(); ++q) {
    if (batched.Matched(q) != oracle.Matched(q)) __builtin_trap();
    if (batched.MatchConfirmed(q) != oracle.MatchConfirmed(q)) {
      __builtin_trap();
    }
    if (!(baseline::CanonicalFromResult(batched.Result(q)) ==
          baseline::CanonicalFromResult(oracle.Result(q)))) {
      __builtin_trap();
    }
  }
  return 0;
}

}  // namespace xaos::fuzz
