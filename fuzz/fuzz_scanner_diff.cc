// libFuzzer entry point: XML documents checked for byte-identical kernel
// masks and parse event streams across every structural-scanner backend.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunScannerDiffInput(data, size);
}
