// libFuzzer entry point: "<batch byte><xpath>;...\n<xml>" multi-query
// pools checked batched-dispatch replay vs per-event delivery for
// identical outcomes, verdicts, confirmations and items.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunBatchedDispatchDiffInput(data, size);
}
