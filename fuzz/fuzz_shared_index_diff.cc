// libFuzzer entry point: "<xpath>;<xpath>;...\n<xml>" multi-query pools
// checked shared-index backend vs per-engine backend for identical
// verdicts, confirmations and items.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunSharedIndexDiffInput(data, size);
}
