// libFuzzer entry point: "<xpath>\n<xml>" inputs checked projection-on
// vs projection-off for identical verdicts and items.

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return xaos::fuzz::RunProjectionDifferentialInput(data, size);
}
