#!/usr/bin/env python3
"""Validates BENCH_*.json files against the BenchReporter schema (v1).

Usage: check_bench_json.py FILE [FILE ...]

Checks that each file is valid JSON with the expected top-level shape:
benchmark name, schema_version 1, a params object, and a non-empty
results array whose entries carry the timing series fields and a metrics
object of numbers. Exits non-zero on the first violation.
"""

import json
import sys

REQUIRED_RESULT_FIELDS = ("label", "mean_s", "stddev_s", "min_s", "max_s",
                          "metrics")


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check(path):
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as error:
            fail(path, f"invalid JSON: {error}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if not isinstance(doc.get("benchmark"), str) or not doc["benchmark"]:
        fail(path, "missing or empty 'benchmark'")
    if doc.get("schema_version") != 1:
        fail(path, f"unexpected schema_version {doc.get('schema_version')!r}")
    if not isinstance(doc.get("params"), dict):
        fail(path, "'params' is not an object")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(path, "'results' is not a non-empty array")

    for i, result in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(result, dict):
            fail(path, f"{where} is not an object")
        for field in REQUIRED_RESULT_FIELDS:
            if field not in result:
                fail(path, f"{where} is missing '{field}'")
        if not isinstance(result["label"], str) or not result["label"]:
            fail(path, f"{where}.label is not a non-empty string")
        for field in ("mean_s", "stddev_s", "min_s", "max_s"):
            if not isinstance(result[field], (int, float)):
                fail(path, f"{where}.{field} is not a number")
        if not isinstance(result["metrics"], dict):
            fail(path, f"{where}.metrics is not an object")
        for key, value in result["metrics"].items():
            if not isinstance(value, (int, float)):
                fail(path, f"{where}.metrics[{key!r}] is not a number")

    print(f"{path}: ok ({doc['benchmark']}, {len(results)} results)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
