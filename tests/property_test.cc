// Cross-cutting property tests: semantic equivalences that must hold for
// arbitrary documents and queries, checked over randomized inputs.

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "baseline/brute_force_matcher.h"
#include "baseline/compare.h"
#include "core/multi_engine.h"
#include "core/xaos_engine.h"
#include "dom/dom_builder.h"
#include "dom/serializer.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "query/reroot.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

std::vector<baseline::CanonicalItem> Canon(const core::QueryResult& result) {
  return baseline::CanonicalFromResult(result);
}

core::QueryResult MustEval(const std::string& expr, const std::string& xml,
                           core::EngineOptions options = {}) {
  auto result = core::EvaluateStreaming(expr, xml, options);
  EXPECT_TRUE(result.ok()) << result.status() << " for " << expr;
  return result.ok() ? *result : core::QueryResult{};
}

// --- serialization round trips ---------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, SerializeParseSerializeIsIdentity) {
  auto workload =
      gen::GenerateWorkload({}, {.target_elements = 300}, GetParam());
  ASSERT_TRUE(workload.ok());
  auto doc = dom::ParseToDocument(workload->document);
  ASSERT_TRUE(doc.ok());
  std::string once = dom::SerializeDocument(*doc);
  auto doc2 = dom::ParseToDocument(once);
  ASSERT_TRUE(doc2.ok()) << doc2.status();
  EXPECT_EQ(dom::SerializeDocument(*doc2), once);
  EXPECT_EQ(doc2->element_count(), doc->element_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Range<uint64_t>(0, 20));

// --- capture correctness ----------------------------------------------------

class CapturePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CapturePropertyTest, CapturedXmlEqualsDomSubtree) {
  auto workload =
      gen::GenerateWorkload({}, {.target_elements = 400}, GetParam());
  ASSERT_TRUE(workload.ok());
  core::EngineOptions options;
  options.capture_output_subtrees = true;
  core::QueryResult result =
      MustEval(workload->expression, workload->document, options);

  auto doc = dom::ParseToDocument(workload->document);
  ASSERT_TRUE(doc.ok());
  std::vector<uint32_t> ordinals = baseline::ComputeElementOrdinals(*doc);

  for (const core::OutputItem& item : result.items) {
    if (item.info.kind != query::DocNodeKind::kElement) continue;
    // Locate the DOM node with the same element ordinal.
    dom::NodeId node = dom::kInvalidNode;
    for (dom::NodeId id = 0; id < doc->node_count(); ++id) {
      if (doc->IsElement(id) && ordinals[id] == item.info.ordinal) {
        node = id;
        break;
      }
    }
    ASSERT_NE(node, dom::kInvalidNode);
    EXPECT_EQ(item.captured_xml, dom::SerializeSubtree(*doc, node))
        << workload->expression;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapturePropertyTest,
                         ::testing::Range<uint64_t>(100, 120));

// --- or-semantics ------------------------------------------------------------

class OrSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrSemanticsTest, OrEqualsUnionOfBranches) {
  std::mt19937_64 rng(GetParam());
  gen::RandomQueryOptions options;
  options.node_tests = 3;
  xpath::LocationPath base = gen::GenerateRandomPath(options, rng);
  auto doc = gen::GenerateDocumentForPath(
      base, {.target_elements = 500, .max_noise_depth = 6}, rng);
  ASSERT_TRUE(doc.ok());

  char l1 = static_cast<char>('A' + rng() % 8);
  char l2 = static_cast<char>('A' + rng() % 8);
  std::string stem = xpath::ToString(base);
  std::string with_or = stem + "[" + std::string(1, l1) + " or " +
                        std::string(1, l2) + "]";
  std::string branch1 = stem + "[" + std::string(1, l1) + "]";
  std::string branch2 = stem + "[" + std::string(1, l2) + "]";

  auto merged = Canon(MustEval(with_or, *doc));
  auto a = Canon(MustEval(branch1, *doc));
  auto b = Canon(MustEval(branch2, *doc));
  std::set<baseline::CanonicalItem> expected(a.begin(), a.end());
  expected.insert(b.begin(), b.end());
  EXPECT_EQ(merged,
            (std::vector<baseline::CanonicalItem>(expected.begin(),
                                                  expected.end())))
      << with_or;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrSemanticsTest,
                         ::testing::Range<uint64_t>(200, 230));

// --- intersection semantics --------------------------------------------------

class IntersectSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntersectSemanticsTest, IntersectEqualsSetIntersection) {
  std::mt19937_64 rng(GetParam());
  // Two random queries forced to share their output label.
  gen::RandomQueryOptions options;
  options.node_tests = 3;
  xpath::LocationPath p1 = gen::GenerateRandomPath(options, rng);
  xpath::LocationPath p2 = gen::GenerateRandomPath(options, rng);
  p2.steps.back().test = p1.steps.back().test;

  auto doc = gen::GenerateDocumentForPath(
      p1, {.target_elements = 600, .max_noise_depth = 6}, rng);
  ASSERT_TRUE(doc.ok());

  auto t1 = query::BuildXTree(p1);
  auto t2 = query::BuildXTree(p2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto merged = query::Intersect(*t1, *t2);
  ASSERT_TRUE(merged.ok()) << merged.status();

  core::XaosEngine engine(&*merged);
  ASSERT_TRUE(xml::ParseString(*doc, &engine).ok());
  auto via_intersect = Canon(engine.result());

  auto r1 = Canon(MustEval(xpath::ToString(p1), *doc));
  auto r2 = Canon(MustEval(xpath::ToString(p2), *doc));
  std::vector<baseline::CanonicalItem> expected;
  std::set_intersection(r1.begin(), r1.end(), r2.begin(), r2.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(via_intersect, expected)
      << xpath::ToString(p1) << "  ∩  " << xpath::ToString(p2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectSemanticsTest,
                         ::testing::Range<uint64_t>(300, 330));

// --- tuple semantics ---------------------------------------------------------

class TupleSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TupleSemanticsTest, TuplesMatchBruteForce) {
  std::mt19937_64 rng(GetParam());
  gen::RandomQueryOptions options;
  options.node_tests = 4;
  xpath::LocationPath path = gen::GenerateRandomPath(options, rng);
  // Mark two random steps as outputs.
  path.steps.front().output_marked = true;
  path.steps.back().output_marked = true;

  auto doc = gen::GenerateDocumentForPath(
      path, {.target_elements = 300, .max_noise_depth = 5}, rng);
  ASSERT_TRUE(doc.ok());
  auto tree = query::BuildXTree(path);
  ASSERT_TRUE(tree.ok());

  core::XaosEngine engine(&*tree);
  ASSERT_TRUE(xml::ParseString(*doc, &engine).ok());
  core::TupleEnumeration tuples = engine.OutputTuples(1'000'000);
  ASSERT_TRUE(tuples.complete);

  auto dom = dom::ParseToDocument(*doc);
  ASSERT_TRUE(dom.ok());
  baseline::BruteForceOutcome oracle =
      baseline::BruteForceMatch(*dom, *tree, 20'000'000);
  ASSERT_TRUE(oracle.complete);

  // Compare tuple sets via canonical item lists.
  std::set<std::vector<baseline::CanonicalItem>> engine_tuples;
  for (const core::OutputTuple& tuple : tuples.tuples) {
    std::vector<baseline::CanonicalItem> canon;
    for (const core::ElementInfo& info : tuple) {
      core::OutputItem item;
      item.info = info;
      canon.push_back(baseline::CanonicalFromOutputItem(item));
    }
    engine_tuples.insert(std::move(canon));
  }
  std::set<std::vector<baseline::CanonicalItem>> oracle_tuples(
      oracle.tuples.begin(), oracle.tuples.end());
  EXPECT_EQ(engine_tuples, oracle_tuples) << xpath::ToString(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleSemanticsTest,
                         ::testing::Range<uint64_t>(400, 430));

// --- confirmation properties --------------------------------------------------

class ConfirmationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConfirmationPropertyTest, ConfirmationIsSoundAndStopModeAgrees) {
  auto workload =
      gen::GenerateWorkload({}, {.target_elements = 500}, GetParam());
  ASSERT_TRUE(workload.ok());
  auto trees = query::CompileToXTrees(workload->expression);
  ASSERT_TRUE(trees.ok());

  // Full run, tracking whether confirmation ever fired mid-stream.
  core::XaosEngine engine(&trees->front());
  xml::SaxParser parser(&engine);
  bool confirmed_midstream = false;
  const std::string& doc = workload->document;
  for (size_t i = 0; i < doc.size(); i += 97) {
    ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(i, 97)).ok());
    confirmed_midstream = confirmed_midstream || engine.match_confirmed();
  }
  ASSERT_TRUE(parser.Finish().ok());

  // Soundness: a mid-stream confirmation implies a final match.
  if (confirmed_midstream) {
    EXPECT_TRUE(engine.Matched()) << workload->expression;
  }

  // Early-stop mode returns the same boolean verdict.
  core::EngineOptions stop;
  stop.stop_after_confirmed_match = true;
  core::XaosEngine stopper(&trees->front(), stop);
  ASSERT_TRUE(xml::ParseString(doc, &stopper).ok());
  EXPECT_EQ(stopper.Matched(), engine.Matched()) << workload->expression;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfirmationPropertyTest,
                         ::testing::Range<uint64_t>(500, 560));

// --- engine accounting ---------------------------------------------------------

class AccountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccountingTest, StatsInvariants) {
  auto workload =
      gen::GenerateWorkload({}, {.target_elements = 400}, GetParam());
  ASSERT_TRUE(workload.ok());
  auto trees = query::CompileToXTrees(workload->expression);
  ASSERT_TRUE(trees.ok());
  auto engine = std::make_unique<core::XaosEngine>(&trees->front());
  ASSERT_TRUE(xml::ParseString(workload->document, &*engine).ok());

  const core::EngineStats& stats = engine->stats();
  EXPECT_LE(stats.elements_discarded, stats.elements_total);
  EXPECT_LE(stats.structures_live, stats.structures_created);
  EXPECT_LE(stats.structures_live, stats.structures_live_peak);
  EXPECT_LE(stats.structures_undone, stats.structures_created);

  // Every result item must be backed by a live structure.
  if (!engine->result().items.empty()) {
    EXPECT_GT(stats.structures_live, 0u);
  }
  // Processing an unmatched document releases (almost) everything.
  ASSERT_TRUE(xml::ParseString("<zzz/>", &*engine).ok());
  EXPECT_LE(engine->stats().structures_live, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingTest,
                         ::testing::Range<uint64_t>(600, 640));

}  // namespace
}  // namespace xaos
