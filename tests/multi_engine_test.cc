// Multi-query evaluator tests: the label-indexed dispatch fleet must be
// observationally identical to naive per-query fan-out (same verdicts, same
// result items, byte for byte) across hand-picked axis coverage and the
// random workload generator — plus presence tests for the hot-path
// observability counters.

#include <memory>
#include <string>
#include <vector>

#include "baseline/compare.h"
#include "core/multi_engine.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using baseline::CanonicalItem;

// Evaluates every expression naively (independent StreamingEvaluator per
// query) and through one shared MultiQueryEvaluator, and requires identical
// matched flags and canonical result items per query.
void ExpectDispatchTransparent(const std::vector<std::string>& expressions,
                               const std::string& xml) {
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  core::MultiQueryEvaluator multi;
  for (const core::Query& query : queries) multi.AddQuery(query);
  ASSERT_TRUE(xml::ParseString(xml, &multi).ok());
  ASSERT_TRUE(multi.status().ok()) << multi.status();

  for (size_t q = 0; q < queries.size(); ++q) {
    core::StreamingEvaluator naive(queries[q]);
    ASSERT_TRUE(xml::ParseString(xml, &naive).ok());
    ASSERT_TRUE(naive.status().ok()) << naive.status();

    core::QueryResult naive_result = naive.Result();
    core::QueryResult multi_result = multi.Result(q);
    EXPECT_EQ(naive_result.matched, multi_result.matched)
        << "verdict mismatch for " << expressions[q];
    EXPECT_EQ(baseline::CanonicalFromResult(naive_result),
              baseline::CanonicalFromResult(multi_result))
        << "result mismatch for " << expressions[q];
  }
}

TEST(MultiQueryEvaluatorTest, AxisCoverage) {
  const std::string doc =
      "<a k=\"1\"><b><a><c/></a><d/></b><c/>"
      "<b x=\"y\"><c/><a/><e>text</e></b></a>";
  ExpectDispatchTransparent(
      {
          "//a//c",                           // descendant
          "//c/ancestor::a",                  // backward axis
          "/a/b/a/c",                         // child spine
          "//*[c]",                           // wildcard (always-dispatch)
          "//b[@x]",                          // attribute test
          "//c/following-sibling::a",         // sibling (dense stack)
          "//e[text()='text']",               // text test
          "//b[c]/a | //a[c]",                // union
          "//zzz",                            // label absent: never woken
          "//d/parent::b",                    // parent
      },
      doc);
}

TEST(MultiQueryEvaluatorTest, MixedRelevantAndIrrelevantQueries) {
  // One matching query among many whose labels never occur: the dispatch
  // index must keep the idle engines byte-identical to naive (no verdicts,
  // empty results) while the live one still sees everything it needs.
  std::vector<std::string> expressions = {"//b/c"};
  for (int i = 0; i < 20; ++i) {
    expressions.push_back("//absent_" + std::to_string(i) + "/name");
  }
  ExpectDispatchTransparent(expressions, "<a><b><c/></b><b/></a>");
}

// Random workloads: several generated (query, document) pairs per seed,
// all queries evaluated over each document.
class RandomMultiQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMultiQueryTest, DispatchTransparent) {
  uint64_t seed = GetParam();
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 300;
  doc_options.max_noise_depth = 6;

  std::vector<std::string> expressions;
  std::vector<std::string> documents;
  for (uint64_t i = 0; i < 4; ++i) {
    auto workload =
        gen::GenerateWorkload(query_options, doc_options, seed * 16 + i);
    ASSERT_TRUE(workload.ok()) << workload.status();
    expressions.push_back(workload->expression);
    documents.push_back(workload->document);
  }
  // Cross products: each document was built for one of the queries; the
  // other three exercise partial/failed matching under dispatch filtering.
  for (const std::string& document : documents) {
    ExpectDispatchTransparent(expressions, document);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMultiQueryTest,
                         ::testing::Range<uint64_t>(0, 30));

TEST(MultiQueryEvaluatorTest, ReuseAcrossDocuments) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator multi;
  size_t q = multi.AddQuery(*query);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &multi).ok());
  EXPECT_TRUE(multi.Matched(q));
  ASSERT_TRUE(xml::ParseString("<a><b/><c/></a>", &multi).ok());
  EXPECT_FALSE(multi.Matched(q));
}

// --- observability counters -------------------------------------------------

TEST(HotPathCountersTest, ArenaBytesExported) {
  StatusOr<core::Query> query = core::Query::Compile("//a//c");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b><c/></a>", &evaluator).ok());
  ASSERT_TRUE(evaluator.status().ok());
  EXPECT_GT(evaluator.AggregateStats().arena_bytes_allocated, 0u);

  obs::MetricsRegistry registry;
  evaluator.ExportMetrics(&registry);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("xaos_arena_bytes_allocated"), 1u);
  EXPECT_GT(snapshot.counters.at("xaos_arena_bytes_allocated"), 0u);
  EXPECT_NE(obs::ToJson(snapshot).find("xaos_arena_bytes_allocated"),
            std::string::npos);
  EXPECT_NE(obs::ToPrometheusText(snapshot).find("xaos_arena_bytes_allocated"),
            std::string::npos);
}

TEST(HotPathCountersTest, DispatchAndInterningCountersInDefaultRegistry) {
  obs::SetEnabled(true);  // runtime default is off; no-op when compiled out
  if (!obs::Enabled()) GTEST_SKIP() << "observability disabled at build time";
  // The fleet folds these into the default registry at EndDocument. Both
  // queries are shareable chains, so force the per-engine backend — the
  // dispatch-skip counters only exist on that path.
  core::EngineOptions options;
  options.enable_shared_index = false;
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator multi(options);
  multi.AddQuery(*query);
  StatusOr<core::Query> idle = core::Query::Compile("//never_present/x");
  ASSERT_TRUE(idle.ok());
  multi.AddQuery(*idle);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &multi).ok());
  EXPECT_GT(multi.engines_skipped(), 0u);

  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Default().Snapshot();
  ASSERT_EQ(snapshot.counters.count("xaos_dispatch_engines_skipped_total"),
            1u);
  EXPECT_GT(snapshot.counters.at("xaos_dispatch_engines_skipped_total"), 0u);
  ASSERT_EQ(snapshot.counters.count("xaos_symbols_interned"), 1u);
  // The parser interned at least the element names of this document.
  EXPECT_GT(snapshot.counters.at("xaos_symbols_interned"), 0u);

  std::string prometheus = obs::ToPrometheusText(snapshot);
  EXPECT_NE(prometheus.find("xaos_dispatch_engines_skipped_total"),
            std::string::npos);
  EXPECT_NE(prometheus.find("xaos_symbols_interned"), std::string::npos);
  std::string json = obs::ToJson(snapshot);
  EXPECT_NE(json.find("xaos_dispatch_engines_skipped_total"),
            std::string::npos);
  EXPECT_NE(json.find("xaos_symbols_interned"), std::string::npos);
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace xaos
