// Corpus regression: replays every seed input under fuzz/corpus/ through
// the shared fuzz-target bodies inside the normal test binary, so the
// sanitizer jobs cover them on every CI run even though coverage-guided
// fuzzing itself only runs in the dedicated clang job. A target body traps
// on invariant violation, which gtest surfaces as a crash of this test.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "targets.h"

#ifndef XAOS_FUZZ_CORPUS_DIR
#error "XAOS_FUZZ_CORPUS_DIR must point at fuzz/corpus"
#endif

namespace xaos {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> LoadCorpus(const char* subdir) {
  fs::path dir = fs::path(XAOS_FUZZ_CORPUS_DIR) / subdir;
  std::vector<std::string> inputs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    inputs.emplace_back((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  }
  return inputs;
}

void Replay(const char* subdir, int (*target)(const uint8_t*, size_t)) {
  std::vector<std::string> inputs = LoadCorpus(subdir);
  ASSERT_FALSE(inputs.empty()) << "no corpus seeds under " << subdir;
  for (const std::string& input : inputs) {
    EXPECT_EQ(target(reinterpret_cast<const uint8_t*>(input.data()),
                     input.size()),
              0);
  }
}

TEST(FuzzCorpusTest, SaxSeeds) { Replay("sax", fuzz::RunSaxParserInput); }

TEST(FuzzCorpusTest, XPathSeeds) { Replay("xpath", fuzz::RunXPathInput); }

TEST(FuzzCorpusTest, DifferentialSeeds) {
  Replay("diff", fuzz::RunDifferentialInput);
}

TEST(FuzzCorpusTest, ProjectionSeeds) {
  Replay("projection", fuzz::RunProjectionDifferentialInput);
}

TEST(FuzzCorpusTest, ScannerSeeds) {
  Replay("scanner", fuzz::RunScannerDiffInput);
}

TEST(FuzzCorpusTest, SharedIndexSeeds) {
  Replay("shared", fuzz::RunSharedIndexDiffInput);
}

TEST(FuzzCorpusTest, BatchedDispatchSeeds) {
  Replay("batched", fuzz::RunBatchedDispatchDiffInput);
}

}  // namespace
}  // namespace xaos
