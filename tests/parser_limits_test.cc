// ParserLimits enforcement: every configurable bound must reject an
// offending document with kResourceExhausted (not a crash, hang, or
// unbounded allocation), chunking must not change the outcome, and the
// new well-formedness rejections (']]>' in character data, raw control
// characters) must hold across chunk boundaries too.

#include <string>
#include <string_view>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "xml/entities.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::xml {
namespace {

Status ParseWith(const std::string& doc, ParserOptions options,
                 size_t chunk = 0) {
  EventRecorder recorder;
  if (chunk == 0) return ParseString(doc, &recorder, options);
  SaxParser parser(&recorder, options);
  std::string_view rest = doc;
  Status status;
  while (!rest.empty() && status.ok()) {
    size_t n = std::min(chunk, rest.size());
    status = parser.Feed(rest.substr(0, n));
    rest.remove_prefix(n);
  }
  if (status.ok()) status = parser.Finish();
  return status;
}

// Every limit check must hold byte-at-a-time too — the chunked re-run
// catches holdback/compaction bugs around each guardrail.
void ExpectExhausted(const std::string& doc, ParserOptions options) {
  for (size_t chunk : {size_t{0}, size_t{1}, size_t{7}}) {
    Status status = ParseWith(doc, options, chunk);
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
        << "chunk=" << chunk << " status=" << status;
  }
}

void ExpectParseError(const std::string& doc, ParserOptions options = {}) {
  for (size_t chunk : {size_t{0}, size_t{1}, size_t{7}}) {
    Status status = ParseWith(doc, options, chunk);
    EXPECT_EQ(status.code(), StatusCode::kParseError)
        << "chunk=" << chunk << " status=" << status;
  }
}

TEST(ParserLimitsTest, MaxDepth) {
  ParserOptions options;
  options.limits.max_depth = 4;
  std::string ok = "<a><b><c><d/></c></b></a>";
  EXPECT_TRUE(ParseWith(ok, options).ok());
  std::string deep = "<a><b><c><d><e/></d></c></b></a>";
  ExpectExhausted(deep, options);
}

TEST(ParserLimitsTest, MaxAttributeCount) {
  ParserOptions options;
  options.limits.max_attribute_count = 3;
  EXPECT_TRUE(ParseWith("<a x='1' y='2' z='3'/>", options).ok());
  ExpectExhausted("<a x='1' y='2' z='3' w='4'/>", options);
}

TEST(ParserLimitsTest, MaxAttributeValueBytes) {
  ParserOptions options;
  options.limits.max_attribute_value_bytes = 8;
  EXPECT_TRUE(ParseWith("<a v='12345678'/>", options).ok());
  ExpectExhausted("<a v='123456789'/>", options);
}

TEST(ParserLimitsTest, MaxNameBytes) {
  ParserOptions options;
  options.limits.max_name_bytes = 6;
  EXPECT_TRUE(ParseWith("<abcdef/>", options).ok());
  ExpectExhausted("<abcdefg/>", options);
  // Attribute and PI names are bounded too.
  ExpectExhausted("<a abcdefg='v'/>", options);
  ExpectExhausted("<a><?abcdefg data?></a>", options);
  // End-tag names as well (mismatched-but-bounded comes first otherwise).
  ExpectExhausted("<a>x</abcdefg>", options);
}

TEST(ParserLimitsTest, MaxTokenBytes) {
  ParserOptions options;
  options.limits.max_token_bytes = 32;
  // A comment that never closes would otherwise buffer forever.
  std::string doc = "<a><!-- " + std::string(100, 'c');
  ExpectExhausted(doc, options);
  // Same bound, but the token completes under it: fine.
  EXPECT_TRUE(ParseWith("<a><!-- c --></a>", options).ok());
}

TEST(ParserLimitsTest, MaxTotalBytes) {
  ParserOptions options;
  options.limits.max_total_bytes = 17;
  EXPECT_TRUE(ParseWith("<a>0123456789</a>", options).ok());  // 17 bytes
  ExpectExhausted("<a>0123456789x</a>", options);             // 18 bytes
}

TEST(ParserLimitsTest, MaxEntityReferences) {
  ParserOptions options;
  options.limits.max_entity_references = 3;
  EXPECT_TRUE(ParseWith("<a>&amp;&lt;&gt;</a>", options).ok());
  ExpectExhausted("<a>&amp;&lt;&gt;&quot;</a>", options);
  // Attribute-value references count against the same budget.
  ExpectExhausted("<a v='&amp;&lt;'>&gt;&quot;</a>", options);
}

TEST(ParserLimitsTest, OverlongEntityReferenceFailsFast) {
  // An '&' followed by more than kMaxReferenceBodyBytes name bytes can
  // never be a legal reference; the parser must reject it rather than
  // hold back the tail waiting for ';' forever.
  std::string doc =
      "<a>&" + std::string(kMaxReferenceBodyBytes + 1, 'e') + ";</a>";
  ExpectParseError(doc);
  // Same in an attribute value.
  ExpectParseError("<a v='&" + std::string(kMaxReferenceBodyBytes + 1, 'e') +
                   ";'/>");
  // A reference exactly at the bound still works (numeric, for variety).
  EXPECT_TRUE(ParseWith("<a>&#x41;</a>", ParserOptions{}).ok());
}

TEST(ParserLimitsTest, CdataCloseSequenceRejectedInCharacterData) {
  // XML 1.0 section 2.4: ']]>' must not appear literally in content.
  ExpectParseError("<a>]]></a>");
  ExpectParseError("<a>text]]>more</a>");
  // Escaped or inside CDATA is fine.
  EXPECT_TRUE(ParseWith("<a>]]&gt;</a>", ParserOptions{}).ok());
  EXPECT_TRUE(ParseWith("<a><![CDATA[]]]]><![CDATA[>]]></a>",
                        ParserOptions{})
                  .ok());
  // Lone brackets are legal character data.
  EXPECT_TRUE(ParseWith("<a>] ]] ]&gt;</a>", ParserOptions{}).ok());
}

TEST(ParserLimitsTest, ControlCharactersRejected) {
  // NUL and C0 controls (except tab/LF/CR) are outside the XML Char
  // production, in both character data and attribute values.
  ExpectParseError(std::string("<a>x\0y</a>", 10));
  ExpectParseError("<a>x\x01y</a>");
  ExpectParseError("<a>x\x08y</a>");
  ExpectParseError(std::string("<a v='x\0y'/>", 12));
  ExpectParseError("<a v='x\x07y'/>");
  // Tab, LF, CR are legal.
  EXPECT_TRUE(ParseWith("<a>x\ty\nz\rw</a>", ParserOptions{}).ok());
  EXPECT_TRUE(ParseWith("<a v='x\ty'/>", ParserOptions{}).ok());
}

TEST(ParserLimitsTest, LimitErrorsPoisonTheParser) {
  ParserOptions options;
  options.limits.max_depth = 1;
  EventRecorder recorder;
  SaxParser parser(&recorder, options);
  Status status = parser.Feed("<a><b>");
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parser.Feed("</b></a>").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parser.Finish().code(), StatusCode::kResourceExhausted);
}

TEST(ParserLimitsTest, ObsCountersTrackRejections) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::SetEnabled(true);
  if (!obs::Enabled()) GTEST_SKIP() << "built with XAOS_OBS_ENABLED=0";
  uint64_t parse_before =
      registry.GetCounter("xaos_parse_errors_total")->Value();
  uint64_t limit_before =
      registry.GetCounter("xaos_limit_rejections_total")->Value();

  ParserOptions options;
  options.limits.max_depth = 1;
  EXPECT_EQ(ParseWith("<a><b/></a>", options).code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(ParseWith("<a>]]></a>", ParserOptions{}).ok());
  obs::SetEnabled(false);

  // A limit rejection counts as both a parse error and a limit rejection;
  // the well-formedness error counts only as a parse error.
  EXPECT_EQ(registry.GetCounter("xaos_parse_errors_total")->Value(),
            parse_before + 2);
  EXPECT_EQ(registry.GetCounter("xaos_limit_rejections_total")->Value(),
            limit_before + 1);
}

TEST(ParserLimitsTest, DefaultsAcceptReasonableDocuments) {
  // The defaults must not reject anything a sane producer emits.
  std::string doc = "<root>";
  for (int i = 0; i < 200; ++i) doc += "<item id='" + std::to_string(i) +
                                       "'>&amp;value</item>";
  doc += "</root>";
  EXPECT_TRUE(ParseWith(doc, ParserOptions{}).ok());
}

}  // namespace
}  // namespace xaos::xml
