// Flight recorder: ring overwrite semantics, disarmed-mode guarantees,
// cross-thread batch linkage through the parallel fleet (the TSan job runs
// this), the Chrome trace-event exporter, and the per-subscription latency
// series the evaluators feed.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "gtest/gtest.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "xml/sax_parser.h"

namespace xaos::obs::flight {
namespace {

// The exporter operates on hand-built traces, so it works (and is tested)
// even in a -DXAOS_OBS_ENABLED=0 build where recording is compiled out.
TEST(ChromeTraceTest, ExportsSpansFlowsAndCounters) {
  ThreadTrace producer;
  producer.track = 1;
  producer.name = "parse";
  Span dispatch;
  dispatch.kind = SpanKind::kDispatch;
  dispatch.begin_ns = 1000;
  dispatch.end_ns = 2000;
  dispatch.batch = 7;
  dispatch.doc = 1;
  dispatch.value = 128;
  producer.spans.push_back(dispatch);

  ThreadTrace worker;
  worker.track = 2;
  worker.name = "worker/0";
  Span replay;
  replay.kind = SpanKind::kReplay;
  replay.begin_ns = 2500;
  replay.end_ns = 4000;
  replay.batch = 7;
  replay.shard = 0;
  replay.value = 128;
  worker.spans.push_back(replay);
  Span counter;
  counter.kind = SpanKind::kCounter;
  counter.begin_ns = 4000;
  counter.end_ns = 4000;
  counter.shard = 0;
  counter.value = 5;     // buffered candidates
  counter.value2 = 640;  // arena bytes
  worker.spans.push_back(counter);

  std::string json = ToChromeTraceJson({producer, worker});
  EXPECT_TRUE(JsonValid(json)) << json;
  // Complete events for both spans on distinct tracks.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"replay\""), std::string::npos);
  // Thread-name metadata.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"worker/0\""), std::string::npos);
  // Flow arrow from the dispatch span to the replay span (same batch).
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Counter samples.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("buffered_candidates"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTracesStillValidJson) {
  std::string json = ToChromeTraceJson({});
  EXPECT_TRUE(JsonValid(json)) << json;
}

#if XAOS_OBS_ENABLED

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsDrops) {
  Arm(/*ring_capacity=*/4);
  SetCurrentThreadName("ring-overwrite-test");
  for (int i = 0; i < 10; ++i) {
    Span span;
    span.kind = SpanKind::kParse;
    span.begin_ns = static_cast<uint64_t>(i + 1);
    span.end_ns = static_cast<uint64_t>(i + 1);
    span.value = i;
    Emit(span);
  }
  Disarm();

  std::vector<ThreadTrace> traces = Collect();
  const ThreadTrace* mine = nullptr;
  for (const ThreadTrace& trace : traces) {
    if (trace.name == "ring-overwrite-test") mine = &trace;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->spans.size(), 4u);
  EXPECT_EQ(mine->dropped, 6u);
  // Newest window, oldest first: values 6, 7, 8, 9.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mine->spans[i].value, static_cast<int64_t>(6 + i));
  }
  Reset();
}

TEST(FlightRecorderTest, DisarmedEmitCreatesNoRing) {
  ASSERT_FALSE(Active());
  size_t rings_before = ring_count();
  // A brand-new thread emitting while disarmed must not allocate a ring
  // (that is the "zero cost when disabled" contract for threads that never
  // record).
  std::thread t([] {
    Span span;
    span.kind = SpanKind::kReplay;
    Emit(span);
    SetCurrentThreadName("never-recorded");
  });
  t.join();
  EXPECT_EQ(ring_count(), rings_before);
}

TEST(FlightRecorderTest, ScopedSpanInactiveWhenDisarmed) {
  ASSERT_FALSE(Active());
  ScopedSpan span(SpanKind::kParse);
  EXPECT_FALSE(span.active());
}

// The acceptance scenario: a parallel-fleet document run records dispatch
// spans on the producer track and replay spans on every worker track, tied
// together by batch sequence. Runs under TSan in CI — the collection point
// (after EndDocument's latch) must be race-free.
TEST(FlightRecorderTest, CrossThreadBatchLinkage) {
  core::ParallelFleetOptions options;
  options.num_workers = 2;
  options.max_batch_events = 8;  // force several batches per document
  core::ParallelFleet fleet(options);
  auto q1 = core::Query::Compile("//a/b");
  auto q2 = core::Query::Compile("//c");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  fleet.AddQuery(*q1, "sub-a");
  fleet.AddQuery(*q2, "sub-c");

  Arm();
  std::string doc = "<r>";
  for (int i = 0; i < 32; ++i) doc += "<a><b>x</b></a><c/>";
  doc += "</r>";
  ASSERT_TRUE(xml::ParseString(doc, &fleet).ok());
  // EndDocument returned: the doc latch ordered every worker's ring writes
  // before this point, so collection is quiescent.
  Disarm();
  std::vector<ThreadTrace> traces = Collect();
  Reset();

  ASSERT_GT(fleet.batches_published(), 1u);

  uint64_t producer_track = 0;
  std::vector<uint64_t> dispatch_seqs;
  std::vector<std::vector<uint64_t>> replay_seqs(2);
  std::vector<uint64_t> replay_tracks;
  for (const ThreadTrace& trace : traces) {
    for (const Span& span : trace.spans) {
      if (span.kind == SpanKind::kDispatch) {
        producer_track = trace.track;
        dispatch_seqs.push_back(span.batch);
      } else if (span.kind == SpanKind::kReplay) {
        ASSERT_GE(span.shard, 0);
        ASSERT_LT(span.shard, 2);
        replay_seqs[static_cast<size_t>(span.shard)].push_back(span.batch);
        replay_tracks.push_back(trace.track);
      }
    }
  }

  ASSERT_EQ(dispatch_seqs.size(), fleet.batches_published());
  // Every batch the producer dispatched was replayed by both workers, with
  // the same sequence stamp — the linkage the flow arrows are built from.
  for (int shard = 0; shard < 2; ++shard) {
    EXPECT_EQ(replay_seqs[static_cast<size_t>(shard)], dispatch_seqs)
        << "shard " << shard;
  }
  // Replay spans live on worker tracks, not the producer's.
  for (uint64_t track : replay_tracks) EXPECT_NE(track, producer_track);

  // The full trace renders to loadable Chrome trace JSON.
  std::string json = ToChromeTraceJson(traces);
  EXPECT_TRUE(JsonValid(json));
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(FlightRecorderTest, WriteChromeTraceRoundTrip) {
  Arm();
  SetCurrentThreadName("round-trip");
  {
    ScopedSpan span(SpanKind::kParse);
    ASSERT_TRUE(span.active());
    span.span()->value = 42;
  }
  Disarm();

  std::string path = testing::TempDir() + "/flight_round_trip.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  Reset();

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_TRUE(obs::JsonValid(contents)) << contents;
  EXPECT_NE(contents.find("\"round-trip\""), std::string::npos);
  EXPECT_NE(contents.find("\"parse\""), std::string::npos);
}

TEST(FlightRecorderTest, WriteChromeTraceReportsUnwritablePath) {
  EXPECT_FALSE(WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST(SubscriptionLatencyTest, MatchedSubscriptionsRecordLatencySeries) {
  SetEnabled(true);
  MetricsRegistry registry;
  core::EngineOptions options;
  options.metrics_registry = &registry;
  core::MultiQueryEvaluator evaluator(options);
  auto hit = core::Query::Compile("//a/b");
  auto miss = core::Query::Compile("//nope");
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(miss.ok());
  evaluator.AddQuery(*hit, "alice");
  evaluator.AddQuery(*miss);  // default label "q1"
  ASSERT_TRUE(xml::ParseString("<r><a><b>x</b></a></r>", &evaluator).ok());
  SetEnabled(false);

  EXPECT_TRUE(evaluator.Matched(0));
  EXPECT_FALSE(evaluator.Matched(1));
  Histogram* latency = registry.GetHistogram(
      "xaos_sub_match_latency_ns{subscription=\"alice\"}");
  EXPECT_EQ(latency->Count(), 1u);
  Histogram* first = registry.GetHistogram(
      "xaos_sub_first_match_ns{subscription=\"alice\"}");
  EXPECT_EQ(first->Count(), 1u);
  // Time-to-first-match never exceeds end-of-document latency.
  EXPECT_LE(first->Sum(), latency->Sum());
  // The unmatched subscription contributes no samples.
  Histogram* unmatched = registry.GetHistogram(
      "xaos_sub_match_latency_ns{subscription=\"q1\"}");
  EXPECT_EQ(unmatched->Count(), 0u);
}

#endif  // XAOS_OBS_ENABLED

}  // namespace
}  // namespace xaos::obs::flight
