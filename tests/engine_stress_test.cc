// Stress and lifecycle tests: large documents, adversarial shapes, long
// reuse sequences, and linearity sanity checks.

#include <memory>
#include <string>

#include "core/multi_engine.h"
#include "core/xaos_engine.h"
#include "gen/random_workload.h"
#include "gen/xmark_generator.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

TEST(EngineStressTest, WideDocumentManyMatches) {
  std::string xml = "<r>";
  for (int i = 0; i < 30000; ++i) xml += "<a><b/></a>";
  xml += "</r>";
  auto result = core::EvaluateStreaming("//a/b", xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 30000u);
}

TEST(EngineStressTest, DeepDocumentWithBackwardQuery) {
  std::string xml;
  for (int i = 0; i < 3000; ++i) xml += "<a>";
  xml += "<w/>";
  for (int i = 0; i < 3000; ++i) xml += "</a>";
  auto result = core::EvaluateStreaming("//w/ancestor::a", xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 3000u);
}

TEST(EngineStressTest, ManySiblingsWithSiblingQuery) {
  std::string xml = "<r><m/>";
  for (int i = 0; i < 20000; ++i) xml += "<a/>";
  xml += "<z/></r>";
  // Every a has both an m preceding sibling and a z following sibling.
  auto result =
      core::EvaluateStreaming("//a[preceding-sibling::m][following-sibling::z]",
                              xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 20000u);
}

TEST(EngineStressTest, PathologicalRecursiveMatching) {
  // Nested a's matched by //a//a//a: quadratically many matchings exist,
  // but the engine stores one structure per (x-node, element) pair — the
  // compactness claim of Section 4.2.
  constexpr int kDepth = 120;
  std::string xml;
  for (int i = 0; i < kDepth; ++i) xml += "<a>";
  for (int i = 0; i < kDepth; ++i) xml += "</a>";
  auto trees = query::CompileToXTrees("//a//a//a");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  EXPECT_EQ(engine.result().items.size(), static_cast<size_t>(kDepth - 2));
  // 3 x-nodes x 120 elements bounds the structures, despite ~depth^3
  // total matchings.
  EXPECT_LE(engine.stats().structures_created, 3u * kDepth);
  core::TupleEnumeration tuples = engine.OutputTuples(1000);
  EXPECT_FALSE(tuples.tuples.empty());
}

TEST(EngineStressTest, LongReuseSequence) {
  auto query = core::Query::Compile(
      "//item[quantity]/description//listitem | //category/name");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  gen::XMarkOptions options;
  options.scale = 0.002;
  size_t total = 0;
  for (int round = 0; round < 100; ++round) {
    options.seed = static_cast<uint64_t>(round);
    std::string doc = gen::GenerateXMark(options);
    ASSERT_TRUE(xml::ParseString(doc, &evaluator).ok());
    total += evaluator.Result().items.size();
  }
  EXPECT_GT(total, 0u);
}

TEST(EngineStressTest, EventThroughputIsLinear) {
  // Doubling the document roughly doubles processing work: compare
  // structures created (a deterministic proxy for work) across sizes.
  auto run = [](size_t n) {
    gen::RandomDocOptions options;
    options.target_elements = n;
    auto workload = gen::GenerateWorkload({}, options, 99);
    EXPECT_TRUE(workload.ok());
    auto trees = query::CompileToXTrees(workload->expression);
    EXPECT_TRUE(trees.ok());
    core::XaosEngine engine(&trees->front());
    EXPECT_TRUE(xml::ParseString(workload->document, &engine).ok());
    return engine.stats().structures_created;
  };
  uint64_t small = run(10000);
  uint64_t large = run(40000);
  // Linear within a generous factor (same query, same generator mix).
  EXPECT_LT(large, small * 8);
  EXPECT_GT(large, small * 2);
}

TEST(EngineStressTest, AllMatchingElementsDocument) {
  // Worst case for the filter: every element matches the query labels.
  std::string xml = "<a>";
  for (int i = 0; i < 5000; ++i) xml += "<a><a/></a>";
  xml += "</a>";
  auto result = core::EvaluateStreaming("//a[a]/a", xml);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 10000u);
}

TEST(EngineStressTest, CaptureOnLargeOutput) {
  std::string xml = "<r>";
  for (int i = 0; i < 1000; ++i) xml += "<x><y>text</y></x>";
  xml += "</r>";
  core::EngineOptions options;
  options.capture_output_subtrees = true;
  auto result = core::EvaluateStreaming("//x", xml, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1000u);
  for (const core::OutputItem& item : result->items) {
    EXPECT_EQ(item.captured_xml, "<x><y>text</y></x>");
  }
}

}  // namespace
}  // namespace xaos
