// Backward-axis behaviour: parent and ancestor steps and predicates,
// optimistic propagation and undo, recursive documents.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace xaos {
namespace {

using test::EvalStreaming;
using test::Names;
using test::Ordinals;

TEST(EngineBackwardTest, AncestorStep) {
  // The introduction's example: /descendant::x/ancestor::y.
  const std::string xml = "<y><a><x/></a><x/><z><x/></z></y>";
  auto items = EvalStreaming("/descendant::x/ancestor::y", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"y"}));
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{1}));
}

TEST(EngineBackwardTest, AncestorSelectsAllMatchingAncestors) {
  const std::string xml = "<a><a><a><b/></a></a></a>";
  auto items = EvalStreaming("//b/ancestor::a", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(EngineBackwardTest, ParentStep) {
  const std::string xml = "<r><a><b/></a><c><b/></c></r>";
  auto items = EvalStreaming("//b/parent::a", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
  // Abbreviated: .. selects both parents.
  items = EvalStreaming("//b/..", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"a", "c"}));
}

TEST(EngineBackwardTest, AncestorPredicate) {
  const std::string xml = "<r><k><x/></k><x/></r>";
  auto items = EvalStreaming("//x[ancestor::k]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{3}));
}

TEST(EngineBackwardTest, ParentPredicateWithWildcard) {
  const std::string xml = "<r><a><b/></a><b/></r>";
  auto items = EvalStreaming("//b[parent::a]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{3}));
}

TEST(EngineBackwardTest, AncestorChainAndBranch) {
  // Ancestor steps can have their own predicates (evaluated against the
  // ancestor element).
  const std::string xml =
      "<r>"
      "<z><v/><w><q/></w></z>"      // z(2) has v child: w(4) qualifies
      "<z><w><q/></w></z>"          // z(6) has no v child: w(7) fails
      "</r>";
  auto items = EvalStreaming("//q/ancestor::w[ancestor::z/child::v]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{4}));
}

TEST(EngineBackwardTest, AncestorOrSelfAxis) {
  const std::string xml = "<a><b><a/></b></a>";
  auto items = EvalStreaming("//b/ancestor-or-self::b", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
  items = EvalStreaming("//a/ancestor-or-self::a", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{1, 3}));
}

TEST(EngineBackwardTest, BackwardThenForward) {
  // //w/ancestor::z/child::u — forward continuation below a backward step.
  const std::string xml =
      "<r><z><u/><d><w/></d></z><z><d><w/></d></z></r>";
  auto items = EvalStreaming("//w/ancestor::z/child::u", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{3}));
}

TEST(EngineBackwardTest, RecursiveElementsWithBackwardAxes) {
  // Recursive document: nested z elements; each w reports every z
  // ancestor exactly once.
  const std::string xml = "<z><z><w/></z><w/></z>";
  auto items = EvalStreaming("//w/ancestor::z", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{1, 2}));
}

TEST(EngineBackwardTest, UndoCascadesThroughOptimism) {
  // W adopts Z optimistically (ancestor edge); Z later fails its child::V
  // requirement, and the failure must cascade out of the already-closed W.
  const std::string xml = "<r><y><z><w/></z><u/></y></r>";
  auto items = EvalStreaming(
      "/descendant::y[child::u]/descendant::w[ancestor::z/child::v]", xml);
  EXPECT_TRUE(items.empty());
}

TEST(EngineBackwardTest, PaperExampleSolution) {
  auto items =
      EvalStreaming(test::kFigure3Query, test::kFigure2Document);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{7, 8}));
}

TEST(EngineBackwardTest, DeepOptimisticNesting) {
  // Alternating satisfiable/unsatisfiable z contexts at varying depths.
  std::string xml = "<r>";
  for (int i = 0; i < 20; ++i) {
    xml += "<z>";
    if (i % 2 == 0) xml += "<v/>";
  }
  xml += "<w/>";
  for (int i = 0; i < 20; ++i) xml += "</z>";
  xml += "</r>";
  // Every z with a v child is reported: 10 of them.
  auto items = EvalStreaming("//w/ancestor::z[child::v]", xml);
  EXPECT_EQ(items.size(), 10u);
}

}  // namespace
}  // namespace xaos
