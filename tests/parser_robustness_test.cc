// Robustness tests for the streaming parser: adversarial and mutated
// inputs must produce a clean Status (never a crash, hang, or inconsistent
// event stream), and chunking must never change the outcome.

#include <random>
#include <string>
#include <vector>

#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::xml {
namespace {

// Handler that checks event-stream invariants (balance, nesting).
class InvariantHandler : public ContentHandler {
 public:
  void StartDocument() override {
    EXPECT_FALSE(started_);
    started_ = true;
  }
  void EndDocument() override {
    EXPECT_TRUE(started_);
    EXPECT_EQ(depth_, 0);
    ended_ = true;
  }
  void StartElement(const QName& name, AttributeSpan) override {
    EXPECT_TRUE(started_ && !ended_);
    EXPECT_FALSE(name.text.empty());
    ++depth_;
    ++elements_;
  }
  void EndElement(std::string_view) override {
    EXPECT_GT(depth_, 0);
    --depth_;
  }
  void Characters(std::string_view text) override {
    EXPECT_GT(depth_, 0);  // whitespace-only runs are dropped by default
    EXPECT_FALSE(text.empty());
  }

  int elements() const { return elements_; }

 private:
  bool started_ = false;
  bool ended_ = false;
  int depth_ = 0;
  int elements_ = 0;
};

// Parses and returns ok-ness; the handler asserts stream invariants even
// for documents that eventually fail.
bool TryParse(const std::string& doc) {
  InvariantHandler handler;
  return ParseString(doc, &handler).ok();
}

TEST(ParserRobustnessTest, RandomPrintableGarbage) {
  std::mt19937_64 rng(42);
  const std::string charset =
      "<>/=\"' abcdefgh&;![]-?0123456789\n\tCDATA";
  for (int round = 0; round < 500; ++round) {
    std::string doc;
    size_t len = rng() % 200;
    for (size_t i = 0; i < len; ++i) {
      doc.push_back(charset[rng() % charset.size()]);
    }
    TryParse(doc);  // must not crash; ok-ness irrelevant
  }
}

TEST(ParserRobustnessTest, MutatedValidDocuments) {
  std::mt19937_64 rng(7);
  auto workload = gen::GenerateWorkload({}, {.target_elements = 120}, 3);
  ASSERT_TRUE(workload.ok());
  const std::string& base = workload->document;
  int still_valid = 0;
  for (int round = 0; round < 1000; ++round) {
    std::string doc = base;
    int mutations = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng() % doc.size();
      switch (rng() % 3) {
        case 0:
          doc[pos] = static_cast<char>('!' + rng() % 90);
          break;
        case 1:
          doc.erase(pos, 1);
          break;
        case 2:
          doc.insert(pos, 1, static_cast<char>('!' + rng() % 90));
          break;
      }
    }
    if (TryParse(doc)) ++still_valid;
  }
  // Some mutations hit text content and stay well-formed; most break.
  EXPECT_GT(still_valid, 0);
  EXPECT_LT(still_valid, 1000);
}

TEST(ParserRobustnessTest, TruncationsAlwaysFailCleanly) {
  const std::string doc =
      "<?xml version=\"1.0\"?><a x=\"1&amp;\"><!--c--><b><![CDATA[z]]>"
      "t</b></a>";
  for (size_t cut = 0; cut < doc.size() - 1; ++cut) {
    InvariantHandler handler;
    Status status = ParseString(doc.substr(0, cut), &handler);
    EXPECT_FALSE(status.ok()) << "truncated at " << cut;
  }
  EXPECT_TRUE(TryParse(doc));
}

TEST(ParserRobustnessTest, ChunkingNeverChangesOutcome) {
  std::mt19937_64 rng(11);
  // A handful of tricky docs, some valid and some not.
  const std::vector<std::string> docs = {
      "<a><b x='1'>t&amp;u</b><![CDATA[raw]]></a>",
      "<a><b></a></b>",
      "<a>&#xZZ;</a>",
      "<a><!-- c --><b/></a>",
      "<a>]]></a>",
      "<a x=\"v\" x=\"w\"/>",
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ENTITY e \"v\">]><a/>",
  };
  for (const std::string& doc : docs) {
    EventRecorder reference;
    bool reference_ok = ParseString(doc, &reference).ok();
    for (int round = 0; round < 30; ++round) {
      EventRecorder chunked;
      SaxParser parser(&chunked);
      Status status;
      size_t i = 0;
      while (i < doc.size() && status.ok()) {
        size_t n = 1 + rng() % 7;
        status = parser.Feed(std::string_view(doc).substr(i, n));
        i += n;
      }
      if (status.ok()) status = parser.Finish();
      EXPECT_EQ(status.ok(), reference_ok) << doc;
      if (status.ok() && reference_ok) {
        EXPECT_EQ(chunked.events(), reference.events()) << doc;
      }
    }
  }
}

TEST(ParserRobustnessTest, VeryLongTokens) {
  // 1 MB attribute value and text run; exercise buffer compaction.
  std::string big(1 << 20, 'x');
  EXPECT_TRUE(TryParse("<a v=\"" + big + "\">" + big + "</a>"));
  // Long tag name.
  std::string name(10000, 'n');
  EXPECT_TRUE(TryParse("<" + name + "/>"));
}

TEST(ParserRobustnessTest, ManySiblingsAndDeepNesting) {
  std::string wide = "<r>";
  for (int i = 0; i < 50000; ++i) wide += "<x/>";
  wide += "</r>";
  InvariantHandler handler;
  ASSERT_TRUE(ParseString(wide, &handler).ok());
  EXPECT_EQ(handler.elements(), 50001);

  std::string deep;
  for (int i = 0; i < 10000; ++i) deep += "<d>";
  for (int i = 0; i < 10000; ++i) deep += "</d>";
  EXPECT_TRUE(TryParse(deep));
}

TEST(ParserRobustnessTest, NonAsciiBytesInNamesAndText) {
  // Bytes >= 0x80 are accepted in names (UTF-8 tolerant mode).
  EXPECT_TRUE(TryParse("<caf\xC3\xA9>\xC3\xBC</caf\xC3\xA9>"));
  // But names cannot start with a digit or symbol.
  EXPECT_FALSE(TryParse("<9a/>"));
  EXPECT_FALSE(TryParse("<-a/>"));
}

TEST(ParserRobustnessTest, FeedAfterErrorKeepsFailing) {
  InvariantHandler handler;
  SaxParser parser(&handler);
  ASSERT_FALSE(parser.Feed("<a></b>").ok());
  EXPECT_FALSE(parser.Feed("<c/>").ok());
  EXPECT_FALSE(parser.Finish().ok());
}

TEST(ParserRobustnessTest, FeedAfterFinishRejected) {
  InvariantHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("<a/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_FALSE(parser.Feed("<b/>").ok());
}

}  // namespace
}  // namespace xaos::xml
