// Tests for reference decoding/escaping (xml/entities) and XmlWriter, plus
// the util string helpers and Status machinery.

#include "gtest/gtest.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "xml/entities.h"
#include "xml/xml_writer.h"

namespace xaos {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = ParseError("bad things");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad things");
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);

  StatusOr<int> e = InvalidArgumentError("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return InvalidArgumentError("inner");
    return 7;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    XAOS_ASSIGN_OR_RETURN(int x, inner(fail));
    return x + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_FALSE(outer(true).ok());
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(IsAllXmlWhitespace(" \t\r\n"));
  EXPECT_FALSE(IsAllXmlWhitespace(" x "));
}

TEST(EntitiesTest, DecodePredefined) {
  auto out = xml::DecodeReferences("&amp;&lt;&gt;&apos;&quot;");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "&<>'\"");
}

TEST(EntitiesTest, DecodeNumeric) {
  auto out = xml::DecodeReferences("&#65;&#x42;&#x1F600;");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "AB\xF0\x9F\x98\x80");
}

TEST(EntitiesTest, RejectsInvalid) {
  EXPECT_FALSE(xml::DecodeReferences("&bogus;").ok());
  EXPECT_FALSE(xml::DecodeReferences("&#;").ok());
  EXPECT_FALSE(xml::DecodeReferences("&#x;").ok());
  EXPECT_FALSE(xml::DecodeReferences("&unterminated").ok());
  // U+0000 and surrogates are not XML characters.
  EXPECT_FALSE(xml::DecodeReferences("&#0;").ok());
  EXPECT_FALSE(xml::DecodeReferences("&#xD800;").ok());
}

TEST(EntitiesTest, Escaping) {
  EXPECT_EQ(xml::EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(xml::EscapeAttributeValue("a\"b\nc"), "a&quot;b&#10;c");
}

TEST(XmlWriterTest, SimpleDocument) {
  std::string out;
  xml::XmlWriter writer(&out);
  writer.StartElement("a");
  writer.WriteAttribute("x", "1");
  writer.StartElement("b");
  writer.WriteText("hi & bye");
  writer.EndElement();
  writer.StartElement("c");
  writer.EndElement();
  writer.EndElement();
  EXPECT_EQ(out, "<a x=\"1\"><b>hi &amp; bye</b><c/></a>");
}

TEST(XmlWriterTest, SelfClosingEmptyElements) {
  std::string out;
  xml::XmlWriter writer(&out);
  writer.StartElement("a");
  writer.EndElement();
  EXPECT_EQ(out, "<a/>");
}

TEST(XmlWriterTest, Indentation) {
  std::string out;
  xml::XmlWriter writer(&out, 2);
  writer.StartElement("a");
  writer.StartElement("b");
  writer.EndElement();
  writer.EndElement();
  EXPECT_EQ(out, "<a>\n  <b/>\n</a>");
}

TEST(XmlWriterTest, DeclarationFirst) {
  std::string out;
  xml::XmlWriter writer(&out);
  writer.WriteDeclaration();
  writer.StartElement("a");
  writer.EndElement();
  EXPECT_EQ(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(XmlWriterTest, TextElementHelper) {
  std::string out;
  xml::XmlWriter writer(&out);
  writer.StartElement("r");
  writer.WriteTextElement("name", "v<al>");
  writer.EndElement();
  EXPECT_EQ(out, "<r><name>v&lt;al&gt;</name></r>");
}

}  // namespace
}  // namespace xaos
