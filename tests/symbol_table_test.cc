// SymbolTable unit and concurrency tests: the intern path takes a mutex,
// lookups are lock-free — so N threads hammering Intern/Lookup/Name over an
// overlapping name universe must agree on one Symbol per name, see every
// published symbol's spelling, and never tear (the TSan CI job runs this
// binary to certify the lock-free read paths).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/symbol_table.h"

namespace xaos::util {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  Symbol a = table.Intern("alpha");
  Symbol b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, table.Intern("alpha"));
  EXPECT_EQ(b, table.Intern("beta"));
  EXPECT_EQ(2u, table.size());
}

TEST(SymbolTableTest, SymbolsAreDenseFromZero) {
  SymbolTable table;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<Symbol>(i), table.Intern("name" + std::to_string(i)));
  }
  EXPECT_EQ(100u, table.size());
}

TEST(SymbolTableTest, LookupNeverInserts) {
  SymbolTable table;
  EXPECT_EQ(kInvalidSymbol, table.Lookup("ghost"));
  EXPECT_EQ(0u, table.size());
  Symbol s = table.Intern("ghost");
  EXPECT_EQ(s, table.Lookup("ghost"));
}

TEST(SymbolTableTest, NameRoundTrips) {
  SymbolTable table;
  // Enough names to force several bucket-array doublings.
  std::vector<Symbol> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(table.Intern("tag_" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ("tag_" + std::to_string(i), table.Name(symbols[static_cast<size_t>(i)]));
  }
}

// --- concurrency ------------------------------------------------------------

// Many threads intern an overlapping universe of names while others look up
// and resolve spellings. Correctness contract under race: one stable Symbol
// per name, Name(Intern(x)) == x always, size() is monotone, and any Symbol
// observed via Lookup resolves to the exact spelling.
TEST(SymbolTableStressTest, ConcurrentInterning) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kNames = 2000;  // shared universe; forces heavy collision
  constexpr int kRounds = 4;

  std::atomic<bool> failed{false};
  std::vector<std::vector<Symbol>> per_thread(kThreads,
                                              std::vector<Symbol>(kNames));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kNames; ++i) {
          // Interleave the universe differently per thread so inserts and
          // hits mix at every moment.
          int pick = (i * (t + 1) + round) % kNames;
          std::string name = "elem_" + std::to_string(pick);
          Symbol s = table.Intern(name);
          if (s < 0 || table.Name(s) != name) {
            failed.store(true);
            return;
          }
          // Lock-free read paths while other threads insert.
          if (table.Lookup(name) != s) {
            failed.store(true);
            return;
          }
        }
      }
      // Resolve the whole universe once more so every thread records every
      // name (the strided walk above skips indices when t+1 shares a factor
      // with kNames).
      for (int i = 0; i < kNames; ++i) {
        per_thread[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            table.Intern("elem_" + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_FALSE(failed.load());

  // Every thread resolved every name to the same Symbol.
  for (int i = 0; i < kNames; ++i) {
    Symbol expected = per_thread[0][static_cast<size_t>(i)];
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(expected, per_thread[static_cast<size_t>(t)]
                                    [static_cast<size_t>(i)])
          << "thread " << t << " disagrees on name " << i;
    }
  }
  EXPECT_EQ(static_cast<size_t>(kNames), table.size());
}

// Readers racing a writer that grows the table through multiple rehash
// generations: Lookup must never miss a name that was interned before the
// reader started, and Name must never return a torn spelling.
TEST(SymbolTableStressTest, LookupDuringGrowth) {
  SymbolTable table;
  constexpr int kPrefill = 512;
  constexpr int kGrowth = 8000;
  for (int i = 0; i < kPrefill; ++i) {
    table.Intern("stable_" + std::to_string(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kPrefill; ++i) {
          std::string name = "stable_" + std::to_string(i);
          Symbol s = table.Lookup(name);
          if (s == kInvalidSymbol || table.Name(s) != name) {
            failed.store(true);
            stop.store(true);
            return;
          }
        }
      }
    });
  }
  // Writer: push the table through several doublings while readers run.
  for (int i = 0; i < kGrowth; ++i) {
    table.Intern("growth_" + std::to_string(i));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(static_cast<size_t>(kPrefill + kGrowth), table.size());
}

}  // namespace
}  // namespace xaos::util
