// XPath lexer and parser tests: the paper's Rxp grammar, abbreviated
// syntax, extensions, and error reporting.

#include <string>

#include "gtest/gtest.h"
#include "xpath/ast.h"
#include "xpath/lexer.h"
#include "xpath/parser.h"

namespace xaos::xpath {
namespace {

// Parses and unparses; the canonical form uses explicit axes.
std::string RoundTrip(std::string_view expr) {
  StatusOr<Expression> parsed = ParseExpression(expr);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " for " << expr;
  if (!parsed.ok()) return "<error>";
  return ToString(*parsed);
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("/a//b[@c='x' and d]|*");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kSlash, TokenKind::kName, TokenKind::kDoubleSlash,
                TokenKind::kName, TokenKind::kLeftBracket, TokenKind::kAt,
                TokenKind::kName, TokenKind::kEquals, TokenKind::kLiteral,
                TokenKind::kName, TokenKind::kName, TokenKind::kRightBracket,
                TokenKind::kPipe, TokenKind::kStar, TokenKind::kEnd}));
}

TEST(LexerTest, AxisNamesWithHyphens) {
  auto tokens = Tokenize("descendant-or-self::a");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "descendant-or-self");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDoubleColon);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a:b").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a % b").ok());
}

TEST(ParserTest, PaperGrammar) {
  EXPECT_EQ(RoundTrip("/descendant::Y[child::U]/descendant::W[ancestor::Z/"
                      "child::V]"),
            "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]");
}

TEST(ParserTest, AbbreviatedSyntax) {
  EXPECT_EQ(RoundTrip("//Y[U]//W"),
            "/descendant::Y[child::U]/descendant::W");
  EXPECT_EQ(RoundTrip("/a/b"), "/child::a/child::b");
  EXPECT_EQ(RoundTrip("a//b"), "child::a/descendant::b");
  EXPECT_EQ(RoundTrip("//x/.."), "/descendant::x/parent::*");
  EXPECT_EQ(RoundTrip("//x/."), "/descendant::x/self::*");
  EXPECT_EQ(RoundTrip("//a/@id"), "/descendant::a/attribute::id");
  EXPECT_EQ(RoundTrip("//a[@id='x']"),
            "/descendant::a[attribute::id='x']");
}

TEST(ParserTest, PredicateCombinators) {
  EXPECT_EQ(RoundTrip("//a[b and c]"),
            "/descendant::a[child::b and child::c]");
  EXPECT_EQ(RoundTrip("//a[b or c]"),
            "/descendant::a[child::b or child::c]");
  EXPECT_EQ(RoundTrip("//a[b and (c or d)]"),
            "/descendant::a[child::b and (child::c or child::d)]");
  // Multiple bracketed predicates are a conjunction.
  EXPECT_EQ(RoundTrip("//a[b][c]"), "/descendant::a[child::b][child::c]");
}

TEST(ParserTest, AbsolutePredicatePath) {
  EXPECT_EQ(RoundTrip("//a[/b/c]"),
            "/descendant::a[/child::b/child::c]");
}

TEST(ParserTest, BackwardAxes) {
  StatusOr<Expression> parsed = ParseExpression("//a/ancestor::b/parent::c");
  ASSERT_TRUE(parsed.ok());
  const LocationPath& path = parsed->union_branches[0];
  EXPECT_EQ(path.steps[1].axis, Axis::kAncestor);
  EXPECT_EQ(path.steps[2].axis, Axis::kParent);
  EXPECT_TRUE(UsesBackwardAxes(*parsed));
  EXPECT_FALSE(UsesBackwardAxes(*ParseExpression("//a/b")));
}

TEST(ParserTest, Union) {
  StatusOr<Expression> parsed = ParseExpression("//a | //b | //c");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->union_branches.size(), 3u);
}

TEST(ParserTest, OutputMarkers) {
  StatusOr<Expression> parsed = ParseExpression("//$a/$b");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->union_branches[0].steps[0].output_marked);
  EXPECT_TRUE(parsed->union_branches[0].steps[1].output_marked);
  // Marker after an explicit axis.
  parsed = ParseExpression("/child::$a");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->union_branches[0].steps[0].output_marked);
}

TEST(ParserTest, TextNodeTest) {
  EXPECT_EQ(RoundTrip("//a[text()='x']"),
            "/descendant::a[child::text()='x']");
  EXPECT_EQ(RoundTrip("//a/text()"), "/descendant::a/child::text()");
}

TEST(ParserTest, NodeTestCount) {
  StatusOr<Expression> parsed =
      ParseExpression("//a[b and c/d]//e[f]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(NodeTestCount(*parsed), 6);
}

TEST(ParserTest, ElementsNamedLikeOperators) {
  // `and` and `or` are names in step position.
  EXPECT_EQ(RoundTrip("/and/or"), "/child::and/child::or");
  EXPECT_EQ(RoundTrip("//a[and and or]"),
            "/descendant::a[child::and and child::or]");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("//a[").ok());
  EXPECT_FALSE(ParseExpression("//a]").ok());
  EXPECT_FALSE(ParseExpression("//a[]").ok());
  EXPECT_FALSE(ParseExpression("/a/").ok());
  EXPECT_FALSE(ParseExpression("//bogus::a").ok());
  EXPECT_FALSE(ParseExpression("//a=b").ok());
  EXPECT_FALSE(ParseExpression("//a[b=c]").ok());  // literal required
  // Value comparison restricted to attribute/text steps.
  auto unsupported = ParseExpression("//a[b='x']");
  EXPECT_FALSE(unsupported.ok());
  EXPECT_EQ(unsupported.status().code(), StatusCode::kUnsupported);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  Status s = ParseExpression("//a[b").status();
  EXPECT_NE(s.message().find("offset"), std::string::npos);
}

TEST(ParserTest, SinglePathHelper) {
  EXPECT_TRUE(ParseSinglePath("//a/b").ok());
  EXPECT_FALSE(ParseSinglePath("//a | //b").ok());
}

}  // namespace
}  // namespace xaos::xpath
