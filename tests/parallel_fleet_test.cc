// ParallelFleet tests: the sharded multi-thread evaluator must be
// observationally identical to the sequential MultiQueryEvaluator — same
// per-query verdicts and the same canonical result items — for any worker
// count, across hand-picked axis coverage, the random workload generator,
// multi-batch documents and reuse across documents. This is the
// differential harness the TSan CI job runs over the concurrent paths.

#include <string>
#include <vector>

#include "baseline/compare.h"
#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "gen/random_workload.h"
#include "gen/xmark_generator.h"
#include "gtest/gtest.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

// Evaluates every expression through one sequential MultiQueryEvaluator and
// through ParallelFleets with `worker_counts` workers, requiring identical
// matched flags and canonical result items per query. `options` lets tests
// force multi-batch capture with tiny budgets.
void ExpectParallelTransparent(const std::vector<std::string>& expressions,
                               const std::string& xml,
                               const std::vector<int>& worker_counts = {1, 2,
                                                                        4},
                               core::ParallelFleetOptions options = {}) {
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  core::MultiQueryEvaluator sequential;
  for (const core::Query& query : queries) sequential.AddQuery(query);
  ASSERT_TRUE(xml::ParseString(xml, &sequential).ok());
  ASSERT_TRUE(sequential.status().ok()) << sequential.status();

  for (int workers : worker_counts) {
    options.num_workers = workers;
    core::ParallelFleet fleet(options);
    for (const core::Query& query : queries) fleet.AddQuery(query);
    ASSERT_TRUE(xml::ParseString(xml, &fleet).ok());
    ASSERT_TRUE(fleet.status().ok()) << fleet.status();

    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(sequential.Matched(q), fleet.Matched(q))
          << "verdict mismatch for " << expressions[q] << " at " << workers
          << " workers";
      EXPECT_EQ(baseline::CanonicalFromResult(sequential.Result(q)),
                baseline::CanonicalFromResult(fleet.Result(q)))
          << "result mismatch for " << expressions[q] << " at " << workers
          << " workers";
    }
  }
}

TEST(ParallelFleetTest, AxisCoverage) {
  const std::string doc =
      "<a k=\"1\"><b><a><c/></a><d/></b><c/>"
      "<b x=\"y\"><c/><a/><e>text</e></b></a>";
  ExpectParallelTransparent(
      {
          "//a//c",                    // descendant
          "//c/ancestor::a",           // backward axis
          "/a/b/a/c",                  // child spine
          "//*[c]",                    // wildcard (always-dispatch)
          "//b[@x]",                   // attribute test
          "//c/following-sibling::a",  // sibling (dense stack)
          "//e[text()='text']",        // text test
          "//b[c]/a | //a[c]",         // union
          "//zzz",                     // label absent: never woken
          "//d/parent::b",             // parent
      },
      doc);
}

TEST(ParallelFleetTest, TinyBatchesForceMultiBatchDocuments) {
  // Two-event batches: every document spans many batches, exercising batch
  // boundaries in the middle of open elements and the end-of-document latch.
  core::ParallelFleetOptions options;
  options.max_batch_events = 2;
  options.max_batch_text_bytes = 16;
  options.ring_capacity = 2;
  ExpectParallelTransparent(
      {"//a//c", "//c/ancestor::a", "//b[@x]", "//e[text()='text']"},
      "<a k=\"1\"><b><a><c/></a><d/></b><c/>"
      "<b x=\"y\"><c/><a/><e>text</e></b></a>",
      {1, 2, 4}, options);
}

TEST(ParallelFleetTest, MoreWorkersThanQueries) {
  // Worker count clamps to the query count; results stay identical.
  ExpectParallelTransparent({"//b/c"}, "<a><b><c/></b><b/></a>", {4});
}

TEST(ParallelFleetTest, ReuseAcrossDocuments) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::ParallelFleetOptions options;
  options.num_workers = 2;
  core::ParallelFleet fleet(options);
  size_t q = fleet.AddQuery(*query);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &fleet).ok());
  EXPECT_TRUE(fleet.Matched(q));
  ASSERT_TRUE(xml::ParseString("<a><b/><c/></a>", &fleet).ok());
  EXPECT_FALSE(fleet.Matched(q));
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &fleet).ok());
  EXPECT_TRUE(fleet.Matched(q));
}

TEST(ParallelFleetTest, MatchedQueriesMergesInAscendingOrder) {
  std::vector<std::string> expressions = {"//b/c", "//zzz", "//a", "//d"};
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(*query));
  }
  core::ParallelFleetOptions options;
  options.num_workers = 3;
  core::ParallelFleet fleet(options);
  for (const core::Query& query : queries) fleet.AddQuery(query);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b><d/></a>", &fleet).ok());
  EXPECT_EQ((std::vector<size_t>{0, 2, 3}), fleet.MatchedQueries());
}

TEST(ParallelFleetTest, ShardAccountingCoversAllQueriesAndEvents) {
  std::vector<std::string> expressions;
  for (int i = 0; i < 10; ++i) {
    expressions.push_back("//tag_" + std::to_string(i));
  }
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(*query));
  }
  core::ParallelFleetOptions options;
  options.num_workers = 4;
  core::ParallelFleet fleet(options);
  for (const core::Query& query : queries) fleet.AddQuery(query);
  ASSERT_TRUE(xml::ParseString("<tag_0><tag_1/><tag_2/></tag_0>", &fleet).ok());

  std::vector<core::ParallelShardStats> stats = fleet.ShardStats();
  ASSERT_EQ(4u, stats.size());
  size_t queries_covered = 0;
  for (const core::ParallelShardStats& shard : stats) {
    queries_covered += shard.query_count;
    // Every shard replays the whole stream: start-doc, 3 start, 3 end,
    // end-doc = 8 events.
    EXPECT_EQ(8u, shard.events_processed);
    EXPECT_GE(shard.batches_consumed, 1u);
  }
  EXPECT_EQ(expressions.size(), queries_covered);
  EXPECT_GE(fleet.batches_published(), 1u);
}

// Random workloads, cross-producted as in multi_engine_test: every
// generated query evaluated over every generated document, sequential vs
// parallel at 1/2/4 workers.
class RandomParallelFleetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomParallelFleetTest, ParallelTransparent) {
  uint64_t seed = GetParam();
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 300;
  doc_options.max_noise_depth = 6;

  std::vector<std::string> expressions;
  std::vector<std::string> documents;
  for (uint64_t i = 0; i < 4; ++i) {
    auto workload =
        gen::GenerateWorkload(query_options, doc_options, seed * 16 + i);
    ASSERT_TRUE(workload.ok()) << workload.status();
    expressions.push_back(workload->expression);
    documents.push_back(workload->document);
  }
  for (const std::string& document : documents) {
    ExpectParallelTransparent(expressions, document);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParallelFleetTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(ParallelFleetTest, XMarkSmoke) {
  // A larger document through small rings: exercises producer back-pressure
  // (ring-full stalls) without any correctness drift.
  gen::XMarkOptions doc_options;
  doc_options.scale = 0.002;
  const std::string doc = gen::GenerateXMark(doc_options);

  std::vector<std::string> expressions = {
      "/site/regions//item/name", "//person/name", "//category/description",
      "//item[payment]/name",     "//zzz_absent",
  };
  core::ParallelFleetOptions options;
  options.ring_capacity = 2;
  options.max_batch_events = 64;
  ExpectParallelTransparent(expressions, doc, {2, 4}, options);
}

}  // namespace
}  // namespace xaos
