// DOM substrate tests: building, navigation, replay, serialization.

#include <string>

#include "dom/dom_builder.h"
#include "dom/dom_replayer.h"
#include "dom/serializer.h"
#include "gtest/gtest.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::dom {
namespace {

TEST(DocumentTest, ManualConstruction) {
  Document doc;
  NodeId a = doc.CreateElement("a");
  doc.AppendChild(doc.document_node(), a);
  NodeId b = doc.CreateElement("b");
  doc.AppendChild(a, b);
  NodeId t = doc.CreateText("hello");
  doc.AppendChild(b, t);

  EXPECT_EQ(doc.root_element(), a);
  EXPECT_EQ(doc.parent(b), a);
  EXPECT_EQ(doc.level(a), 1);
  EXPECT_EQ(doc.level(t), 3);
  EXPECT_EQ(doc.element_count(), 2u);
  EXPECT_EQ(doc.StringValue(a), "hello");
}

TEST(DomBuilderTest, BuildsTreeInDocumentOrder) {
  auto doc = ParseToDocument("<a><b>x</b><c y=\"1\"><d/></c></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Document& d = *doc;

  NodeId a = d.root_element();
  EXPECT_EQ(d.name(a), "a");
  NodeId b = d.first_child(a);
  EXPECT_EQ(d.name(b), "b");
  NodeId c = d.next_sibling(b);
  EXPECT_EQ(d.name(c), "c");
  ASSERT_NE(d.FindAttribute(c, "y"), nullptr);
  EXPECT_EQ(*d.FindAttribute(c, "y"), "1");
  EXPECT_EQ(d.FindAttribute(c, "z"), nullptr);
  // NodeIds ascend in document order.
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(d.element_count(), 4u);
}

TEST(DomBuilderTest, TextNodes) {
  auto doc = ParseToDocument("<a>pre<b/>post</a>");
  ASSERT_TRUE(doc.ok());
  NodeId a = doc->root_element();
  NodeId t1 = doc->first_child(a);
  EXPECT_EQ(doc->kind(t1), NodeKind::kText);
  EXPECT_EQ(doc->text(t1), "pre");
  EXPECT_EQ(doc->StringValue(a), "prepost");
}

TEST(DomReplayerTest, ReplayMatchesOriginalEvents) {
  const std::string xml =
      "<a x=\"1\"><b>text</b><c><d/><d>more</d></c></a>";
  xml::EventRecorder direct;
  ASSERT_TRUE(xml::ParseString(xml, &direct).ok());

  auto doc = ParseToDocument(xml);
  ASSERT_TRUE(doc.ok());
  xml::EventRecorder replayed;
  ReplayDocument(*doc, &replayed);

  EXPECT_EQ(direct.events(), replayed.events());
}

TEST(DomReplayerTest, SubtreeReplay) {
  auto doc = ParseToDocument("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  NodeId b = doc->first_child(doc->root_element());
  xml::EventRecorder recorder;
  ReplaySubtree(*doc, b, &recorder);
  ASSERT_EQ(recorder.events().size(), 4u);
  EXPECT_EQ(recorder.events()[0].name, "b");
  EXPECT_EQ(recorder.events()[1].name, "c");
}

TEST(SerializerTest, RoundTrip) {
  const std::string xml =
      "<a x=\"1&amp;2\"><b>text &lt;here&gt;</b><c/></a>";
  auto doc = ParseToDocument(xml);
  ASSERT_TRUE(doc.ok());
  std::string serialized = SerializeDocument(*doc);
  // Re-parse the serialization: same tree.
  auto doc2 = ParseToDocument(serialized);
  ASSERT_TRUE(doc2.ok()) << doc2.status() << " in " << serialized;
  EXPECT_EQ(SerializeDocument(*doc2), serialized);
  EXPECT_EQ(doc2->element_count(), doc->element_count());
}

TEST(SerializerTest, SubtreeSerialization) {
  auto doc = ParseToDocument("<a><b q=\"v\">t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  NodeId b = doc->first_child(doc->root_element());
  EXPECT_EQ(SerializeSubtree(*doc, b), "<b q=\"v\">t</b>");
}

TEST(DocumentTest, ApproximateMemoryGrowsWithContent) {
  auto small = ParseToDocument("<a/>");
  std::string big_xml = "<a>";
  for (int i = 0; i < 1000; ++i) big_xml += "<b attr=\"value\">text</b>";
  big_xml += "</a>";
  auto big = ParseToDocument(big_xml);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_GT(big->ApproximateMemoryBytes(),
            100 * small->ApproximateMemoryBytes());
}

}  // namespace
}  // namespace xaos::dom
