// Sibling axes (following-sibling / preceding-sibling): the paper states
// χαoς "can be extended to handle all thirteen axis specifiers"; this suite
// exercises that extension, including the deferred-satisfaction machinery
// (a closed element's following siblings arrive later) and its interaction
// with optimistic undo.

#include <string>
#include <vector>

#include "baseline/brute_force_matcher.h"
#include "baseline/compare.h"
#include "baseline/navigational_engine.h"
#include "core/multi_engine.h"
#include "dom/dom_builder.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using test::EvalStreaming;
using test::Names;
using test::Ordinals;

TEST(SiblingTest, FollowingSiblingStep) {
  const std::string xml = "<r><a/><b/><a/><c/></r>";
  // Elements after each a under the same parent.
  auto items = EvalStreaming("//a/following-sibling::*", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"b", "a", "c"}));
  items = EvalStreaming("//a/following-sibling::c", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{5}));
}

TEST(SiblingTest, PrecedingSiblingStep) {
  const std::string xml = "<r><a/><b/><a/><c/></r>";
  auto items = EvalStreaming("//c/preceding-sibling::a", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 4}));
  EXPECT_TRUE(EvalStreaming("//b/preceding-sibling::c", xml).empty());
}

TEST(SiblingTest, SiblingsRequireSameParent) {
  // b is in a different subtree: not a sibling of a.
  const std::string xml = "<r><k><a/></k><b/></r>";
  EXPECT_TRUE(EvalStreaming("//a/following-sibling::b", xml).empty());
  EXPECT_TRUE(EvalStreaming("//b/preceding-sibling::a", xml).empty());
  // But at the right level, it works.
  EXPECT_EQ(EvalStreaming("//k/following-sibling::b", xml).size(), 1u);
}

TEST(SiblingTest, FollowingSiblingPredicateIsDeferred) {
  // At </a> the sibling b has not been seen: the a-matching must stay
  // pending and complete when b closes.
  const std::string xml = "<r><a/><x/><b/></r>";
  auto items = EvalStreaming("//a[following-sibling::b]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
  // And fail cleanly when b never arrives.
  EXPECT_TRUE(EvalStreaming("//a[following-sibling::b]",
                            "<r><a/><x/></r>")
                  .empty());
}

TEST(SiblingTest, PrecedingSiblingPredicate) {
  const std::string xml = "<r><b/><a/><a/></r>";
  auto items = EvalStreaming("//a[preceding-sibling::b]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{3, 4}));
}

TEST(SiblingTest, ChainedSiblingSteps) {
  const std::string xml = "<r><a/><b/><c/></r>";
  auto items =
      EvalStreaming("//a/following-sibling::b/following-sibling::c", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{4}));
  items = EvalStreaming("//c/preceding-sibling::b/preceding-sibling::a", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
}

TEST(SiblingTest, SiblingWithDescendantConstraint) {
  const std::string xml =
      "<r><a/><b><k/></b><a/><b/></r>";
  // a's with a following b sibling that contains k.
  auto items = EvalStreaming("//a[following-sibling::b[k]]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
}

TEST(SiblingTest, DeferredCompletionCascades) {
  // Chain of deferred completions: a needs fs b, which needs fs c.
  const std::string xml = "<r><a/><b/><c/></r>";
  auto items = EvalStreaming(
      "//a[following-sibling::b[following-sibling::c]]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(EvalStreaming(
                  "//a[following-sibling::b[following-sibling::c]]",
                  "<r><a/><b/></r>")
                  .empty());
}

TEST(SiblingTest, RetractionWhenOptimisticSiblingDies) {
  // b qualifies only optimistically (its own ancestor-z-with-v is pending);
  // the a[fs::b] matching must first complete and then be retracted when
  // b's condition fails, and survive when a second valid b arrives.
  const std::string xml_fail =
      "<r><z><a/><b><w/></b></z></r>";
  // //a[following-sibling::b[w/ancestor::z[q]]] — z has no q: b's predicate
  // fails after optimistic adoption.
  auto items = EvalStreaming(
      "//a[following-sibling::b[w/ancestor::z[q]]]", xml_fail);
  EXPECT_TRUE(items.empty());

  const std::string xml_ok = "<r><z><q/><a/><b><w/></b></z></r>";
  items = EvalStreaming(
      "//a[following-sibling::b[w/ancestor::z[q]]]", xml_ok);
  EXPECT_EQ(items.size(), 1u);
}

TEST(SiblingTest, MixedWithBackwardAxes) {
  const std::string xml =
      "<r><g><m/><a/><x><w/></x></g><g><a/><x><w/></x></g></r>";
  // w's whose x parent has a preceding sibling a preceded by m.
  auto items = EvalStreaming(
      "//w/parent::x/preceding-sibling::a[preceding-sibling::m]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{4}));
}

TEST(SiblingTest, RecursiveSiblingsUnderNestedParents) {
  const std::string xml = "<r><a><a/><b/></a><b/></r>";
  auto items = EvalStreaming("//a/following-sibling::b", xml);
  // Inner a(3) has sibling b(4); outer a(2) has sibling b(5).
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{4, 5}));
}

TEST(SiblingTest, ConfirmationWaitsForSibling) {
  auto trees = query::CompileToXTrees("//a[following-sibling::b]");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  const std::string xml = "<r><a/><x/><b/><y/></r>";
  xml::SaxParser parser(&engine);
  size_t b_end = xml.find("<b/>") + 4;
  for (size_t i = 0; i < xml.size(); ++i) {
    ASSERT_TRUE(parser.Feed(std::string_view(xml).substr(i, 1)).ok());
    if (i + 1 < b_end) {
      EXPECT_FALSE(engine.match_confirmed()) << "confirmed at byte " << i + 1;
    }
  }
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_TRUE(engine.match_confirmed());
}

// Differential sweep with sibling axes enabled in the random generator.
class SiblingDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SiblingDifferentialTest, EnginesAgree) {
  gen::RandomQueryOptions query_options;
  query_options.allow_siblings = true;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 500;
  doc_options.max_noise_depth = 6;

  auto workload =
      gen::GenerateWorkload(query_options, doc_options, GetParam());
  ASSERT_TRUE(workload.ok()) << workload.status();

  auto streaming =
      core::EvaluateStreaming(workload->expression, workload->document);
  ASSERT_TRUE(streaming.ok())
      << streaming.status() << " for " << workload->expression;
  auto doc = dom::ParseToDocument(workload->document);
  ASSERT_TRUE(doc.ok());

  baseline::NavigationalEngine nav(&*doc);
  auto nav_refs = nav.Evaluate(workload->expression);
  ASSERT_TRUE(nav_refs.ok());

  auto trees = query::CompileToXTrees(workload->expression);
  ASSERT_TRUE(trees.ok());
  std::set<baseline::CanonicalItem> oracle_items;
  for (const query::XTree& tree : *trees) {
    auto outcome = baseline::BruteForceMatch(*doc, tree, 20'000'000);
    ASSERT_TRUE(outcome.complete);
    oracle_items.insert(outcome.items.begin(), outcome.items.end());
  }

  auto streaming_items = baseline::CanonicalFromResult(*streaming);
  auto nav_items = baseline::CanonicalFromRefs(*doc, *nav_refs);
  std::vector<baseline::CanonicalItem> oracle(oracle_items.begin(),
                                              oracle_items.end());
  EXPECT_EQ(streaming_items, nav_items) << workload->expression;
  EXPECT_EQ(streaming_items, oracle) << workload->expression;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiblingDifferentialTest,
                         ::testing::Range<uint64_t>(5000, 5100));

}  // namespace
}  // namespace xaos
