// Navigational baseline engine and brute-force oracle tests.

#include <string>
#include <vector>

#include "baseline/brute_force_matcher.h"
#include "baseline/compare.h"
#include "baseline/navigational_engine.h"
#include "dom/dom_builder.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"

namespace xaos::baseline {
namespace {

std::vector<CanonicalItem> Eval(std::string_view xpath,
                                std::string_view xml) {
  auto doc = dom::ParseToDocument(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  NavigationalEngine engine(&*doc);
  auto refs = engine.Evaluate(xpath);
  EXPECT_TRUE(refs.ok()) << refs.status();
  return CanonicalFromRefs(*doc, *refs);
}

TEST(NavigationalEngineTest, BasicAxes) {
  const std::string xml = "<a><b><c/></b><c/></a>";
  EXPECT_EQ(Eval("/a/b", xml).size(), 1u);
  EXPECT_EQ(Eval("//c", xml).size(), 2u);
  EXPECT_EQ(Eval("//c/parent::b", xml).size(), 1u);
  EXPECT_EQ(Eval("//c/ancestor::a", xml).size(), 1u);
}

TEST(NavigationalEngineTest, PaperExample) {
  auto items = Eval(test::kFigure3Query, test::kFigure2Document);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].ordinal, 7u);
  EXPECT_EQ(items[1].ordinal, 8u);
}

TEST(NavigationalEngineTest, PredicatesAndOr) {
  const std::string xml = "<r><a><b/></a><a><c/></a><a/></r>";
  EXPECT_EQ(Eval("//a[b or c]", xml).size(), 2u);
  EXPECT_EQ(Eval("//a[b and c]", xml).size(), 0u);
}

TEST(NavigationalEngineTest, Attributes) {
  const std::string xml = "<r><a id=\"x\"/><a/></r>";
  auto items = Eval("//a/@id", xml);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, "x");
  EXPECT_EQ(Eval("//a[@id='x']", xml).size(), 1u);
  EXPECT_EQ(Eval("//a[@id='y']", xml).size(), 0u);
}

TEST(NavigationalEngineTest, NodeVisitsGrowWithPredicateNesting) {
  // The baseline re-traverses subtrees per context node: on a nested chain
  // of n `a` elements, //a[descendant::c] walks each of the n overlapping
  // subtrees in full — Θ(n²) visits for a Θ(n) document. This is the
  // super-linear behaviour of Section 1 that χαoς avoids.
  auto build = [](int n) {
    std::string xml;
    for (int i = 0; i < n; ++i) xml += "<a>";
    xml += "<c/>";
    for (int i = 0; i < n; ++i) xml += "</a>";
    return xml;
  };
  auto visits = [&](int n) {
    auto doc = dom::ParseToDocument(build(n));
    NavigationalEngine engine(&*doc);
    EXPECT_TRUE(engine.Evaluate("//a[descendant::c]").ok());
    return engine.node_visits();
  };
  uint64_t v1 = visits(50);
  uint64_t v2 = visits(100);
  // Quadratic growth: doubling the document roughly quadruples the work.
  EXPECT_GT(v2, 3 * v1);
}

TEST(NavigationalEngineTest, VisitBudgetEnforced) {
  BaselineOptions options;
  options.max_node_visits = 10;
  std::string xml = "<r>";
  for (int i = 0; i < 100; ++i) xml += "<a/>";
  xml += "</r>";
  auto doc = dom::ParseToDocument(xml);
  NavigationalEngine engine(&*doc, options);
  auto result = engine.Evaluate("//a");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BruteForceTest, MatchesNavigationalOnPaperExample) {
  auto doc = dom::ParseToDocument(test::kFigure2Document);
  ASSERT_TRUE(doc.ok());
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  BruteForceOutcome outcome = BruteForceMatch(*doc, trees->front());
  EXPECT_TRUE(outcome.matched);
  EXPECT_TRUE(outcome.complete);
  ASSERT_EQ(outcome.items.size(), 2u);
  EXPECT_EQ(outcome.items[0].ordinal, 7u);
  EXPECT_EQ(outcome.items[1].ordinal, 8u);
}

TEST(BruteForceTest, CountsFigure4Matchings) {
  auto doc = dom::ParseToDocument(test::kFigure2Document);
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(doc.ok() && trees.ok());
  // Mark every x-node as output to observe full matchings.
  query::XTree tree = trees->front();
  for (query::XNodeId v = 1; v < tree.size(); ++v) tree.MarkOutput(v);
  BruteForceOutcome outcome = BruteForceMatch(*doc, tree);
  // Figure 4: four total matchings at Root.
  EXPECT_EQ(outcome.tuples.size(), 4u);
}

TEST(BruteForceTest, NoMatch) {
  auto doc = dom::ParseToDocument("<a><b/></a>");
  auto trees = query::CompileToXTrees("//c");
  ASSERT_TRUE(doc.ok() && trees.ok());
  BruteForceOutcome outcome = BruteForceMatch(*doc, trees->front());
  EXPECT_FALSE(outcome.matched);
  EXPECT_TRUE(outcome.items.empty());
}

}  // namespace
}  // namespace xaos::baseline
