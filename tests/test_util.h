// Shared helpers for the xaos test suite.

#ifndef XAOS_TESTS_TEST_UTIL_H_
#define XAOS_TESTS_TEST_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "baseline/compare.h"
#include "baseline/navigational_engine.h"
#include "core/multi_engine.h"
#include "dom/dom_builder.h"
#include "dom/dom_replayer.h"
#include "gtest/gtest.h"

namespace xaos::test {

// Evaluates `xpath` over `xml` with the streaming engine; fails the test on
// error. Returns canonical items (sorted).
inline std::vector<baseline::CanonicalItem> EvalStreaming(
    std::string_view xpath, std::string_view xml,
    core::EngineOptions options = {}) {
  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming(xpath, xml, options);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  return baseline::CanonicalFromResult(*result);
}

// Evaluates with the navigational baseline over a DOM built from `xml`.
inline std::vector<baseline::CanonicalItem> EvalBaseline(
    std::string_view xpath, std::string_view xml) {
  StatusOr<dom::Document> doc = dom::ParseToDocument(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  if (!doc.ok()) return {};
  baseline::NavigationalEngine engine(&doc.value());
  StatusOr<std::vector<baseline::NodeRef>> refs = engine.Evaluate(xpath);
  EXPECT_TRUE(refs.ok()) << refs.status();
  if (!refs.ok()) return {};
  return baseline::CanonicalFromRefs(doc.value(), *refs);
}

// Names (element tags) of the items, in order.
inline std::vector<std::string> Names(
    const std::vector<baseline::CanonicalItem>& items) {
  std::vector<std::string> names;
  names.reserve(items.size());
  for (const auto& item : items) names.push_back(item.name);
  return names;
}

// Ordinals of the items, in order.
inline std::vector<uint32_t> Ordinals(
    const std::vector<baseline::CanonicalItem>& items) {
  std::vector<uint32_t> ordinals;
  ordinals.reserve(items.size());
  for (const auto& item : items) ordinals.push_back(item.ordinal);
  return ordinals;
}

// The paper's running example document (Figure 2). Element ordinals match
// the paper's ids: X=1, Y=2, W=3, Z=4, V=5, V=6, W=7, W=8, U=9, Y=10,
// Z=11, W=12, U=13.
inline constexpr std::string_view kFigure2Document = R"(<X>
  <Y>
    <W/>
    <Z> <V/> <V/> <W> <W/> </W> </Z>
    <U/>
  </Y>
  <Y>
    <Z> <W/> </Z>
    <U/>
  </Y>
</X>)";

// The paper's running example query (Figure 3):
// /descendant::Y[child::U]/descendant::W[ancestor::Z/child::V].
inline constexpr std::string_view kFigure3Query =
    "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]";

}  // namespace xaos::test

#endif  // XAOS_TESTS_TEST_UTIL_H_
