// Query-compilation tests: x-tree construction (Appendix A), x-dag
// derivation (Section 3.2), or-expansion (Section 5.2), re-rooting and
// intersection (Section 5.4).

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/normalizer.h"
#include "query/reroot.h"
#include "query/xdag.h"
#include "query/xtree.h"
#include "query/xtree_builder.h"
#include "xpath/parser.h"

namespace xaos::query {
namespace {

XTree Build(std::string_view expr) {
  auto trees = CompileToXTrees(expr);
  EXPECT_TRUE(trees.ok()) << trees.status();
  EXPECT_EQ(trees->size(), 1u);
  return std::move(trees->front());
}

TEST(XTreeBuilderTest, SimpleChain) {
  EXPECT_EQ(Build("/a/b/c").ToString(),
            "Root(a<child>(b<child>(c<child>[out])))");
}

TEST(XTreeBuilderTest, PredicatesBranch) {
  EXPECT_EQ(Build("//a[b and c]/d").ToString(),
            "Root(a<desc>(b<child>, c<child>, d<child>[out]))");
}

TEST(XTreeBuilderTest, NestedPredicates) {
  EXPECT_EQ(Build("//a[b[c]]").ToString(),
            "Root(a<desc>[out](b<child>(c<child>)))");
}

TEST(XTreeBuilderTest, AbsolutePredicateAnchorsAtRoot) {
  EXPECT_EQ(Build("//a[/b]").ToString(),
            "Root(a<desc>[out], b<child>)");
}

TEST(XTreeBuilderTest, PaperFigure3) {
  EXPECT_EQ(
      Build("/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]")
          .ToString(),
      "Root(Y<desc>(U<child>, W<desc>[out](Z<anc>(V<child>))))");
}

TEST(XTreeBuilderTest, OutputIsRightmostMainPathNode) {
  XTree tree = Build("//a[b]/c[d]");
  std::vector<XNodeId> outputs = tree.OutputNodes();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(tree.node(outputs[0]).test.Label(), "c");
}

TEST(XTreeBuilderTest, ExplicitOutputMarkers) {
  XTree tree = Build("//$a/$b/c");
  std::vector<XNodeId> outputs = tree.OutputNodes();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(tree.node(outputs[0]).test.Label(), "a");
  EXPECT_EQ(tree.node(outputs[1]).test.Label(), "b");
}

TEST(XTreeBuilderTest, AttributeAndTextLeaves) {
  EXPECT_EQ(Build("//a/@id").ToString(),
            "Root(a<desc>(@id<attr>[out]))");
  EXPECT_EQ(Build("//a[@id='x']").ToString(),
            "Root(a<desc>[out](@id='x'<attr>))");
  EXPECT_EQ(Build("//a[text()='t']").ToString(),
            "Root(a<desc>[out](#text='t'<child>))");
}

TEST(XTreeBuilderTest, RejectsStepsBelowLeaves) {
  EXPECT_FALSE(CompileToXTrees("//a/@id/b").ok());
  EXPECT_FALSE(CompileToXTrees("//a/text()/b").ok());
  EXPECT_FALSE(CompileToXTrees("//a/@id[b]").ok());
}

TEST(XTreeBuilderTest, RejectsRootOnlyExpression) {
  EXPECT_FALSE(CompileToXTrees("/").ok());
}

TEST(XTreeBuilderTest, HasBackwardEdges) {
  EXPECT_TRUE(Build("//a/ancestor::b").HasBackwardEdges());
  EXPECT_FALSE(Build("//a/b").HasBackwardEdges());
}

TEST(XDagTest, ForwardEdgesKept) {
  XTree tree = Build("/a/b//c");
  XDag dag(tree);
  EXPECT_EQ(dag.ToString(), "Root-child->a, a-child->b, b-descendant->c");
}

TEST(XDagTest, BackwardEdgesReversed) {
  XTree tree = Build("//w/ancestor::z/parent::p");
  XDag dag(tree);
  std::string rendered = dag.ToString();
  // ancestor edge w->z reversed to z-descendant->w; parent edge z->p
  // reversed to p-child->z; z and p get Root descendant edges (rule 3).
  EXPECT_NE(rendered.find("z-descendant->w"), std::string::npos);
  EXPECT_NE(rendered.find("p-child->z"), std::string::npos);
  EXPECT_NE(rendered.find("Root-descendant->p"), std::string::npos);
}

TEST(XDagTest, TopologicalOrderRespectsEdges) {
  XTree tree = Build(
      "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]");
  XDag dag(tree);
  for (XNodeId v = 0; v < tree.size(); ++v) {
    for (const XDagEdge& edge : dag.incoming(v)) {
      EXPECT_LT(dag.TopologicalRank(edge.from), dag.TopologicalRank(edge.to));
    }
  }
  EXPECT_EQ(dag.TopologicalOrder().front(), kRootXNode);
}

TEST(NormalizerTest, NoOrsIsIdentity) {
  auto parsed = xpath::ParseExpression("//a[b]/c");
  ASSERT_TRUE(parsed.ok());
  auto paths = ExpandOrs(*parsed);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 1u);
}

TEST(NormalizerTest, SimpleOrSplits) {
  auto parsed = xpath::ParseExpression("//a[b or c]");
  ASSERT_TRUE(parsed.ok());
  auto paths = ExpandOrs(*parsed);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 2u);
  EXPECT_EQ(xpath::ToString((*paths)[0]), "/descendant::a[child::b]");
  EXPECT_EQ(xpath::ToString((*paths)[1]), "/descendant::a[child::c]");
}

TEST(NormalizerTest, DistributesOverAnd) {
  auto parsed = xpath::ParseExpression("//a[(b or c) and (d or e)]");
  ASSERT_TRUE(parsed.ok());
  auto paths = ExpandOrs(*parsed);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 4u);
}

TEST(NormalizerTest, UnionBranchesCount) {
  auto parsed = xpath::ParseExpression("//a[b or c] | //d");
  ASSERT_TRUE(parsed.ok());
  auto paths = ExpandOrs(*parsed);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 3u);
}

TEST(NormalizerTest, LimitEnforced) {
  auto parsed = xpath::ParseExpression("//a[(b or c) and (d or e)]");
  ASSERT_TRUE(parsed.ok());
  auto paths = ExpandOrs(*parsed, /*max_paths=*/3);
  EXPECT_FALSE(paths.ok());
  EXPECT_EQ(paths.status().code(), StatusCode::kResourceExhausted);
}

TEST(RerootTest, ChainInversion) {
  XTree tree = Build("/a/b/c");  // output c
  auto rerooted = Reroot(tree, tree.OutputNodes()[0]);
  ASSERT_TRUE(rerooted.ok()) << rerooted.status();
  // From c (which keeps its output mark): the old child edges invert to
  // parent edges all the way up to the old Root.
  EXPECT_EQ(rerooted->ToString(),
            "Root[out](b<parent>(a<parent>(#root<parent>)))");
}

TEST(RerootTest, PreservesBranches) {
  XTree tree = Build("//a[x]/b");  // output b; a has predicate branch x
  auto rerooted = Reroot(tree, tree.OutputNodes()[0]);
  ASSERT_TRUE(rerooted.ok());
  EXPECT_EQ(rerooted->ToString(),
            "Root[out](a<parent>(x<child>, #root<anc>))");
}

TEST(IntersectTest, PaperSection54Example) {
  // //Y[U]//W  ∩  //Z[V]//W  — the x-dag of Figure 3b read as an
  // intersection.
  XTree a = Build("//Y[U]//W");
  XTree b = Build("//Z[V]//W");
  auto merged = Intersect(a, b);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->ToString(),
            "Root(Y<desc>(U<child>, W<desc>[out](Z<anc>(V<child>, "
            "#root<anc>))))");
  ASSERT_EQ(merged->OutputNodes().size(), 1u);
}

TEST(IntersectTest, IncompatibleOutputsRejected) {
  XTree a = Build("//a//x");
  XTree b = Build("//b//y");
  EXPECT_FALSE(Intersect(a, b).ok());
}

TEST(IntersectTest, WildcardMergesToSpecific) {
  XTree a = Build("//a/*");
  XTree b = Build("//b/x");
  auto merged = Intersect(a, b);
  ASSERT_TRUE(merged.ok());
  XNodeId out = merged->OutputNodes()[0];
  EXPECT_EQ(merged->node(out).test.Label(), "x");
}

TEST(JoinTest, KeepsExtraMarks) {
  // //$a//$x ⋈ //$b//$x — merged at the shared main output x; the extra
  // $-marks a and b survive as additional tuple columns (Section 5.4's
  // //Y[$U]//$W ⋈_W //Z[$V]//$W example shape).
  XTree a = Build("//$a//$x");
  XTree b = Build("//$b//$x");
  auto joined = Join(a, b);
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_EQ(joined->OutputNodes().size(), 3u);
}

}  // namespace
}  // namespace xaos::query
