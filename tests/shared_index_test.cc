// Shared-prefix subscription index tests: hash-consing of the merged
// automaton (identical chains share states, near-misses do not), the
// shareability classifier, byte-identical duplicate dedupe, and the
// differential contract — the shared backend's verdicts and result items
// must equal the per-engine MultiQueryEvaluator's over hand-picked axis
// corpora, random workloads, chunked feeds, and ParallelFleet shardings.

#include <memory>
#include <string>
#include <vector>

#include "baseline/compare.h"
#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "core/shared_index.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

std::vector<query::XTree> Compile(const std::string& expression) {
  StatusOr<std::vector<query::XTree>> trees =
      query::CompileToXTrees(expression, /*max_paths=*/64);
  EXPECT_TRUE(trees.ok()) << expression << ": " << trees.status();
  return std::move(*trees);
}

// --- hash-consing -----------------------------------------------------------

TEST(SharedIndexBuilderTest, IdenticalQueriesShareAllStates) {
  core::SharedIndexBuilder builder;
  std::vector<query::XTree> trees = Compile("/a/b/c");
  ASSERT_TRUE(core::SharedIndexBuilder::Shareable(trees));
  builder.AddSubscription(trees);
  size_t after_first = builder.state_count();
  EXPECT_EQ(after_first, 4u);  // root + a + b + c
  EXPECT_EQ(builder.MarginalStates(trees), 0u);
  builder.AddSubscription(trees);
  EXPECT_EQ(builder.state_count(), after_first);  // fully shared
  EXPECT_EQ(builder.subscription_count(), 2u);
}

TEST(SharedIndexBuilderTest, SharedPrefixDivergentSuffix) {
  core::SharedIndexBuilder builder;
  builder.AddSubscription(Compile("/a/b/c"));
  // Shares root->a->b, adds one state for d.
  std::vector<query::XTree> second = Compile("/a/b/d");
  EXPECT_EQ(builder.MarginalStates(second), 1u);
  builder.AddSubscription(second);
  EXPECT_EQ(builder.state_count(), 5u);
}

TEST(SharedIndexBuilderTest, NearMissesDoNotShare) {
  // Same symbols but different axis or test kind must land on distinct
  // states: "/a/b" vs "//a/b" vs "/a/*".
  core::SharedIndexBuilder builder;
  builder.AddSubscription(Compile("/a/b"));
  size_t child_named = builder.state_count();
  builder.AddSubscription(Compile("//a/b"));
  EXPECT_GT(builder.state_count(), child_named);  // descendant != child
  size_t with_desc = builder.state_count();
  builder.AddSubscription(Compile("/a/*"));
  EXPECT_GT(builder.state_count(), with_desc);  // wildcard != named
}

TEST(SharedIndexBuilderTest, ShareabilityClassifier) {
  // Linear forward chains with element/wildcard tests share.
  EXPECT_TRUE(core::SharedIndexBuilder::Shareable(Compile("/a/b/c")));
  EXPECT_TRUE(core::SharedIndexBuilder::Shareable(Compile("//a//b")));
  EXPECT_TRUE(core::SharedIndexBuilder::Shareable(Compile("/a/*/c")));
  EXPECT_TRUE(core::SharedIndexBuilder::Shareable(Compile("//x")));
  // Predicates, backward axes, siblings, attributes, text: per-engine.
  EXPECT_FALSE(core::SharedIndexBuilder::Shareable(Compile("//a[b]/c")));
  EXPECT_FALSE(core::SharedIndexBuilder::Shareable(Compile("//c/ancestor::a")));
  EXPECT_FALSE(
      core::SharedIndexBuilder::Shareable(Compile("//c/following-sibling::d")));
  EXPECT_FALSE(core::SharedIndexBuilder::Shareable(Compile("//a[@k]")));
  EXPECT_FALSE(core::SharedIndexBuilder::Shareable(Compile("//a/@k")));
  EXPECT_FALSE(
      core::SharedIndexBuilder::Shareable(Compile("//e[text()='t']")));
}

TEST(SharedIndexBuilderTest, SharingRatioReflectsMerging) {
  core::SharedIndexBuilder builder;
  std::vector<query::XTree> trees = Compile("/a/b/c");
  for (int i = 0; i < 10; ++i) builder.AddSubscription(trees);
  std::unique_ptr<core::SharedIndex> index = builder.Build();
  // 10 identical 3-step chains collapsed into 3 states: 100 per mille.
  EXPECT_EQ(index->stats().chain_nodes, 30u);
  EXPECT_EQ(index->state_count(), 4u);
  EXPECT_EQ(index->SharingRatioPermille(), 100);
}

// --- duplicate dedupe -------------------------------------------------------

TEST(MultiQuerySharedTest, ByteIdenticalQueriesAlias) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator multi;
  size_t q0 = multi.AddQuery(*query);
  size_t q1 = multi.AddQuery(*query);
  size_t q2 = multi.AddQuery(*query);
  EXPECT_EQ(multi.alias_count(), 2u);
  EXPECT_EQ(multi.shared_subscription_count(), 3u);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &multi).ok());
  for (size_t q : {q0, q1, q2}) {
    EXPECT_TRUE(multi.Matched(q));
    EXPECT_EQ(multi.Result(q).items.size(), 1u);
  }
}

TEST(MultiQuerySharedTest, UnshareableDuplicatesAliasToo) {
  // The dedupe is independent of the shared backend: an unshareable
  // expression repeated N times still runs its engines once.
  StatusOr<core::Query> query = core::Query::Compile("//c/ancestor::a");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator multi;
  size_t q0 = multi.AddQuery(*query);
  size_t q1 = multi.AddQuery(*query);
  EXPECT_EQ(multi.alias_count(), 1u);
  size_t engines_before = multi.engine_count();
  EXPECT_GT(engines_before, 0u);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &multi).ok());
  EXPECT_TRUE(multi.Matched(q0));
  EXPECT_TRUE(multi.Matched(q1));
  EXPECT_EQ(baseline::CanonicalFromResult(multi.Result(q0)),
            baseline::CanonicalFromResult(multi.Result(q1)));
}

// --- differential: shared backend vs per-engine oracle ----------------------

// Runs `expressions` over `xml` through a shared-enabled and a
// shared-disabled MultiQueryEvaluator and requires identical verdicts and
// canonical result items per query. Optionally feeds the parser in chunks
// of `chunk` bytes (0 = one shot).
void ExpectSharedTransparent(const std::vector<std::string>& expressions,
                             const std::string& xml, size_t chunk = 0) {
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  core::MultiQueryEvaluator shared;
  core::EngineOptions oracle_options;
  oracle_options.enable_shared_index = false;
  core::MultiQueryEvaluator oracle(oracle_options);
  for (const core::Query& query : queries) {
    shared.AddQuery(query);
    oracle.AddQuery(query);
  }
  EXPECT_EQ(oracle.shared_subscription_count(), 0u);

  auto parse = [&](core::MultiQueryEvaluator* evaluator) {
    if (chunk == 0) {
      ASSERT_TRUE(xml::ParseString(xml, evaluator).ok());
      return;
    }
    xml::SaxParser parser(evaluator);
    for (size_t i = 0; i < xml.size(); i += chunk) {
      ASSERT_TRUE(
          parser.Feed(std::string_view(xml).substr(i, chunk)).ok());
    }
    ASSERT_TRUE(parser.Finish().ok());
  };
  parse(&shared);
  parse(&oracle);
  ASSERT_TRUE(shared.status().ok()) << shared.status();
  ASSERT_TRUE(oracle.status().ok()) << oracle.status();

  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(oracle.Matched(q), shared.Matched(q))
        << "verdict mismatch for " << expressions[q];
    EXPECT_EQ(oracle.MatchConfirmed(q), shared.MatchConfirmed(q))
        << "confirmation mismatch for " << expressions[q];
    EXPECT_EQ(baseline::CanonicalFromResult(oracle.Result(q)),
              baseline::CanonicalFromResult(shared.Result(q)))
        << "result mismatch for " << expressions[q];
  }
}

const char kAxisDoc[] =
    "<a k=\"1\"><b><a><c/></a><d/></b><c/>"
    "<b x=\"y\"><c/><a/><e>text</e></b></a>";

// Shareable chains, unshareable queries, and duplicates side by side: the
// mixed pool exercises all three backends and the verdict fan-out.
const char* const kAxisCorpus[] = {
    "/a/b/c",          "/a/b/c",
    "//a//c",          "//c",
    "/a/*/c",          "//*",
    "//b/a",           "//zzz",
    "//c/ancestor::a", "//b[c]/a | //a[c]",
    "//b[@x]",         "//c/following-sibling::a",
    "//e[text()='text']",
};

TEST(SharedDifferentialTest, AxisCorpus) {
  ExpectSharedTransparent(
      std::vector<std::string>(kAxisCorpus,
                               kAxisCorpus + std::size(kAxisCorpus)),
      kAxisDoc);
}

TEST(SharedDifferentialTest, ChunkedFeeds) {
  std::vector<std::string> expressions(kAxisCorpus,
                                       kAxisCorpus + std::size(kAxisCorpus));
  for (size_t chunk : {1u, 3u, 16u}) {
    ExpectSharedTransparent(expressions, kAxisDoc, chunk);
  }
}

TEST(SharedDifferentialTest, ReuseAndAbortAcrossDocuments) {
  StatusOr<core::Query> query = core::Query::Compile("/a/b/c");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator multi;
  size_t q = multi.AddQuery(*query);
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &multi).ok());
  EXPECT_TRUE(multi.Matched(q));
  // A non-matching document on the same evaluator resets the verdict.
  ASSERT_TRUE(xml::ParseString("<a><b/><c/></a>", &multi).ok());
  EXPECT_FALSE(multi.Matched(q));
  // An aborted document never reports matched, even though the automaton
  // had already confirmed the subscription mid-stream.
  multi.StartDocument();
  xml::QName a("a", util::SymbolTable::Global().Intern("a"));
  xml::QName b("b", util::SymbolTable::Global().Intern("b"));
  xml::QName c("c", util::SymbolTable::Global().Intern("c"));
  multi.StartElement(a, {});
  multi.StartElement(b, {});
  multi.StartElement(c, {});
  EXPECT_TRUE(multi.MatchConfirmed(q));
  multi.AbortDocument(InternalError("producer died"));
  EXPECT_FALSE(multi.Matched(q));
  EXPECT_FALSE(multi.status().ok());
  // The evaluator stays reusable.
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &multi).ok());
  EXPECT_TRUE(multi.Matched(q));
}

class SharedRandomDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedRandomDifferentialTest, MatchesOracle) {
  uint64_t seed = GetParam();
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 300;
  doc_options.max_noise_depth = 6;

  std::vector<std::string> expressions;
  std::vector<std::string> documents;
  for (uint64_t i = 0; i < 4; ++i) {
    auto workload =
        gen::GenerateWorkload(query_options, doc_options, seed * 16 + i);
    ASSERT_TRUE(workload.ok()) << workload.status();
    expressions.push_back(workload->expression);
    documents.push_back(workload->document);
  }
  for (const std::string& document : documents) {
    ExpectSharedTransparent(expressions, document);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedRandomDifferentialTest,
                         ::testing::Range<uint64_t>(0, 15));

// --- ParallelFleet sharding -------------------------------------------------

TEST(SharedParallelTest, WorkersAgreeWithOracle) {
  std::vector<std::string> expressions(kAxisCorpus,
                                       kAxisCorpus + std::size(kAxisCorpus));
  // Pad with shareable chains so every shard gets shared subscriptions.
  for (int i = 0; i < 8; ++i) {
    expressions.push_back("//b/absent_" + std::to_string(i));
    expressions.push_back("/a/b/c");  // duplicates alias within each shard
  }
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  core::EngineOptions oracle_options;
  oracle_options.enable_shared_index = false;
  core::MultiQueryEvaluator oracle(oracle_options);
  for (const core::Query& query : queries) oracle.AddQuery(query);
  ASSERT_TRUE(xml::ParseString(kAxisDoc, &oracle).ok());

  for (int workers : {1, 2, 4}) {
    core::ParallelFleetOptions options;
    options.num_workers = workers;
    core::ParallelFleet fleet(options);
    for (const core::Query& query : queries) fleet.AddQuery(query);
    ASSERT_TRUE(xml::ParseString(kAxisDoc, &fleet).ok());
    ASSERT_TRUE(fleet.status().ok()) << fleet.status();
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(oracle.Matched(q), fleet.Matched(q))
          << "workers=" << workers << " query " << expressions[q];
      EXPECT_EQ(baseline::CanonicalFromResult(oracle.Result(q)),
                baseline::CanonicalFromResult(fleet.Result(q)))
          << "workers=" << workers << " query " << expressions[q];
    }
  }
}

}  // namespace
}  // namespace xaos
