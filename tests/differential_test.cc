// Differential property tests: for random (document, query) pairs, the
// streaming engine χαoς(SAX), the replayed-DOM engine χαoς(DOM), the
// navigational baseline, and the brute-force oracle must agree exactly.

#include <random>
#include <string>
#include <vector>

#include "baseline/brute_force_matcher.h"
#include "baseline/compare.h"
#include "baseline/navigational_engine.h"
#include "core/multi_engine.h"
#include "dom/dom_builder.h"
#include "dom/dom_replayer.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using baseline::CanonicalItem;

struct AllResults {
  std::vector<CanonicalItem> streaming;
  std::vector<CanonicalItem> replayed;
  std::vector<CanonicalItem> navigational;
  std::vector<CanonicalItem> brute_force;
};

// Evaluates `expression` over `xml` with all four engines.
AllResults EvaluateAll(const std::string& expression, const std::string& xml) {
  AllResults results;

  auto streaming = core::EvaluateStreaming(expression, xml);
  EXPECT_TRUE(streaming.ok()) << streaming.status();
  if (streaming.ok()) {
    results.streaming = baseline::CanonicalFromResult(*streaming);
  }

  auto doc = dom::ParseToDocument(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  if (!doc.ok()) return results;

  auto replayed = core::EvaluateOnDocument(expression, *doc);
  EXPECT_TRUE(replayed.ok()) << replayed.status();
  if (replayed.ok()) {
    results.replayed = baseline::CanonicalFromResult(*replayed);
  }

  baseline::NavigationalEngine nav(&*doc);
  auto nav_result = nav.Evaluate(expression);
  EXPECT_TRUE(nav_result.ok()) << nav_result.status();
  if (nav_result.ok()) {
    results.navigational = baseline::CanonicalFromRefs(*doc, *nav_result);
  }

  auto trees = query::CompileToXTrees(expression);
  EXPECT_TRUE(trees.ok()) << trees.status();
  if (trees.ok()) {
    std::set<CanonicalItem> items;
    for (const query::XTree& tree : *trees) {
      baseline::BruteForceOutcome outcome = baseline::BruteForceMatch(
          *doc, tree, /*max_explored=*/20'000'000);
      EXPECT_TRUE(outcome.complete);
      items.insert(outcome.items.begin(), outcome.items.end());
    }
    results.brute_force.assign(items.begin(), items.end());
  }
  return results;
}

void ExpectAllAgree(const std::string& expression, const std::string& xml) {
  AllResults results = EvaluateAll(expression, xml);
  EXPECT_EQ(results.streaming, results.navigational)
      << "streaming vs navigational for " << expression;
  EXPECT_EQ(results.streaming, results.replayed)
      << "streaming vs replayed for " << expression;
  EXPECT_EQ(results.streaming, results.brute_force)
      << "streaming vs brute force for " << expression;
}

// --- hand-picked adversarial cases ----------------------------------------

TEST(DifferentialTest, HandPickedCases) {
  const std::string doc1 =
      "<a><b><a><c/></a></b><c/><b><c/><a/></b></a>";
  for (const char* query : {
           "//a//c",
           "//c/ancestor::a",
           "//c/ancestor::b/parent::a",
           "//a[b]//c",
           "//b[c]/a | //a[c]",
           "//c/ancestor::b[parent::a]",
           "//a/descendant::a",
           "//b/ancestor-or-self::b",
           "/a/b/a/c",
           "//*[c]",
           "//c/..",
       }) {
    ExpectAllAgree(query, doc1);
  }
}

TEST(DifferentialTest, RecursiveDocument) {
  std::string doc = "<a>";
  for (int i = 0; i < 6; ++i) doc += "<a><b/>";
  for (int i = 0; i < 6; ++i) doc += "</a>";
  doc += "</a>";
  for (const char* query : {
           "//a/a",
           "//b/ancestor::a",
           "//a[b]/a[b]",
           "//a[a[a[b]]]",
           "//b/ancestor::a[parent::a]/b",
       }) {
    ExpectAllAgree(query, doc);
  }
}

// --- randomized sweep -------------------------------------------------------

class RandomDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDifferentialTest, EnginesAgree) {
  uint64_t seed = GetParam();
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 600;
  doc_options.full_embed_probability = 0.05;
  doc_options.partial_embed_probability = 0.08;
  doc_options.max_noise_depth = 7;

  auto workload = gen::GenerateWorkload(query_options, doc_options, seed);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ExpectAllAgree(workload->expression, workload->document);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range<uint64_t>(0, 120));

// Random queries over a shared random document that was NOT derived from
// them (worst-case mismatch shapes).
class CrossDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossDifferentialTest, EnginesAgree) {
  uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  gen::RandomQueryOptions query_options;
  query_options.alphabet = 4;  // denser collisions
  xpath::LocationPath query = gen::GenerateRandomPath(query_options, rng);

  gen::RandomQueryOptions other_options;
  other_options.alphabet = 4;
  xpath::LocationPath other = gen::GenerateRandomPath(other_options, rng);
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 400;
  doc_options.alphabet = 4;
  doc_options.max_noise_depth = 6;
  auto doc = gen::GenerateDocumentForPath(other, doc_options, rng);
  ASSERT_TRUE(doc.ok());

  ExpectAllAgree(xpath::ToString(query), *doc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossDifferentialTest,
                         ::testing::Range<uint64_t>(1000, 1080));

}  // namespace
}  // namespace xaos
