// Public-API level tests: the one-shot helpers, compiled-query reuse,
// error propagation, and file-based streaming.

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "xaos.h"
#include "xml/file_source.h"

namespace xaos {
namespace {

TEST(ApiTest, EvaluateStreamingHappyPath) {
  auto result = core::EvaluateStreaming("//b", "<a><b/><b/></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matched);
  EXPECT_EQ(result->items.size(), 2u);
  EXPECT_EQ(result->ItemNames(),
            (std::vector<std::string>{"b", "b"}));
}

TEST(ApiTest, BadQueryReportsParseError) {
  auto result = core::EvaluateStreaming("//a[", "<a/>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ApiTest, UnsupportedQueryReportsUnsupported) {
  auto result = core::EvaluateStreaming("//a/@id/b", "<a/>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(ApiTest, BadXmlReportsParseErrorWithPosition) {
  auto result = core::EvaluateStreaming("//a", "<a><b></a>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("line"), std::string::npos);
}

TEST(ApiTest, EvaluateOnDocument) {
  auto doc = dom::ParseToDocument("<a><b/><c><b/></c></a>");
  ASSERT_TRUE(doc.ok());
  auto result = core::EvaluateOnDocument("//c/b", *doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 1u);
}

TEST(ApiTest, CompiledQueryIsReusableAcrossEvaluators) {
  auto query = core::Query::Compile("//a[b or c]");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->trees().size(), 2u);  // DNF expansion
  EXPECT_EQ(query->expression(), "//a[b or c]");

  core::StreamingEvaluator first(*query);
  core::StreamingEvaluator second(*query);
  ASSERT_TRUE(xml::ParseString("<a><b/></a>", &first).ok());
  ASSERT_TRUE(xml::ParseString("<a><x/></a>", &second).ok());
  EXPECT_TRUE(first.Result().matched);
  EXPECT_FALSE(second.Result().matched);
}

TEST(ApiTest, QueryOutlivedByEvaluator) {
  // The evaluator shares ownership of the compiled trees; destroying the
  // Query object must not invalidate a running evaluator.
  std::unique_ptr<core::StreamingEvaluator> evaluator;
  {
    auto query = core::Query::Compile("//b");
    ASSERT_TRUE(query.ok());
    evaluator = std::make_unique<core::StreamingEvaluator>(*query);
  }
  ASSERT_TRUE(xml::ParseString("<a><b/></a>", &*evaluator).ok());
  EXPECT_EQ(evaluator->Result().items.size(), 1u);
}

TEST(ApiTest, QueryFromTrees) {
  auto a = query::CompileToXTrees("//x//p");
  auto b = query::CompileToXTrees("//y//p");
  ASSERT_TRUE(a.ok() && b.ok());
  auto merged = query::Intersect(a->front(), b->front());
  ASSERT_TRUE(merged.ok());
  std::vector<query::XTree> trees;
  trees.push_back(std::move(*merged));
  core::Query query = core::Query::FromTrees(std::move(trees), "custom");
  core::StreamingEvaluator evaluator(query);
  ASSERT_TRUE(
      xml::ParseString("<r><x><y><p/></y></x><x><p/></x></r>", &evaluator)
          .ok());
  EXPECT_EQ(evaluator.Result().items.size(), 1u);
}

TEST(ApiTest, AggregateStatsSumAcrossDisjuncts) {
  auto query = core::Query::Compile("//a | //b");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  ASSERT_TRUE(xml::ParseString("<r><a/><b/><c/></r>", &evaluator).ok());
  core::EngineStats stats = evaluator.AggregateStats();
  EXPECT_EQ(stats.elements_total, 4u);
  EXPECT_GE(stats.structures_created, 2u);
}

TEST(ApiTest, ParseFileStreamsFromDisk) {
  std::string path = ::testing::TempDir() + "/xaos_api_test.xml";
  {
    std::ofstream out(path);
    out << "<a>";
    for (int i = 0; i < 1000; ++i) out << "<b x=\"" << i << "\"/>";
    out << "</a>";
  }
  auto query = core::Query::Compile("//b[@x='500']");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  // Tiny chunks exercise the incremental path.
  ASSERT_TRUE(xml::ParseFile(path, &evaluator, /*chunk_bytes=*/37).ok());
  EXPECT_EQ(evaluator.Result().items.size(), 1u);
  std::remove(path.c_str());
}

TEST(ApiTest, ParseFileMissingFile) {
  xml::EventRecorder recorder;
  Status status = xml::ParseFile("/nonexistent/path.xml", &recorder);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ApiTest, ParseFileMalformedContent) {
  std::string path = ::testing::TempDir() + "/xaos_api_bad.xml";
  {
    std::ofstream out(path);
    out << "<a><b></a>";
  }
  xml::EventRecorder recorder;
  EXPECT_FALSE(xml::ParseFile(path, &recorder).ok());
  std::remove(path.c_str());
}

TEST(ApiTest, OrExpansionLimitSurfaces) {
  std::string expr = "//a[";
  for (int i = 0; i < 8; ++i) {
    if (i > 0) expr += " and ";
    expr += "(b or c)";
  }
  expr += "]";
  auto query = core::Query::Compile(expr, /*max_paths=*/16);
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace xaos
