// Regression test for the paper's full worked example: the query of
// Figure 3 evaluated over the document of Figure 2, following the Table 2
// walkthrough — looking-for sets at key steps, the final solution
// {W(7), W(8)}, and the four total matchings of Figure 4.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/xaos_engine.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using core::LookingForEntry;
using core::XaosEngine;

// Renders a looking-for set as sorted "label" / "label@level" strings.
std::vector<std::string> Render(const std::vector<LookingForEntry>& entries) {
  std::vector<std::string> out;
  for (const LookingForEntry& entry : entries) {
    std::string s = entry.label;
    if (entry.level != LookingForEntry::kAnyLevel) {
      s += "@" + std::to_string(entry.level);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Drives the engine event by event, capturing the looking-for set after
// each event, exactly like Table 2's rightmost column.
class WalkthroughDriver {
 public:
  explicit WalkthroughDriver(XaosEngine* engine) : engine_(engine) {}

  void Run(std::string_view xml) {
    xml::EventRecorder recorder;
    ASSERT_TRUE(xml::ParseString(xml, &recorder).ok());
    for (const xml::Event& event : recorder.events()) {
      xml::ReplayEvents({event}, engine_);
      if (event.kind == xml::Event::Kind::kStartElement ||
          event.kind == xml::Event::Kind::kEndElement) {
        looking_for_after_.push_back(Render(engine_->DebugLookingForSet()));
      }
    }
  }

  // Looking-for set after the i-th element event (0-based; element events
  // only, matching Table 2 rows 2..27).
  const std::vector<std::string>& After(int i) const {
    return looking_for_after_[static_cast<size_t>(i)];
  }

 private:
  XaosEngine* engine_;
  std::vector<std::vector<std::string>> looking_for_after_;
};

class WalkthroughTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto trees = query::CompileToXTrees(test::kFigure3Query);
    ASSERT_TRUE(trees.ok()) << trees.status();
    ASSERT_EQ(trees->size(), 1u);
    tree_ = std::move(trees->front());
  }

  query::XTree tree_;
};

TEST_F(WalkthroughTest, XTreeMatchesFigure3a) {
  EXPECT_EQ(tree_.ToString(),
            "Root(Y<desc>(U<child>, W<desc>[out](Z<anc>(V<child>))))");
}

TEST_F(WalkthroughTest, XDagMatchesFigure3b) {
  query::XDag dag(tree_);
  // Edges: Root-desc->Y, Root-desc->Z (rule 3 on the reversed ancestor
  // edge's source... Z gets its incoming from rule 3), Y-child->U,
  // Y-desc->W, Z-desc->W (reversed ancestor), Z-child->V.
  std::string rendered = dag.ToString();
  EXPECT_NE(rendered.find("Root-descendant->Y"), std::string::npos);
  EXPECT_NE(rendered.find("Root-descendant->Z"), std::string::npos);
  EXPECT_NE(rendered.find("Y-child->U"), std::string::npos);
  EXPECT_NE(rendered.find("Y-descendant->W"), std::string::npos);
  EXPECT_NE(rendered.find("Z-descendant->W"), std::string::npos);
  EXPECT_NE(rendered.find("Z-child->V"), std::string::npos);
  // W has two incoming x-dag edges (the join point of Section 4).
  query::XNodeId w = query::kInvalidXNode;
  for (query::XNodeId v = 0; v < tree_.size(); ++v) {
    if (tree_.node(v).test.Label() == "W") w = v;
  }
  ASSERT_NE(w, query::kInvalidXNode);
  EXPECT_EQ(dag.incoming(w).size(), 2u);
}

TEST_F(WalkthroughTest, SolutionIsW7AndW8) {
  XaosEngine engine(&tree_);
  ASSERT_TRUE(xml::ParseString(test::kFigure2Document, &engine).ok());
  EXPECT_TRUE(engine.Matched());
  std::vector<uint32_t> ordinals;
  for (const core::OutputItem& item : engine.result().items) {
    ordinals.push_back(item.info.ordinal);
    EXPECT_EQ(item.info.name, "W");
  }
  EXPECT_EQ(ordinals, (std::vector<uint32_t>{7, 8}));
}

TEST_F(WalkthroughTest, Figure4TotalMatchings) {
  XaosEngine engine(&tree_);
  ASSERT_TRUE(xml::ParseString(test::kFigure2Document, &engine).ok());
  core::TupleEnumeration tuples = engine.OutputTuples();
  EXPECT_TRUE(tuples.complete);
  // Figure 4 lists four total matchings at Root; projected on the single
  // output node W they give W7 (x2) and W8 (x2) -> two distinct tuples.
  std::set<uint32_t> outputs;
  for (const core::OutputTuple& tuple : tuples.tuples) {
    ASSERT_EQ(tuple.size(), 1u);
    outputs.insert(tuple[0].ordinal);
  }
  EXPECT_EQ(outputs, (std::set<uint32_t>{7, 8}));
}

TEST_F(WalkthroughTest, LookingForSetsFollowTable2) {
  XaosEngine engine(&tree_);

  // Before the document: {(Root, 0)}.
  EXPECT_EQ(Render(engine.DebugLookingForSet()),
            (std::vector<std::string>{"Root@0"}));

  WalkthroughDriver driver(&engine);
  driver.Run(test::kFigure2Document);

  // Element events, in Table 2's order (the paper's step numbers shifted by
  // one because its step 1 is the virtual root event):
  //  index: 0 S:X1, 1 S:Y2, 2 S:W3, 3 E:W3, 4 S:Z4, 5 S:V5, 6 E:V5,
  //  7 S:V6, 8 E:V6, 9 S:W7, 10 S:W8, 11 E:W8, 12 E:W7, 13 E:Z4,
  //  14 S:U9, 15 E:U9, 16 E:Y2, 17 S:Y10, 18 S:Z11, 19 S:W12, 20 E:W12,
  //  21 E:Z11, 22 S:U13, 23 E:U13, 24 E:Y10, 25 E:X1.

  using V = std::vector<std::string>;
  // Step 2: after S:X1 — {(Y,inf), (Z,inf)}.
  EXPECT_EQ(driver.After(0), (V{"Y", "Z"}));
  // Step 3: after S:Y2 — {(Y,inf), (Z,inf), (U,3)}.
  EXPECT_EQ(driver.After(1), (V{"U@3", "Y", "Z"}));
  // Step 4: after S:W3 — U dropped while level > 3.
  EXPECT_EQ(driver.After(2), (V{"Y", "Z"}));
  // Step 5: after E:W3 — (U,3) returns.
  EXPECT_EQ(driver.After(3), (V{"U@3", "Y", "Z"}));
  // Step 6: after S:Z4 — {(Y,inf), (Z,inf), (W,inf), (V,4)}.
  EXPECT_EQ(driver.After(4), (V{"V@4", "W", "Y", "Z"}));
  // Step 7: after S:V5.
  EXPECT_EQ(driver.After(5), (V{"W", "Y", "Z"}));
  // Step 8: after E:V5.
  EXPECT_EQ(driver.After(6), (V{"V@4", "W", "Y", "Z"}));
  // Steps 11-12: inside W7 then W8 — still looking for W (recursion!).
  EXPECT_EQ(driver.After(9), (V{"W", "Y", "Z"}));
  EXPECT_EQ(driver.After(10), (V{"W", "Y", "Z"}));
  // Step 14: after E:W7.
  EXPECT_EQ(driver.After(12), (V{"V@4", "W", "Y", "Z"}));
  // Step 15: after E:Z4 — back to {(Y,inf),(Z,inf),(U,3)}.
  EXPECT_EQ(driver.After(13), (V{"U@3", "Y", "Z"}));
  // Step 18: after E:Y2.
  EXPECT_EQ(driver.After(16), (V{"Y", "Z"}));
  // Step 19: after S:Y10.
  EXPECT_EQ(driver.After(17), (V{"U@3", "Y", "Z"}));
  // Step 20: after S:Z11.
  EXPECT_EQ(driver.After(18), (V{"V@4", "W", "Y", "Z"}));
  // Step 23: after E:Z11 — undo happened; back to {(Y,inf),(Z,inf),(U,3)}.
  EXPECT_EQ(driver.After(21), (V{"U@3", "Y", "Z"}));
  // Step 27: after E:X1.
  EXPECT_EQ(driver.After(25), (V{"Y", "Z"}));

  // After the document: {(Root, 0)} again.
  EXPECT_EQ(Render(engine.DebugLookingForSet()),
            (std::vector<std::string>{"Root@0"}));
}

TEST_F(WalkthroughTest, UndoHappensAtStep23) {
  // The second Y subtree (Y10) contains Z11/W12 but no V: M(Z,11) is
  // optimistically adopted by M(W,12) at E:W12 and undone at E:Z11.
  XaosEngine engine(&tree_);
  ASSERT_TRUE(xml::ParseString(test::kFigure2Document, &engine).ok());
  EXPECT_GT(engine.stats().structures_undone, 0u);
  EXPECT_GT(engine.stats().optimistic_propagations, 0u);
}

}  // namespace
}  // namespace xaos
