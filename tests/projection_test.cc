// Document projection tests: static analysis (ProjectionSpec), the
// parser-side skip scanner, and the end-to-end guarantee that projection
// never changes results — for the streaming evaluator, the multi-query
// evaluator, and the parallel fleet — while enforcing parser limits and
// surviving chunk boundaries and aborts inside skipped regions.

#include <string>
#include <string_view>
#include <vector>

#include "baseline/compare.h"
#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "gen/random_workload.h"
#include "gen/xmark_generator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "query/projection.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using baseline::CanonicalItem;
using query::ProjectionSpec;

// --- static analysis --------------------------------------------------------

ProjectionSpec AnalyzeExpression(const std::string& expression) {
  auto trees = query::CompileToXTrees(expression);
  EXPECT_TRUE(trees.ok()) << trees.status();
  if (!trees.ok()) return ProjectionSpec::KeepAll("compile failure");
  return ProjectionSpec::Analyze(*trees);
}

TEST(ProjectionSpecTest, RootedChildPath) {
  ProjectionSpec spec = AnalyzeExpression("/site/catgraph/edge");
  ASSERT_FALSE(spec.keep_all) << spec.keep_all_reason;
  EXPECT_EQ(spec.ToString(), "levels=3 [site; catgraph; edge]");
  EXPECT_EQ(spec.seed_symbols.size(), 1u);  // only the level-1 name seeds
}

TEST(ProjectionSpecTest, AnchoredDescendantBecomesPortal) {
  ProjectionSpec spec = AnalyzeExpression("/a//b");
  ASSERT_FALSE(spec.keep_all) << spec.keep_all_reason;
  // `a` keeps its whole subtree (".."): the descendant step anchors there.
  EXPECT_EQ(spec.ToString(), "levels=1 [a..]");
}

TEST(ProjectionSpecTest, UnanchoredDescendantKeepsAll) {
  ProjectionSpec spec = AnalyzeExpression("//a");
  EXPECT_TRUE(spec.keep_all);
  EXPECT_NE(spec.keep_all_reason.find("unanchored"), std::string::npos)
      << spec.keep_all_reason;
}

TEST(ProjectionSpecTest, SiblingAxesKeepAll) {
  ProjectionSpec spec = AnalyzeExpression("/a/b/following-sibling::c");
  EXPECT_TRUE(spec.keep_all);
  EXPECT_NE(spec.keep_all_reason.find("sibling"), std::string::npos)
      << spec.keep_all_reason;
}

TEST(ProjectionSpecTest, FixedDepthWildcard) {
  ProjectionSpec spec = AnalyzeExpression("/a/*/c");
  ASSERT_FALSE(spec.keep_all) << spec.keep_all_reason;
  ASSERT_EQ(spec.levels.size(), 3u);
  EXPECT_FALSE(spec.levels[0].any_name);
  EXPECT_TRUE(spec.levels[1].any_name);
  EXPECT_FALSE(spec.levels[1].any_keep_subtree);
  EXPECT_EQ(spec.ToString(), "levels=3 [a; *; c]");
}

TEST(ProjectionSpecTest, TextAndAttributeNeeds) {
  util::Symbol b = util::SymbolTable::Global().Intern("b");
  ProjectionSpec text_spec = AnalyzeExpression("/a/b/text()");
  ASSERT_FALSE(text_spec.keep_all) << text_spec.keep_all_reason;
  ASSERT_EQ(text_spec.levels.size(), 2u);
  EXPECT_TRUE(text_spec.levels[1].names.at(b).needs_text);
  EXPECT_FALSE(text_spec.levels[1].names.at(b).needs_attributes);

  ProjectionSpec attr_spec = AnalyzeExpression("/a/b/@id");
  ASSERT_FALSE(attr_spec.keep_all) << attr_spec.keep_all_reason;
  ASSERT_EQ(attr_spec.levels.size(), 2u);
  EXPECT_TRUE(attr_spec.levels[1].names.at(b).needs_attributes);
}

TEST(ProjectionSpecTest, BackwardAxisDegradesSoundly) {
  // The parent-axis x-node becomes parentless after dag reversal and is
  // re-anchored under Root with a descendant edge — keep-all, never wrong.
  ProjectionSpec spec = AnalyzeExpression("/a/b/parent::a");
  EXPECT_TRUE(spec.keep_all);
}

TEST(ProjectionSpecTest, UnionAcrossQueries) {
  ProjectionSpec spec = AnalyzeExpression("/a/b");
  spec.UnionWith(AnalyzeExpression("/a/c//d"));
  ASSERT_FALSE(spec.keep_all) << spec.keep_all_reason;
  EXPECT_EQ(spec.ToString(), "levels=2 [a; b,c..]");

  spec.UnionWith(AnalyzeExpression("//e"));
  EXPECT_TRUE(spec.keep_all);  // keep-all absorbs
}

TEST(ProjectionSpecTest, SubtreeCaptureKeepsAll) {
  auto query = core::Query::Compile("/a/b");
  ASSERT_TRUE(query.ok());
  core::EngineOptions options;
  options.capture_output_subtrees = true;
  core::StreamingEvaluator evaluator(*query, options);
  EXPECT_TRUE(evaluator.projection_spec().keep_all);
}

// --- end-to-end differential helpers ---------------------------------------

struct RunOutcome {
  Status status;  // first failure: parse, limit, or engine
  bool matched = false;
  std::vector<CanonicalItem> items;
};

RunOutcome RunStreaming(const std::string& expression, const std::string& xml,
                        bool projection, size_t chunk_size = 0,
                        xml::ParserLimits limits = {}) {
  RunOutcome out;
  auto query = core::Query::Compile(expression);
  if (!query.ok()) {
    out.status = query.status();
    return out;
  }
  core::StreamingEvaluator evaluator(*query);
  xml::ParserOptions options;
  options.limits = limits;
  if (projection) options.projection_filter = evaluator.projection_filter();
  xml::SaxParser parser(&evaluator, options);
  Status status = Status::Ok();
  if (chunk_size == 0) {
    status = parser.Feed(xml);
  } else {
    std::string_view view(xml);
    for (size_t i = 0; i < view.size() && status.ok(); i += chunk_size) {
      status = parser.Feed(view.substr(i, chunk_size));
    }
  }
  if (status.ok()) status = parser.Finish();
  if (!status.ok()) {
    evaluator.AbortDocument(status);
    out.status = status;
    return out;
  }
  out.status = evaluator.status();
  core::QueryResult result = evaluator.Result();
  out.matched = result.matched;
  out.items = baseline::CanonicalFromResult(result);
  return out;
}

// Projection must be invisible whenever the unprojected parse succeeds:
// same verdict, same items (which encodes node-id/ordinal parity), in
// one-shot and tiny-chunk feeds alike.
void ExpectProjectionInvisible(const std::string& expression,
                               const std::string& xml) {
  RunOutcome off = RunStreaming(expression, xml, /*projection=*/false);
  ASSERT_TRUE(off.status.ok())
      << off.status << " for " << expression << " over " << xml;
  for (size_t chunk : {size_t{0}, size_t{1}, size_t{7}}) {
    RunOutcome on = RunStreaming(expression, xml, /*projection=*/true, chunk);
    EXPECT_TRUE(on.status.ok())
        << on.status << " (chunk=" << chunk << ") for " << expression;
    EXPECT_EQ(on.matched, off.matched)
        << expression << " over " << xml << " chunk=" << chunk;
    EXPECT_EQ(on.items, off.items)
        << expression << " over " << xml << " chunk=" << chunk;
  }
}

TEST(ProjectionDifferentialTest, AxisCorpus) {
  const std::string doc = "<a><b><a><c/></a></b><c/><b><c/><a/></b></a>";
  for (const char* expression : {
           "/a/b/a/c",
           "/a/c",
           "/a/b//c",
           "/a/*/a",
           "/a/b/a//c",
           "//a//c",  // keep-all: must still agree
           "//c/ancestor::a",
           "/a/b[c]/a | /a/c",
           "/a/d/e",  // no match: everything below /a/d skippable
       }) {
    ExpectProjectionInvisible(expression, doc);
  }
}

TEST(ProjectionDifferentialTest, SkippedRegionContents) {
  // Constructs inside skipped subtrees that a naive scanner would trip on:
  // markup in CDATA/comments/PIs, '>' in attribute values, entity refs,
  // nested same-name elements, whitespace-only runs, self-closing roots.
  for (const char* doc : {
           "<doc><skip>text &amp; more<inner>x</inner></skip><keep>v</keep>"
           "</doc>",
           "<doc><skip><![CDATA[</skip><oops>]]></skip><keep>v</keep></doc>",
           "<doc><skip><!-- <skip> </skip> --></skip><keep>v</keep></doc>",
           "<doc><skip><?pi data > more?></skip><keep>v</keep></doc>",
           "<doc><skip/><keep>v</keep></doc>",
           "<doc><skip att=\"a>b\"><inner a='1' b='2'/></skip>"
           "<keep attr=\"z\">v</keep></doc>",
           "<doc><skip><skip><skip/></skip></skip><keep>v</keep></doc>",
           "<doc><skip>  <i/>  </skip><keep>v</keep></doc>",
           "<doc><skip>&#32;&#x20;</skip><keep>v</keep></doc>",
           "<doc><skip>a<![CDATA[b]]>c</skip><keep>v</keep></doc>",
           "<doc>pre<skip>s</skip>mid<keep>v</keep>post</doc>",
       }) {
    for (const char* expression :
         {"/doc/keep", "/doc/keep/text()", "/doc/keep/@attr", "/doc//keep"}) {
      ExpectProjectionInvisible(expression, doc);
    }
  }
}

TEST(ProjectionDifferentialTest, WatermarkKeepsPortalSubtrees) {
  // `k` is a portal (keep_subtree): everything below any `k` stays, while
  // `s` subtrees at the same depth are skipped — including between two kept
  // `k` siblings, which exercises watermark replacement.
  const std::string doc =
      "<a><k><x/><y><x/></y></k><s><x/></s><k><q><x/></q></k><s/></a>";
  ExpectProjectionInvisible("/a/k//x", doc);
  ExpectProjectionInvisible("/a/k//x | /a/k", doc);
}

TEST(ProjectionDifferentialTest, RandomWorkloads) {
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 400;
  doc_options.max_noise_depth = 7;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto workload = gen::GenerateWorkload(query_options, doc_options, seed);
    ASSERT_TRUE(workload.ok()) << workload.status();
    // The generated expression itself (anchored at "//": keep-all) plus
    // rooted probes that actually skip on these documents.
    for (const char* expression :
         {"", "/*/A", "/*/A//B", "/*/*/C", "/*/*//D", "/*/*/*/E"}) {
      std::string expr = *expression != '\0' ? expression
                                             : workload->expression;
      ExpectProjectionInvisible(expr, workload->document);
    }
  }
}

// --- multi-query and parallel configurations --------------------------------

std::vector<std::string> XMarkQueries() {
  return {
      "/site/catgraph/edge",
      "/site/categories/category/name",
      "/site/people/person/address/city",
      "/site/regions//item/name",
      "/site/closed_auctions/closed_auction/price",
  };
}

TEST(ProjectionMultiQueryTest, MatchesUnprojectedEvaluator) {
  std::string doc = gen::GenerateXMark({.scale = 0.002, .seed = 7});
  std::vector<std::string> expressions = XMarkQueries();

  core::MultiQueryEvaluator with, without;
  for (const std::string& expression : expressions) {
    auto query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << query.status();
    with.AddQuery(*query);
    without.AddQuery(*query);
  }
  xml::ParserOptions options;
  options.projection_filter = with.projection_filter();
  ASSERT_FALSE(with.projection_spec().keep_all)
      << with.projection_spec().keep_all_reason;
  ASSERT_TRUE(xml::ParseString(doc, &with, options).ok());
  ASSERT_TRUE(xml::ParseString(doc, &without).ok());

  bool any_matched = false;
  for (size_t q = 0; q < expressions.size(); ++q) {
    EXPECT_EQ(with.Matched(q), without.Matched(q)) << expressions[q];
    any_matched |= without.Matched(q);
    EXPECT_EQ(baseline::CanonicalFromResult(with.Result(q)),
              baseline::CanonicalFromResult(without.Result(q)))
        << expressions[q];
  }
  EXPECT_TRUE(any_matched);  // the XMark probes are not vacuous

  // The evaluators are reusable: a second document through the same filter.
  std::string doc2 = gen::GenerateXMark({.scale = 0.001, .seed = 8});
  ASSERT_TRUE(xml::ParseString(doc2, &with, options).ok());
  ASSERT_TRUE(xml::ParseString(doc2, &without).ok());
  for (size_t q = 0; q < expressions.size(); ++q) {
    EXPECT_EQ(baseline::CanonicalFromResult(with.Result(q)),
              baseline::CanonicalFromResult(without.Result(q)))
        << expressions[q];
  }
}

TEST(ProjectionMultiQueryTest, ZeroQueriesSkipsEverything) {
  // An empty union is keep-nothing: the whole document (even the root) is
  // skipped, and the parse still succeeds.
  core::MultiQueryEvaluator evaluator;
  xml::ParserOptions options;
  options.projection_filter = evaluator.projection_filter();
  ASSERT_FALSE(evaluator.projection_spec().keep_all);
  EXPECT_TRUE(evaluator.projection_spec().levels.empty());
  EXPECT_TRUE(
      xml::ParseString("<a><b>t</b><!-- c --></a>", &evaluator, options).ok());
  EXPECT_TRUE(evaluator.status().ok());
}

TEST(ProjectionMultiQueryTest, KeepAllQueryDisablesSkipping) {
  core::MultiQueryEvaluator evaluator;
  auto rooted = core::Query::Compile("/site/catgraph/edge");
  auto anchored = core::Query::Compile("//person");
  ASSERT_TRUE(rooted.ok() && anchored.ok());
  evaluator.AddQuery(*rooted);
  evaluator.AddQuery(*anchored);
  // A keep-all union yields no filter at all: the parser runs unprojected
  // instead of paying a per-tag callback that never skips.
  EXPECT_EQ(evaluator.projection_filter(), nullptr);
  EXPECT_TRUE(evaluator.projection_spec().keep_all);

  std::string doc = gen::GenerateXMark({.scale = 0.001, .seed = 3});
  xml::ParserOptions options;
  options.projection_filter = evaluator.projection_filter();
  ASSERT_TRUE(xml::ParseString(doc, &evaluator, options).ok());
  EXPECT_TRUE(evaluator.Matched(1));
}

class ProjectionParallelFleetTest : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionParallelFleetTest, MatchesSequentialUnprojected) {
  std::string doc = gen::GenerateXMark({.scale = 0.002, .seed = 11});
  std::vector<std::string> expressions = XMarkQueries();

  core::ParallelFleetOptions fleet_options;
  fleet_options.num_workers = GetParam();
  fleet_options.max_batch_events = 64;  // several batches per document
  core::ParallelFleet fleet(fleet_options);
  core::MultiQueryEvaluator reference;
  for (const std::string& expression : expressions) {
    auto query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << query.status();
    fleet.AddQuery(*query);
    reference.AddQuery(*query);
  }
  xml::ParserOptions options;
  options.projection_filter = fleet.projection_filter();
  ASSERT_FALSE(fleet.projection_spec().keep_all);

  // Two documents back to back: per-document reset runs through the fleet.
  for (uint64_t seed : {11u, 12u}) {
    std::string text = gen::GenerateXMark({.scale = 0.002, .seed = seed});
    ASSERT_TRUE(xml::ParseString(text, &fleet, options).ok());
    ASSERT_TRUE(fleet.status().ok()) << fleet.status();
    ASSERT_TRUE(xml::ParseString(text, &reference).ok());
    for (size_t q = 0; q < expressions.size(); ++q) {
      EXPECT_EQ(fleet.Matched(q), reference.Matched(q)) << expressions[q];
      EXPECT_EQ(baseline::CanonicalFromResult(fleet.Result(q)),
                baseline::CanonicalFromResult(reference.Result(q)))
          << expressions[q];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ProjectionParallelFleetTest,
                         ::testing::Values(1, 2, 4));

// --- limits, chunking, aborts -----------------------------------------------

TEST(ProjectionLimitsTest, DepthLimitEnforcedInsideSkip) {
  // The skipped subtree nests past max_depth; both modes must reject with
  // kResourceExhausted.
  std::string doc = "<a><skip><d><d><d><d><d><d/></d></d></d></d></d>"
                    "</skip><keep/></a>";
  xml::ParserLimits limits;
  limits.max_depth = 4;
  RunOutcome off =
      RunStreaming("/a/keep", doc, /*projection=*/false, 0, limits);
  RunOutcome on = RunStreaming("/a/keep", doc, /*projection=*/true, 0, limits);
  EXPECT_EQ(off.status.code(), StatusCode::kResourceExhausted) << off.status;
  EXPECT_EQ(on.status.code(), StatusCode::kResourceExhausted) << on.status;
  // And across chunk boundaries mid-skip.
  RunOutcome chunked =
      RunStreaming("/a/keep", doc, /*projection=*/true, 3, limits);
  EXPECT_EQ(chunked.status.code(), StatusCode::kResourceExhausted);
}

TEST(ProjectionLimitsTest, TotalBytesEnforcedMidSkip) {
  std::string doc = "<a><skip>" + std::string(4096, 'x') + "</skip><keep/></a>";
  xml::ParserLimits limits;
  limits.max_total_bytes = 256;
  RunOutcome on = RunStreaming("/a/keep", doc, /*projection=*/true, 64, limits);
  EXPECT_EQ(on.status.code(), StatusCode::kResourceExhausted) << on.status;
}

TEST(ProjectionLimitsTest, DeepSkipsWithinLimitStillPass) {
  std::string doc = "<a><skip><d><d><d/></d></d></skip><keep/></a>";
  xml::ParserLimits limits;
  limits.max_depth = 10;
  RunOutcome on = RunStreaming("/a/keep", doc, /*projection=*/true, 0, limits);
  ASSERT_TRUE(on.status.ok()) << on.status;
  EXPECT_TRUE(on.matched);
}

TEST(ProjectionAbortTest, TruncatedInsideSkipFailsAndEvaluatorRecovers) {
  auto query = core::Query::Compile("/a/keep");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  xml::ParserOptions options;
  options.projection_filter = evaluator.projection_filter();
  {
    xml::SaxParser parser(&evaluator, options);
    ASSERT_TRUE(parser.Feed("<a><skip><inner>half").ok());
    Status status = parser.Finish();
    ASSERT_FALSE(status.ok());
    evaluator.AbortDocument(status);
    EXPECT_FALSE(evaluator.status().ok());
  }
  // The same evaluator (and gate) must work for the next document.
  {
    xml::SaxParser parser(&evaluator, options);
    ASSERT_TRUE(parser.Feed("<a><skip><x/></skip><keep/></a>").ok());
    ASSERT_TRUE(parser.Finish().ok());
    EXPECT_TRUE(evaluator.status().ok());
    EXPECT_TRUE(evaluator.Result().matched);
  }
}

TEST(ProjectionAbortTest, ParallelFleetAbortDuringSkipRecovers) {
  auto query = core::Query::Compile("/a/keep");
  ASSERT_TRUE(query.ok());
  core::ParallelFleet fleet(core::ParallelFleetOptions{.num_workers = 2});
  fleet.AddQuery(*query);
  xml::ParserOptions options;
  options.projection_filter = fleet.projection_filter();
  {
    xml::SaxParser parser(&fleet, options);
    ASSERT_TRUE(parser.Feed("<a><skip><inner a='").ok());
    Status status = parser.Finish();
    ASSERT_FALSE(status.ok());
    fleet.AbortDocument(status);
    EXPECT_FALSE(fleet.status().ok());
  }
  {
    xml::SaxParser parser(&fleet, options);
    ASSERT_TRUE(parser.Feed("<a><skip/><keep/></a>").ok());
    ASSERT_TRUE(parser.Finish().ok());
    EXPECT_TRUE(fleet.status().ok()) << fleet.status();
    EXPECT_TRUE(fleet.Matched(0));
  }
}

// Incompatible parser options must disable projection, not corrupt results.
TEST(ProjectionOptionsTest, IncompatibleOptionsIgnoreFilter) {
  auto query = core::Query::Compile("/a/keep");
  ASSERT_TRUE(query.ok());
  const std::string doc = "<a><skip><i/></skip><keep/></a>";
  for (int mode = 0; mode < 3; ++mode) {
    core::StreamingEvaluator evaluator(*query);
    xml::ParserOptions options;
    options.projection_filter = evaluator.projection_filter();
    if (mode == 0) options.coalesce_text = false;
    if (mode == 1) options.report_comments = true;
    if (mode == 2) options.report_processing_instructions = true;
    ASSERT_TRUE(xml::ParseString(doc, &evaluator, options).ok());
    EXPECT_TRUE(evaluator.Result().matched);
  }
}

TEST(ProjectionMetricsTest, CountersAdvanceOnSkips) {
  obs::SetEnabled(true);  // no-op when compiled out
  if (!obs::Enabled()) GTEST_SKIP() << "observability compiled out";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* subtrees =
      registry.GetCounter("xaos_projection_subtrees_skipped_total");
  obs::Counter* bytes =
      registry.GetCounter("xaos_projection_bytes_skipped_total");
  uint64_t subtrees_before = subtrees->Value();
  uint64_t bytes_before = bytes->Value();

  RunOutcome on = RunStreaming(
      "/a/keep", "<a><skip><x>text</x></skip><skip/><keep/></a>",
      /*projection=*/true);
  ASSERT_TRUE(on.status.ok()) << on.status;
  EXPECT_EQ(subtrees->Value() - subtrees_before, 2u);
  EXPECT_GT(bytes->Value() - bytes_before, 0u);
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace xaos
