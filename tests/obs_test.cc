// The observability layer: metrics primitives, registry, exporters, phase
// timers, memory accounting, and the disabled-mode no-op guarantees.

#include <string>

#include "core/engine_stats.h"
#include "core/multi_engine.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "xml/sax_parser.h"

namespace xaos::obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(5);  // below: no change
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(100);
  EXPECT_EQ(gauge.Value(), 100);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds value 0; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64);
}

TEST(HistogramTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, RecordTracksCountSumMaxAndBuckets) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(5);
  histogram.Record(5);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 11u);
  EXPECT_EQ(histogram.Max(), 5u);
  EXPECT_EQ(histogram.BucketCountAt(0), 1u);  // value 0
  EXPECT_EQ(histogram.BucketCountAt(1), 1u);  // value 1
  EXPECT_EQ(histogram.BucketCountAt(3), 2u);  // values in [4, 8)
}

TEST(RegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("x"), 1u);
  registry.Clear();
  EXPECT_TRUE(registry.Snapshot().counters.empty());
}

TEST(RegistryTest, SnapshotSkipsEmptyHistogramBuckets) {
  MetricsRegistry registry;
  registry.GetHistogram("h")->Record(5);
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot& h = snapshot.histograms.at("h");
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].first, 7u);  // upper bound of bucket 3
  EXPECT_EQ(h.buckets[0].second, 1u);
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("events_total")->Increment(3);
  registry.GetGauge("live")->Set(-2);
  registry.GetHistogram("ns")->Record(5);
  EXPECT_EQ(ToJson(registry),
            "{\"counters\": {\"events_total\": 3}, "
            "\"gauges\": {\"live\": -2}, "
            "\"histograms\": {\"ns\": {\"count\": 1, \"sum\": 5, \"max\": 5, "
            "\"p50\": 5, \"p90\": 5, \"p99\": 5, "
            "\"buckets\": [{\"le\": 7, \"count\": 1}]}}}");
  EXPECT_TRUE(JsonValid(ToJson(registry)));
}

TEST(ExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("a_total{k=\"v\"}")->Increment(1);
  registry.GetCounter("a_total{k=\"w\"}")->Increment(2);
  registry.GetGauge("g")->Set(7);
  std::string text = ToPrometheusText(registry);
  EXPECT_EQ(text,
            "# HELP a_total xaos metric (no specific help registered).\n"
            "# TYPE a_total counter\n"
            "a_total{k=\"v\"} 1\n"
            "a_total{k=\"w\"} 2\n"
            "# HELP g xaos metric (no specific help registered).\n"
            "# TYPE g gauge\n"
            "g 7\n");
}

TEST(ExportTest, LabelledHistogramFamilyGetsOneHeaderAndQuantiles) {
  MetricsRegistry registry;
  registry.GetHistogram("lat_ns{sub=\"a\"}")->Record(8);
  registry.GetHistogram("lat_ns{sub=\"b\"}")->Record(100);
  std::string text = ToPrometheusText(registry);
  // One HELP/TYPE pair for the histogram family despite two labelled
  // members, and one gauge family per derived quantile.
  auto count_of = [&](const std::string& needle) {
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE lat_ns histogram"), 1u);
  EXPECT_EQ(count_of("# HELP lat_ns "), 1u);
  EXPECT_EQ(count_of("# TYPE lat_ns_p50 gauge"), 1u);
  EXPECT_EQ(count_of("# TYPE lat_ns_p99 gauge"), 1u);
  EXPECT_NE(text.find("lat_ns_p99{sub=\"a\"} "), std::string::npos);
  EXPECT_NE(text.find("lat_ns_p99{sub=\"b\"} "), std::string::npos);
}

TEST(ExportTest, PrometheusConformance) {
  MetricsRegistry registry;
  registry.GetCounter("xaos_parser_bytes_total")->Increment(10);
  registry.GetCounter("router_deliveries_total{subscription=\"alice\"}")
      ->Increment(1);
  registry.GetGauge("xaos_parallel_workers")->Set(4);
  registry.GetHistogram("xaos_sub_match_latency_ns{subscription=\"alice\"}")
      ->Record(1000);
  registry.GetHistogram("xaos_sub_match_latency_ns{subscription=\"bob\"}")
      ->Record(2000);
  registry.GetHistogram("plain_ns")->Record(5);
  std::string text = ToPrometheusText(registry);
  std::string error;
  EXPECT_TRUE(PrometheusTextValid(text, &error)) << error;
}

TEST(ExportTest, PrometheusValidatorRejectsMalformedText) {
  std::string error;
  // Sample without HELP/TYPE.
  EXPECT_FALSE(PrometheusTextValid("x_total 1\n", &error));
  // TYPE before HELP.
  EXPECT_FALSE(PrometheusTextValid(
      "# TYPE x_total counter\n# HELP x_total h\nx_total 1\n", &error));
  // Duplicate TYPE for one family.
  EXPECT_FALSE(PrometheusTextValid(
      "# HELP x h\n# TYPE x gauge\n# TYPE x gauge\nx 1\n", &error));
  // Sample name outside the declared family.
  EXPECT_FALSE(PrometheusTextValid(
      "# HELP x h\n# TYPE x gauge\ny 1\n", &error));
  // Non-numeric value and broken labels.
  EXPECT_FALSE(PrometheusTextValid(
      "# HELP x h\n# TYPE x gauge\nx one\n", &error));
  EXPECT_FALSE(PrometheusTextValid(
      "# HELP x h\n# TYPE x gauge\nx{k=\"v} 1\n", &error));
  // Well-formed minimal exposition passes.
  EXPECT_TRUE(PrometheusTextValid(
      "# HELP x h\n# TYPE x counter\nx{k=\"v\"} 1\nx{k=\"w\"} 2\n", &error))
      << error;
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  HistogramSnapshot h;
  h.count = 0;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  // 100 samples of value 1 plus 100 samples of value 1000.
  h.count = 200;
  h.sum = 100 * 1 + 100 * 1000;
  h.max = 1000;
  h.buckets = {{1, 100}, {1023, 100}};
  EXPECT_LE(h.Quantile(0.25), 1.0);
  double p50 = h.Quantile(0.50);
  EXPECT_LE(p50, 1.0);  // the 100th sample is still a 1
  double p99 = h.Quantile(0.99);
  EXPECT_GT(p99, 500.0);
  EXPECT_LE(p99, 1000.0);  // clamped to observed max
  // Monotone in q.
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.90));
  EXPECT_LE(h.Quantile(0.90), h.Quantile(0.99));
}

TEST(HistogramTest, QuantileNeverExceedsObservedMax) {
  // One sample, 700, lands in bucket (511, 1023]. Interpolation toward the
  // bucket's upper bound must clamp to the observed max, for every q.
  HistogramSnapshot h;
  h.count = 1;
  h.sum = 700;
  h.max = 700;
  h.buckets = {{1023, 1}};
  EXPECT_EQ(h.Quantile(0.0), 700.0);
  EXPECT_EQ(h.Quantile(0.5), 700.0);
  EXPECT_EQ(h.Quantile(1.0), 700.0);
}

TEST(HistogramTest, QuantileZeroBucketLowerEdge) {
  // Bucket 0 of the log2 histogram holds only the value 0; its lower edge
  // is 0, not a negative or stale previous bound.
  HistogramSnapshot h;
  h.count = 4;
  h.sum = 0;
  h.max = 0;
  h.buckets = {{0, 4}};
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileLowerEdgeSurvivesEmptyBucketGaps) {
  // The snapshot stores non-empty buckets only: between bound 1 and bound
  // 1023 here, eight buckets are missing. The (511, 1023] bucket's lower
  // edge must still be 512 — derived from its own bound, not from the
  // previous *listed* bucket's bound (1), which would let interpolated
  // values dip far below every sample the bucket actually holds.
  HistogramSnapshot h;
  h.count = 10;
  h.sum = 1 + 9 * 600;
  h.max = 1000;
  h.buckets = {{1, 1}, {1023, 9}};
  // Ranks 2..10 all sit in the high bucket, so every quantile past the
  // first sample is at least the bucket's true lower edge.
  EXPECT_GE(h.Quantile(0.5), 512.0);
  EXPECT_GE(h.Quantile(0.9), 512.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0);
}

TEST(ExportTest, PrometheusHistogramIsCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("ns");
  h->Record(1);
  h->Record(5);
  std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE ns histogram"), std::string::npos);
  EXPECT_NE(text.find("ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  // The le="7" bucket includes the le="1" observation (cumulative).
  EXPECT_NE(text.find("ns_bucket{le=\"7\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("ns_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("ns_count 2\n"), std::string::npos);
}

TEST(JsonTest, EscapeAndNumber) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(3), "3");
}

TEST(JsonTest, Validator) {
  EXPECT_TRUE(JsonValid("{}"));
  EXPECT_TRUE(JsonValid("  {\"a\": [1, 2.5, -3e2, true, null, \"x\\n\"]} "));
  EXPECT_TRUE(JsonValid("\"\\u00e9\""));
  EXPECT_FALSE(JsonValid(""));
  EXPECT_FALSE(JsonValid("{"));
  EXPECT_FALSE(JsonValid("{\"a\":1,}"));
  EXPECT_FALSE(JsonValid("01"));
  EXPECT_FALSE(JsonValid("\"\\x\""));
  EXPECT_FALSE(JsonValid("{} {}"));
}

TEST(TimerTest, PhaseTimersExport) {
  PhaseTimers timers;
  timers.Add(Phase::kParse, 100);
  timers.Add(Phase::kParse, 50);
  timers.Add(Phase::kMatch, 25);
  EXPECT_EQ(timers.Ns(Phase::kParse), 150u);
  EXPECT_DOUBLE_EQ(timers.Seconds(Phase::kMatch), 25e-9);

  MetricsRegistry registry;
  timers.ExportTo(&registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("xaos_phase_ns_total{phase=\"parse\"}"),
            150u);
  EXPECT_EQ(snapshot.counters.at("xaos_phase_ns_total{phase=\"compile\"}"),
            0u);
  EXPECT_EQ(snapshot.counters.at("xaos_phase_ns_total{phase=\"match\"}"),
            25u);
}

TEST(TimerTest, ScopedTimerRecordsIntoHistogram) {
  Histogram histogram;
  { ScopedTimer timer(&histogram); }
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(TimerTest, EventCostSamplerPeriod) {
  Histogram histogram;
  EventCostSampler sampler(&histogram, /*period=*/3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (sampler.ShouldSample()) {
      sampler.RecordNs(1);
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(histogram.Count(), 3u);

  EventCostSampler disabled(nullptr);
  EXPECT_FALSE(disabled.ShouldSample());
}

TEST(MemoryTest, AccountantTracksPeak) {
  MemoryAccountant accountant;
  accountant.Add(100);
  accountant.Add(50);
  accountant.Remove(120);
  EXPECT_EQ(accountant.live_bytes, 30u);
  EXPECT_EQ(accountant.peak_bytes, 150u);
  accountant.Add(10);
  EXPECT_EQ(accountant.peak_bytes, 150u);  // below the old high-water mark
}

TEST(EngineStatsTest, CreationHooksMaintainLiveAndPeak) {
  core::EngineStats stats;
  stats.OnStructureCreated(100);
  stats.OnStructureCreated(200);
  stats.OnStructureDestroyed(100);
  stats.OnStructureCreated(50);
  EXPECT_EQ(stats.structures_created, 3u);
  EXPECT_EQ(stats.structures_live, 2u);
  EXPECT_EQ(stats.structures_live_peak, 2u);
  EXPECT_EQ(stats.structure_memory.live_bytes, 250u);
  EXPECT_EQ(stats.structure_memory.peak_bytes, 300u);
}

TEST(EngineStatsTest, ToMetricsFoldsEveryField) {
  core::EngineStats stats;
  stats.elements_total = 10;
  stats.elements_discarded = 8;
  stats.OnStructureCreated(64);
  stats.propagations = 3;
  stats.optimistic_propagations = 2;

  MetricsRegistry registry;
  stats.ToMetrics(&registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("xaos_engine_elements_total"), 10u);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_elements_discarded_total"), 8u);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_structures_created_total"), 1u);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structures_live"), 1);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structures_live_peak"), 1);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structure_bytes_live"), 64);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structure_bytes_peak"), 64);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_propagations_total"), 3u);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_optimistic_propagations_total"),
            2u);
}

// End-to-end: a streaming evaluation maintains byte-level accounting on
// every structure creation path (satellite check: peak is updated by
// construction, so it can never read zero when structures were created).
TEST(EngineStatsTest, StreamingEvaluationAccountsBytes) {
  auto query = core::Query::Compile("//b/ancestor::a");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  ASSERT_TRUE(xml::ParseString("<a><b/><b/></a>", &evaluator).ok());
  core::EngineStats stats = evaluator.AggregateStats();
  EXPECT_GT(stats.structures_created, 0u);
  EXPECT_GT(stats.structure_memory.peak_bytes, 0u);
  // Live structures (and bytes) remain for the engine's retained state;
  // peak is at least live.
  EXPECT_GE(stats.structure_memory.peak_bytes,
            stats.structure_memory.live_bytes);
}

TEST(DisabledModeTest, OffByDefaultAndNoFlushWhenDisabled) {
  ASSERT_FALSE(Enabled());  // runtime default is off
  MetricsRegistry::Default().Clear();

  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming("//b", "<a><b/></a>", {});
  ASSERT_TRUE(result.ok());
  // Nothing reached the default registry: no parser counters, no compile
  // histogram.
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snapshot.counters.count("xaos_parser_documents_total"), 0u);
  EXPECT_EQ(snapshot.histograms.count("xaos_compile_ns"), 0u);
}

#if XAOS_OBS_ENABLED
TEST(DisabledModeTest, EnabledModeFlushesParserAndCompileMetrics) {
  SetEnabled(true);
  MetricsRegistry::Default().Clear();

  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming("//b", "<a><b/>text</a>", {});
  ASSERT_TRUE(result.ok());

  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snapshot.counters.at("xaos_parser_documents_total"), 1u);
  EXPECT_EQ(snapshot.counters.at("xaos_parser_elements_total"), 2u);
  EXPECT_GE(snapshot.counters.at("xaos_parser_bytes_total"), 15u);
  EXPECT_EQ(snapshot.counters.at("xaos_queries_compiled_total"), 1u);
  EXPECT_EQ(snapshot.histograms.at("xaos_compile_ns").count, 1u);

  SetEnabled(false);
  MetricsRegistry::Default().Clear();
}
#endif  // XAOS_OBS_ENABLED

TEST(ExportTest, WriteMetricsJsonRejectsUnwritablePath) {
  MetricsRegistry registry;
  Status status = WriteMetricsJson(registry, "/nonexistent-dir/x.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace xaos::obs
