// The observability layer: metrics primitives, registry, exporters, phase
// timers, memory accounting, and the disabled-mode no-op guarantees.

#include <string>

#include "core/engine_stats.h"
#include "core/multi_engine.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "xml/sax_parser.h"

namespace xaos::obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(5);  // below: no change
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(100);
  EXPECT_EQ(gauge.Value(), 100);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds value 0; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64);
}

TEST(HistogramTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, RecordTracksCountSumMaxAndBuckets) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(5);
  histogram.Record(5);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 11u);
  EXPECT_EQ(histogram.Max(), 5u);
  EXPECT_EQ(histogram.BucketCountAt(0), 1u);  // value 0
  EXPECT_EQ(histogram.BucketCountAt(1), 1u);  // value 1
  EXPECT_EQ(histogram.BucketCountAt(3), 2u);  // values in [4, 8)
}

TEST(RegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("x"), 1u);
  registry.Clear();
  EXPECT_TRUE(registry.Snapshot().counters.empty());
}

TEST(RegistryTest, SnapshotSkipsEmptyHistogramBuckets) {
  MetricsRegistry registry;
  registry.GetHistogram("h")->Record(5);
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot& h = snapshot.histograms.at("h");
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].first, 7u);  // upper bound of bucket 3
  EXPECT_EQ(h.buckets[0].second, 1u);
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("events_total")->Increment(3);
  registry.GetGauge("live")->Set(-2);
  registry.GetHistogram("ns")->Record(5);
  EXPECT_EQ(ToJson(registry),
            "{\"counters\": {\"events_total\": 3}, "
            "\"gauges\": {\"live\": -2}, "
            "\"histograms\": {\"ns\": {\"count\": 1, \"sum\": 5, \"max\": 5, "
            "\"buckets\": [{\"le\": 7, \"count\": 1}]}}}");
  EXPECT_TRUE(JsonValid(ToJson(registry)));
}

TEST(ExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("a_total{k=\"v\"}")->Increment(1);
  registry.GetCounter("a_total{k=\"w\"}")->Increment(2);
  registry.GetGauge("g")->Set(7);
  std::string text = ToPrometheusText(registry);
  EXPECT_EQ(text,
            "# TYPE a_total counter\n"
            "a_total{k=\"v\"} 1\n"
            "a_total{k=\"w\"} 2\n"
            "# TYPE g gauge\n"
            "g 7\n");
}

TEST(ExportTest, PrometheusHistogramIsCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("ns");
  h->Record(1);
  h->Record(5);
  std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE ns histogram"), std::string::npos);
  EXPECT_NE(text.find("ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  // The le="7" bucket includes the le="1" observation (cumulative).
  EXPECT_NE(text.find("ns_bucket{le=\"7\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("ns_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("ns_count 2\n"), std::string::npos);
}

TEST(JsonTest, EscapeAndNumber) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(3), "3");
}

TEST(JsonTest, Validator) {
  EXPECT_TRUE(JsonValid("{}"));
  EXPECT_TRUE(JsonValid("  {\"a\": [1, 2.5, -3e2, true, null, \"x\\n\"]} "));
  EXPECT_TRUE(JsonValid("\"\\u00e9\""));
  EXPECT_FALSE(JsonValid(""));
  EXPECT_FALSE(JsonValid("{"));
  EXPECT_FALSE(JsonValid("{\"a\":1,}"));
  EXPECT_FALSE(JsonValid("01"));
  EXPECT_FALSE(JsonValid("\"\\x\""));
  EXPECT_FALSE(JsonValid("{} {}"));
}

TEST(TimerTest, PhaseTimersExport) {
  PhaseTimers timers;
  timers.Add(Phase::kParse, 100);
  timers.Add(Phase::kParse, 50);
  timers.Add(Phase::kMatch, 25);
  EXPECT_EQ(timers.Ns(Phase::kParse), 150u);
  EXPECT_DOUBLE_EQ(timers.Seconds(Phase::kMatch), 25e-9);

  MetricsRegistry registry;
  timers.ExportTo(&registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("xaos_phase_ns_total{phase=\"parse\"}"),
            150u);
  EXPECT_EQ(snapshot.counters.at("xaos_phase_ns_total{phase=\"compile\"}"),
            0u);
  EXPECT_EQ(snapshot.counters.at("xaos_phase_ns_total{phase=\"match\"}"),
            25u);
}

TEST(TimerTest, ScopedTimerRecordsIntoHistogram) {
  Histogram histogram;
  { ScopedTimer timer(&histogram); }
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(TimerTest, EventCostSamplerPeriod) {
  Histogram histogram;
  EventCostSampler sampler(&histogram, /*period=*/3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (sampler.ShouldSample()) {
      sampler.RecordNs(1);
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(histogram.Count(), 3u);

  EventCostSampler disabled(nullptr);
  EXPECT_FALSE(disabled.ShouldSample());
}

TEST(MemoryTest, AccountantTracksPeak) {
  MemoryAccountant accountant;
  accountant.Add(100);
  accountant.Add(50);
  accountant.Remove(120);
  EXPECT_EQ(accountant.live_bytes, 30u);
  EXPECT_EQ(accountant.peak_bytes, 150u);
  accountant.Add(10);
  EXPECT_EQ(accountant.peak_bytes, 150u);  // below the old high-water mark
}

TEST(EngineStatsTest, CreationHooksMaintainLiveAndPeak) {
  core::EngineStats stats;
  stats.OnStructureCreated(100);
  stats.OnStructureCreated(200);
  stats.OnStructureDestroyed(100);
  stats.OnStructureCreated(50);
  EXPECT_EQ(stats.structures_created, 3u);
  EXPECT_EQ(stats.structures_live, 2u);
  EXPECT_EQ(stats.structures_live_peak, 2u);
  EXPECT_EQ(stats.structure_memory.live_bytes, 250u);
  EXPECT_EQ(stats.structure_memory.peak_bytes, 300u);
}

TEST(EngineStatsTest, ToMetricsFoldsEveryField) {
  core::EngineStats stats;
  stats.elements_total = 10;
  stats.elements_discarded = 8;
  stats.OnStructureCreated(64);
  stats.propagations = 3;
  stats.optimistic_propagations = 2;

  MetricsRegistry registry;
  stats.ToMetrics(&registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("xaos_engine_elements_total"), 10u);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_elements_discarded_total"), 8u);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_structures_created_total"), 1u);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structures_live"), 1);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structures_live_peak"), 1);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structure_bytes_live"), 64);
  EXPECT_EQ(snapshot.gauges.at("xaos_engine_structure_bytes_peak"), 64);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_propagations_total"), 3u);
  EXPECT_EQ(snapshot.counters.at("xaos_engine_optimistic_propagations_total"),
            2u);
}

// End-to-end: a streaming evaluation maintains byte-level accounting on
// every structure creation path (satellite check: peak is updated by
// construction, so it can never read zero when structures were created).
TEST(EngineStatsTest, StreamingEvaluationAccountsBytes) {
  auto query = core::Query::Compile("//b/ancestor::a");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  ASSERT_TRUE(xml::ParseString("<a><b/><b/></a>", &evaluator).ok());
  core::EngineStats stats = evaluator.AggregateStats();
  EXPECT_GT(stats.structures_created, 0u);
  EXPECT_GT(stats.structure_memory.peak_bytes, 0u);
  // Live structures (and bytes) remain for the engine's retained state;
  // peak is at least live.
  EXPECT_GE(stats.structure_memory.peak_bytes,
            stats.structure_memory.live_bytes);
}

TEST(DisabledModeTest, OffByDefaultAndNoFlushWhenDisabled) {
  ASSERT_FALSE(Enabled());  // runtime default is off
  MetricsRegistry::Default().Clear();

  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming("//b", "<a><b/></a>", {});
  ASSERT_TRUE(result.ok());
  // Nothing reached the default registry: no parser counters, no compile
  // histogram.
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snapshot.counters.count("xaos_parser_documents_total"), 0u);
  EXPECT_EQ(snapshot.histograms.count("xaos_compile_ns"), 0u);
}

#if XAOS_OBS_ENABLED
TEST(DisabledModeTest, EnabledModeFlushesParserAndCompileMetrics) {
  SetEnabled(true);
  MetricsRegistry::Default().Clear();

  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming("//b", "<a><b/>text</a>", {});
  ASSERT_TRUE(result.ok());

  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snapshot.counters.at("xaos_parser_documents_total"), 1u);
  EXPECT_EQ(snapshot.counters.at("xaos_parser_elements_total"), 2u);
  EXPECT_GE(snapshot.counters.at("xaos_parser_bytes_total"), 15u);
  EXPECT_EQ(snapshot.counters.at("xaos_queries_compiled_total"), 1u);
  EXPECT_EQ(snapshot.histograms.at("xaos_compile_ns").count, 1u);

  SetEnabled(false);
  MetricsRegistry::Default().Clear();
}
#endif  // XAOS_OBS_ENABLED

TEST(ExportTest, WriteMetricsJsonRejectsUnwritablePath) {
  MetricsRegistry registry;
  Status status = WriteMetricsJson(registry, "/nonexistent-dir/x.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace xaos::obs
