// following:: and preceding:: axes, implemented by desugaring into
// ancestor-or-self / sibling / descendant-or-self chains (all 12
// element-relevant XPath 1.0 axes are now covered; only `namespace` is
// out of scope).

#include <set>
#include <string>
#include <vector>

#include "baseline/compare.h"
#include "baseline/navigational_engine.h"
#include "core/multi_engine.h"
#include "dom/dom_builder.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xaos {
namespace {

using test::EvalStreaming;
using test::Names;
using test::Ordinals;

// Document with a clear document-order structure:
//   r(1) { a(2){b(3), c(4)}, d(5){e(6)}, f(7) }
constexpr const char* kDoc = "<r><a><b/><c/></a><d><e/></d><f/></r>";

TEST(FollowingTest, FollowingSelectsEverythingAfterExcludingDescendants) {
  auto items = EvalStreaming("//b/following::*", kDoc);
  // After b(3): c(4), d(5), e(6), f(7). Not a (ancestor), not b itself.
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{4, 5, 6, 7}));
  items = EvalStreaming("//a/following::*", kDoc);
  // After subtree of a: d, e, f — descendants of a excluded.
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{5, 6, 7}));
}

TEST(FollowingTest, PrecedingSelectsEverythingBeforeExcludingAncestors) {
  auto items = EvalStreaming("//e/preceding::*", kDoc);
  // Before e(6): a(2), b(3), c(4). Not d (ancestor), not r.
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 3, 4}));
  items = EvalStreaming("//f/preceding::*", kDoc);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 3, 4, 5, 6}));
}

TEST(FollowingTest, WithNameTests) {
  auto items = EvalStreaming("//b/following::e", kDoc);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{6}));
  EXPECT_TRUE(EvalStreaming("//f/following::*", kDoc).empty());
  EXPECT_TRUE(EvalStreaming("//a/preceding::*", kDoc).empty());
}

TEST(FollowingTest, AsPredicate) {
  auto items = EvalStreaming("//a[following::f]", kDoc);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2}));
  items = EvalStreaming("//d[preceding::b]/e", kDoc);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{6}));
  EXPECT_TRUE(EvalStreaming("//f[following::a]", kDoc).empty());
}

TEST(FollowingTest, CrossSubtreeOrdering) {
  // following from a node deep in one subtree reaches into later subtrees
  // at any depth.
  const std::string xml = "<r><x><y><m/></y></x><p><q><n/></q></p></r>";
  auto items = EvalStreaming("//m/following::n", xml);
  EXPECT_EQ(items.size(), 1u);
  items = EvalStreaming("//n/preceding::m", xml);
  EXPECT_EQ(items.size(), 1u);
}

// Differential: hand-picked queries against the navigational baseline
// (which implements following/preceding directly, without desugaring).
TEST(FollowingTest, AgreesWithDirectBaselineImplementation) {
  const std::string xml =
      "<r><a><b/><a><c/></a></a><b><a/><c/></b><c><b/></c></r>";
  for (const char* query : {
           "//a/following::b",
           "//a/following::*",
           "//c/preceding::a",
           "//b[following::c]/preceding::a",
           "//a[preceding::b]",
           "//c/preceding::*",
       }) {
    auto streaming = EvalStreaming(query, xml);
    auto doc = dom::ParseToDocument(xml);
    ASSERT_TRUE(doc.ok());
    baseline::NavigationalEngine nav(&*doc);
    auto refs = nav.Evaluate(query);
    ASSERT_TRUE(refs.ok()) << refs.status() << " for " << query;
    EXPECT_EQ(streaming, baseline::CanonicalFromRefs(*doc, *refs)) << query;
  }
}

}  // namespace
}  // namespace xaos
