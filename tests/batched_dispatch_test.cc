// Batched dispatch differential tests: the devirtualized batch loop
// (BatchedDispatcher -> ReplayBatch -> EngineFleet::ReplayRun, with the
// shared matcher stepping through its flattened transition tables) must be
// byte-identical to the per-event ContentHandler path — verdicts,
// document-order items, captures, and the order early items reach the
// earliest-emission sink — over the axis corpus, random workloads, chunked
// feeds, and ParallelFleet shardings. Plus the pool-return double-release
// regression for mid-batch aborts, and the flat-interner saturation
// fallback.

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/compare.h"
#include "core/batched_dispatch.h"
#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "core/shared_index.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

const char kAxisDoc[] =
    "<a k=\"1\"><b><a><c/></a><d/></b><c/>"
    "<b x=\"y\"><c/><a/><e>text</e></b></a>";

// 16 expressions mixing shared-backend chains, per-engine queries (backward
// axes, predicates, attributes, text) and byte-identical duplicates, so
// every dispatch backend and the alias fan-out run through the batch loop.
const char* const kAxisCorpus[] = {
    "/a/b/c",          "/a/b/c",
    "//a//c",          "//c",
    "/a/*/c",          "//*",
    "//b/a",           "//zzz",
    "//c/ancestor::a", "//b[c]/a | //a[c]",
    "//b[@x]",         "//c/following-sibling::a",
    "//e[text()='text']",
    "//d",             "/a/b//c",
    "//b/e",
};

std::vector<std::string> AxisExpressions() {
  return std::vector<std::string>(kAxisCorpus,
                                  kAxisCorpus + std::size(kAxisCorpus));
}

void ParseInto(const std::string& xml, xml::ContentHandler* handler,
               size_t chunk) {
  if (chunk == 0) {
    ASSERT_TRUE(xml::ParseString(xml, handler).ok());
    return;
  }
  xml::SaxParser parser(handler);
  for (size_t i = 0; i < xml.size(); i += chunk) {
    ASSERT_TRUE(parser.Feed(std::string_view(xml).substr(i, chunk)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
}

// Runs `expressions` over `xml` through (a) a BatchedDispatcher in front of
// a MultiQueryEvaluator and (b) the per-event oracle path, and requires
// identical verdicts, confirmations and canonical result items per query.
// `batch_events` shrinks the batch budget so documents span many batches;
// `chunk` feeds the parser in chunk-byte slices (0 = one shot).
void ExpectBatchedTransparent(const std::vector<std::string>& expressions,
                              const std::string& xml, size_t chunk = 0,
                              size_t batch_events = 8,
                              core::EngineOptions base_options = {}) {
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  core::EngineOptions batched_options = base_options;
  batched_options.enable_batched_dispatch = true;
  core::MultiQueryEvaluator batched(batched_options);
  core::EngineOptions oracle_options = base_options;
  oracle_options.enable_batched_dispatch = false;
  core::MultiQueryEvaluator oracle(oracle_options);
  for (const core::Query& query : queries) {
    batched.AddQuery(query);
    oracle.AddQuery(query);
  }

  core::BatchedDispatchOptions dispatch_options;
  dispatch_options.max_batch_events = batch_events;
  core::BatchedDispatcher dispatcher(&batched, dispatch_options);
  ParseInto(xml, &dispatcher, chunk);
  ParseInto(xml, &oracle, chunk);
  ASSERT_TRUE(batched.status().ok()) << batched.status();
  ASSERT_TRUE(oracle.status().ok()) << oracle.status();
  EXPECT_GT(dispatcher.batches_replayed(), 0u);

  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(oracle.Matched(q), batched.Matched(q))
        << "verdict mismatch for " << expressions[q];
    EXPECT_EQ(oracle.MatchConfirmed(q), batched.MatchConfirmed(q))
        << "confirmation mismatch for " << expressions[q];
    EXPECT_EQ(baseline::CanonicalFromResult(oracle.Result(q)),
              baseline::CanonicalFromResult(batched.Result(q)))
        << "result mismatch for " << expressions[q];
  }
}

TEST(BatchedDifferentialTest, AxisCorpus) {
  ExpectBatchedTransparent(AxisExpressions(), kAxisDoc);
}

TEST(BatchedDifferentialTest, ChunkedFeeds) {
  // Chunked feeds shift where batch publishes land relative to element
  // boundaries; results must not care.
  for (size_t chunk : {1u, 7u, 64u}) {
    ExpectBatchedTransparent(AxisExpressions(), kAxisDoc, chunk);
  }
}

TEST(BatchedDifferentialTest, SingleEventBatches) {
  // Degenerate budget: one event per batch maximizes boundary crossings.
  ExpectBatchedTransparent(AxisExpressions(), kAxisDoc, /*chunk=*/0,
                           /*batch_events=*/1);
}

TEST(BatchedDifferentialTest, CapturesAreByteIdentical) {
  // Subtree capture disables the shared backend and keeps engines in the
  // always-dispatch set; captured XML must match byte-for-byte.
  std::vector<std::string> expressions = {"//b/c", "//e", "/a/b"};
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(*query));
  }
  core::EngineOptions options;
  options.capture_output_subtrees = true;
  options.enable_batched_dispatch = true;
  core::MultiQueryEvaluator batched(options);
  options.enable_batched_dispatch = false;
  core::MultiQueryEvaluator oracle(options);
  for (const core::Query& query : queries) {
    batched.AddQuery(query);
    oracle.AddQuery(query);
  }
  core::BatchedDispatchOptions dispatch_options;
  dispatch_options.max_batch_events = 4;
  core::BatchedDispatcher dispatcher(&batched, dispatch_options);
  ParseInto(kAxisDoc, &dispatcher, 0);
  ParseInto(kAxisDoc, &oracle, 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    core::QueryResult expected = oracle.Result(q);
    core::QueryResult actual = batched.Result(q);
    ASSERT_EQ(expected.items.size(), actual.items.size()) << expressions[q];
    for (size_t i = 0; i < expected.items.size(); ++i) {
      EXPECT_EQ(expected.items[i].info.id, actual.items[i].info.id);
      EXPECT_EQ(expected.items[i].captured_xml, actual.items[i].captured_xml)
          << expressions[q] << " item " << i;
    }
  }
}

TEST(BatchedDifferentialTest, EarliestEmissionOrderMatches) {
  // Early items reach the sink in the same order on both paths (the batch
  // loop only changes when buffered events are handed over, not their
  // sequence).
  StatusOr<core::Query> query = core::Query::Compile("//b | //c");
  ASSERT_TRUE(query.ok());
  auto run = [&](bool batched_path) {
    std::vector<core::ElementId> emitted;
    core::EngineOptions options;
    options.enable_batched_dispatch = batched_path;
    options.enable_shared_index = false;  // the sink is an engine feature
    options.early_item_sink = [&](const core::OutputItem& item) {
      emitted.push_back(item.info.id);
    };
    core::MultiQueryEvaluator evaluator(options);
    evaluator.AddQuery(*query);
    if (batched_path) {
      core::BatchedDispatchOptions dispatch_options;
      dispatch_options.max_batch_events = 4;
      core::BatchedDispatcher dispatcher(&evaluator, dispatch_options);
      ParseInto(kAxisDoc, &dispatcher, 0);
    } else {
      ParseInto(kAxisDoc, &evaluator, 0);
    }
    return emitted;
  };
  std::vector<core::ElementId> oracle = run(false);
  std::vector<core::ElementId> batched = run(true);
  EXPECT_FALSE(oracle.empty());
  EXPECT_EQ(oracle, batched);
}

TEST(BatchedDifferentialTest, FlushExposesMidStreamVerdicts) {
  StatusOr<core::Query> query = core::Query::Compile("/a/b/c");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator evaluator;
  size_t q = evaluator.AddQuery(*query);
  core::BatchedDispatchOptions options;
  options.max_batch_events = 1024;  // nothing publishes on its own
  core::BatchedDispatcher dispatcher(&evaluator, options);
  xml::SaxParser parser(&dispatcher);
  ASSERT_TRUE(parser.Feed("<a><b><c/>").ok());
  dispatcher.Flush();
  EXPECT_TRUE(evaluator.MatchConfirmed(q));
  ASSERT_TRUE(parser.Feed("</b></a>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_TRUE(evaluator.Matched(q));
}

// --- random workloads -------------------------------------------------------

class BatchedRandomDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedRandomDifferentialTest, MatchesOracle) {
  uint64_t seed = GetParam();
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 300;
  doc_options.max_noise_depth = 6;

  // 3 workloads per seed x 30 seeds = 90 random (query, document) pairs;
  // each document runs the whole expression pool.
  std::vector<std::string> expressions;
  std::vector<std::string> documents;
  for (uint64_t i = 0; i < 3; ++i) {
    auto workload =
        gen::GenerateWorkload(query_options, doc_options, seed * 16 + i);
    ASSERT_TRUE(workload.ok()) << workload.status();
    expressions.push_back(workload->expression);
    documents.push_back(workload->document);
  }
  for (const std::string& document : documents) {
    ExpectBatchedTransparent(expressions, document, /*chunk=*/0,
                             /*batch_events=*/64);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedRandomDifferentialTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- ParallelFleet ----------------------------------------------------------

TEST(BatchedParallelTest, WorkersAgreeWithPerEventOracle) {
  std::vector<std::string> expressions = AxisExpressions();
  for (int i = 0; i < 8; ++i) {
    expressions.push_back("//b/absent_" + std::to_string(i));
    expressions.push_back("/a/b/c");
  }
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  core::EngineOptions oracle_options;
  oracle_options.enable_batched_dispatch = false;
  core::MultiQueryEvaluator oracle(oracle_options);
  for (const core::Query& query : queries) oracle.AddQuery(query);
  ASSERT_TRUE(xml::ParseString(kAxisDoc, &oracle).ok());

  for (int workers : {1, 2, 4}) {
    core::ParallelFleetOptions options;
    options.num_workers = workers;
    options.max_batch_events = 4;  // force many batches per document
    options.engine_options.enable_batched_dispatch = true;
    core::ParallelFleet fleet(options);
    for (const core::Query& query : queries) fleet.AddQuery(query);
    ASSERT_TRUE(xml::ParseString(kAxisDoc, &fleet).ok());
    ASSERT_TRUE(fleet.status().ok()) << fleet.status();
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(oracle.Matched(q), fleet.Matched(q))
          << "workers=" << workers << " query " << expressions[q];
      EXPECT_EQ(baseline::CanonicalFromResult(oracle.Result(q)),
                baseline::CanonicalFromResult(fleet.Result(q)))
          << "workers=" << workers << " query " << expressions[q];
    }
  }
}

TEST(BatchedParallelTest, AdaptivePolicyGrowsAndDecays) {
  core::AdaptiveBatchPolicy policy;
  policy.base = 8;
  policy.cap = 32;
  policy.decay_publishes = 2;
  policy.current = 8;
  EXPECT_EQ(policy.OnPublish(true), 16u);   // stall: double
  EXPECT_EQ(policy.OnPublish(true), 32u);   // stall: double to cap
  EXPECT_EQ(policy.OnPublish(true), 32u);   // capped
  EXPECT_EQ(policy.OnPublish(false), 32u);  // quiet 1/2: hold
  EXPECT_EQ(policy.OnPublish(false), 16u);  // quiet 2/2: halve
  EXPECT_EQ(policy.OnPublish(false), 16u);
  EXPECT_EQ(policy.OnPublish(false), 8u);   // back at base
  EXPECT_EQ(policy.OnPublish(false), 8u);   // never below base
  EXPECT_EQ(policy.OnPublish(false), 8u);
}

TEST(BatchedParallelTest, AdaptiveCoalescingUnderBackPressure) {
  // A slow shard (large pool, tiny rings, tiny base batches) must trigger
  // the policy: by the end of the stream the budget has grown past base.
  std::vector<core::Query> queries;
  for (int i = 0; i < 64; ++i) {
    StatusOr<core::Query> query =
        core::Query::Compile("//b/pool_" + std::to_string(i));
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(*query));
  }
  std::string doc = "<a>";
  for (int i = 0; i < 4000; ++i) doc += "<b><c/></b>";
  doc += "</a>";

  core::ParallelFleetOptions options;
  options.num_workers = 2;
  options.max_batch_events = 2;
  options.ring_capacity = 2;
  options.max_batch_events_cap = 256;
  core::ParallelFleet fleet(options);
  for (const core::Query& query : queries) fleet.AddQuery(query);
  ASSERT_TRUE(xml::ParseString(doc, &fleet).ok());
  ASSERT_TRUE(fleet.status().ok());
  if (fleet.publish_stalls() > 0) {
    EXPECT_GT(fleet.current_batch_events(), 2u);
  }
  // Everything still matched correctly despite resized batches.
  EXPECT_TRUE(fleet.MatchedQueries().empty());
}

// --- mid-batch abort and the pool double-release regression -----------------

TEST(BatchedAbortTest, AbortMidBatchDiscardsBufferedEvents) {
  StatusOr<core::Query> query = core::Query::Compile("/a/b/c");
  ASSERT_TRUE(query.ok());
  core::MultiQueryEvaluator evaluator;
  size_t q = evaluator.AddQuery(*query);
  core::BatchedDispatchOptions options;
  options.max_batch_events = 1024;  // keep the whole document buffered
  core::BatchedDispatcher dispatcher(&evaluator, options);

  xml::SaxParser parser(&dispatcher);
  ASSERT_TRUE(parser.Feed("<a><b><c/></b>").ok());
  dispatcher.AbortDocument(InternalError("producer died"));
  // The buffered partial capture never reached the engines.
  EXPECT_EQ(dispatcher.batches_replayed(), 0u);
  EXPECT_FALSE(evaluator.Matched(q));
  EXPECT_FALSE(evaluator.status().ok());

  // The dispatcher and its pool stay reusable.
  core::BatchedDispatcher fresh_parse_helper(&evaluator);
  ParseInto("<a><b><c/></b></a>", &fresh_parse_helper, 0);
  EXPECT_TRUE(evaluator.Matched(q));
}

TEST(BatchedAbortTest, ReentrantAbortDoesNotDoubleReleaseBatch) {
  // Regression: EventBatcher::PublishCurrent still holds current_ while the
  // sink replays the batch, so an AbortDocument raised from *inside* the
  // replay (here: an earliest-emission sink) re-publishes the same batch
  // pointer. Without the pool guard the batch would enter the free list
  // twice and later be handed to two writers.
  StatusOr<core::Query> query = core::Query::Compile("//c");
  ASSERT_TRUE(query.ok());
  core::EngineOptions options;
  options.enable_shared_index = false;  // engine backend drives the sink
  core::MultiQueryEvaluator evaluator(options);
  size_t q = evaluator.AddQuery(*query);

  core::BatchedDispatchOptions dispatch_options;
  dispatch_options.max_batch_events = 4;
  core::BatchedDispatcher dispatcher(&evaluator, dispatch_options);
  bool aborted = false;
  // Rebuild the evaluator's sink after construction is impossible (options
  // are copied), so drive the abort from the parse loop instead: feed
  // events until the first batch replayed, then abort mid-document.
  xml::SaxParser parser(&dispatcher);
  // 4 events fill the batch: StartDocument, <a>, <x>, <c> — the last one
  // triggers the publish + replay.
  ASSERT_TRUE(parser.Feed("<a><x><c>").ok());
  ASSERT_GE(dispatcher.batches_replayed(), 1u);
  dispatcher.AbortDocument(InternalError("mid-batch failure"));
  aborted = true;
  EXPECT_TRUE(aborted);
  // One distinct batch may sit in the free pool per acquisition; duplicate
  // entries would exceed the number of batches ever created.
  EXPECT_LE(dispatcher.pool_free_for_test(), 2u);

  // Reuse after the abort: correctness proves no two "free" handles alias
  // the same arena.
  for (int doc = 0; doc < 3; ++doc) {
    core::BatchedDispatcher reuse(&evaluator, dispatch_options);
    ParseInto("<a><x><c/></x></a>", &reuse, 0);
    EXPECT_TRUE(evaluator.Matched(q));
  }
}

// --- flat-interner saturation fallback --------------------------------------

TEST(BatchedFlatFallbackTest, SaturationFallsBackMidDocument) {
  std::vector<std::string> expressions = {"/a/b/c", "//a//c", "/a/*/c",
                                          "//c",    "//b/a",  "//d"};
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(*query));
  }
  core::MultiQueryEvaluator batched;
  core::EngineOptions oracle_options;
  oracle_options.enable_batched_dispatch = false;
  core::MultiQueryEvaluator oracle(oracle_options);
  for (const core::Query& query : queries) {
    batched.AddQuery(query);
    oracle.AddQuery(query);
  }

  // A minimal first document builds the matcher (so the test can pin its
  // interner limit) without pre-interning the sets kAxisDoc needs — the
  // limit only bites when a *new* set must be interned.
  core::BatchedDispatcher warmup(&batched);
  ParseInto("<zzz/>", &warmup, 0);
  core::SharedMatcher* matcher = batched.shared_matcher_for_test();
  ASSERT_NE(matcher, nullptr);
  matcher->set_flat_set_limit_for_test(2);  // empty set + root set only

  core::BatchedDispatcher dispatcher(&batched);
  ParseInto(kAxisDoc, &dispatcher, 0);
  EXPECT_TRUE(matcher->flat_fallback_active());

  ParseInto(kAxisDoc, &oracle, 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(oracle.Matched(q), batched.Matched(q)) << expressions[q];
    EXPECT_EQ(baseline::CanonicalFromResult(oracle.Result(q)),
              baseline::CanonicalFromResult(batched.Result(q)))
        << expressions[q];
  }
}

TEST(BatchedFlatFallbackTest, StepCacheHitsAccumulate) {
  std::vector<std::string> expressions = {"/a/b/c", "//b", "//c"};
  core::MultiQueryEvaluator batched;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok());
    batched.AddQuery(*query);
  }
  std::string doc = "<a>";
  for (int i = 0; i < 200; ++i) doc += "<b><c/></b>";
  doc += "</a>";
  core::BatchedDispatcher dispatcher(&batched);
  ParseInto(doc, &dispatcher, 0);
  core::SharedMatcher* matcher = batched.shared_matcher_for_test();
  ASSERT_NE(matcher, nullptr);
  EXPECT_FALSE(matcher->flat_fallback_active());
  // A repetitive document steps through a handful of distinct
  // (state-set, symbol) configurations: hits dominate misses.
  EXPECT_GT(matcher->flat_cache_hits(), matcher->flat_cache_misses());
}

}  // namespace
}  // namespace xaos
