// Extensions of Section 5: or / union, multiple outputs with tuple
// enumeration, attribute and text() node tests, subtree capture,
// intersection/join evaluation, and resource limits.

#include <set>
#include <string>
#include <vector>

#include "core/multi_engine.h"
#include "core/xaos_engine.h"
#include "gtest/gtest.h"
#include "query/reroot.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using test::EvalStreaming;
using test::Names;
using test::Ordinals;

TEST(EngineExtensionsTest, OrPredicate) {
  const std::string xml = "<r><a><b/></a><a><c/></a><a><d/></a></r>";
  auto items = EvalStreaming("//a[b or c]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 4}));
}

TEST(EngineExtensionsTest, OrDistributesOverAnd) {
  const std::string xml =
      "<r><a><b/><d/></a><a><c/><e/></a><a><b/><e/></a><a><b/></a></r>";
  auto items = EvalStreaming("//a[(b or c) and (d or e)]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 5, 8}));
}

TEST(EngineExtensionsTest, TopLevelUnion) {
  const std::string xml = "<r><a/><b/><c/></r>";
  auto items = EvalStreaming("//a | //c", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"a", "c"}));
}

TEST(EngineExtensionsTest, UnionDeduplicates) {
  const std::string xml = "<r><a><b/></a></r>";
  auto items = EvalStreaming("//b | //a/b", xml);
  EXPECT_EQ(items.size(), 1u);
}

TEST(EngineExtensionsTest, AttributeOutput) {
  const std::string xml = "<r><a id=\"one\"/><a/><a id=\"two\"/></r>";
  auto items = EvalStreaming("//a/@id", xml);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].name, "id");
  EXPECT_EQ(items[0].value, "one");
  EXPECT_EQ(items[1].value, "two");
}

TEST(EngineExtensionsTest, AttributePredicate) {
  const std::string xml =
      "<r><a id=\"x\"/><a id=\"y\"/><a class=\"x\"/></r>";
  auto items = EvalStreaming("//a[@id]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 3}));
  items = EvalStreaming("//a[@id='y']", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{3}));
  items = EvalStreaming("//a[@*]", xml);
  EXPECT_EQ(items.size(), 3u);
}

TEST(EngineExtensionsTest, TextPredicateAndOutput) {
  const std::string xml = "<r><a>yes</a><a>no</a><a><b/>yes</a></r>";
  auto items = EvalStreaming("//a[text()='yes']", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 4}));
  items = EvalStreaming("//a/text()", xml);
  EXPECT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].value, "yes");
}

TEST(EngineExtensionsTest, MultipleOutputsTuples) {
  // $a/$b — all (a, b) parent/child pairs (paper Section 5.3).
  const std::string xml = "<a><b/><b/><a><b/></a></a>";
  auto trees = query::CompileToXTrees("//$a/$b");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  core::TupleEnumeration tuples = engine.OutputTuples();
  EXPECT_TRUE(tuples.complete);
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (const core::OutputTuple& tuple : tuples.tuples) {
    ASSERT_EQ(tuple.size(), 2u);
    pairs.insert({tuple[0].ordinal, tuple[1].ordinal});
  }
  // a(1) has b children 2, 3; a(4) has b child 5.
  EXPECT_EQ(pairs, (std::set<std::pair<uint32_t, uint32_t>>{
                       {1, 2}, {1, 3}, {4, 5}}));
  // The union result contains all five marked elements.
  EXPECT_EQ(engine.result().items.size(), 5u);
}

TEST(EngineExtensionsTest, TupleLimit) {
  std::string xml = "<a>";
  for (int i = 0; i < 30; ++i) xml += "<b/>";
  xml += "</a>";
  auto trees = query::CompileToXTrees("//$a/$b");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  core::TupleEnumeration tuples = engine.OutputTuples(/*max_tuples=*/10);
  EXPECT_FALSE(tuples.complete);
  EXPECT_EQ(tuples.tuples.size(), 10u);
}

TEST(EngineExtensionsTest, CaptureOutputSubtrees) {
  const std::string xml =
      "<r><k><x a=\"1\"><y>text</y></x></k><x><z/></x></r>";
  core::EngineOptions options;
  options.capture_output_subtrees = true;
  auto result = core::EvaluateStreaming("//k/x", xml, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].captured_xml, "<x a=\"1\"><y>text</y></x>");
}

TEST(EngineExtensionsTest, CaptureNestedOutputs) {
  const std::string xml = "<r><x><x>inner</x></x></r>";
  core::EngineOptions options;
  options.capture_output_subtrees = true;
  auto result = core::EvaluateStreaming("//x", xml, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 2u);
  EXPECT_EQ(result->items[0].captured_xml, "<x><x>inner</x></x>");
  EXPECT_EQ(result->items[1].captured_xml, "<x>inner</x>");
}

TEST(EngineExtensionsTest, IntersectionEvaluation) {
  // //Y[U]//W ∩ //Z[V]//W over the Figure 2 document: W elements that are
  // below a Y-with-U and below a Z-with-V: exactly W7, W8.
  auto a = query::CompileToXTrees("//Y[U]//W");
  auto b = query::CompileToXTrees("//Z[V]//W");
  ASSERT_TRUE(a.ok() && b.ok());
  auto merged = query::Intersect(a->front(), b->front());
  ASSERT_TRUE(merged.ok());

  core::XaosEngine engine(&*merged);
  ASSERT_TRUE(xml::ParseString(test::kFigure2Document, &engine).ok());
  std::vector<uint32_t> ordinals;
  for (const auto& item : engine.result().items) {
    ordinals.push_back(item.info.ordinal);
  }
  EXPECT_EQ(ordinals, (std::vector<uint32_t>{7, 8}));
}

TEST(EngineExtensionsTest, LiveStructureLimit) {
  core::EngineOptions options;
  options.max_live_structures = 4;
  std::string xml = "<a>";
  for (int i = 0; i < 100; ++i) xml += "<a>";
  for (int i = 0; i < 100; ++i) xml += "</a>";
  xml += "</a>";
  auto result = core::EvaluateStreaming("//a", xml, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineExtensionsTest, StatsDiscardCounting) {
  // Only b elements under k are relevant; everything else is discarded.
  const std::string xml =
      "<r><k><b/></k><c/><c/><c/><b/></r>";
  auto trees = query::CompileToXTrees("//k/b");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  const core::EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.elements_total, 7u);
  // r, the three c's, and the trailing b (no k ancestor) are discarded.
  EXPECT_EQ(stats.elements_discarded, 5u);
  EXPECT_DOUBLE_EQ(stats.DiscardedFraction(), 5.0 / 7.0);
}

TEST(EngineExtensionsTest, RelevanceFilterAblation) {
  // With the filter off, results are identical but more structures are
  // created (label-matching elements are no longer pre-filtered).
  const std::string xml =
      "<r><k><b/></k><b/><b/><b/></r>";
  auto trees = query::CompileToXTrees("//k/b");
  ASSERT_TRUE(trees.ok());

  core::XaosEngine filtered(&trees->front());
  ASSERT_TRUE(xml::ParseString(xml, &filtered).ok());

  core::EngineOptions off;
  off.enable_relevance_filter = false;
  core::XaosEngine unfiltered(&trees->front(), off);
  ASSERT_TRUE(xml::ParseString(xml, &unfiltered).ok());

  EXPECT_EQ(filtered.result().items.size(), 1u);
  EXPECT_EQ(unfiltered.result().items.size(), 1u);
  EXPECT_GT(unfiltered.stats().structures_created,
            filtered.stats().structures_created);
}

TEST(EngineExtensionsTest, NoLiveStructuresAfterDocument) {
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  auto engine = std::make_unique<core::XaosEngine>(&trees->front());
  ASSERT_TRUE(xml::ParseString(test::kFigure2Document, &*engine).ok());
  // Live structures remaining are exactly those reachable from the root
  // structure (the retained result); everything else was freed.
  EXPECT_GT(engine->stats().structures_live, 0u);
  EXPECT_LE(engine->stats().structures_live,
            engine->stats().structures_created);
  // After processing an empty-ish second document, the previous result's
  // structures are released.
  ASSERT_TRUE(xml::ParseString("<q/>", &*engine).ok());
  EXPECT_LE(engine->stats().structures_live, 1u);
}

}  // namespace
}  // namespace xaos

namespace xaos {
namespace {

TEST(EngineExtensionsTest, BooleanSubmatchingsReduceRetainedStructures) {
  // //w[ancestor::z[v]]: the z/v predicate subtree carries no output, so
  // with boolean submatchings its confirmed matchings are counted and
  // released instead of retained until end of document.
  std::string xml = "<r>";
  for (int i = 0; i < 200; ++i) xml += "<z><v/><w/></z>";
  xml += "</r>";
  auto trees = query::CompileToXTrees("//w[ancestor::z[v]]");
  ASSERT_TRUE(trees.ok());

  // Pin earliest emission off: its eager reclamation drains both engines
  // to the root structure, hiding the boolean-submatchings contrast this
  // test is about.
  core::EngineOptions on;
  on.enable_earliest_emission = false;
  core::EngineOptions off;
  off.enable_boolean_submatchings = false;
  off.enable_earliest_emission = false;

  core::XaosEngine with(&trees->front(), on);
  ASSERT_TRUE(xml::ParseString(xml, &with).ok());
  core::XaosEngine without(&trees->front(), off);
  ASSERT_TRUE(xml::ParseString(xml, &without).ok());

  ASSERT_EQ(with.result().items.size(), 200u);
  ASSERT_EQ(without.result().items.size(), 200u);
  // Identical answers, but the final retained structure count shrinks: the
  // z and v structures are counted away, only the w chain survives.
  EXPECT_LT(with.stats().structures_live, without.stats().structures_live);
}

}  // namespace
}  // namespace xaos
