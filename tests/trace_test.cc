// TraceHandler: the Table-2-style execution trace.

#include <string>
#include <vector>

#include "core/trace.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "query/xtree_builder.h"
#include "test_util.h"

namespace xaos::core {
namespace {

TEST(TraceTest, WalkthroughTraceMirrorsTable2) {
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocument(&engine, test::kFigure2Document);

  // 28 numbered steps (paper Table 2) plus the verdict line.
  EXPECT_NE(trace.find("1  S: Root"), std::string::npos);
  EXPECT_NE(trace.find("28  E: Root"), std::string::npos);
  EXPECT_NE(trace.find("=> matched"), std::string::npos);
  // Step 3 grows the looking-for set with (U, 3).
  EXPECT_NE(trace.find("(U, 3)"), std::string::npos);
  // Step 23's undo (M(Z,11) and the cascade into M(W,12)) is visible.
  EXPECT_NE(trace.find("23  E: Z                2 undone"),
            std::string::npos);
  // Discarded elements are reported (step 2, S:X).
  EXPECT_NE(trace.find("discarded"), std::string::npos);
  EXPECT_TRUE(engine.Matched());
}

TEST(TraceTest, NoMatchVerdict) {
  auto trees = query::CompileToXTrees("//nope");
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocument(&engine, "<a><b/></a>");
  EXPECT_NE(trace.find("=> no match"), std::string::npos);
}

TEST(TraceTest, ParseErrorSurfacesInTrace) {
  auto trees = query::CompileToXTrees("//a");
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocument(&engine, "<a><b></a>");
  EXPECT_NE(trace.find("parse error"), std::string::npos);
}

// Splits a JSON-lines blob into its non-empty lines.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(TraceJsonTest, EveryLineIsValidJson) {
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocumentJson(&engine, test::kFigure2Document);

  std::vector<std::string> lines = Lines(trace);
  // 28 event records (paper Table 2) plus the verdict record.
  ASSERT_EQ(lines.size(), 29u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(obs::JsonValid(line)) << line;
  }
  EXPECT_EQ(lines.back(), "{\"event\":\"verdict\",\"matched\":true}");
}

TEST(TraceJsonTest, RecordsCarryDeltasAndLookingForSet) {
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocumentJson(&engine, test::kFigure2Document);

  EXPECT_NE(trace.find("{\"step\":1,\"event\":\"start\",\"node\":\"Root\""),
            std::string::npos);
  // Step 23's undo cascade (Table 2) appears as a structured delta.
  EXPECT_NE(trace.find("\"undone\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"discarded\":1"), std::string::npos);
  // Looking-for entries are (label, level) pairs; level -1 encodes "inf".
  EXPECT_NE(trace.find("\"looking_for\":[{\"label\":"), std::string::npos);
  EXPECT_NE(trace.find("\"level\":-1"), std::string::npos);
  EXPECT_NE(trace.find("\"level\":3"), std::string::npos);
}

TEST(TraceJsonTest, NoMatchVerdictAndParseError) {
  {
    auto trees = query::CompileToXTrees("//nope");
    ASSERT_TRUE(trees.ok());
    XaosEngine engine(&trees->front());
    std::string trace = TraceDocumentJson(&engine, "<a><b/></a>");
    EXPECT_NE(trace.find("{\"event\":\"verdict\",\"matched\":false}"),
              std::string::npos);
  }
  {
    auto trees = query::CompileToXTrees("//a");
    ASSERT_TRUE(trees.ok());
    XaosEngine engine(&trees->front());
    std::string trace = TraceDocumentJson(&engine, "<a><b></a>");
    std::vector<std::string> lines = Lines(trace);
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.back().find("{\"event\":\"error\",\"message\":"),
              std::string::npos);
    EXPECT_TRUE(obs::JsonValid(lines.back())) << lines.back();
  }
}

TEST(TraceJsonTest, NodeNamesAreEscaped) {
  // A name that needs escaping cannot appear in well-formed XML element
  // names, but the escaper must still be wired: verify via the error
  // message path, which passes arbitrary status text through JsonEscape.
  auto trees = query::CompileToXTrees("//a");
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocumentJson(&engine, "<a attr=\"unterminated>");
  for (const std::string& line : Lines(trace)) {
    EXPECT_TRUE(obs::JsonValid(line)) << line;
  }
}

}  // namespace
}  // namespace xaos::core
