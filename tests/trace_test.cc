// TraceHandler: the Table-2-style execution trace.

#include <string>

#include "core/trace.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"

namespace xaos::core {
namespace {

TEST(TraceTest, WalkthroughTraceMirrorsTable2) {
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocument(&engine, test::kFigure2Document);

  // 28 numbered steps (paper Table 2) plus the verdict line.
  EXPECT_NE(trace.find("1  S: Root"), std::string::npos);
  EXPECT_NE(trace.find("28  E: Root"), std::string::npos);
  EXPECT_NE(trace.find("=> matched"), std::string::npos);
  // Step 3 grows the looking-for set with (U, 3).
  EXPECT_NE(trace.find("(U, 3)"), std::string::npos);
  // Step 23's undo (M(Z,11) and the cascade into M(W,12)) is visible.
  EXPECT_NE(trace.find("23  E: Z                2 undone"),
            std::string::npos);
  // Discarded elements are reported (step 2, S:X).
  EXPECT_NE(trace.find("discarded"), std::string::npos);
  EXPECT_TRUE(engine.Matched());
}

TEST(TraceTest, NoMatchVerdict) {
  auto trees = query::CompileToXTrees("//nope");
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocument(&engine, "<a><b/></a>");
  EXPECT_NE(trace.find("=> no match"), std::string::npos);
}

TEST(TraceTest, ParseErrorSurfacesInTrace) {
  auto trees = query::CompileToXTrees("//a");
  ASSERT_TRUE(trees.ok());
  XaosEngine engine(&trees->front());
  std::string trace = TraceDocument(&engine, "<a><b></a>");
  EXPECT_NE(trace.find("parse error"), std::string::npos);
}

}  // namespace
}  // namespace xaos::core
