// Early match confirmation (paper Section 5.1, eager emission): the engine
// reports a *guaranteed* document match as soon as one exists, long before
// end of document, and can optionally stop working at that point.

#include <string>

#include "core/multi_engine.h"
#include "core/xaos_engine.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

// Feeds `xml` byte by byte; returns the number of bytes consumed before
// match_confirmed() first became true (or npos if never before Finish).
size_t BytesUntilConfirmed(core::XaosEngine* engine, std::string_view xml) {
  xml::SaxParser parser(engine);
  for (size_t i = 0; i < xml.size(); ++i) {
    EXPECT_TRUE(parser.Feed(xml.substr(i, 1)).ok());
    if (engine->match_confirmed()) return i + 1;
  }
  EXPECT_TRUE(parser.Finish().ok());
  return engine->match_confirmed() ? xml.size() : std::string::npos;
}

TEST(ConfirmationTest, ForwardQueryConfirmsAtFirstWitness) {
  auto trees = query::CompileToXTrees("//a/b");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  const std::string xml = "<r><a><b/></a><filler/><filler/></r>";
  size_t confirmed_at = BytesUntilConfirmed(&engine, xml);
  // Confirmed as soon as the witness subtree closes (</a> links the
  // confirmed a-matching into Root), well before the document ends.
  ASSERT_NE(confirmed_at, std::string::npos);
  EXPECT_LE(confirmed_at, xml.find("</a>") + 4);
}

TEST(ConfirmationTest, NotConfirmedWithoutMatch) {
  auto trees = query::CompileToXTrees("//a/b");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  EXPECT_EQ(BytesUntilConfirmed(&engine, "<r><a><c/></a></r>"),
            std::string::npos);
  EXPECT_FALSE(engine.Matched());
}

TEST(ConfirmationTest, BackwardQueryConfirmsMidStream) {
  // The Figure 3 query over the Figure 2 document: the first Y subtree
  // fully satisfies the query, so confirmation must land at or before
  // the first </Y> — the second Y subtree is irrelevant.
  auto trees = query::CompileToXTrees(test::kFigure3Query);
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  std::string xml(test::kFigure2Document);
  size_t confirmed_at = BytesUntilConfirmed(&engine, xml);
  ASSERT_NE(confirmed_at, std::string::npos);
  EXPECT_LE(confirmed_at, xml.find("</Y>") + 5);
}

TEST(ConfirmationTest, OptimisticMatchIsNotConfirmedPrematurely) {
  // <z><w/>...</z> with //w[ancestor::z[v]]: at </w> the w matching is only
  // optimistic (z's v child is still pending), so no confirmation until v
  // closes.
  auto trees = query::CompileToXTrees("//w[ancestor::z[v]]");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  const std::string xml = "<z><w/><pad/><v/><pad/></z>";
  size_t confirmed_at = BytesUntilConfirmed(&engine, xml);
  ASSERT_NE(confirmed_at, std::string::npos);
  EXPECT_GT(confirmed_at, xml.find("<v/>"));
  EXPECT_LE(confirmed_at, xml.find("<pad/>", xml.find("<v/>")) + 6);
}

TEST(ConfirmationTest, FailedOptimismNeverConfirms) {
  auto trees = query::CompileToXTrees("//w[ancestor::z[v]]");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  EXPECT_EQ(BytesUntilConfirmed(&engine, "<z><w/><u/></z>"),
            std::string::npos);
  EXPECT_FALSE(engine.Matched());
}

TEST(ConfirmationTest, ConfirmedAfterDocumentEndEqualsMatched) {
  auto trees = query::CompileToXTrees("//a[b and c]");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  ASSERT_TRUE(xml::ParseString("<a><b/><c/></a>", &engine).ok());
  EXPECT_TRUE(engine.Matched());
  EXPECT_TRUE(engine.match_confirmed());
}

TEST(ConfirmationTest, StopAfterConfirmedMatchSkipsWork) {
  core::EngineOptions options;
  options.stop_after_confirmed_match = true;

  auto trees = query::CompileToXTrees("//a/b");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front(), options);

  // Match appears early; the long tail must not be processed.
  std::string xml = "<r><a><b/></a>";
  for (int i = 0; i < 1000; ++i) xml += "<filler/>";
  xml += "</r>";
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  EXPECT_TRUE(engine.Matched());
  EXPECT_TRUE(engine.match_confirmed());
  // Far fewer elements were examined than the document contains.
  EXPECT_LT(engine.stats().elements_total, 10u);
  // Engine remains reusable afterwards.
  ASSERT_TRUE(xml::ParseString("<r><c/></r>", &engine).ok());
  EXPECT_FALSE(engine.Matched());
}

TEST(ConfirmationTest, ConfirmationIsMonotoneUnderUndo) {
  // A document where an optimistic matching fails after a confirmed one
  // already exists: confirmation must survive.
  auto trees = query::CompileToXTrees("//w[ancestor::z[v]]");
  ASSERT_TRUE(trees.ok());
  core::XaosEngine engine(&trees->front());
  // First z subtree confirms; second z/w has no v and is undone.
  const std::string xml = "<r><z><w/><v/></z><z><w/></z></r>";
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  EXPECT_TRUE(engine.Matched());
  EXPECT_GT(engine.stats().structures_undone, 0u);
  EXPECT_EQ(engine.result().items.size(), 1u);
}

TEST(ConfirmationTest, EvaluatorExposesConfirmation) {
  auto query = core::Query::Compile("//a | //never");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  ASSERT_TRUE(xml::ParseString("<r><a/><x/></r>", &evaluator).ok());
  EXPECT_TRUE(evaluator.MatchConfirmed());
  EXPECT_TRUE(evaluator.Result().matched);
}

}  // namespace
}  // namespace xaos
