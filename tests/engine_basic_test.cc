// Basic streaming-engine behaviour: forward axes, predicates, document
// order, matching flag, reuse across documents.

#include <string>
#include <vector>

#include "core/multi_engine.h"
#include "core/xaos_engine.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

using test::EvalStreaming;
using test::Names;
using test::Ordinals;

TEST(EngineBasicTest, ChildAxisSelectsDirectChildrenOnly) {
  const std::string xml = "<a><b/><c><b/></c><b/></a>";
  auto items = EvalStreaming("/a/b", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"b", "b"}));
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 5}));
}

TEST(EngineBasicTest, AbsolutePathAnchorsAtRootElement) {
  const std::string xml = "<a><a><b/></a></a>";
  // /a/b matches nothing: the outer a has no b child.
  EXPECT_TRUE(EvalStreaming("/a/b", xml).empty());
  // /a/a/b matches the inner b.
  EXPECT_EQ(EvalStreaming("/a/a/b", xml).size(), 1u);
}

TEST(EngineBasicTest, DescendantAxisIsProperDescendant) {
  const std::string xml = "<a><a><a/></a></a>";
  // descendants of the root element named a: the two inner ones.
  auto items = EvalStreaming("/a/descendant::a", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 3}));
}

TEST(EngineBasicTest, DoubleSlashIsDescendantFromRoot) {
  const std::string xml = "<a><b><c/></b><c/></a>";
  auto items = EvalStreaming("//c", xml);
  EXPECT_EQ(items.size(), 2u);
}

TEST(EngineBasicTest, ChildPredicateFilters) {
  const std::string xml = "<r><s><t/></s><s><u/></s><s><t/><u/></s></r>";
  auto items = EvalStreaming("/r/s[child::t]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 6}));
  items = EvalStreaming("/r/s[child::t and child::u]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{6}));
}

TEST(EngineBasicTest, PredicateDoesNotChangeOutputNode) {
  const std::string xml = "<r><s><t/></s></r>";
  auto items = EvalStreaming("/r/s[t]", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"s"}));
}

TEST(EngineBasicTest, WildcardMatchesAnyElement) {
  const std::string xml = "<r><a/><b/><c><d/></c></r>";
  auto items = EvalStreaming("/r/*", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EngineBasicTest, ResultsAreInDocumentOrderAndDeduplicated) {
  // //b[ancestor::a] with nested a elements: each b is reported once even
  // though multiple matchings exist (two a ancestors each).
  const std::string xml = "<a><a><b/><b/></a></a>";
  auto items = EvalStreaming("//b[ancestor::a]", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{3, 4}));
}

TEST(EngineBasicTest, MatchedFlagWithoutItems) {
  query::XTree tree =
      std::move(query::CompileToXTrees("/a/b").value().front());
  core::XaosEngine engine(&tree);
  ASSERT_TRUE(xml::ParseString("<a><c/></a>", &engine).ok());
  EXPECT_TRUE(engine.done());
  EXPECT_FALSE(engine.Matched());
  EXPECT_TRUE(engine.result().items.empty());
}

TEST(EngineBasicTest, EngineIsReusableAcrossDocuments) {
  query::XTree tree =
      std::move(query::CompileToXTrees("//b").value().front());
  core::XaosEngine engine(&tree);
  ASSERT_TRUE(xml::ParseString("<a><b/></a>", &engine).ok());
  EXPECT_TRUE(engine.Matched());
  EXPECT_EQ(engine.result().items.size(), 1u);

  ASSERT_TRUE(xml::ParseString("<a><c/></a>", &engine).ok());
  EXPECT_FALSE(engine.Matched());

  ASSERT_TRUE(xml::ParseString("<b><b/></b>", &engine).ok());
  EXPECT_EQ(engine.result().items.size(), 2u);
}

TEST(EngineBasicTest, ChunkedFeedingMatchesOneShot) {
  const std::string xml =
      "<r><s><t/></s><s>text content</s><s><t/><u/></s></r>";
  query::XTree tree =
      std::move(query::CompileToXTrees("/r/s[t]").value().front());

  core::XaosEngine engine(&tree);
  xml::SaxParser parser(&engine);
  // Feed one byte at a time: events must be identical.
  for (char c : xml) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(engine.result().items.size(), 2u);
}

TEST(EngineBasicTest, DeepRecursiveDocument) {
  // 200 nested a elements; //a/a selects all but the outermost.
  std::string xml;
  for (int i = 0; i < 200; ++i) xml += "<a>";
  for (int i = 0; i < 200; ++i) xml += "</a>";
  auto items = EvalStreaming("//a/a", xml);
  EXPECT_EQ(items.size(), 199u);
}

TEST(EngineBasicTest, SelfAxis) {
  const std::string xml = "<a><b/><c/></a>";
  auto items = EvalStreaming("/a/b/self::b", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"b"}));
  EXPECT_TRUE(EvalStreaming("/a/b/self::c", xml).empty());
  items = EvalStreaming("/a/*/self::c", xml);
  EXPECT_EQ(Names(items), (std::vector<std::string>{"c"}));
}

TEST(EngineBasicTest, DescendantOrSelfAxis) {
  const std::string xml = "<a><b><b/></b></a>";
  auto items = EvalStreaming("/a/b/descendant-or-self::b", xml);
  EXPECT_EQ(Ordinals(items), (std::vector<uint32_t>{2, 3}));
}

}  // namespace
}  // namespace xaos
