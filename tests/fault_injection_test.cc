// Fault-injection coverage: every prefix of a corpus document (exhaustive
// chop), single-byte corruption sweeps and adversarial chunk schedules must
// yield a clean error-or-success — never a hang, crash, or invariant
// violation — and a mid-stream failure must propagate through
// StreamingEvaluator and ParallelFleet (1/2/4 workers) via AbortDocument,
// leaving the evaluator/fleet reusable for the next document.

#include <string>
#include <vector>

#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "gtest/gtest.h"
#include "xml/fault_injection.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

// A corpus document exercising every token kind the parser holds back
// across chunk boundaries: attributes with references, comments, CDATA,
// PIs, nested elements, brackets in text.
const char kCorpusDoc[] =
    "<?xml version=\"1.0\"?><!-- preamble --><root a=\"1&amp;2\">"
    "<b><c x='y'>text ] and ]] brackets</c><![CDATA[raw <markup> ]]>"
    "<?pi data?></b><d/>&lt;tail&gt;</root>";

// Asserts stream invariants (balance, nesting) even on failing parses.
class InvariantHandler : public xml::ContentHandler {
 public:
  void StartDocument() override {
    EXPECT_FALSE(started_);
    started_ = true;
  }
  void EndDocument() override {
    EXPECT_TRUE(started_);
    EXPECT_EQ(depth_, 0);
  }
  void StartElement(const xml::QName& name, xml::AttributeSpan) override {
    EXPECT_TRUE(started_);
    EXPECT_FALSE(name.text.empty());
    ++depth_;
  }
  void EndElement(std::string_view) override {
    EXPECT_GT(depth_, 0);
    --depth_;
  }
  void Characters(std::string_view text) override {
    EXPECT_GT(depth_, 0);
    EXPECT_FALSE(text.empty());
  }

 private:
  bool started_ = false;
  int depth_ = 0;
};

TEST(FaultInjectionTest, ExhaustiveChop) {
  const std::string doc = kCorpusDoc;
  // Every proper prefix must fail cleanly (the document is only complete
  // at full length); the full document must parse.
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    xml::FaultSpec spec;
    spec.truncate_at = cut;
    spec.chunk_bytes = 3;  // also stress chunk-boundary holdbacks
    xml::FaultInjectingSource source(doc, spec);
    ASSERT_EQ(source.effective_document().size(), cut);
    InvariantHandler handler;
    Status status = source.Parse(&handler);
    EXPECT_FALSE(status.ok()) << "prefix of length " << cut << " parsed OK";
  }
  xml::FaultInjectingSource full(doc, xml::FaultSpec{});
  InvariantHandler handler;
  EXPECT_TRUE(full.Parse(&handler).ok());
}

TEST(FaultInjectionTest, SingleByteCorruptionSweep) {
  const std::string doc = kCorpusDoc;
  for (size_t at = 0; at < doc.size(); ++at) {
    for (uint8_t mask : {uint8_t{0xFF}, uint8_t{0x01}, uint8_t{0x20}}) {
      xml::FaultSpec spec;
      spec.corrupt_at = at;
      spec.corrupt_mask = mask;
      xml::FaultInjectingSource source(doc, spec);
      InvariantHandler handler;
      source.Parse(&handler);  // ok-ness irrelevant; must not crash/hang
    }
  }
}

TEST(FaultInjectionTest, CorruptionMaskZeroLeavesDocumentIntact) {
  xml::FaultSpec spec;
  spec.corrupt_at = 5;
  spec.corrupt_mask = 0;
  xml::FaultInjectingSource source(kCorpusDoc, spec);
  EXPECT_EQ(source.effective_document(), std::string_view(kCorpusDoc));
  InvariantHandler handler;
  EXPECT_TRUE(source.Parse(&handler).ok());
}

TEST(FaultInjectionTest, AdversarialChunkSchedulesAgreeWithOneShot) {
  const std::string doc = kCorpusDoc;
  xml::EventRecorder reference;
  ASSERT_TRUE(xml::ParseString(doc, &reference).ok());

  std::vector<std::vector<size_t>> schedules = {
      {1},                     // byte at a time
      {1, 2, 3, 5, 7, 11},     // coprime-ish cycle
      {64, 1, 1, 1},           // big gulp then dribble
      {0, 2},                  // zero entries clamp to 1
  };
  for (const std::vector<size_t>& schedule : schedules) {
    xml::FaultSpec spec;
    spec.chunk_sizes = schedule;
    xml::FaultInjectingSource source(doc, spec);
    xml::EventRecorder chunked;
    ASSERT_TRUE(source.Parse(&chunked).ok());
    EXPECT_EQ(chunked.events(), reference.events());
  }
}

TEST(FaultInjectionTest, StreamingEvaluatorAbortAndReuse) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);

  // Mismatched end tag mid-stream, after some matching structure exists.
  xml::FaultSpec spec;
  spec.chunk_bytes = 4;
  xml::FaultInjectingSource bad("<a><b><c/></b><oops></a>", spec);
  Status status = bad.Parse(&evaluator);
  ASSERT_FALSE(status.ok());
  evaluator.AbortDocument(status);
  EXPECT_EQ(evaluator.status(), status);

  // The same evaluator then handles a valid document correctly.
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &evaluator).ok());
  EXPECT_TRUE(evaluator.status().ok());
  EXPECT_TRUE(evaluator.Result().matched);
}

TEST(FaultInjectionTest, StreamingEvaluatorSurfacesLimitRejection) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);

  xml::ParserOptions options;
  options.limits.max_depth = 2;
  xml::FaultInjectingSource deep("<a><b><c/></b></a>", xml::FaultSpec{});
  Status status = deep.Parse(&evaluator, options);
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
  evaluator.AbortDocument(status);
  EXPECT_EQ(evaluator.status().code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &evaluator).ok());
  EXPECT_TRUE(evaluator.status().ok());
  EXPECT_TRUE(evaluator.Result().matched);
}

// Mid-stream failure through the parallel fleet: the parse thread fails
// after enough events to have shipped several batches; AbortDocument must
// return (no deadlock), surface the cause, and leave the fleet reusable.
void RunParallelAbort(int workers) {
  StatusOr<core::Query> match = core::Query::Compile("//b/c");
  StatusOr<core::Query> miss = core::Query::Compile("//zzz");
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(miss.ok());

  core::ParallelFleetOptions options;
  options.num_workers = workers;
  options.max_batch_events = 2;  // many in-flight batches before the fault
  options.ring_capacity = 2;
  core::ParallelFleet fleet(options);
  size_t q_match = fleet.AddQuery(*match);
  size_t q_miss = fleet.AddQuery(*miss);

  std::string bad = "<a>";
  for (int i = 0; i < 200; ++i) bad += "<b><c/></b>";
  bad += "<b></a>";  // mismatched end tag

  xml::FaultSpec spec;
  spec.chunk_bytes = 13;
  xml::FaultInjectingSource source(bad, spec);
  Status status = source.Parse(&fleet);
  ASSERT_FALSE(status.ok());
  fleet.AbortDocument(status);
  EXPECT_EQ(fleet.status(), status);

  // Truncation (clean EOF mid-document) is a Finish-time failure; the same
  // fleet must absorb a second abort back to back.
  xml::FaultSpec truncate;
  truncate.truncate_at = bad.size() / 2;
  xml::FaultInjectingSource cut(bad, truncate);
  Status cut_status = cut.Parse(&fleet);
  ASSERT_FALSE(cut_status.ok());
  fleet.AbortDocument(cut_status);
  EXPECT_FALSE(fleet.status().ok());

  // The same fleet instance then processes valid documents correctly.
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &fleet).ok());
  EXPECT_TRUE(fleet.status().ok());
  EXPECT_TRUE(fleet.Matched(q_match));
  EXPECT_FALSE(fleet.Matched(q_miss));

  ASSERT_TRUE(xml::ParseString("<a><c/><b/></a>", &fleet).ok());
  EXPECT_TRUE(fleet.status().ok());
  EXPECT_FALSE(fleet.Matched(q_match));
}

TEST(FaultInjectionTest, ParallelFleetMalformedMidStream1Worker) {
  RunParallelAbort(1);
}
TEST(FaultInjectionTest, ParallelFleetMalformedMidStream2Workers) {
  RunParallelAbort(2);
}
TEST(FaultInjectionTest, ParallelFleetMalformedMidStream4Workers) {
  RunParallelAbort(4);
}

TEST(FaultInjectionTest, ParallelFleetLimitRejectionMidStream) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c");
  ASSERT_TRUE(query.ok());
  core::ParallelFleetOptions options;
  options.num_workers = 2;
  options.max_batch_events = 2;
  core::ParallelFleet fleet(options);
  size_t q = fleet.AddQuery(*query);

  std::string deep = "<a>";
  for (int i = 0; i < 64; ++i) deep += "<b>";
  xml::ParserOptions parser_options;
  parser_options.limits.max_depth = 8;
  xml::FaultInjectingSource source(deep, xml::FaultSpec{});
  Status status = source.Parse(&fleet, parser_options);
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
  fleet.AbortDocument(status);
  EXPECT_EQ(fleet.status().code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &fleet).ok());
  EXPECT_TRUE(fleet.status().ok());
  EXPECT_TRUE(fleet.Matched(q));
}

// Exhaustive chop against the full evaluator stack: no prefix may hang or
// corrupt engine state, and the evaluator must stay usable throughout.
TEST(FaultInjectionTest, ChopThroughStreamingEvaluator) {
  StatusOr<core::Query> query = core::Query::Compile("//b/c | //root/d");
  ASSERT_TRUE(query.ok());
  core::StreamingEvaluator evaluator(*query);
  const std::string doc = kCorpusDoc;
  for (size_t cut = 0; cut < doc.size(); cut += 3) {
    xml::FaultSpec spec;
    spec.truncate_at = cut;
    xml::FaultInjectingSource source(doc, spec);
    Status status = source.Parse(&evaluator);
    EXPECT_FALSE(status.ok());
    evaluator.AbortDocument(status);
    EXPECT_FALSE(evaluator.status().ok());
  }
  xml::FaultInjectingSource full(doc, xml::FaultSpec{});
  ASSERT_TRUE(full.Parse(&evaluator).ok());
  EXPECT_TRUE(evaluator.status().ok());
  EXPECT_TRUE(evaluator.Result().matched);
}

}  // namespace
}  // namespace xaos
