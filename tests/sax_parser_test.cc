// Streaming XML parser tests: event correctness, chunked feeding,
// well-formedness errors, options.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::xml {
namespace {

// Parses and renders events as compact strings.
std::vector<std::string> Parse(std::string_view doc, ParserOptions options = {}) {
  EventRecorder recorder;
  Status status = ParseString(doc, &recorder, options);
  EXPECT_TRUE(status.ok()) << status;
  std::vector<std::string> out;
  for (const Event& event : recorder.events()) {
    out.push_back(EventToString(event));
  }
  return out;
}

Status ParseError_(std::string_view doc, ParserOptions options = {}) {
  EventRecorder recorder;
  return ParseString(doc, &recorder, options);
}

TEST(SaxParserTest, MinimalDocument) {
  EXPECT_EQ(Parse("<a/>"),
            (std::vector<std::string>{"<doc>", "<a>", "</a>", "</doc>"}));
}

TEST(SaxParserTest, NestedElementsAndText) {
  EXPECT_EQ(Parse("<a><b>hi</b></a>"),
            (std::vector<std::string>{"<doc>", "<a>", "<b>", "text(\"hi\")",
                                      "</b>", "</a>", "</doc>"}));
}

TEST(SaxParserTest, Attributes) {
  EXPECT_EQ(Parse("<a x=\"1\" y='two'/>"),
            (std::vector<std::string>{"<doc>", "<a x=\"1\" y=\"two\">",
                                      "</a>", "</doc>"}));
}

TEST(SaxParserTest, AttributeEntityReferences) {
  EXPECT_EQ(Parse("<a x=\"a&amp;b &lt;&gt; &#65;\"/>"),
            (std::vector<std::string>{"<doc>", "<a x=\"a&b <> A\">", "</a>",
                                      "</doc>"}));
}

TEST(SaxParserTest, TextEntityAndCharacterReferences) {
  EXPECT_EQ(Parse("<a>&lt;tag&gt; &amp; &#x41;&#66;</a>"),
            (std::vector<std::string>{"<doc>", "<a>",
                                      "text(\"<tag> & AB\")", "</a>",
                                      "</doc>"}));
}

TEST(SaxParserTest, Utf8CharacterReference) {
  // U+00E9 (é) = 0xC3 0xA9.
  EventRecorder recorder;
  ASSERT_TRUE(ParseString("<a>&#233;</a>", &recorder).ok());
  EXPECT_EQ(recorder.events()[2].text, "\xC3\xA9");
}

TEST(SaxParserTest, CdataIsTextAndCoalesces) {
  EXPECT_EQ(Parse("<a>one <![CDATA[<raw&>]]> two</a>"),
            (std::vector<std::string>{"<doc>", "<a>",
                                      "text(\"one <raw&> two\")", "</a>",
                                      "</doc>"}));
}

TEST(SaxParserTest, WhitespaceOnlyTextDroppedByDefault) {
  EXPECT_EQ(Parse("<a>\n  <b/>\n</a>"),
            (std::vector<std::string>{"<doc>", "<a>", "<b>", "</b>", "</a>",
                                      "</doc>"}));
}

TEST(SaxParserTest, WhitespaceReportedWhenRequested) {
  ParserOptions options;
  options.report_whitespace_text = true;
  EXPECT_EQ(Parse("<a> <b/></a>", options),
            (std::vector<std::string>{"<doc>", "<a>", "text(\" \")", "<b>",
                                      "</b>", "</a>", "</doc>"}));
}

TEST(SaxParserTest, CommentsSkippedByDefaultReportedOnRequest) {
  EXPECT_EQ(Parse("<a><!-- note --></a>"),
            (std::vector<std::string>{"<doc>", "<a>", "</a>", "</doc>"}));
  ParserOptions options;
  options.report_comments = true;
  EXPECT_EQ(Parse("<a><!-- note --></a>", options),
            (std::vector<std::string>{"<doc>", "<a>", "comment(\" note \")",
                                      "</a>", "</doc>"}));
}

TEST(SaxParserTest, ProcessingInstructions) {
  ParserOptions options;
  options.report_processing_instructions = true;
  EXPECT_EQ(Parse("<a><?target some data?></a>", options),
            (std::vector<std::string>{"<doc>", "<a>",
                                      "pi(target, \"some data\")", "</a>",
                                      "</doc>"}));
}

TEST(SaxParserTest, XmlDeclarationAndDoctypeSkipped) {
  EXPECT_EQ(Parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
                  "<!DOCTYPE a [ <!ELEMENT a (b)*> ]>\n"
                  "<a/>"),
            (std::vector<std::string>{"<doc>", "<a>", "</a>", "</doc>"}));
}

TEST(SaxParserTest, TextCoalescingOff) {
  ParserOptions options;
  options.coalesce_text = false;
  EXPECT_EQ(Parse("<a>x<![CDATA[y]]></a>", options),
            (std::vector<std::string>{"<doc>", "<a>", "text(\"x\")",
                                      "text(\"y\")", "</a>", "</doc>"}));
}

// --- chunked feeding -------------------------------------------------------

TEST(SaxParserTest, ByteAtATimeFeedingMatchesOneShot) {
  const std::string doc =
      "<?xml version=\"1.0\"?><a x=\"1&amp;2\"><!--c--><b>t&#65;xt"
      "<![CDATA[raw]]></b> <c/></a>";
  ParserOptions options;
  options.report_comments = true;

  EventRecorder one_shot;
  ASSERT_TRUE(ParseString(doc, &one_shot, options).ok());

  EventRecorder chunked;
  SaxParser parser(&chunked, options);
  for (char c : doc) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(one_shot.events(), chunked.events());
}

TEST(SaxParserTest, VariousChunkSizesMatch) {
  std::string doc = "<root>";
  for (int i = 0; i < 50; ++i) {
    doc += "<item id=\"" + std::to_string(i) + "\">value &amp; " +
           std::to_string(i) + "</item>";
  }
  doc += "</root>";
  EventRecorder one_shot;
  ASSERT_TRUE(ParseString(doc, &one_shot).ok());

  for (size_t chunk : {1u, 2u, 3u, 7u, 16u, 61u, 256u}) {
    EventRecorder chunked;
    SaxParser parser(&chunked);
    for (size_t i = 0; i < doc.size(); i += chunk) {
      ASSERT_TRUE(
          parser.Feed(std::string_view(doc).substr(i, chunk)).ok());
    }
    ASSERT_TRUE(parser.Finish().ok());
    EXPECT_EQ(one_shot.events(), chunked.events()) << "chunk=" << chunk;
  }
}

// --- well-formedness errors ------------------------------------------------

TEST(SaxParserErrorTest, MismatchedEndTag) {
  Status s = ParseError_("<a><b></a></b>");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("mismatched end tag"), std::string::npos);
}

TEST(SaxParserErrorTest, UnclosedElement) {
  EXPECT_FALSE(ParseError_("<a><b>").ok());
}

TEST(SaxParserErrorTest, MultipleRoots) {
  EXPECT_FALSE(ParseError_("<a/><b/>").ok());
}

TEST(SaxParserErrorTest, NoRoot) {
  EXPECT_FALSE(ParseError_("  ").ok());
  EXPECT_FALSE(ParseError_("<!-- only a comment -->").ok());
}

TEST(SaxParserErrorTest, TextOutsideRoot) {
  EXPECT_FALSE(ParseError_("hello<a/>").ok());
  EXPECT_FALSE(ParseError_("<a/>world").ok());
}

TEST(SaxParserErrorTest, UnquotedAttribute) {
  EXPECT_FALSE(ParseError_("<a x=1/>").ok());
}

TEST(SaxParserErrorTest, DuplicateAttribute) {
  Status s = ParseError_("<a x=\"1\" x=\"2\"/>");
  EXPECT_NE(s.message().find("duplicate attribute"), std::string::npos);
}

TEST(SaxParserErrorTest, BadEntity) {
  EXPECT_FALSE(ParseError_("<a>&nope;</a>").ok());
  EXPECT_FALSE(ParseError_("<a>&#xZZ;</a>").ok());
  EXPECT_FALSE(ParseError_("<a>& bare</a>").ok());
}

TEST(SaxParserErrorTest, InvalidNames) {
  EXPECT_FALSE(ParseError_("<1a/>").ok());
  EXPECT_FALSE(ParseError_("<a 1x=\"v\"/>").ok());
}

TEST(SaxParserErrorTest, LtInAttributeValue) {
  EXPECT_FALSE(ParseError_("<a x=\"<\"/>").ok());
}

TEST(SaxParserErrorTest, DoubleHyphenInComment) {
  EXPECT_FALSE(ParseError_("<a><!-- x -- y --></a>").ok());
}

TEST(SaxParserErrorTest, EndTagWithoutOpen) {
  EXPECT_FALSE(ParseError_("</a>").ok());
}

TEST(SaxParserErrorTest, EofInsideMarkup) {
  EXPECT_FALSE(ParseError_("<a><b").ok());
  EXPECT_FALSE(ParseError_("<a><!-- unterminated").ok());
  EXPECT_FALSE(ParseError_("<a><![CDATA[raw").ok());
}

TEST(SaxParserErrorTest, XmlDeclarationNotAtStart) {
  EXPECT_FALSE(ParseError_(" <?xml version=\"1.0\"?><a/>").ok());
}

TEST(SaxParserErrorTest, ErrorMessagesCarryPosition) {
  Status s = ParseError_("<a>\n  <b></c>\n</a>");
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(SaxParserErrorTest, MaxDepthEnforced) {
  ParserOptions options;
  options.limits.max_depth = 8;
  std::string doc;
  for (int i = 0; i < 9; ++i) doc += "<a>";
  for (int i = 0; i < 9; ++i) doc += "</a>";
  EXPECT_FALSE(ParseError_(doc, options).ok());
}

TEST(SaxParserTest, ElementCountTracksStartEvents) {
  EventRecorder recorder;
  SaxParser parser(&recorder);
  ASSERT_TRUE(parser.Feed("<a><b/><b/></a>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.element_count(), 3u);
}

}  // namespace
}  // namespace xaos::xml
