// Differential tests for the vectorized structural front-end
// (xml/structural_scanner.h): every available backend must be
// indistinguishable from the portable scalar oracle — identical kernel
// masks on arbitrary bytes, and identical SAX event streams, outcomes and
// error positions on real parses, whatever the chunk schedule.

#include "xml/structural_scanner.h"

#include <random>
#include <string>
#include <vector>

#include "gen/random_workload.h"
#include "gen/xmark_generator.h"
#include "gtest/gtest.h"
#include "util/status.h"
#include "xml/fault_injection.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::xml {
namespace {

std::vector<ScannerBackend> AvailableBackends() {
  std::vector<ScannerBackend> backends;
  for (ScannerBackend b : {ScannerBackend::kScalar, ScannerBackend::kSwar,
                           ScannerBackend::kSse2, ScannerBackend::kAvx2}) {
    if (ScannerBackendAvailable(b)) backends.push_back(b);
  }
  return backends;
}

bool MasksEqual(const BlockMasks& a, const BlockMasks& b) {
  return a.lt == b.lt && a.gt == b.gt && a.dquote == b.dquote &&
         a.squote == b.squote && a.amp == b.amp && a.rbracket == b.rbracket &&
         a.newline == b.newline && a.ws == b.ws && a.ctl == b.ctl;
}

// Every kernel must match the scalar kernel on the given 64-byte block.
void ExpectKernelsAgree(const char* block, const std::string& label) {
  ClassifyBlockFn scalar = ScannerKernelForTest(ScannerBackend::kScalar);
  ASSERT_NE(scalar, nullptr);
  BlockMasks want;
  scalar(block, &want);
  for (ScannerBackend backend : AvailableBackends()) {
    ClassifyBlockFn kernel = ScannerKernelForTest(backend);
    ASSERT_NE(kernel, nullptr);
    BlockMasks got;
    kernel(block, &got);
    EXPECT_TRUE(MasksEqual(got, want))
        << label << ": backend " << ScannerBackendName(backend)
        << " disagrees with scalar";
  }
}

TEST(ScannerKernels, AgreeOnEverySingleByteValue) {
  // Each of the 256 byte values, alone in an otherwise-'a' block and
  // repeated across the whole block.
  for (int value = 0; value < 256; ++value) {
    char block[kScannerBlockBytes];
    for (char& c : block) c = 'a';
    block[0] = static_cast<char>(value);
    block[31] = static_cast<char>(value);
    block[63] = static_cast<char>(value);
    ExpectKernelsAgree(block, "sparse byte " + std::to_string(value));
    for (char& c : block) c = static_cast<char>(value);
    ExpectKernelsAgree(block, "dense byte " + std::to_string(value));
  }
}

TEST(ScannerKernels, AgreeOnRandomBlocks) {
  std::mt19937_64 rng(20030226);  // ICDE 2003
  // Half fully random bytes, half random draws from XML-dense bytes.
  const char xmlish[] = "<>\"'&]\n\r\t <<a=// -?![x";
  for (int round = 0; round < 2000; ++round) {
    char block[kScannerBlockBytes];
    if (round % 2 == 0) {
      for (char& c : block) c = static_cast<char>(rng() & 0xFF);
    } else {
      for (char& c : block) c = xmlish[rng() % (sizeof(xmlish) - 1)];
    }
    ExpectKernelsAgree(block, "random block " + std::to_string(round));
  }
}

// Parses `doc` one-shot under `backend`, returning status and events.
Status ParseWith(ScannerBackend backend, std::string_view doc,
                 EventRecorder* recorder, ParserOptions options = {}) {
  options.scanner_backend = backend;
  return ParseString(doc, recorder, options);
}

// Full-parse differential: all backends must produce scalar's exact event
// stream, status code and message (messages embed line/column, so this is
// also the byte-exact error-position check).
void ExpectParseAgreement(std::string_view doc, ParserOptions options = {},
                          const std::string& label = "") {
  options.scanner_backend = ScannerBackend::kScalar;
  EventRecorder want;
  Status want_status = ParseString(doc, &want, options);
  for (ScannerBackend backend : AvailableBackends()) {
    if (backend == ScannerBackend::kScalar) continue;
    options.scanner_backend = backend;
    EventRecorder got;
    Status got_status = ParseString(doc, &got, options);
    EXPECT_EQ(got_status.code(), want_status.code())
        << label << ": " << ScannerBackendName(backend);
    EXPECT_EQ(got_status.message(), want_status.message())
        << label << ": " << ScannerBackendName(backend);
    EXPECT_TRUE(got.events() == want.events())
        << label << ": event stream diverged under "
        << ScannerBackendName(backend);
  }
}

TEST(ScannerDifferential, XMarkDocument) {
  gen::XMarkOptions options;
  options.scale = 0.002;
  options.indent = 1;  // newlines + indentation exercise position tracking
  ExpectParseAgreement(gen::GenerateXMark(options), {}, "xmark");
}

TEST(ScannerDifferential, RandomWorkloadDocuments) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    gen::RandomDocOptions doc_options;
    doc_options.target_elements = 2000;
    auto workload =
        gen::GenerateWorkload(gen::RandomQueryOptions{}, doc_options, seed);
    ASSERT_TRUE(workload.ok());
    ExpectParseAgreement(workload->document, {},
                         "workload seed " + std::to_string(seed));
  }
}

TEST(ScannerDifferential, QuoteAndBoundaryShapes) {
  const std::string_view docs[] = {
      // '>' and '<' inside quoted values, both quote kinds.
      R"(<a x="v>1" y='v<2' z="a'b" w='c"d'><b/></a>)",
      // Tag body straddling a 64-byte block boundary.
      "<r>" + std::string(50, 'p') + R"(<e one="aaaa>bbbb" two='cccc'/></r>)",
      // Attribute value spanning two blocks.
      "<e long=\"" + std::string(100, 'v') + "\"/>",
      // Newlines everywhere positions could drift.
      "<a\n x=\"1\"\n>\n text \n<b\n/>\n</a>",
      // CDATA with bracket runs; comments; PI.
      "<a><![CDATA[ ]]>]]><b><!-- -- is illegal --></b><?pi data?></a>",
      "<a><![CDATA[x]]]]><![CDATA[>]]></a><?p?>",
      // Whitespace-only runs and references.
      "<a> &#x20;\t\r\n <b>&amp;&lt;&gt;&quot;&apos;&#65;</b> </a>",
  };
  int i = 0;
  for (std::string_view doc : docs) {
    ExpectParseAgreement(doc, {}, "shape " + std::to_string(i++));
  }
}

TEST(ScannerDifferential, ErrorPositions) {
  const std::string_view docs[] = {
      "<a><b x=\"1\" < ></b></a>",        // stray '<' in tag (deferred)
      "<a>\n\n  <b y='2' < ></b>\n</a>",  // same, after newlines
      "<a></b>",                          // mismatched end tag
      "<a><b></a>",                       // wrong nesting
      "<a>&unknown;</a>",                 // undefined entity
      "<a x=\"\x01\"/>",                  // control char in value
      "<a>\x02</a>",                      // control char in text
      "<a x=\"1\" x=\"2\"/>",             // duplicate attribute
      "<a x=1></a>",                      // unquoted value
      "<a><!DOCTYPE inner></a>",          // misplaced doctype
      "junk<a/>",                         // text before root
      "<a/><b/>",                         // two roots
      "<a",                               // EOF inside tag
      "<a x=\"unterminated",              // EOF inside value
  };
  int i = 0;
  for (std::string_view doc : docs) {
    ExpectParseAgreement(doc, {}, "error doc " + std::to_string(i++));
  }
}

TEST(ScannerDifferential, ParserLimitRejections) {
  // Each limit triggered by a purpose-built document; all backends must
  // reject with the same kResourceExhausted message and position.
  ParserOptions tight;
  tight.limits.max_depth = 4;
  tight.limits.max_attribute_count = 2;
  tight.limits.max_attribute_value_bytes = 8;
  tight.limits.max_name_bytes = 8;
  tight.limits.max_token_bytes = 64;
  tight.limits.max_entity_references = 3;
  tight.limits.max_total_bytes = 512;
  const std::string docs[] = {
      "<a><a><a><a><a>deep</a></a></a></a></a>",           // depth
      "<a p=\"1\" q=\"2\" r=\"3\"/>",                      // attribute count
      "<a v=\"123456789\"/>",                              // value bytes
      "<averylongelementname/>",                           // name bytes
      "<a><!-- " + std::string(80, 'c') + " --></a>",      // token bytes
      "<a>&amp;&amp;&amp;&amp;</a>",                       // entity budget
      "<a>" + std::string(600, 't') + "</a>",              // total bytes
  };
  int i = 0;
  for (const std::string& doc : docs) {
    ExpectParseAgreement(doc, tight, "limit doc " + std::to_string(i++));
  }
}

TEST(ScannerDifferential, AdversarialChunkSchedules) {
  // The same documents through FaultInjectingSource chunk schedules that
  // split tags, quoted values and multi-byte constructs at every awkward
  // offset. Backends must agree with scalar under the SAME schedule.
  const std::string doc =
      "<r>" + std::string(50, 'p') +
      "<e one=\"aa>bb\" two='c<d'>\n text &amp; more \n" +
      "<![CDATA[ raw <>& ]]></e><!-- note -->" + std::string(70, 'q') +
      "</r>";
  const std::vector<std::vector<size_t>> schedules = {
      {1},           // byte at a time
      {3, 7, 1},     // small primes
      {63},          // just under a block
      {64},          // exactly a block
      {65, 1},       // just over a block
  };
  for (size_t s = 0; s < schedules.size(); ++s) {
    FaultSpec spec;
    spec.chunk_sizes = schedules[s];
    FaultInjectingSource source(doc, spec);

    ParserOptions options;
    options.scanner_backend = ScannerBackend::kScalar;
    EventRecorder want;
    Status want_status = source.Parse(&want, options);
    for (ScannerBackend backend : AvailableBackends()) {
      if (backend == ScannerBackend::kScalar) continue;
      options.scanner_backend = backend;
      EventRecorder got;
      Status got_status = source.Parse(&got, options);
      EXPECT_EQ(got_status.code(), want_status.code())
          << "schedule " << s << ": " << ScannerBackendName(backend);
      EXPECT_EQ(got_status.message(), want_status.message())
          << "schedule " << s << ": " << ScannerBackendName(backend);
      EXPECT_TRUE(got.events() == want.events())
          << "schedule " << s << ": event stream diverged under "
          << ScannerBackendName(backend);
    }
  }
}

TEST(ScannerBackendSelection, ResolveNames) {
  EXPECT_TRUE(ResolveScannerBackend("scalar").ok());
  EXPECT_TRUE(ResolveScannerBackend("swar").ok());
  EXPECT_TRUE(ResolveScannerBackend("auto").ok());
  EXPECT_FALSE(ResolveScannerBackend("sse9").ok());
  EXPECT_FALSE(ResolveScannerBackend("").ok());
  EXPECT_FALSE(ResolveScannerBackend("AVX2 ").ok());
  // The error names the valid choices so CLI users can self-correct.
  EXPECT_NE(ResolveScannerBackend("bogus").status().message().find("scalar"),
            std::string::npos);
}

}  // namespace
}  // namespace xaos::xml
