// Earliest answering: differential tests asserting that emitting each
// output item at the earliest provable event (EngineOptions::
// enable_earliest_emission, with eager structure reclamation) leaves the
// final QueryResult byte-identical — same document order, same duplicates
// policy, same captured subtrees — to the collect-at-end engine, across
// handpicked axis corpora, random workloads, chunked feeds and the
// parallel fleet; plus bounded-memory assertions that peak buffered state
// tracks open-path depth rather than node count.

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/multi_engine.h"
#include "core/parallel_fleet.h"
#include "core/xaos_engine.h"
#include "gen/random_workload.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "test_util.h"
#include "xml/sax_parser.h"

namespace xaos {
namespace {

// Renders a QueryResult into a strict byte-comparison form: matched flag
// plus every item's identity, document position and payload, in result
// order (NOT canonical/sorted order — earliest emission must preserve
// document order exactly).
std::vector<std::string> Signature(const core::QueryResult& result) {
  std::vector<std::string> out;
  out.push_back(result.matched ? "matched" : "unmatched");
  for (const core::OutputItem& item : result.items) {
    out.push_back(item.info.ToString() + "/id=" +
                  std::to_string(item.info.id) + "/name=" + item.info.name +
                  "/value=" + item.info.value +
                  "/capture=" + item.captured_xml);
  }
  return out;
}

// Evaluates `expression` over `xml` twice — earliest emission off (the
// collect-at-end oracle) and on — and requires byte-identical results.
// Extra option toggles (capture, boolean submatchings, ...) come in via
// `base`, applied to both runs.
void ExpectTransparent(const std::string& expression, const std::string& xml,
                       core::EngineOptions base = {}) {
  core::EngineOptions off = base;
  off.enable_earliest_emission = false;
  core::EngineOptions on = base;
  on.enable_earliest_emission = true;

  StatusOr<core::QueryResult> oracle =
      core::EvaluateStreaming(expression, xml, off);
  ASSERT_TRUE(oracle.ok()) << expression << ": " << oracle.status();
  StatusOr<core::QueryResult> earliest =
      core::EvaluateStreaming(expression, xml, on);
  ASSERT_TRUE(earliest.ok()) << expression << ": " << earliest.status();
  EXPECT_EQ(Signature(*oracle), Signature(*earliest)) << expression;
}

// Axis corpus exercising every structural shape the anchoring logic
// handles: forward chains, backward pulls, predicates (counted subtrees),
// unions, wildcards, self-recursion and sibling constraints (which block
// reclamation but must not change results).
const char* const kAxisCorpus[] = {
    "//a//c",
    "//c/ancestor::a",
    "//c/ancestor::b/parent::a",
    "//a[b]//c",
    "//b[c]/a | //a[c]",
    "//c/ancestor::b[parent::a]",
    "//a/descendant::a",
    "//b/ancestor-or-self::b",
    "/a/b/a/c",
    "//*[c]",
    "//c/..",
    "//c/following-sibling::a",
    "//b/preceding-sibling::c",
    "//a[c]/b",
    "//b[@x]",
    "//e[text()='text']",
};

const char kAxisDocument[] =
    "<a k=\"1\"><b><a><c/></a><d/></b><c/>"
    "<b x=\"y\"><c/><a/><e>text</e></b>"
    "<a><b><c/><c/></b><b/></a></a>";

TEST(EarliestEmissionTest, AxisCorpusTransparent) {
  for (const char* expression : kAxisCorpus) {
    ExpectTransparent(expression, kAxisDocument);
  }
}

TEST(EarliestEmissionTest, Figure2Transparent) {
  ExpectTransparent(std::string(test::kFigure3Query),
                    std::string(test::kFigure2Document));
  ExpectTransparent("//W[ancestor::Z/child::V]",
                    std::string(test::kFigure2Document));
  ExpectTransparent("//Y[child::U]", std::string(test::kFigure2Document));
}

TEST(EarliestEmissionTest, CaptureModeTransparent) {
  core::EngineOptions capture;
  capture.capture_output_subtrees = true;
  // Captured subtrees are only complete at the output element's close, so
  // capture mode defers early emission to the close event — results must
  // still match the oracle byte for byte, including nested outputs where
  // the outer capture finishes after the inner one was emitted.
  ExpectTransparent("//a//c", kAxisDocument, capture);
  ExpectTransparent("//b", kAxisDocument, capture);
  ExpectTransparent("//a[b]//c", kAxisDocument, capture);
  ExpectTransparent("//x", "<r><x><x>inner</x></x></r>", capture);
}

TEST(EarliestEmissionTest, BooleanSubmatchingsOffTransparent) {
  core::EngineOptions stored;
  stored.enable_boolean_submatchings = false;
  for (const char* expression : kAxisCorpus) {
    ExpectTransparent(expression, kAxisDocument, stored);
  }
}

TEST(EarliestEmissionTest, StopAfterConfirmedMatchTransparent) {
  core::EngineOptions boolean_only;
  boolean_only.stop_after_confirmed_match = true;
  // The inert fast path must not leak early-emitted items into the
  // boolean-only result (matched == true, items empty on both sides).
  ExpectTransparent("//a//c", kAxisDocument, boolean_only);
  core::EngineOptions on = boolean_only;
  on.enable_earliest_emission = true;
  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming("//a//c", kAxisDocument, on);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->matched);
  EXPECT_TRUE(result->items.empty());
}

TEST(EarliestEmissionTest, RandomWorkloadsTransparent) {
  gen::RandomQueryOptions query_options;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 500;
  doc_options.full_embed_probability = 0.05;
  doc_options.partial_embed_probability = 0.08;
  doc_options.max_noise_depth = 7;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    auto workload = gen::GenerateWorkload(query_options, doc_options, seed);
    ASSERT_TRUE(workload.ok()) << workload.status();
    ExpectTransparent(workload->expression, workload->document);
  }
}

TEST(EarliestEmissionTest, RandomSiblingWorkloadsTransparent) {
  // Sibling axes mark x-nodes reclaim-blocked; the differential still has
  // to hold on workloads that mix them with backward axes.
  gen::RandomQueryOptions query_options;
  query_options.allow_siblings = true;
  gen::RandomDocOptions doc_options;
  doc_options.target_elements = 400;
  doc_options.max_noise_depth = 6;
  for (uint64_t seed = 100; seed < 130; ++seed) {
    auto workload = gen::GenerateWorkload(query_options, doc_options, seed);
    ASSERT_TRUE(workload.ok()) << workload.status();
    ExpectTransparent(workload->expression, workload->document);
  }
}

// Feeds `xml` to a StreamingEvaluator through SaxParser::Feed in
// `chunk`-byte pieces; returns the result.
core::QueryResult EvaluateChunked(const core::Query& query,
                                  const std::string& xml, size_t chunk,
                                  core::EngineOptions options) {
  core::StreamingEvaluator evaluator(query, options);
  xml::SaxParser parser(&evaluator);
  std::string_view rest = xml;
  Status status;
  while (!rest.empty() && status.ok()) {
    size_t n = std::min(chunk, rest.size());
    status = parser.Feed(rest.substr(0, n));
    rest.remove_prefix(n);
  }
  if (status.ok()) status = parser.Finish();
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_TRUE(evaluator.status().ok()) << evaluator.status();
  return evaluator.Result();
}

TEST(EarliestEmissionTest, ChunkedFeedTransparent) {
  // Earliest emission decides per SAX event; chunk boundaries inside tags
  // and text must not perturb the emission points or the final bytes.
  core::EngineOptions off;
  off.enable_earliest_emission = false;
  core::EngineOptions on;
  on.enable_earliest_emission = true;
  const std::string xml = kAxisDocument;
  for (const char* expression :
       {"//a//c", "//c/ancestor::a", "//b[c]/a | //a[c]", "//*[c]"}) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << query.status();
    core::QueryResult oracle = EvaluateChunked(*query, xml, xml.size(), off);
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}}) {
      core::QueryResult chunked = EvaluateChunked(*query, xml, chunk, on);
      EXPECT_EQ(Signature(oracle), Signature(chunked))
          << expression << " chunk=" << chunk;
    }
  }
}

TEST(EarliestEmissionTest, ParallelFleetTransparent) {
  const std::vector<std::string> expressions = {
      "//a//c", "//c/ancestor::a", "/a/b/a/c",      "//*[c]",
      "//b[@x]", "//c/..",         "//b[c]/a | //a[c]",
  };
  std::vector<core::Query> queries;
  for (const std::string& expression : expressions) {
    StatusOr<core::Query> query = core::Query::Compile(expression);
    ASSERT_TRUE(query.ok()) << expression << ": " << query.status();
    queries.push_back(std::move(*query));
  }

  // Oracle: sequential evaluator with earliest emission off.
  core::EngineOptions off;
  off.enable_earliest_emission = false;
  core::MultiQueryEvaluator sequential(off);
  for (const core::Query& query : queries) sequential.AddQuery(query);
  ASSERT_TRUE(xml::ParseString(kAxisDocument, &sequential).ok());

  core::ParallelFleetOptions options;
  options.engine_options.enable_earliest_emission = true;
  for (int workers : {1, 2, 4}) {
    options.num_workers = workers;
    core::ParallelFleet fleet(options);
    for (const core::Query& query : queries) fleet.AddQuery(query);
    ASSERT_TRUE(xml::ParseString(kAxisDocument, &fleet).ok());
    ASSERT_TRUE(fleet.status().ok()) << fleet.status();
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(sequential.Matched(q), fleet.Matched(q))
          << expressions[q] << " at " << workers << " workers";
      EXPECT_EQ(Signature(sequential.Result(q)), Signature(fleet.Result(q)))
          << expressions[q] << " at " << workers << " workers";
    }
  }
}

// A wide document: `count` closed <b><c/></b> subtrees at each of `depth`
// levels of an <a> spine. Total elements grow with depth*count while the
// open-path state at any moment is O(depth).
std::string WideDeepDocument(int depth, int count) {
  std::string xml;
  for (int d = 0; d < depth; ++d) {
    xml += "<a>";
    for (int i = 0; i < count; ++i) xml += "<b><c/></b>";
  }
  for (int d = 0; d < depth; ++d) xml += "</a>";
  return xml;
}

TEST(EarliestEmissionTest, PeakBoundedByOpenDepthNotNodeCount) {
  // //b/c over 20 levels x 100 subtrees = 2000 matches. With earliest
  // emission, every closed <b><c/></b> is emitted and reclaimed at its
  // close once the root is anchored, so the buffered-candidate peak is a
  // small constant; without it, all 2000 c-structures (plus their parents)
  // stay buffered until end of document.
  const std::string xml = WideDeepDocument(20, 100);
  auto trees = query::CompileToXTrees("//b/c");
  ASSERT_TRUE(trees.ok());

  core::EngineOptions on;
  on.enable_earliest_emission = true;
  core::XaosEngine earliest(&trees->front(), on);
  ASSERT_TRUE(xml::ParseString(xml, &earliest).ok());

  core::EngineOptions off;
  off.enable_earliest_emission = false;
  core::XaosEngine buffered(&trees->front(), off);
  ASSERT_TRUE(xml::ParseString(xml, &buffered).ok());

  ASSERT_EQ(earliest.result().items.size(), 2000u);
  ASSERT_EQ(buffered.result().items.size(), 2000u);

  EXPECT_GT(buffered.stats().structures_live_peak, 1000u);
  EXPECT_LT(earliest.stats().structures_live_peak, 64u);
  EXPECT_LT(earliest.stats().structure_memory.peak_bytes,
            buffered.stats().structure_memory.peak_bytes / 10);
  EXPECT_EQ(earliest.stats().candidates_emitted_early, 2000u);
  EXPECT_GE(earliest.stats().candidates_reclaimed, 2000u);
  EXPECT_EQ(buffered.stats().candidates_reclaimed, 0u);
}

TEST(EarliestEmissionTest, DeepRecursionPeakTracksOpenDepth) {
  // Self-recursive query over a deep spine of non-matching <x> elements
  // carrying closed <a><a/></a> teeth at every level. Each tooth is
  // confirmed at its close and reclaimed, so the buffered peak tracks the
  // open spine, not the 2000 matches. (An *open* ancestor can never be
  // confirmed — confirmation requires the element closed — so matches
  // whose proof chain runs through a still-open element legitimately wait;
  // this document keeps every proof chain closed.)
  std::string xml;
  for (int d = 0; d < 8; ++d) {
    xml += "<x>";
    for (int i = 0; i < 250; ++i) xml += "<a><a/></a>";
  }
  for (int d = 0; d < 8; ++d) xml += "</x>";
  auto trees = query::CompileToXTrees("//a//a");
  ASSERT_TRUE(trees.ok());

  core::EngineOptions on;
  on.enable_earliest_emission = true;
  core::XaosEngine engine(&trees->front(), on);
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  ASSERT_EQ(engine.result().items.size(), 2000u);
  EXPECT_LT(engine.stats().structures_live_peak, 64u);
}

TEST(EarliestEmissionTest, SinkDeliversExactlyTheFinalItems) {
  const std::string xml = WideDeepDocument(4, 50);
  core::EngineOptions on;
  on.enable_earliest_emission = true;
  std::vector<core::ElementId> sink_ids;
  on.early_item_sink = [&sink_ids](const core::OutputItem& item) {
    sink_ids.push_back(item.info.id);
  };
  StatusOr<core::QueryResult> result =
      core::EvaluateStreaming("//b/c", xml, on);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->items.size(), 200u);
  // Every item reached the sink exactly once, in the same (document)
  // order as the final result.
  EXPECT_EQ(sink_ids, result->ItemIds());
}

TEST(EarliestEmissionTest, OutputTuplesSingletonFallback) {
  // After reclamation the matching graph is gone, so tuple enumeration
  // falls back to singleton tuples synthesized from the (single-output)
  // result — same elements, complete.
  const std::string xml = WideDeepDocument(3, 20);
  auto trees = query::CompileToXTrees("//b/c");
  ASSERT_TRUE(trees.ok());
  core::EngineOptions on;
  on.enable_earliest_emission = true;
  core::XaosEngine engine(&trees->front(), on);
  ASSERT_TRUE(xml::ParseString(xml, &engine).ok());
  ASSERT_GT(engine.stats().candidates_reclaimed, 0u);

  core::TupleEnumeration tuples = engine.OutputTuples();
  EXPECT_TRUE(tuples.complete);
  ASSERT_EQ(tuples.tuples.size(), engine.result().items.size());
  for (size_t i = 0; i < tuples.tuples.size(); ++i) {
    ASSERT_EQ(tuples.tuples[i].size(), 1u);
    EXPECT_EQ(tuples.tuples[i][0].id, engine.result().items[i].info.id);
  }
}

TEST(EarliestEmissionTest, EngineReusableAcrossDocuments) {
  // Early-emission state (emitted ids, pending early items) must reset per
  // document, including after a non-matching document.
  auto trees = query::CompileToXTrees("//b/c");
  ASSERT_TRUE(trees.ok());
  core::EngineOptions on;
  on.enable_earliest_emission = true;
  core::XaosEngine engine(&trees->front(), on);

  ASSERT_TRUE(xml::ParseString("<a><b><c/></b><b><c/></b></a>", &engine).ok());
  EXPECT_EQ(engine.result().items.size(), 2u);
  ASSERT_TRUE(xml::ParseString("<a><b/></a>", &engine).ok());
  EXPECT_FALSE(engine.result().matched);
  EXPECT_TRUE(engine.result().items.empty());
  ASSERT_TRUE(xml::ParseString("<a><b><c/></b></a>", &engine).ok());
  EXPECT_EQ(engine.result().items.size(), 1u);
}

}  // namespace
}  // namespace xaos
