// Workload generator tests: determinism, well-formedness, structural
// properties, scaling.

#include <random>
#include <set>
#include <string>

#include "core/multi_engine.h"
#include "dom/dom_builder.h"
#include "gen/random_workload.h"
#include "gen/wordlist.h"
#include "gen/xmark_generator.h"
#include "gtest/gtest.h"
#include "query/xtree_builder.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::gen {
namespace {

// Counts elements by tag.
class TagCounter : public xml::ContentHandler {
 public:
  void StartElement(const xml::QName& name, xml::AttributeSpan) override {
    ++counts_[std::string(name.text)];
    ++total_;
  }
  int count(const std::string& tag) const {
    auto it = counts_.find(tag);
    return it == counts_.end() ? 0 : it->second;
  }
  int total() const { return total_; }

 private:
  std::map<std::string, int> counts_;
  int total_ = 0;
};

TEST(WordlistTest, Basics) {
  EXPECT_GT(WordCount(), 50);
  std::mt19937_64 rng(1);
  EXPECT_FALSE(RandomSentence(rng, 3).empty());
  EXPECT_EQ(Word(0), Word(WordCount()));  // wraps
}

TEST(XMarkGeneratorTest, Deterministic) {
  XMarkOptions options;
  options.scale = 0.002;
  std::string a = GenerateXMark(options);
  std::string b = GenerateXMark(options);
  EXPECT_EQ(a, b);
  options.seed = 43;
  EXPECT_NE(a, GenerateXMark(options));
}

TEST(XMarkGeneratorTest, WellFormed) {
  XMarkOptions options;
  options.scale = 0.002;
  std::string doc = GenerateXMark(options);
  TagCounter counter;
  Status status = xml::ParseString(doc, &counter);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(counter.count("site"), 1);
  EXPECT_GT(counter.count("category"), 0);
  EXPECT_GT(counter.count("listitem"), 0);
  EXPECT_GT(counter.count("item"), 0);
  EXPECT_GT(counter.count("person"), 0);
  EXPECT_GT(counter.count("open_auction"), 0);
  EXPECT_GT(counter.count("closed_auction"), 0);
}

TEST(XMarkGeneratorTest, ScalesLinearly) {
  XMarkOptions small;
  small.scale = 0.002;
  XMarkOptions large;
  large.scale = 0.008;
  TagCounter small_count, large_count;
  ASSERT_TRUE(xml::ParseString(GenerateXMark(small), &small_count).ok());
  ASSERT_TRUE(xml::ParseString(GenerateXMark(large), &large_count).ok());
  double ratio =
      static_cast<double>(large_count.total()) / small_count.total();
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(XMarkGeneratorTest, PaperQueryHasMatches) {
  XMarkOptions options;
  options.scale = 0.01;
  std::string doc = GenerateXMark(options);
  auto result = core::EvaluateStreaming(kXMarkPaperQuery, doc);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->matched);
  // Every selected node is a name element under a category.
  EXPECT_FALSE(result->items.empty());
  for (const core::OutputItem& item : result->items) {
    EXPECT_EQ(item.info.name, "name");
  }
}

TEST(XMarkGeneratorTest, ElementEstimateIsReasonable) {
  XMarkOptions options;
  options.scale = 0.01;
  TagCounter counter;
  ASSERT_TRUE(xml::ParseString(GenerateXMark(options), &counter).ok());
  uint64_t estimate = ApproximateXMarkElements(options.scale);
  EXPECT_GT(counter.total(), estimate / 3);
  EXPECT_LT(static_cast<uint64_t>(counter.total()), estimate * 3);
}

TEST(RandomQueryTest, SizeAndShape) {
  RandomQueryOptions options;
  options.node_tests = 6;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed);
    xpath::LocationPath path = GenerateRandomPath(options, rng);
    EXPECT_EQ(xpath::NodeTestCount(path), 6) << xpath::ToString(path);
    EXPECT_TRUE(path.absolute);
    EXPECT_EQ(path.steps.front().axis, xpath::Axis::kDescendant);
    // Every generated path must compile to an x-tree.
    auto tree = query::BuildXTree(path);
    EXPECT_TRUE(tree.ok()) << xpath::ToString(path);
  }
}

TEST(RandomQueryTest, BackwardAxesAppear) {
  RandomQueryOptions options;
  options.node_tests = 6;
  bool saw_backward = false;
  for (uint64_t seed = 0; seed < 20 && !saw_backward; ++seed) {
    std::mt19937_64 rng(seed);
    xpath::LocationPath path = GenerateRandomPath(options, rng);
    xpath::Expression e;
    e.union_branches.push_back(path);
    saw_backward = xpath::UsesBackwardAxes(e);
  }
  EXPECT_TRUE(saw_backward);
}

TEST(RandomDocTest, WellFormedAndSized) {
  auto workload = GenerateWorkload({}, {.target_elements = 5000}, 7);
  ASSERT_TRUE(workload.ok()) << workload.status();
  TagCounter counter;
  ASSERT_TRUE(xml::ParseString(workload->document, &counter).ok());
  EXPECT_GE(counter.total(), 5000);
  EXPECT_LT(counter.total(), 7000);  // fragments overshoot only slightly
}

TEST(RandomDocTest, QueryHasManyMatches) {
  // The paper: "for large document sizes, the XPath expression will have
  // many matches (and near matches)". Expect matches for most seeds.
  int matched = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto workload = GenerateWorkload({}, {.target_elements = 4000}, seed);
    ASSERT_TRUE(workload.ok());
    auto result =
        core::EvaluateStreaming(workload->expression, workload->document);
    ASSERT_TRUE(result.ok())
        << result.status() << " for " << workload->expression;
    if (result->matched && !result->items.empty()) ++matched;
  }
  EXPECT_GE(matched, 7);
}

TEST(RandomDocTest, Deterministic) {
  auto a = GenerateWorkload({}, {.target_elements = 1000}, 11);
  auto b = GenerateWorkload({}, {.target_elements = 1000}, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->expression, b->expression);
  EXPECT_EQ(a->document, b->document);
}

}  // namespace
}  // namespace xaos::gen
