// Intersections, joins and multi-output tuples (paper Sections 5.3/5.4).
//
// Two independently authored queries are composed at their shared output
// node and evaluated in ONE streaming pass; with $-marked output nodes the
// engine returns tuples — the projection of every total matching onto the
// marked nodes.

#include <iostream>
#include <string>

#include "xaos.h"

namespace {

constexpr const char* kProjects = R"(<company>
  <division name="research">
    <team lead="yan">
      <project status="active"><name>stream-join</name>
        <member>ada</member><member>lin</member></project>
      <project status="done"><name>old-parser</name>
        <member>ada</member></project>
    </team>
  </division>
  <division name="product">
    <team lead="max">
      <project status="active"><name>dashboard</name>
        <member>kim</member></project>
    </team>
  </division>
</company>)";

xaos::query::XTree Compile(const std::string& expression) {
  auto trees = xaos::query::CompileToXTrees(expression);
  if (!trees.ok()) {
    std::cerr << expression << ": " << trees.status() << "\n";
    std::exit(1);
  }
  return std::move(trees->front());
}

}  // namespace

int main() {
  // --- Intersection: project elements satisfying BOTH queries -------------
  xaos::query::XTree q1 = Compile("//division[@name='research']//project");
  xaos::query::XTree q2 = Compile("//project[@status='active']");
  auto intersection = xaos::query::Intersect(q1, q2);
  if (!intersection.ok()) {
    std::cerr << intersection.status() << "\n";
    return 1;
  }
  std::cout << "intersection x-tree: " << intersection->ToString() << "\n";

  xaos::core::XaosEngine engine(&*intersection);
  if (auto s = xaos::xml::ParseString(kProjects, &engine); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "active research projects: " << engine.result().items.size()
            << "\n\n";

  // --- Multi-output tuples: ($team, $member) pairs -------------------------
  xaos::query::XTree pairs =
      Compile("//$team//project[@status='active']//$member");
  xaos::core::XaosEngine tuple_engine(&pairs);
  if (auto s = xaos::xml::ParseString(kProjects, &tuple_engine); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  xaos::core::TupleEnumeration tuples = tuple_engine.OutputTuples();
  std::cout << "(team, member) pairs across active projects:\n";
  for (const xaos::core::OutputTuple& tuple : tuples.tuples) {
    std::cout << "  team #" << tuple[0].ordinal << " - member #"
              << tuple[1].ordinal << "\n";
  }

  // --- Join of two marked queries at their shared output -------------------
  xaos::query::XTree j1 = Compile("//team//$project");
  xaos::query::XTree j2 = Compile("//division[@name='research']//$project");
  auto joined = xaos::query::Join(j1, j2);
  if (!joined.ok()) {
    std::cerr << joined.status() << "\n";
    return 1;
  }
  xaos::core::XaosEngine join_engine(&*joined);
  if (auto s = xaos::xml::ParseString(kProjects, &join_engine); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "\njoined query selects " << join_engine.result().items.size()
            << " research project(s) reachable through a team\n";
  return 0;
}
