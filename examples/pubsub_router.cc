// Publish/subscribe document routing — the XFilter/YFilter use case the
// paper's introduction motivates, with subscriptions that use backward
// axes (which pure forward-axis filters cannot express).
//
// A set of subscriptions is compiled once; each incoming document is
// streamed through all subscription evaluators in a single parse, and the
// router reports which subscribers the document should be delivered to.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "xaos.h"

namespace {

struct Subscription {
  std::string name;
  std::string expression;
  std::unique_ptr<xaos::core::Query> query;
  std::unique_ptr<xaos::core::StreamingEvaluator> evaluator;
};

// Fans one event stream out to every subscription evaluator.
class Fanout : public xaos::xml::ContentHandler {
 public:
  explicit Fanout(std::vector<Subscription>* subs) : subs_(subs) {}
  void StartDocument() override {
    for (auto& s : *subs_) s.evaluator->StartDocument();
  }
  void EndDocument() override {
    for (auto& s : *subs_) s.evaluator->EndDocument();
  }
  void StartElement(std::string_view name,
                    const std::vector<xaos::xml::Attribute>& attrs) override {
    for (auto& s : *subs_) s.evaluator->StartElement(name, attrs);
  }
  void EndElement(std::string_view name) override {
    for (auto& s : *subs_) s.evaluator->EndElement(name);
  }
  void Characters(std::string_view text) override {
    for (auto& s : *subs_) s.evaluator->Characters(text);
  }

 private:
  std::vector<Subscription>* subs_;
};

}  // namespace

int main() {
  const std::vector<std::pair<std::string, std::string>> rules = {
      {"alice", "//order[item/@sku='A-17']"},
      {"bob", "//item[price]/ancestor::order[customer]"},  // backward axis
      {"carol", "//order[@priority='high'] | //cancellation"},
      {"dave", "//customer[name/text()='Dave']/ancestor::order"},
  };

  std::vector<Subscription> subscriptions;
  for (const auto& [name, expression] : rules) {
    auto query = xaos::core::Query::Compile(expression);
    if (!query.ok()) {
      std::cerr << name << ": " << query.status() << "\n";
      return 1;
    }
    Subscription sub;
    sub.name = name;
    sub.expression = expression;
    sub.query = std::make_unique<xaos::core::Query>(std::move(*query));
    sub.evaluator =
        std::make_unique<xaos::core::StreamingEvaluator>(*sub.query);
    subscriptions.push_back(std::move(sub));
  }

  const std::vector<std::string> documents = {
      R"(<order id="1"><item sku="A-17"><price>10</price></item>
         <customer><name>Dave</name></customer></order>)",
      R"(<order id="2" priority="high"><item sku="B-2"/></order>)",
      R"(<order id="3"><item sku="C-9"><price>5</price></item></order>)",
      R"(<cancellation order="1"/>)",
      R"(<note>not an order at all</note>)",
  };

  Fanout fanout(&subscriptions);
  for (size_t i = 0; i < documents.size(); ++i) {
    xaos::Status status = xaos::xml::ParseString(documents[i], &fanout);
    if (!status.ok()) {
      std::cerr << "document " << i << ": " << status << "\n";
      return 1;
    }
    std::cout << "document " << i + 1 << " -> ";
    bool any = false;
    for (const Subscription& sub : subscriptions) {
      if (sub.evaluator->Result().matched) {
        std::cout << (any ? ", " : "") << sub.name;
        any = true;
      }
    }
    std::cout << (any ? "" : "(no subscribers)") << "\n";
  }

  std::cout << "\nsubscriptions:\n";
  for (const Subscription& sub : subscriptions) {
    std::cout << "  " << sub.name << ": " << sub.expression << "\n";
  }
  return 0;
}
