// Publish/subscribe document routing — the XFilter/YFilter use case the
// paper's introduction motivates, with subscriptions that use backward
// axes (which pure forward-axis filters cannot express).
//
// A set of subscriptions is compiled once into one MultiQueryEvaluator;
// each incoming document is streamed through it in a single parse, and the
// router reports which subscribers the document should be delivered to.
// The evaluator's label-indexed dispatch means an event only reaches the
// subscriptions whose queries mention one of its labels, so per-event cost
// stays sub-linear in the subscription count.
//
// The router is also instrumented the way a production filter would be:
// each subscription gets a labelled delivery counter
// (`router_deliveries_total{subscription="alice"}`) and per-subscription
// match-latency / time-to-first-match histograms
// (`xaos_sub_match_latency_ns{subscription="alice"}`), per-document
// evaluation time is tracked and documents exceeding a slow threshold are
// logged to stderr, and the metrics registry is dumped in Prometheus
// exposition format at the end of the run (including the dispatch-skip
// statistics the evaluator exposes). --flight-trace=FILE additionally arms
// the flight recorder and writes a Chrome trace-event JSON of the run —
// with --threads=N the trace shows each batch's dispatch on the parse
// track flowing into the per-worker replay spans.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "xaos.h"

namespace {

struct Subscription {
  std::string name;
  std::string expression;
  size_t query_index = 0;  // index inside the shared MultiQueryEvaluator
  xaos::obs::Counter* deliveries = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  // --threads=N routes documents through a ParallelFleet that shards the
  // subscription pool across N worker threads fed from a single parse;
  // without it (or with 0) everything runs on the parsing thread through
  // one MultiQueryEvaluator. Results are identical either way.
  // --max-depth / --max-total-bytes tighten the parser guardrails a
  // production router would run with; a document that violates them (or is
  // plain malformed) is rejected, counted, and the stream continues.
  // --no-projection disables document projection (on by default): with it
  // on, the parser skip-scans subtrees no subscription can possibly match
  // (query/projection.h). Results are identical either way; when every
  // subscription is "//"-anchored the union degrades to keep-all and the
  // filter simply never skips.
  int threads = 0;
  bool no_projection = false;
  std::string flight_trace_path;
  xaos::xml::ParserOptions parser_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--max-depth=", 12) == 0) {
      parser_options.limits.max_depth = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--max-total-bytes=", 18) == 0) {
      parser_options.limits.max_total_bytes =
          static_cast<uint64_t>(std::atoll(argv[i] + 18));
    } else if (std::strcmp(argv[i], "--no-projection") == 0) {
      no_projection = true;
    } else if (std::strncmp(argv[i], "--flight-trace=", 15) == 0) {
      flight_trace_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--scanner=", 10) == 0) {
      // Pin the structural-scanner kernel (scalar/swar/sse2/avx2/auto);
      // results are identical across backends, only throughput differs.
      xaos::StatusOr<xaos::xml::ScannerBackend> backend =
          xaos::xml::ResolveScannerBackend(argv[i] + 10);
      if (!backend.ok()) {
        std::cerr << "--scanner: " << backend.status().message() << "\n";
        return 2;
      }
      xaos::xml::SetDefaultScannerBackend(*backend);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--threads=N] [--max-depth=N] [--max-total-bytes=N]"
                << " [--no-projection] [--flight-trace=FILE]"
                << " [--scanner=BACKEND]\n";
      return 2;
    }
  }
  const std::vector<std::pair<std::string, std::string>> rules = {
      {"alice", "//order[item/@sku='A-17']"},
      {"bob", "//item[price]/ancestor::order[customer]"},  // backward axis
      {"carol", "//order[@priority='high'] | //cancellation"},
      {"dave", "//customer[name/text()='Dave']/ancestor::order"},
      {"erin", "/order/item/price"},  // rooted: projection-analyzable
  };
  // Turn instrumentation on so the parser-side projection counters (in the
  // default registry) are collected alongside the router's own metrics.
  xaos::obs::SetEnabled(true);
  if (!flight_trace_path.empty()) {
    xaos::obs::flight::Arm();
    xaos::obs::flight::SetCurrentThreadName("main");
  }
  // Documents taking longer than this are logged; tiny so the demo actually
  // produces a slow-query line or two.
  constexpr uint64_t kSlowDocumentNs = 200 * 1000;

  xaos::obs::MetricsRegistry registry;
  xaos::obs::Counter* documents_total =
      registry.GetCounter("router_documents_total");
  xaos::obs::Counter* documents_rejected =
      registry.GetCounter("router_documents_rejected_total");
  xaos::obs::Histogram* document_ns =
      registry.GetHistogram("router_document_ns");

  // Route the evaluators' per-subscription latency series and high-water
  // gauges into the router's own registry instead of the process default,
  // so the final dump shows them next to the delivery counters.
  xaos::core::EngineOptions engine_options;
  engine_options.metrics_registry = &registry;
  xaos::core::MultiQueryEvaluator evaluator(engine_options);
  std::unique_ptr<xaos::core::ParallelFleet> fleet;
  if (threads > 0) {
    xaos::core::ParallelFleetOptions options;
    options.num_workers = threads;
    options.engine_options = engine_options;
    fleet = std::make_unique<xaos::core::ParallelFleet>(options);
  }
  std::vector<Subscription> subscriptions;
  for (const auto& [name, expression] : rules) {
    auto query = xaos::core::Query::Compile(expression);
    if (!query.ok()) {
      std::cerr << name << ": " << query.status() << "\n";
      return 1;
    }
    Subscription sub;
    sub.name = name;
    sub.expression = expression;
    // The subscription name labels the latency series
    // (`xaos_sub_match_latency_ns{subscription="<name>"}`).
    sub.query_index =
        fleet ? fleet->AddQuery(*query, name) : evaluator.AddQuery(*query, name);
    sub.deliveries = registry.GetCounter("router_deliveries_total{subscription=\"" +
                                         name + "\"}");
    subscriptions.push_back(std::move(sub));
  }
  // Sequential mode feeds the evaluator through batched dispatch (the
  // fleet coalesces its own ring publishes); routing is byte-identical
  // to per-event delivery either way.
  xaos::core::BatchedDispatcher dispatcher(&evaluator);
  xaos::xml::ContentHandler* handler =
      fleet ? static_cast<xaos::xml::ContentHandler*>(fleet.get())
      : engine_options.enable_batched_dispatch
          ? static_cast<xaos::xml::ContentHandler*>(&dispatcher)
          : &evaluator;
  if (fleet) {
    fleet->Finalize();
    std::cout << "routing with " << fleet->worker_count()
              << " worker threads\n";
  }
  if (!no_projection) {
    parser_options.projection_filter =
        fleet ? fleet->projection_filter() : evaluator.projection_filter();
    // With "//"-anchored subscriptions in the pool the union degrades to
    // keep-all; the line below makes that visible.
    std::cout << "projection: "
              << (fleet ? fleet->projection_spec()
                        : evaluator.projection_spec())
                     .ToString()
              << "\n";
  }

  const std::vector<std::string> documents = {
      R"(<order id="1"><item sku="A-17"><price>10</price></item>
         <customer><name>Dave</name></customer></order>)",
      R"(<order id="2" priority="high"><item sku="B-2"/></order>)",
      R"(<order id="3"><item sku="C-9"><price>5</price></item></order>)",
      R"(<cancellation order="1"/>)",
      R"(<note>not an order at all</note>)",
      // A hostile publisher: malformed mid-stream. The router rejects it
      // and keeps serving the remaining documents.
      R"(<order id="4"><item sku="A-17"><price>10</order>)",
      R"(<order id="5" priority="high"><item sku="A-17"/></order>)",
  };

  for (size_t i = 0; i < documents.size(); ++i) {
    uint64_t start = xaos::obs::NowNs();
    xaos::Status status =
        xaos::xml::ParseString(documents[i], handler, parser_options);
    uint64_t elapsed = xaos::obs::NowNs() - start;
    if (!status.ok()) {
      // Close out the abandoned document; the evaluator/fleet stays usable
      // for the rest of the stream.
      if (fleet) {
        fleet->AbortDocument(status);
      } else if (handler == &dispatcher) {
        dispatcher.AbortDocument(status);
      } else {
        evaluator.AbortDocument(status);
      }
      documents_rejected->Increment();
      std::cerr << "document " << i + 1 << " rejected: " << status << "\n";
      continue;
    }
    xaos::Status eval_status = fleet ? fleet->status() : evaluator.status();
    if (!eval_status.ok()) {
      std::cerr << "document " << i << ": " << eval_status << "\n";
      return 1;
    }
    documents_total->Increment();
    document_ns->Record(elapsed);
    if (elapsed > kSlowDocumentNs) {
      std::cerr << "slow document: " << elapsed << " ns on document " << i + 1
                << " across "
                << (fleet ? fleet->query_count() : evaluator.query_count())
                << " subscriptions\n";
    }
    std::cout << "document " << i + 1 << " -> ";
    bool any = false;
    for (Subscription& sub : subscriptions) {
      if (fleet ? fleet->Matched(sub.query_index)
                : evaluator.Matched(sub.query_index)) {
        sub.deliveries->Increment();
        std::cout << (any ? ", " : "") << sub.name;
        any = true;
      }
    }
    std::cout << (any ? "" : "(no subscribers)") << "\n";
  }

  std::cout << "\nsubscriptions:\n";
  for (const Subscription& sub : subscriptions) {
    std::cout << "  " << sub.name << ": " << sub.expression << "\n";
  }

  if (fleet) {
    fleet->ExportMetrics(&registry);
  } else {
    registry.GetCounter("router_dispatch_engines_skipped_total")
        ->Increment(evaluator.engines_skipped());
    evaluator.ExportMetrics(&registry);
  }

  // The parser reports projection activity to the process-wide default
  // registry; fold those counters into the router's dump.
  for (const char* name : {"xaos_projection_subtrees_skipped_total",
                           "xaos_projection_bytes_skipped_total",
                           "xaos_projection_disabled_total"}) {
    registry.GetCounter(name)->Increment(
        xaos::obs::MetricsRegistry::Default().GetCounter(name)->Value());
  }

  std::cout << "\nmetrics:\n"
            << xaos::obs::ToPrometheusText(registry);

  if (!flight_trace_path.empty()) {
    // The last EndDocument/AbortDocument latch left every worker parked, so
    // the rings are quiescent here.
    xaos::obs::flight::Disarm();
    xaos::Status status = xaos::obs::flight::WriteChromeTrace(flight_trace_path);
    if (!status.ok()) {
      std::cerr << "flight trace: " << status << "\n";
      return 2;
    }
    std::cerr << "flight trace written to " << flight_trace_path << "\n";
  }
  return 0;
}
