// Publish/subscribe document routing — the XFilter/YFilter use case the
// paper's introduction motivates, with subscriptions that use backward
// axes (which pure forward-axis filters cannot express).
//
// A set of subscriptions is compiled once; each incoming document is
// streamed through all subscription evaluators in a single parse, and the
// router reports which subscribers the document should be delivered to.
//
// The router is also instrumented the way a production filter would be:
// each subscription gets a labelled delivery counter
// (`router_deliveries_total{subscription="alice"}`), per-document
// evaluation time is accumulated per subscription and queries exceeding a
// slow threshold are logged to stderr, and the metrics registry is dumped
// in Prometheus exposition format at the end of the run.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "xaos.h"

namespace {

struct Subscription {
  std::string name;
  std::string expression;
  std::unique_ptr<xaos::core::Query> query;
  std::unique_ptr<xaos::core::StreamingEvaluator> evaluator;
  xaos::obs::Counter* deliveries = nullptr;
  uint64_t document_ns = 0;  // evaluation time in the current document
};

// Fans one event stream out to every subscription evaluator, accumulating
// per-subscription evaluation time.
class Fanout : public xaos::xml::ContentHandler {
 public:
  explicit Fanout(std::vector<Subscription>* subs) : subs_(subs) {}
  void StartDocument() override {
    Each([](Subscription& s) { s.evaluator->StartDocument(); });
  }
  void EndDocument() override {
    Each([](Subscription& s) { s.evaluator->EndDocument(); });
  }
  void StartElement(std::string_view name,
                    const std::vector<xaos::xml::Attribute>& attrs) override {
    Each([&](Subscription& s) { s.evaluator->StartElement(name, attrs); });
  }
  void EndElement(std::string_view name) override {
    Each([&](Subscription& s) { s.evaluator->EndElement(name); });
  }
  void Characters(std::string_view text) override {
    Each([&](Subscription& s) { s.evaluator->Characters(text); });
  }

 private:
  template <typename Fn>
  void Each(Fn&& fn) {
    for (Subscription& s : *subs_) {
      uint64_t start = xaos::obs::NowNs();
      fn(s);
      s.document_ns += xaos::obs::NowNs() - start;
    }
  }

  std::vector<Subscription>* subs_;
};

}  // namespace

int main() {
  const std::vector<std::pair<std::string, std::string>> rules = {
      {"alice", "//order[item/@sku='A-17']"},
      {"bob", "//item[price]/ancestor::order[customer]"},  // backward axis
      {"carol", "//order[@priority='high'] | //cancellation"},
      {"dave", "//customer[name/text()='Dave']/ancestor::order"},
  };
  // Documents taking longer than this per subscription are logged; tiny so
  // the demo actually produces a slow-query line or two.
  constexpr uint64_t kSlowQueryNs = 50 * 1000;

  xaos::obs::MetricsRegistry registry;
  xaos::obs::Counter* documents_total =
      registry.GetCounter("router_documents_total");
  xaos::obs::Histogram* document_ns =
      registry.GetHistogram("router_subscription_document_ns");

  std::vector<Subscription> subscriptions;
  for (const auto& [name, expression] : rules) {
    auto query = xaos::core::Query::Compile(expression);
    if (!query.ok()) {
      std::cerr << name << ": " << query.status() << "\n";
      return 1;
    }
    Subscription sub;
    sub.name = name;
    sub.expression = expression;
    sub.query = std::make_unique<xaos::core::Query>(std::move(*query));
    sub.evaluator =
        std::make_unique<xaos::core::StreamingEvaluator>(*sub.query);
    sub.deliveries = registry.GetCounter("router_deliveries_total{subscription=\"" +
                                         name + "\"}");
    subscriptions.push_back(std::move(sub));
  }

  const std::vector<std::string> documents = {
      R"(<order id="1"><item sku="A-17"><price>10</price></item>
         <customer><name>Dave</name></customer></order>)",
      R"(<order id="2" priority="high"><item sku="B-2"/></order>)",
      R"(<order id="3"><item sku="C-9"><price>5</price></item></order>)",
      R"(<cancellation order="1"/>)",
      R"(<note>not an order at all</note>)",
  };

  Fanout fanout(&subscriptions);
  for (size_t i = 0; i < documents.size(); ++i) {
    for (Subscription& sub : subscriptions) sub.document_ns = 0;
    xaos::Status status = xaos::xml::ParseString(documents[i], &fanout);
    if (!status.ok()) {
      std::cerr << "document " << i << ": " << status << "\n";
      return 1;
    }
    documents_total->Increment();
    std::cout << "document " << i + 1 << " -> ";
    bool any = false;
    for (Subscription& sub : subscriptions) {
      document_ns->Record(sub.document_ns);
      if (sub.document_ns > kSlowQueryNs) {
        std::cerr << "slow query: subscription " << sub.name << " took "
                  << sub.document_ns << " ns on document " << i + 1 << " ("
                  << sub.expression << ")\n";
      }
      if (sub.evaluator->Result().matched) {
        sub.deliveries->Increment();
        std::cout << (any ? ", " : "") << sub.name;
        any = true;
      }
    }
    std::cout << (any ? "" : "(no subscribers)") << "\n";
  }

  std::cout << "\nsubscriptions:\n";
  for (const Subscription& sub : subscriptions) {
    std::cout << "  " << sub.name << ": " << sub.expression << "\n";
  }

  std::cout << "\nmetrics:\n"
            << xaos::obs::ToPrometheusText(registry);
  return 0;
}
