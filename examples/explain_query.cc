// Query explanation tool: shows how an XPath expression is compiled — the
// parsed canonical form, or-expansion into disjuncts, each disjunct's
// x-tree (paper Section 3.1) and x-dag (Section 3.2, with backward
// constraints rewritten as forward constraints), output nodes, and
// GraphViz dumps.
//
// Usage: explain_query '<xpath>' [--dot]

#include <cstring>
#include <iostream>
#include <string>

#include "xaos.h"

int main(int argc, char** argv) {
  std::string expression =
      argc > 1 ? argv[1]
               : "/descendant::Y[child::U]/descendant::W[ancestor::Z/"
                 "child::V]";
  bool dot = argc > 2 && std::strcmp(argv[2], "--dot") == 0;

  std::cout << "expression:  " << expression << "\n";

  auto parsed = xaos::xpath::ParseExpression(expression);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  std::cout << "canonical:   " << xaos::xpath::ToString(*parsed) << "\n";
  std::cout << "node tests:  " << xaos::xpath::NodeTestCount(*parsed) << "\n";
  std::cout << "backward:    "
            << (xaos::xpath::UsesBackwardAxes(*parsed) ? "yes" : "no")
            << "\n\n";

  auto trees = xaos::query::CompileToXTrees(expression);
  if (!trees.ok()) {
    std::cerr << "compile error: " << trees.status() << "\n";
    return 1;
  }
  std::cout << "disjuncts:   " << trees->size() << "\n\n";

  int index = 0;
  for (const xaos::query::XTree& tree : *trees) {
    std::cout << "--- disjunct " << ++index << " ---\n";
    std::cout << "x-tree: " << tree.ToString() << "\n";
    xaos::query::XDag dag(tree);
    std::cout << "x-dag:  " << dag.ToString() << "\n";
    std::cout << "outputs:";
    for (xaos::query::XNodeId id : tree.OutputNodes()) {
      std::cout << " " << tree.node(id).test.Label();
    }
    std::cout << "\ntopological order:";
    for (xaos::query::XNodeId id : dag.TopologicalOrder()) {
      std::cout << " "
                << (id == xaos::query::kRootXNode ? "Root"
                                                  : tree.node(id).test.Label());
    }
    std::cout << "\n";
    if (dot) {
      std::cout << "\n" << tree.ToDot("xtree_" + std::to_string(index))
                << "\n" << dag.ToDot("xdag_" + std::to_string(index)) << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
