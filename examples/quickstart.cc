// Quickstart: evaluate XPath expressions with forward AND backward axes
// over an XML document in a single streaming pass.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>
#include <string>

#include "xaos.h"

namespace {

constexpr const char* kCatalog = R"(<catalog>
  <shelf room="east">
    <book id="b1">
      <title>The Streaming Garden</title>
      <author>A. Writer</author>
      <chapter><table/><figure/></chapter>
    </book>
    <book id="b2">
      <title>Notes on Automata</title>
      <chapter><figure/></chapter>
    </book>
  </shelf>
  <shelf room="west">
    <box>
      <book id="b3">
        <title>Joins and Matchings</title>
        <chapter><table/></chapter>
      </book>
    </box>
  </shelf>
</catalog>)";

void Run(const std::string& query, const std::string& xml) {
  std::cout << "query: " << query << "\n";
  xaos::core::EngineOptions options;
  options.capture_output_subtrees = true;
  xaos::StatusOr<xaos::core::QueryResult> result =
      xaos::core::EvaluateStreaming(query, xml, options);
  if (!result.ok()) {
    std::cout << "  error: " << result.status() << "\n";
    return;
  }
  std::cout << "  matched: " << (result->matched ? "yes" : "no") << "\n";
  for (const xaos::core::OutputItem& item : result->items) {
    std::cout << "  -> " << item.info.ToString();
    if (!item.captured_xml.empty()) {
      std::cout << "  " << item.captured_xml;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  // Forward axes only: every book title.
  Run("//book/title", kCatalog);

  // A backward axis: books that contain a table anywhere — expressed from
  // the table's point of view. Other streaming processors cannot evaluate
  // this in one pass; χαoς can.
  Run("//table/ancestor::book", kCatalog);

  // Mixing directions and predicates: titles of books with a table,
  // sitting (at any depth) in the east room.
  Run("//shelf[@room='east']//book[chapter/table]/title", kCatalog);

  // Disjunction and union.
  Run("//book[chapter/table or chapter/figure]/title", kCatalog);

  // Sibling and order-based axes work too (all XPath 1.0 axes except
  // namespace): the author element is evaluated only if a title precedes
  // it under the same book.
  Run("//title/following-sibling::author", kCatalog);
  Run("//book[following::box]/title", kCatalog);

  // Compile once, stream many documents (e.g. chunks from a socket).
  xaos::StatusOr<xaos::core::Query> query =
      xaos::core::Query::Compile("//book[@id='b3']/title");
  if (!query.ok()) return 1;
  xaos::core::StreamingEvaluator evaluator(*query);
  xaos::xml::SaxParser parser(&evaluator);
  std::string document(kCatalog);
  for (size_t i = 0; i < document.size(); i += 64) {
    if (!parser.Feed(std::string_view(document).substr(i, 64)).ok()) return 1;
  }
  if (!parser.Finish().ok()) return 1;
  std::cout << "chunked run found " << evaluator.Result().items.size()
            << " item(s)\n";
  return 0;
}
