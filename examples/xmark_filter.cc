// Runs the paper's XMark experiment end to end, at a small scale:
// generates an XMark-like auction document, evaluates
// //listitem/ancestor::category//name in one streaming pass, and reports
// the storage behaviour (fraction of elements discarded, Table 3).
//
// Usage: xmark_filter [scale]        (default scale 0.01 ≈ 15k elements)

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "xaos.h"

int main(int argc, char** argv) {
  xaos::gen::XMarkOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  std::cout << "generating XMark document at scale " << options.scale
            << "...\n";
  std::string document = xaos::gen::GenerateXMark(options);
  std::cout << "document size: " << document.size() / 1024 << " KiB\n";

  xaos::StatusOr<xaos::core::Query> query =
      xaos::core::Query::Compile(xaos::gen::kXMarkPaperQuery);
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return 1;
  }
  std::cout << "query: " << query->expression() << "\n";

  xaos::core::StreamingEvaluator evaluator(*query);
  auto start = std::chrono::steady_clock::now();
  xaos::Status status = xaos::xml::ParseString(document, &evaluator);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  xaos::core::QueryResult result = evaluator.Result();
  xaos::core::EngineStats stats = evaluator.AggregateStats();
  std::cout << "matched category names: " << result.items.size() << "\n";
  size_t shown = 0;
  for (const xaos::core::OutputItem& item : result.items) {
    if (++shown > 5) {
      std::cout << "  ...\n";
      break;
    }
    std::cout << "  name element #" << item.info.ordinal << " at level "
              << item.info.level << "\n";
  }
  std::cout << "elements processed:  " << stats.elements_total << "\n"
            << "elements discarded:  " << stats.elements_discarded << " ("
            << 100.0 * stats.DiscardedFraction() << "%)\n"
            << "structures created:  " << stats.structures_created << "\n"
            << "peak live:           " << stats.structures_live_peak << "\n"
            << "streaming time:      " << elapsed << " s\n";
  return 0;
}
