// Umbrella header for the xaos library: streaming XPath processing with
// forward and backward axes (the χαoς algorithm, ICDE 2003).
//
// Quick start:
//
//   #include "xaos.h"
//
//   xaos::StatusOr<xaos::core::QueryResult> result =
//       xaos::core::EvaluateStreaming(
//           "//listitem/ancestor::category//name", xml_text);
//   if (result.ok()) {
//     for (const xaos::core::OutputItem& item : result->items) { ... }
//   }
//
// For streaming from a source of chunks, compile a core::Query once, attach
// a core::StreamingEvaluator to an xml::SaxParser, and Feed() the chunks.

#ifndef XAOS_XAOS_H_
#define XAOS_XAOS_H_

#include "baseline/brute_force_matcher.h"   // IWYU pragma: export
#include "baseline/compare.h"               // IWYU pragma: export
#include "baseline/navigational_engine.h"   // IWYU pragma: export
#include "core/batched_dispatch.h"          // IWYU pragma: export
#include "core/document_cursor.h"           // IWYU pragma: export
#include "core/engine_fleet.h"              // IWYU pragma: export
#include "core/multi_engine.h"              // IWYU pragma: export
#include "core/parallel_fleet.h"            // IWYU pragma: export
#include "core/shared_index.h"              // IWYU pragma: export
#include "core/trace.h"                     // IWYU pragma: export
#include "core/xaos_engine.h"               // IWYU pragma: export
#include "dom/dom_builder.h"                // IWYU pragma: export
#include "dom/dom_replayer.h"               // IWYU pragma: export
#include "dom/serializer.h"                 // IWYU pragma: export
#include "gen/random_workload.h"            // IWYU pragma: export
#include "gen/xmark_generator.h"            // IWYU pragma: export
#include "obs/export.h"                     // IWYU pragma: export
#include "obs/flight.h"                     // IWYU pragma: export
#include "obs/json.h"                       // IWYU pragma: export
#include "obs/memory.h"                     // IWYU pragma: export
#include "obs/metrics.h"                    // IWYU pragma: export
#include "obs/timer.h"                      // IWYU pragma: export
#include "query/projection.h"               // IWYU pragma: export
#include "query/reroot.h"                   // IWYU pragma: export
#include "query/xtree_builder.h"            // IWYU pragma: export
#include "util/pool_arena.h"                // IWYU pragma: export
#include "util/status.h"                    // IWYU pragma: export
#include "util/statusor.h"                  // IWYU pragma: export
#include "util/symbol_table.h"              // IWYU pragma: export
#include "xml/event_batch.h"                // IWYU pragma: export
#include "xml/sax_parser.h"                 // IWYU pragma: export
#include "xml/xml_writer.h"                 // IWYU pragma: export
#include "xpath/parser.h"                   // IWYU pragma: export

#endif  // XAOS_XAOS_H_
