#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace xaos::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

namespace {

// Recursive-descent validator over `s`; `i` is the cursor.
class Validator {
 public:
  explicit Validator(std::string_view s) : s_(s) {}

  bool Run() {
    SkipWs();
    if (!Value(0)) return false;
    SkipWs();
    return i_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool Eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool Literal(std::string_view word) {
    if (s_.substr(i_, word.size()) != word) return false;
    i_ += word.size();
    return true;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (i_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        char e = s_[i_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (i_ + static_cast<size_t>(k) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s_[i_ + static_cast<size_t>(k)]))) {
              return false;
            }
          }
          i_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i_;
    }
    return false;
  }

  bool Number() {
    size_t start = i_;
    if (Eat('-')) {
    }
    // Integer part: "0" alone, or a nonzero digit followed by more digits —
    // leading zeros are not JSON.
    if (Eat('0')) {
      if (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        return false;
      }
    } else if (!Digits()) {
      return false;
    }
    if (Eat('.') && !Digits()) return false;
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (!Digits()) return false;
    }
    return i_ > start;
  }
  bool Digits() {
    size_t start = i_;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    return i_ > start;
  }

  bool Value(int depth) {
    if (depth > kMaxDepth || i_ >= s_.size()) return false;
    char c = s_[i_];
    if (c == '{') {
      ++i_;
      SkipWs();
      if (Eat('}')) return true;
      while (true) {
        SkipWs();
        if (!String()) return false;
        SkipWs();
        if (!Eat(':')) return false;
        SkipWs();
        if (!Value(depth + 1)) return false;
        SkipWs();
        if (Eat('}')) return true;
        if (!Eat(',')) return false;
      }
    }
    if (c == '[') {
      ++i_;
      SkipWs();
      if (Eat(']')) return true;
      while (true) {
        SkipWs();
        if (!Value(depth + 1)) return false;
        SkipWs();
        if (Eat(']')) return true;
        if (!Eat(',')) return false;
      }
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  std::string_view s_;
  size_t i_ = 0;
};

}  // namespace

bool JsonValid(std::string_view text) { return Validator(text).Run(); }

}  // namespace xaos::obs
