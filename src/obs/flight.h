// Flight recorder: low-overhead span tracing across the streaming pipeline.
//
// Every instrumented thread owns a fixed-size ring of Spans (overwrite-
// oldest, so a long run keeps the most recent window); emitting a span is a
// thread-local store with no locks and no allocation in steady state. The
// recorder is two gates deep:
//   * compile time — building with -DXAOS_OBS_ENABLED=0 turns the whole API
//     into no-op inlines, so instrumentation sites vanish;
//   * run time — spans are only recorded after Arm(); Active() is a single
//     relaxed atomic load, and every call site guards on it, so a disarmed
//     binary pays one predictable branch per *coarse* operation (per Feed,
//     per batch, per document — never per event).
//
// Spans carry document / batch-sequence / shard attribution. The parallel
// fleet's producer stamps each EventBatch with a sequence number and emits a
// dispatch span per publish; workers emit replay spans referencing the same
// sequence, which the Chrome-trace exporter turns into flow arrows — the
// cross-thread linkage that lets Perfetto show one batch's journey from the
// parse thread to every shard.
//
// Collection contract: rings are single-writer and collected without locks,
// so Collect()/Reset()/Arm() must run at a quiescent point — after
// EndDocument returned (the fleet's end-of-document latch orders all worker
// writes before it) or after the writing threads joined. The tools call
// them exactly there.

#ifndef XAOS_OBS_FLIGHT_H_
#define XAOS_OBS_FLIGHT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "util/status.h"

namespace xaos::obs::flight {

enum class SpanKind : uint8_t {
  kParse = 0,     // one SaxParser::Feed call (value = chunk bytes)
  kSkipScan,      // one projection skip (value = bytes, value2 = elements)
  kDocument,      // StartDocument..EndDocument on an evaluator (value = engines)
  kDispatch,      // producer publishing one batch to all rings (value = events)
  kPublishStall,  // producer blocked on a full worker ring
  kParkWait,      // worker parked on an empty ring before obtaining a batch
  kReplay,        // worker replaying one batch into its shard (value = events)
  kCounter,       // point sample: value = buffered candidates, value2 = bytes
};
inline constexpr int kSpanKindCount = 8;

// Stable lowercase name used as the Chrome-trace event name.
const char* SpanKindName(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kParse;
  uint64_t begin_ns = 0;  // steady-clock (obs::NowNs) timestamps
  uint64_t end_ns = 0;
  uint64_t doc = 0;    // 1-based document ordinal; 0 = not attributed
  uint64_t batch = 0;  // batch sequence for cross-thread linkage; 0 = none
  int32_t shard = -1;  // worker/shard index; -1 = not attributed
  int64_t value = 0;   // kind-specific payload (bytes, events, candidates)
  int64_t value2 = 0;  // secondary payload (elements, arena bytes)
};

// One thread's collected window, oldest span first.
struct ThreadTrace {
  uint64_t track = 0;  // stable per-thread track id (Chrome-trace tid)
  std::string name;    // thread name ("parse", "worker/0", ...)
  uint64_t dropped = 0;  // spans overwritten before collection
  std::vector<Span> spans;
};

#if XAOS_OBS_ENABLED

namespace internal {
// Separate from obs::Enabled(): metrics can stay on while span recording is
// disarmed. Relaxed is sufficient — spans are best-effort diagnostics.
inline std::atomic<bool> g_flight_active{false};
}  // namespace internal

inline bool Active() {
  return internal::g_flight_active.load(std::memory_order_relaxed);
}

// Arms the recorder. Resizes every known ring to `ring_capacity` spans and
// clears previous contents; quiescent-only (see file comment).
void Arm(size_t ring_capacity = 8192);
// Stops recording; rings keep their contents for a later Collect().
void Disarm();

// Records `span` into the calling thread's ring (creating it on first use).
// No-op when not Active().
void Emit(const Span& span);

// Names the calling thread's track in collected traces. No-op when not
// Active() (so a disarmed binary never allocates a ring just for a name).
void SetCurrentThreadName(std::string_view name);

// Snapshot of every thread's ring, ordered by track id. Quiescent-only.
std::vector<ThreadTrace> Collect();

// Clears all ring contents (rings and track ids survive). Quiescent-only.
void Reset();

// Number of per-thread rings ever created (tests: disabled mode creates
// none).
size_t ring_count();

#else  // !XAOS_OBS_ENABLED

inline constexpr bool Active() { return false; }
inline void Arm(size_t = 0) {}
inline void Disarm() {}
inline void Emit(const Span&) {}
inline void SetCurrentThreadName(std::string_view) {}
inline std::vector<ThreadTrace> Collect() { return {}; }
inline void Reset() {}
inline size_t ring_count() { return 0; }

#endif  // XAOS_OBS_ENABLED

// RAII span: reads the clock only when the recorder is Active() at
// construction. Fill in attribution through span() before scope exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind) {
    if (Active()) {
      active_ = true;
      span_.kind = kind;
      span_.begin_ns = NowNs();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      span_.end_ns = NowNs();
      Emit(span_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  Span* span() { return &span_; }

 private:
  Span span_;
  bool active_ = false;
};

// Renders traces as Chrome trace-event JSON (the format chrome://tracing
// and Perfetto load): "X" complete events per span on one track per thread,
// "M" thread-name metadata, "C" counter tracks for kCounter samples, and
// "s"/"f" flow events tying each dispatch span to the replay spans that
// consumed the same batch sequence.
std::string ToChromeTraceJson(const std::vector<ThreadTrace>& traces);

// Collect() + ToChromeTraceJson written to `path` ("-" for stdout).
Status WriteChromeTrace(const std::string& path);

}  // namespace xaos::obs::flight

#endif  // XAOS_OBS_FLIGHT_H_
