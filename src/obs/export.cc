#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/json.h"

namespace xaos::obs {

namespace {

// Splits `name{key="v"}` into base name and label body (`key="v"`); the
// label body is empty for unlabelled metrics.
std::pair<std::string_view, std::string_view> SplitName(
    std::string_view name) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string SeriesName(std::string_view base, std::string_view labels,
                       std::string_view suffix,
                       std::string_view extra_label = {}) {
  std::string out(base);
  out += suffix;
  if (labels.empty() && extra_label.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra_label.empty()) out += ',';
  out += extra_label;
  out += '}';
  return out;
}

void AppendFamilyHeader(std::string* out, std::string_view base,
                        std::string_view type) {
  out->append("# HELP ").append(base).append(" ");
  out->append(MetricHelpText(base));
  out->append("\n# TYPE ").append(base).append(" ").append(type).append(
      "\n");
}

constexpr std::pair<std::string_view, double> kQuantileSuffixes[] = {
    {"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};

}  // namespace

std::string_view MetricHelpText(std::string_view base) {
  struct Entry {
    std::string_view base;
    std::string_view help;
  };
  // Help strings for the families the library itself emits; anything else
  // (tool-local metrics, tests) falls through to the generic line.
  static constexpr Entry kEntries[] = {
      {"xaos_parser_bytes_total", "Bytes consumed by the SAX parser."},
      {"xaos_parser_elements_total", "Start-element events parsed."},
      {"xaos_parser_attributes_total", "Attributes parsed."},
      {"xaos_parser_text_events_total", "Text events delivered."},
      {"xaos_parser_errors_total", "Documents rejected by the parser."},
      {"xaos_projection_subtrees_skipped_total",
       "Subtrees bypassed by the static-projection skip scanner."},
      {"xaos_projection_bytes_skipped_total",
       "Bytes bypassed by the static-projection skip scanner."},
      {"xaos_scanner_bytes_classified_total",
       "Bytes run through the structural scanner's block classifier."},
      {"xaos_scanner_backend",
       "Active structural-scanner backend (1 for the selected kernel)."},
      {"xaos_engine_event_ns",
       "Sampled per-event dispatch latency in nanoseconds."},
      {"xaos_engine_elements_total", "Elements dispatched to engines."},
      {"xaos_engine_elements_discarded_total",
       "Elements discarded by label-index dispatch before any engine."},
      {"xaos_engine_structures_created_total",
       "Matching structures created (optimistic candidates)."},
      {"xaos_engine_structures_undone_total",
       "Matching structures undone when backward constraints failed."},
      {"xaos_engine_structures_live", "Matching structures currently live."},
      {"xaos_engine_structures_live_peak",
       "High-water mark of live matching structures."},
      {"xaos_engine_structure_bytes", "Bytes held by matching structures."},
      {"xaos_engine_structure_bytes_peak",
       "High-water mark of matching-structure bytes."},
      {"xaos_engine_propagations_total", "Slot propagation steps."},
      {"xaos_engine_optimistic_propagations_total",
       "Propagations performed before backward constraints resolved."},
      {"xaos_engine_arena_bytes_total", "Bytes allocated from pool arenas."},
      {"xaos_sub_match_latency_ns",
       "Per-subscription match latency: document start to EndDocument, "
       "nanoseconds, recorded once per matching document."},
      {"xaos_sub_first_match_ns",
       "Per-subscription time to first confirmed match within a document, "
       "nanoseconds."},
      {"xaos_buffered_candidates_peak",
       "High-water mark of buffered optimistic candidates, sampled at "
       "document span boundaries."},
      {"xaos_arena_bytes_peak",
       "High-water mark of matching-structure arena bytes, sampled at "
       "document span boundaries."},
      {"xaos_parallel_workers", "Worker shards in the parallel fleet."},
      {"xaos_parallel_documents_total",
       "Documents fully processed by the parallel fleet."},
      {"xaos_parallel_documents_aborted",
       "Documents abandoned mid-stream by the parallel fleet."},
      {"xaos_parallel_documents_aborted_total",
       "Documents abandoned mid-stream by the parallel fleet."},
      {"xaos_parallel_batches_published",
       "Event batches published to shards."},
      {"xaos_parallel_publish_stalls",
       "Producer stalls on a full shard ring."},
      {"xaos_parallel_publish_stall_ns",
       "Nanoseconds the producer spent stalled on full shard rings."},
      {"xaos_parallel_shard_queries", "Subscriptions assigned to the shard."},
      {"xaos_parallel_shard_batches_total",
       "Event batches the shard replayed."},
      {"xaos_parallel_shard_events_total", "Events the shard replayed."},
      {"xaos_parallel_shard_cost_estimate",
       "Sharding heuristic's load estimate for the shard."},
      {"xaos_parallel_shard_publish_stall_ns",
       "Nanoseconds the producer spent stalled on this shard's full ring."},
      {"xaos_parallel_shard_park_wait_ns",
       "Nanoseconds the shard's worker parked on an empty ring (includes "
       "idle gaps between documents)."},
      {"xaos_parallel_shard_parks", "Park episodes on the shard's ring."},
  };
  for (const Entry& entry : kEntries) {
    if (entry.base == base) return entry.help;
  }
  // Suffix families derived from histograms share one description.
  for (const auto& [suffix, q] : kQuantileSuffixes) {
    (void)q;
    if (base.size() > suffix.size() &&
        base.substr(base.size() - suffix.size()) == suffix) {
      return "Estimated quantile derived from the matching histogram.";
    }
  }
  return "xaos metric (no specific help registered).";
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) +
           ", \"p50\": " + JsonNumber(h.Quantile(0.50)) +
           ", \"p90\": " + JsonNumber(h.Quantile(0.90)) +
           ", \"p99\": " + JsonNumber(h.Quantile(0.99)) + ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [bound, count] : h.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": " + std::to_string(bound) +
             ", \"count\": " + std::to_string(count) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  return ToJson(registry.Snapshot());
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  // Labelled variants of one metric sort adjacently, so emitting the
  // HELP/TYPE header only when the base name changes yields one per family.
  std::string_view previous_base;
  for (const auto& [name, value] : snapshot.counters) {
    std::string_view base = SplitName(name).first;
    if (base != previous_base) {
      AppendFamilyHeader(&out, base, "counter");
      previous_base = base;
    }
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  }
  previous_base = {};
  for (const auto& [name, value] : snapshot.gauges) {
    std::string_view base = SplitName(name).first;
    if (base != previous_base) {
      AppendFamilyHeader(&out, base, "gauge");
      previous_base = base;
    }
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  }
  // Histograms: group the sorted map into runs sharing a base name so each
  // family gets one header, then derive one quantile gauge family per
  // suffix covering every labelled member.
  for (auto it = snapshot.histograms.begin();
       it != snapshot.histograms.end();) {
    std::string_view family = SplitName(it->first).first;
    auto family_end = it;
    while (family_end != snapshot.histograms.end() &&
           SplitName(family_end->first).first == family) {
      ++family_end;
    }
    AppendFamilyHeader(&out, family, "histogram");
    for (auto member = it; member != family_end; ++member) {
      auto [base, labels] = SplitName(member->first);
      const HistogramSnapshot& h = member->second;
      uint64_t cumulative = 0;
      for (const auto& [bound, count] : h.buckets) {
        cumulative += count;
        out.append(SeriesName(base, labels, "_bucket",
                              "le=\"" + std::to_string(bound) + "\""))
            .append(" ")
            .append(std::to_string(cumulative))
            .append("\n");
      }
      out.append(SeriesName(base, labels, "_bucket", "le=\"+Inf\""))
          .append(" ")
          .append(std::to_string(h.count))
          .append("\n");
      out.append(SeriesName(base, labels, "_sum"))
          .append(" ")
          .append(std::to_string(h.sum))
          .append("\n");
      out.append(SeriesName(base, labels, "_count"))
          .append(" ")
          .append(std::to_string(h.count))
          .append("\n");
    }
    for (const auto& [suffix, q] : kQuantileSuffixes) {
      std::string derived(family);
      derived += suffix;
      AppendFamilyHeader(&out, derived, "gauge");
      for (auto member = it; member != family_end; ++member) {
        auto [base, labels] = SplitName(member->first);
        out.append(SeriesName(base, labels, suffix))
            .append(" ")
            .append(JsonNumber(member->second.Quantile(q)))
            .append("\n");
      }
    }
    it = family_end;
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  return ToPrometheusText(registry.Snapshot());
}

namespace {

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != ':') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return true;
}

// Validates `key="value",...` label syntax (value escapes: \\ \" \n).
bool ValidLabelBody(std::string_view body) {
  size_t i = 0;
  while (i < body.size()) {
    size_t key_start = i;
    while (i < body.size() && body[i] != '=') ++i;
    if (i == body.size() || i == key_start) return false;
    if (!ValidMetricName(body.substr(key_start, i - key_start))) return false;
    ++i;  // '='
    if (i >= body.size() || body[i] != '"') return false;
    ++i;
    while (i < body.size() && body[i] != '"') {
      if (body[i] == '\\') {
        if (i + 1 >= body.size()) return false;
        char esc = body[i + 1];
        if (esc != '\\' && esc != '"' && esc != 'n') return false;
        ++i;
      }
      ++i;
    }
    if (i >= body.size()) return false;
    ++i;  // closing quote
    if (i < body.size()) {
      if (body[i] != ',') return false;
      ++i;
      if (i == body.size()) return false;  // trailing comma
    }
  }
  return true;
}

bool ValidSampleValue(std::string_view value) {
  if (value.empty()) return false;
  if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
  char* end = nullptr;
  std::string buffer(value);
  std::strtod(buffer.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buffer.c_str();
}

bool SampleNameInFamily(std::string_view sample, std::string_view family,
                        std::string_view family_type) {
  if (sample == family) return true;
  if (family_type != "histogram") return false;
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (sample.size() == family.size() + suffix.size() &&
        sample.substr(0, family.size()) == family &&
        sample.substr(family.size()) == suffix) {
      return true;
    }
  }
  return false;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool PrometheusTextValid(std::string_view text, std::string* error) {
  std::string current_family;
  std::string current_type;
  bool have_help = false;
  bool have_type = false;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_number;
    if (line.empty()) continue;
    std::string where = "line " + std::to_string(line_number) + ": " +
                        std::string(line.substr(0, 120));
    if (line[0] == '#') {
      bool is_help = line.substr(0, 7) == "# HELP ";
      bool is_type = line.substr(0, 7) == "# TYPE ";
      if (!is_help && !is_type) continue;  // plain comment
      std::string_view rest = line.substr(7);
      size_t space = rest.find(' ');
      if (space == std::string_view::npos || space == 0) {
        SetError(error, "malformed HELP/TYPE line, " + where);
        return false;
      }
      std::string_view name = rest.substr(0, space);
      if (!ValidMetricName(name)) {
        SetError(error, "invalid metric name in header, " + where);
        return false;
      }
      if (name != current_family) {
        // New family begins; HELP must come first.
        if (!is_help) {
          SetError(error, "TYPE before HELP for family, " + where);
          return false;
        }
        current_family.assign(name);
        current_type.clear();
        have_help = true;
        have_type = false;
        continue;
      }
      if (is_help) {
        if (have_help) {
          SetError(error, "duplicate HELP for family, " + where);
          return false;
        }
        have_help = true;
      } else {
        if (have_type) {
          SetError(error, "duplicate TYPE for family, " + where);
          return false;
        }
        std::string_view type = rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          SetError(error, "unknown metric type, " + where);
          return false;
        }
        current_type.assign(type);
        have_type = true;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    size_t name_end = line.find_first_of(" {");
    if (name_end == std::string_view::npos || name_end == 0) {
      SetError(error, "malformed sample line, " + where);
      return false;
    }
    std::string_view name = line.substr(0, name_end);
    if (!ValidMetricName(name)) {
      SetError(error, "invalid sample metric name, " + where);
      return false;
    }
    std::string_view rest = line.substr(name_end);
    if (!rest.empty() && rest[0] == '{') {
      size_t close = rest.find('}');
      if (close == std::string_view::npos) {
        SetError(error, "unterminated label set, " + where);
        return false;
      }
      if (!ValidLabelBody(rest.substr(1, close - 1))) {
        SetError(error, "malformed labels, " + where);
        return false;
      }
      rest = rest.substr(close + 1);
    }
    if (rest.empty() || rest[0] != ' ') {
      SetError(error, "missing sample value, " + where);
      return false;
    }
    if (!ValidSampleValue(rest.substr(1))) {
      SetError(error, "non-numeric sample value, " + where);
      return false;
    }
    if (current_family.empty() || !have_help || !have_type) {
      SetError(error, "sample without preceding HELP/TYPE, " + where);
      return false;
    }
    if (!SampleNameInFamily(name, current_family, current_type)) {
      SetError(error,
               "sample name outside declared family '" + current_family +
                   "', " + where);
      return false;
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path) {
  std::string json = ToJson(registry) + "\n";
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return Status::Ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open metrics file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return InternalError("short write to metrics file: " + path);
  }
  return Status::Ok();
}

}  // namespace xaos::obs
