#include "obs/export.h"

#include <cstdio>
#include <utility>

#include "obs/json.h"

namespace xaos::obs {

namespace {

// Splits `name{key="v"}` into base name and label body (`key="v"`); the
// label body is empty for unlabelled metrics.
std::pair<std::string_view, std::string_view> SplitName(
    std::string_view name) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string SeriesName(std::string_view base, std::string_view labels,
                       std::string_view suffix,
                       std::string_view extra_label = {}) {
  std::string out(base);
  out += suffix;
  if (labels.empty() && extra_label.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra_label.empty()) out += ',';
  out += extra_label;
  out += '}';
  return out;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [bound, count] : h.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": " + std::to_string(bound) +
             ", \"count\": " + std::to_string(count) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  return ToJson(registry.Snapshot());
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  // Labelled variants of one metric sort adjacently, so emitting a TYPE
  // line only when the base name changes yields one per family.
  std::string_view previous_base;
  for (const auto& [name, value] : snapshot.counters) {
    std::string_view base = SplitName(name).first;
    if (base != previous_base) {
      out.append("# TYPE ").append(base).append(" counter\n");
      previous_base = base;
    }
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  }
  previous_base = {};
  for (const auto& [name, value] : snapshot.gauges) {
    std::string_view base = SplitName(name).first;
    if (base != previous_base) {
      out.append("# TYPE ").append(base).append(" gauge\n");
      previous_base = base;
    }
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    auto [base, labels] = SplitName(name);
    out.append("# TYPE ").append(base).append(" histogram\n");
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : h.buckets) {
      cumulative += count;
      out.append(SeriesName(base, labels, "_bucket",
                            "le=\"" + std::to_string(bound) + "\""))
          .append(" ")
          .append(std::to_string(cumulative))
          .append("\n");
    }
    out.append(SeriesName(base, labels, "_bucket", "le=\"+Inf\""))
        .append(" ")
        .append(std::to_string(h.count))
        .append("\n");
    out.append(SeriesName(base, labels, "_sum"))
        .append(" ")
        .append(std::to_string(h.sum))
        .append("\n");
    out.append(SeriesName(base, labels, "_count"))
        .append(" ")
        .append(std::to_string(h.count))
        .append("\n");
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  return ToPrometheusText(registry.Snapshot());
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path) {
  std::string json = ToJson(registry) + "\n";
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return Status::Ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open metrics file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return InternalError("short write to metrics file: " + path);
  }
  return Status::Ok();
}

}  // namespace xaos::obs
