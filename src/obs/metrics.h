// Structured metrics for the xaos pipeline: named counters, gauges and
// log-scale histograms collected in a MetricsRegistry and exported to JSON
// or Prometheus text format (obs/export.h).
//
// Design goals, in order:
//   * zero overhead when disabled — instrumentation sites guard on
//     obs::Enabled(), which compiles to a constant `false` when the library
//     is built with -DXAOS_OBS_ENABLED=0 and is a single relaxed atomic
//     load otherwise (off by default at runtime);
//   * lock-cheap when enabled — metric lookup/creation takes the registry
//     mutex once, after which the returned pointer is stable for the
//     registry's lifetime and every update is a relaxed atomic, so hot
//     loops hold raw Counter*/Histogram* and never contend;
//   * one source of truth — the engine's EngineStats folds into a registry
//     via EngineStats::ToMetrics, so Table-3 numbers, `xaos_grep
//     --metrics-json` and the benchmark reporter all read the same fields.
//
// Metric names follow Prometheus conventions (`xaos_parser_bytes_total`).
// A name may carry inline labels in Prometheus syntax, e.g.
// `router_deliveries_total{subscription="alice"}`; exporters pass them
// through.

#ifndef XAOS_OBS_METRICS_H_
#define XAOS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Compile-time master switch. Building with -DXAOS_OBS_ENABLED=0 turns
// Enabled() into a constant, letting the compiler delete every guarded
// instrumentation site.
#ifndef XAOS_OBS_ENABLED
#define XAOS_OBS_ENABLED 1
#endif

namespace xaos::obs {

#if XAOS_OBS_ENABLED
namespace internal {
// Single process-wide runtime switch; relaxed is sufficient because the
// flag only gates best-effort statistics.
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}
#else
inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#endif

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (live structures, peak bytes, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  // Raises the gauge to `v` if it is below (for peaks folded from several
  // engines).
  void SetMax(int64_t v) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Base-2 log-scale histogram for latencies (ns) and sizes (bytes). Bucket i
// counts values whose bit width is i, i.e. value 0 goes to bucket 0 and
// bucket i >= 1 covers [2^(i-1), 2^i). 64 buckets cover the full uint64
// range, so Record never clamps.
class Histogram {
 public:
  static constexpr int kBucketCount = 65;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t max = max_.load(std::memory_order_relaxed);
    while (value > max &&
           !max_.compare_exchange_weak(max, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Bucket index for `value`: 0 for 0, otherwise std::bit_width(value).
  static int BucketIndex(uint64_t value) {
    int width = 0;
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width;
  }
  // Inclusive upper bound of bucket i (2^i - 1); the last bucket is
  // unbounded.
  static uint64_t BucketUpperBound(int i) {
    return i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1;
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCountAt(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Consistent-enough copy of a histogram for exporters.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  // Non-empty buckets only, as (inclusive upper bound, count) pairs in
  // ascending bound order.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  // Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  // log2 bucket holding the target rank — exact to within one bucket's
  // width, which is all a power-of-two histogram can promise. Returns 0 for
  // an empty histogram; the result is clamped to `max`.
  double Quantile(double q) const;
};

// Full registry contents, ordered by name (exports are deterministic).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

// Owns named metrics. Lookup/creation is mutex-guarded; returned pointers
// are stable until the registry is destroyed, so callers resolve once and
// update lock-free afterwards.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Drops all metrics (pointers from Get* become dangling — intended for
  // tests and between benchmark repetitions).
  void Clear();

  // The process-wide registry that instrumented library code reports into
  // when Enabled().
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xaos::obs

#endif  // XAOS_OBS_METRICS_H_
