// Wall-clock instrumentation: phase accounting for the three pipeline
// phases of the paper's evaluation (parse, query-compile, match), RAII
// scope timing, and cheap per-event cost sampling.

#ifndef XAOS_OBS_TIMER_H_
#define XAOS_OBS_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace xaos::obs {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The pipeline phases whose split the evaluation reports. In a streaming
// run parse and match interleave within one pass; the SaxParser attributes
// handler-callback time to kMatch and the rest of each Feed() to kParse
// (see ParserOptions::phase_timers).
enum class Phase { kParse = 0, kCompile = 1, kMatch = 2 };
inline constexpr int kPhaseCount = 3;

const char* PhaseName(Phase phase);

// Accumulated nanoseconds per phase. Single-writer (plain fields): one
// PhaseTimers belongs to one pipeline.
class PhaseTimers {
 public:
  void Add(Phase phase, uint64_t ns) { ns_[static_cast<int>(phase)] += ns; }
  uint64_t Ns(Phase phase) const { return ns_[static_cast<int>(phase)]; }
  double Seconds(Phase phase) const {
    return static_cast<double>(Ns(phase)) * 1e-9;
  }

  // Folds the phases into `registry` as counters
  // `<prefix>phase_ns_total{phase="parse"}` etc.
  void ExportTo(MetricsRegistry* registry,
                const std::string& prefix = "xaos_") const;

 private:
  uint64_t ns_[kPhaseCount] = {};
};

// RAII timer recording its scope's duration on destruction, into either a
// histogram or a phase accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(NowNs()) {}
  ScopedTimer(PhaseTimers* timers, Phase phase)
      : timers_(timers), phase_(phase), start_(NowNs()) {}
  ~ScopedTimer() {
    uint64_t elapsed = ElapsedNs();
    if (histogram_ != nullptr) histogram_->Record(elapsed);
    if (timers_ != nullptr) timers_->Add(phase_, elapsed);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedNs() const { return NowNs() - start_; }

 private:
  Histogram* histogram_ = nullptr;
  PhaseTimers* timers_ = nullptr;
  Phase phase_ = Phase::kParse;
  uint64_t start_;
};

// Samples the cost of every `period`-th event into a histogram, so hot
// loops pay two clock reads only on sampled events and a decrement
// otherwise. Null sink disables the sampler entirely.
class EventCostSampler {
 public:
  explicit EventCostSampler(Histogram* sink, uint32_t period = 64)
      : sink_(sink), period_(period == 0 ? 1 : period), countdown_(1) {}

  // True when the upcoming event should be measured; the caller brackets it
  // with NowNs() and calls RecordNs.
  bool ShouldSample() {
    if (sink_ == nullptr) return false;
    if (--countdown_ != 0) return false;
    countdown_ = period_;
    return true;
  }
  void RecordNs(uint64_t ns) { sink_->Record(ns); }

 private:
  Histogram* sink_;
  uint32_t period_;
  uint32_t countdown_;
};

}  // namespace xaos::obs

#endif  // XAOS_OBS_TIMER_H_
