// Byte-level accounting of live data structures. The paper's storage claim
// (Section 6.1, Table 3) is about the *size* of the retained matching
// structures, not just their count; MemoryAccountant tracks both the live
// and the high-water byte totals so EngineStats can report
// structure_bytes_live / structure_bytes_peak.

#ifndef XAOS_OBS_MEMORY_H_
#define XAOS_OBS_MEMORY_H_

#include <cstdint>

#include "obs/metrics.h"

namespace xaos::obs {

// Single-writer accountant (one per engine); aggregation across engines
// sums `live_bytes` and `peak_bytes`. The peak is maintained inside Add so
// every allocation path updates it by construction.
struct MemoryAccountant {
  uint64_t live_bytes = 0;
  uint64_t peak_bytes = 0;

  void Add(uint64_t bytes) {
    live_bytes += bytes;
    if (live_bytes > peak_bytes) peak_bytes = live_bytes;
  }
  void Remove(uint64_t bytes) { live_bytes -= bytes; }

  void ExportTo(MetricsRegistry* registry, const std::string& live_name,
                const std::string& peak_name) const {
    registry->GetGauge(live_name)->Add(static_cast<int64_t>(live_bytes));
    registry->GetGauge(peak_name)->Add(static_cast<int64_t>(peak_bytes));
  }
};

}  // namespace xaos::obs

#endif  // XAOS_OBS_MEMORY_H_
