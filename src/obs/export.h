// Exporters turning a MetricsRegistry snapshot into machine-readable text:
// a single JSON document or the Prometheus exposition format.

#ifndef XAOS_OBS_EXPORT_H_
#define XAOS_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "util/status.h"

namespace xaos::obs {

// One JSON object:
//   {"counters": {"name": 1, ...},
//    "gauges": {"name": 2, ...},
//    "histograms": {"name": {"count": n, "sum": s, "max": m,
//                            "p50": q, "p90": q, "p99": q,
//                            "buckets": [{"le": bound, "count": c}, ...]}}}
// Keys are sorted; output is deterministic for a given snapshot.
std::string ToJson(const MetricsSnapshot& snapshot);
std::string ToJson(const MetricsRegistry& registry);

// Prometheus text exposition format. Every family gets `# HELP` and
// `# TYPE` lines, emitted once even when the family has several labelled
// series. Histograms expose cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`, and additionally derived `<name>_p50` / `_p90` /
// `_p99` gauge families with the estimated quantiles. Inline labels in
// metric names (`name{key="v"}`) are passed through.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);
std::string ToPrometheusText(const MetricsRegistry& registry);

// Help text for a metric family base name; a generic fallback for names
// without a registered description (exposition format requires HELP to be
// present, not meaningful).
std::string_view MetricHelpText(std::string_view base);

// Structural conformance check for the exposition format emitted by
// ToPrometheusText: every sample preceded by its family's HELP and TYPE
// (exactly one each, HELP first), sample names consistent with the declared
// family (allowing _bucket/_sum/_count for histograms), well-formed label
// syntax and numeric values. On failure returns false and, when `error` is
// non-null, stores a diagnostic naming the offending line.
bool PrometheusTextValid(std::string_view text, std::string* error = nullptr);

// Writes ToJson(registry) to `path` ("-" for stdout).
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace xaos::obs

#endif  // XAOS_OBS_EXPORT_H_
