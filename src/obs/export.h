// Exporters turning a MetricsRegistry snapshot into machine-readable text:
// a single JSON document or the Prometheus exposition format.

#ifndef XAOS_OBS_EXPORT_H_
#define XAOS_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace xaos::obs {

// One JSON object:
//   {"counters": {"name": 1, ...},
//    "gauges": {"name": 2, ...},
//    "histograms": {"name": {"count": n, "sum": s, "max": m,
//                            "buckets": [{"le": bound, "count": c}, ...]}}}
// Keys are sorted; output is deterministic for a given snapshot.
std::string ToJson(const MetricsSnapshot& snapshot);
std::string ToJson(const MetricsRegistry& registry);

// Prometheus text exposition format, with `# TYPE` lines. Histograms
// expose cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
// Inline labels in metric names (`name{key="v"}`) are passed through.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);
std::string ToPrometheusText(const MetricsRegistry& registry);

// Writes ToJson(registry) to `path` ("-" for stdout).
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace xaos::obs

#endif  // XAOS_OBS_EXPORT_H_
