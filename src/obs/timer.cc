#include "obs/timer.h"

namespace xaos::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kParse:
      return "parse";
    case Phase::kCompile:
      return "compile";
    case Phase::kMatch:
      return "match";
  }
  return "unknown";
}

void PhaseTimers::ExportTo(MetricsRegistry* registry,
                           const std::string& prefix) const {
  for (int i = 0; i < kPhaseCount; ++i) {
    Phase phase = static_cast<Phase>(i);
    registry
        ->GetCounter(prefix + "phase_ns_total{phase=\"" + PhaseName(phase) +
                     "\"}")
        ->Increment(Ns(phase));
  }
}

}  // namespace xaos::obs
