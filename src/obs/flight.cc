#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace xaos::obs::flight {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kSkipScan:
      return "skip_scan";
    case SpanKind::kDocument:
      return "document";
    case SpanKind::kDispatch:
      return "dispatch";
    case SpanKind::kPublishStall:
      return "publish_stall";
    case SpanKind::kParkWait:
      return "park_wait";
    case SpanKind::kReplay:
      return "replay";
    case SpanKind::kCounter:
      return "counter";
  }
  return "unknown";
}

#if XAOS_OBS_ENABLED

namespace {

// One thread's span storage. Written only by its owner thread; read by
// Collect() at quiescent points (see flight.h contract), so no per-slot
// synchronization is needed.
struct ThreadRing {
  std::vector<Span> slots;
  uint64_t head = 0;  // total spans ever pushed; slot index = head % size
  uint64_t track = 0;
  std::string name;
};

// Rings are registered once per thread and never removed (a few KB per
// thread for the process lifetime), so the thread-local raw pointer below
// can never dangle even after its owner thread exits.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  size_t ring_capacity = 8192;
  uint64_t next_track = 1;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

thread_local ThreadRing* tl_ring = nullptr;

ThreadRing* CurrentRing() {
  if (tl_ring == nullptr) {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto ring = std::make_unique<ThreadRing>();
    ring->slots.resize(registry.ring_capacity);
    ring->track = registry.next_track++;
    ring->name = "thread/" + std::to_string(ring->track);
    tl_ring = ring.get();
    registry.rings.push_back(std::move(ring));
  }
  return tl_ring;
}

}  // namespace

void Arm(size_t ring_capacity) {
  if (ring_capacity == 0) ring_capacity = 1;
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.ring_capacity = ring_capacity;
    for (auto& ring : registry.rings) {
      ring->slots.assign(ring_capacity, Span{});
      ring->head = 0;
    }
  }
  internal::g_flight_active.store(true, std::memory_order_relaxed);
}

void Disarm() {
  internal::g_flight_active.store(false, std::memory_order_relaxed);
}

void Emit(const Span& span) {
  if (!Active()) return;
  ThreadRing* ring = CurrentRing();
  ring->slots[ring->head % ring->slots.size()] = span;
  ++ring->head;
}

void SetCurrentThreadName(std::string_view name) {
  if (!Active()) return;
  CurrentRing()->name.assign(name);
}

std::vector<ThreadTrace> Collect() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<ThreadTrace> out;
  for (const auto& ring : registry.rings) {
    const uint64_t capacity = ring->slots.size();
    const uint64_t kept = std::min(ring->head, capacity);
    if (kept == 0) continue;
    ThreadTrace trace;
    trace.track = ring->track;
    trace.name = ring->name;
    trace.dropped = ring->head - kept;
    trace.spans.reserve(kept);
    for (uint64_t i = ring->head - kept; i < ring->head; ++i) {
      trace.spans.push_back(ring->slots[i % capacity]);
    }
    out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.track < b.track;
            });
  return out;
}

void Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& ring : registry.rings) {
    std::fill(ring->slots.begin(), ring->slots.end(), Span{});
    ring->head = 0;
  }
}

size_t ring_count() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.rings.size();
}

#endif  // XAOS_OBS_ENABLED

namespace {

// Chrome trace-event timestamps are microseconds; keep sub-µs resolution.
std::string TraceTs(uint64_t ns) {
  return JsonNumber(static_cast<double>(ns) / 1000.0);
}

void AppendEvent(std::string* out, bool* first, const std::string& event) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append(event);
}

std::string SpanArgs(const Span& span) {
  std::string args = "{";
  bool first = true;
  auto field = [&](const char* key, const std::string& value) {
    if (!first) args += ",";
    first = false;
    args += "\"";
    args += key;
    args += "\":";
    args += value;
  };
  if (span.doc != 0) field("doc", std::to_string(span.doc));
  if (span.batch != 0) field("batch", std::to_string(span.batch));
  if (span.shard >= 0) field("shard", std::to_string(span.shard));
  if (span.value != 0) field("value", std::to_string(span.value));
  if (span.value2 != 0) field("value2", std::to_string(span.value2));
  args += "}";
  return args;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<ThreadTrace>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& trace : traces) {
    const std::string tid = std::to_string(trace.track);
    AppendEvent(&out, &first,
                "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
                    tid + ",\"args\":{\"name\":\"" + JsonEscape(trace.name) +
                    "\"}}");
    for (const Span& span : trace.spans) {
      if (span.kind == SpanKind::kCounter) {
        // Counter tracks render as stacked area charts in Perfetto; one
        // track per shard keeps the fleets apart.
        std::string suffix =
            span.shard >= 0 ? "/shard" + std::to_string(span.shard) : "";
        AppendEvent(
            &out, &first,
            "{\"ph\":\"C\",\"name\":\"buffered_candidates" + suffix +
                "\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" +
                TraceTs(span.end_ns) + ",\"args\":{\"candidates\":" +
                std::to_string(span.value) + "}}");
        AppendEvent(&out, &first,
                    "{\"ph\":\"C\",\"name\":\"arena_bytes" + suffix +
                        "\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" +
                        TraceTs(span.end_ns) + ",\"args\":{\"bytes\":" +
                        std::to_string(span.value2) + "}}");
        continue;
      }
      const uint64_t end_ns = std::max(span.end_ns, span.begin_ns);
      AppendEvent(&out, &first,
                  std::string("{\"ph\":\"X\",\"name\":\"") +
                      SpanKindName(span.kind) +
                      "\",\"cat\":\"xaos\",\"pid\":1,\"tid\":" + tid +
                      ",\"ts\":" + TraceTs(span.begin_ns) + ",\"dur\":" +
                      TraceTs(end_ns - span.begin_ns) + ",\"args\":" +
                      SpanArgs(span) + "}");
      // Flow arrows: a dispatch span starts flow id = batch sequence; every
      // replay of the same sequence finishes it on its own track.
      if (span.batch != 0 && span.kind == SpanKind::kDispatch) {
        AppendEvent(&out, &first,
                    "{\"ph\":\"s\",\"name\":\"batch\",\"cat\":\"xaos\","
                    "\"id\":" +
                        std::to_string(span.batch) + ",\"pid\":1,\"tid\":" +
                        tid + ",\"ts\":" + TraceTs(span.begin_ns) + "}");
      } else if (span.batch != 0 && span.kind == SpanKind::kReplay) {
        AppendEvent(&out, &first,
                    "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"batch\",\"cat\":"
                    "\"xaos\",\"id\":" +
                        std::to_string(span.batch) + ",\"pid\":1,\"tid\":" +
                        tid + ",\"ts\":" + TraceTs(span.begin_ns) + "}");
      }
    }
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  std::string json = ToChromeTraceJson(Collect()) + "\n";
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return Status::Ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open flight-trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return InternalError("short write to flight-trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace xaos::obs::flight
