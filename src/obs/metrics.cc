#include "obs/metrics.h"

namespace xaos::obs {

namespace {

template <typename Map>
auto* GetOrCreate(Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    using Metric = typename Map::mapped_type::element_type;
    it = map.emplace(std::string(name), std::make_unique<Metric>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(counters_, name, mu_);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(gauges_, name, mu_);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(histograms_, name, mu_);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q = 0 maps to the first sample.
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  uint64_t cumulative = 0;
  for (const auto& [bound, bucket_count] : buckets) {
    // Inclusive lower edge of this bucket, derived from its own bound:
    // bucket 0 of the log2 histogram holds only the value 0; the bucket
    // with upper bound 2^i - 1 covers [2^(i-1), 2^i). The previous *listed*
    // bucket's bound cannot be used — the snapshot keeps non-empty buckets
    // only, so intermediate empty buckets would shift the edge down.
    double lower = bound == 0 ? 0.0 : static_cast<double>((bound >> 1) + 1);
    if (target <= static_cast<double>(cumulative + bucket_count)) {
      double into = target - static_cast<double>(cumulative);
      double fraction = into / static_cast<double>(bucket_count);
      double upper = static_cast<double>(bound);
      double value = lower + fraction * (upper - lower);
      double max_d = static_cast<double>(max);
      return value > max_d ? max_d : value;
    }
    cumulative += bucket_count;
  }
  return static_cast<double>(max);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.max = histogram->Max();
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      uint64_t bucket = histogram->BucketCountAt(i);
      if (bucket != 0) {
        h.buckets.emplace_back(Histogram::BucketUpperBound(i), bucket);
      }
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace xaos::obs
