#include "obs/metrics.h"

namespace xaos::obs {

namespace {

template <typename Map>
auto* GetOrCreate(Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    using Metric = typename Map::mapped_type::element_type;
    it = map.emplace(std::string(name), std::make_unique<Metric>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(counters_, name, mu_);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(gauges_, name, mu_);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(histograms_, name, mu_);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.max = histogram->Max();
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      uint64_t bucket = histogram->BucketCountAt(i);
      if (bucket != 0) {
        h.buckets.emplace_back(Histogram::BucketUpperBound(i), bucket);
      }
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace xaos::obs
