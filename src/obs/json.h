// Minimal JSON utilities shared by the exporters, the JSON-lines trace and
// the benchmark reporter: string escaping, number formatting and a
// dependency-free validator used by tests and CI smoke checks.

#ifndef XAOS_OBS_JSON_H_
#define XAOS_OBS_JSON_H_

#include <string>
#include <string_view>

namespace xaos::obs {

// Returns `s` with JSON string escaping applied (quotes, backslash,
// control characters); no surrounding quotes.
std::string JsonEscape(std::string_view s);

// Renders a double as a JSON number (finite values only; non-finite map to
// 0 since JSON has no Inf/NaN).
std::string JsonNumber(double value);

// True if `text` is exactly one syntactically valid JSON value (with
// optional surrounding whitespace). Validates structure, string escapes and
// number syntax; does not enforce \uXXXX surrogate pairing.
bool JsonValid(std::string_view text);

}  // namespace xaos::obs

#endif  // XAOS_OBS_JSON_H_
