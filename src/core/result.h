// Query results: the projection of all total matchings onto the output
// x-node(s) (paper Section 4.4), plus tuple output for multiple output
// nodes (Section 5.3).

#ifndef XAOS_CORE_RESULT_H_
#define XAOS_CORE_RESULT_H_

#include <string>
#include <vector>

#include "core/element_info.h"

namespace xaos::core {

// One selected document node.
struct OutputItem {
  ElementInfo info;
  // Serialized subtree, present only when EngineOptions::capture enabled
  // the recording of matched output subtrees.
  std::string captured_xml;

  friend bool operator==(const OutputItem& a, const OutputItem& b) {
    return a.info.id == b.info.id;
  }
};

// Result of evaluating one x-tree (or a union of them) over one document.
struct QueryResult {
  // True if at least one total matching at Root exists — i.e. the document
  // "matches" the query even if the caller ignores the selected nodes
  // (the publish/subscribe filtering use of the paper's introduction).
  bool matched = false;

  // Selected nodes, in document order, without duplicates. For queries with
  // several output x-nodes this is the union of their projections.
  std::vector<OutputItem> items;

  // Convenience: ids of `items`.
  std::vector<ElementId> ItemIds() const;
  // Convenience: names of `items` (element tags).
  std::vector<std::string> ItemNames() const;
};

// One output tuple: the projection of a single total matching onto the
// output x-nodes, ordered by x-node id.
using OutputTuple = std::vector<ElementInfo>;

}  // namespace xaos::core

#endif  // XAOS_CORE_RESULT_H_
