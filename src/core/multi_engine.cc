#include "core/multi_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "dom/dom_replayer.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace xaos::core {

StatusOr<Query> Query::Compile(std::string_view xpath, int max_paths) {
  XAOS_ASSIGN_OR_RETURN(std::vector<query::XTree> trees,
                        query::CompileToXTrees(xpath, max_paths));
  Query query;
  query.expression_.assign(xpath);
  query.trees_ = std::make_shared<const std::vector<query::XTree>>(
      std::move(trees));
  return query;
}

Query Query::FromTrees(std::vector<query::XTree> trees,
                       std::string expression) {
  Query query;
  query.expression_ = std::move(expression);
  query.trees_ =
      std::make_shared<const std::vector<query::XTree>>(std::move(trees));
  return query;
}

StreamingEvaluator::StreamingEvaluator(const Query& query,
                                       EngineOptions options)
    : trees_(query.trees_) {
  engines_.reserve(trees_->size());
  for (const query::XTree& tree : *trees_) {
    engines_.push_back(std::make_unique<XaosEngine>(&tree, options));
  }
  if (obs::Enabled()) {
    sampler_ = obs::EventCostSampler(
        obs::MetricsRegistry::Default().GetHistogram("xaos_engine_event_ns"));
    sample_events_ = true;
  }
}

void StreamingEvaluator::StartDocument() {
  for (auto& engine : engines_) engine->StartDocument();
}

void StreamingEvaluator::EndDocument() {
  for (auto& engine : engines_) engine->EndDocument();
}

void StreamingEvaluator::StartElement(
    std::string_view name, const std::vector<xml::Attribute>& attributes) {
  if (sample_events_ && sampler_.ShouldSample()) {
    uint64_t start = obs::NowNs();
    for (auto& engine : engines_) engine->StartElement(name, attributes);
    sampler_.RecordNs(obs::NowNs() - start);
    return;
  }
  for (auto& engine : engines_) engine->StartElement(name, attributes);
}

void StreamingEvaluator::EndElement(std::string_view name) {
  if (sample_events_ && sampler_.ShouldSample()) {
    uint64_t start = obs::NowNs();
    for (auto& engine : engines_) engine->EndElement(name);
    sampler_.RecordNs(obs::NowNs() - start);
    return;
  }
  for (auto& engine : engines_) engine->EndElement(name);
}

void StreamingEvaluator::Characters(std::string_view text) {
  for (auto& engine : engines_) engine->Characters(text);
}

bool StreamingEvaluator::MatchConfirmed() const {
  for (const auto& engine : engines_) {
    if (engine->match_confirmed()) return true;
  }
  return false;
}

Status StreamingEvaluator::status() const {
  for (const auto& engine : engines_) {
    if (!engine->status().ok()) return engine->status();
  }
  return Status::Ok();
}

QueryResult StreamingEvaluator::Result() const {
  QueryResult merged;
  std::unordered_set<ElementId> seen;
  for (const auto& engine : engines_) {
    const QueryResult& result = engine->result();
    merged.matched = merged.matched || result.matched;
    for (const OutputItem& item : result.items) {
      if (seen.insert(item.info.id).second) {
        merged.items.push_back(item);
      }
    }
  }
  std::sort(merged.items.begin(), merged.items.end(),
            [](const OutputItem& a, const OutputItem& b) {
              return a.info.id < b.info.id;
            });
  return merged;
}

EngineStats StreamingEvaluator::AggregateStats() const {
  EngineStats total;
  bool first = true;
  for (const auto& engine : engines_) {
    const EngineStats& s = engine->stats();
    // Per-document event counts are identical across engines; report them
    // once. An element counts as discarded if every engine discarded it —
    // approximated by the minimum. Structure counts accumulate.
    total.elements_total = s.elements_total;
    total.elements_discarded =
        first ? s.elements_discarded
              : std::min(total.elements_discarded, s.elements_discarded);
    first = false;
    total.structures_created += s.structures_created;
    total.structures_undone += s.structures_undone;
    total.structures_live += s.structures_live;
    total.structures_live_peak += s.structures_live_peak;
    total.structure_memory.live_bytes += s.structure_memory.live_bytes;
    total.structure_memory.peak_bytes += s.structure_memory.peak_bytes;
    total.propagations += s.propagations;
    total.optimistic_propagations += s.optimistic_propagations;
  }
  return total;
}

void StreamingEvaluator::ExportMetrics(obs::MetricsRegistry* registry) const {
  AggregateStats().ToMetrics(registry);
}

StatusOr<QueryResult> EvaluateStreaming(std::string_view xpath,
                                        std::string_view xml_text,
                                        EngineOptions options) {
  XAOS_ASSIGN_OR_RETURN(Query query, Query::Compile(xpath));
  StreamingEvaluator evaluator(query, options);
  XAOS_RETURN_IF_ERROR(xml::ParseString(xml_text, &evaluator));
  XAOS_RETURN_IF_ERROR(evaluator.status());
  return evaluator.Result();
}

StatusOr<QueryResult> EvaluateOnDocument(std::string_view xpath,
                                         const dom::Document& document,
                                         EngineOptions options) {
  XAOS_ASSIGN_OR_RETURN(Query query, Query::Compile(xpath));
  StreamingEvaluator evaluator(query, options);
  dom::ReplayDocument(document, &evaluator);
  XAOS_RETURN_IF_ERROR(evaluator.status());
  return evaluator.Result();
}

}  // namespace xaos::core
