#include "core/multi_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/batched_dispatch.h"

#include "dom/dom_replayer.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "query/xtree_builder.h"
#include "xml/sax_parser.h"

namespace xaos::core {
namespace {

// Shared end-of-document observability: folds candidate/arena high-water
// marks into `registry` (null = metrics off) and emits the flight
// recorder's document span plus a counter sample at its boundary.
void RecordDocumentBoundary(obs::MetricsRegistry* registry,
                            const EngineStats& stats, uint64_t doc,
                            int shard, uint64_t begin_ns, uint64_t end_ns,
                            size_t engine_count) {
  if (registry != nullptr) {
    registry->GetGauge("xaos_buffered_candidates_peak")
        ->SetMax(static_cast<int64_t>(stats.structures_live_peak));
    registry->GetGauge("xaos_arena_bytes_peak")
        ->SetMax(static_cast<int64_t>(stats.structure_memory.peak_bytes));
  }
  if (obs::flight::Active()) {
    obs::flight::Span span;
    span.kind = obs::flight::SpanKind::kDocument;
    span.begin_ns = begin_ns != 0 ? begin_ns : end_ns;
    span.end_ns = end_ns;
    span.doc = doc;
    span.shard = shard;
    span.value = static_cast<int64_t>(engine_count);
    obs::flight::Emit(span);
    obs::flight::Span sample;
    sample.kind = obs::flight::SpanKind::kCounter;
    sample.begin_ns = end_ns;
    sample.end_ns = end_ns;
    sample.doc = doc;
    sample.shard = shard;
    sample.value = static_cast<int64_t>(stats.structures_live_peak);
    sample.value2 = static_cast<int64_t>(stats.structure_memory.peak_bytes);
    obs::flight::Emit(sample);
  }
}

// Unions the results of the engines in [begin, end): document order,
// deduplicated by node id (disjuncts of one query can select the same node;
// ids are comparable across engines because the fleet numbers nodes with
// one shared cursor).
QueryResult MergeResults(const std::vector<std::unique_ptr<XaosEngine>>& engines,
                         size_t begin, size_t end) {
  QueryResult merged;
  std::unordered_set<ElementId> seen;
  for (size_t i = begin; i < end; ++i) {
    const QueryResult& result = engines[i]->result();
    merged.matched = merged.matched || result.matched;
    for (const OutputItem& item : result.items) {
      if (seen.insert(item.info.id).second) {
        merged.items.push_back(item);
      }
    }
  }
  std::sort(merged.items.begin(), merged.items.end(),
            [](const OutputItem& a, const OutputItem& b) {
              return a.info.id < b.info.id;
            });
  return merged;
}

Status FirstError(const std::vector<std::unique_ptr<XaosEngine>>& engines) {
  for (const auto& engine : engines) {
    if (!engine->status().ok()) return engine->status();
  }
  return Status::Ok();
}

// Sums per-engine statistics. Per-document event counts are identical
// across engines (the fleet back-fills filtered elements as discarded);
// report them once. An element counts as discarded if every engine
// discarded it — approximated by the minimum. Structure counts and arena
// traffic accumulate.
EngineStats SumStats(const std::vector<std::unique_ptr<XaosEngine>>& engines) {
  EngineStats total;
  bool first = true;
  for (const auto& engine : engines) {
    const EngineStats& s = engine->stats();
    total.elements_total = s.elements_total;
    total.elements_discarded =
        first ? s.elements_discarded
              : std::min(total.elements_discarded, s.elements_discarded);
    first = false;
    total.structures_created += s.structures_created;
    total.structures_undone += s.structures_undone;
    total.structures_live += s.structures_live;
    total.structures_live_peak += s.structures_live_peak;
    total.structure_memory.live_bytes += s.structure_memory.live_bytes;
    total.structure_memory.peak_bytes += s.structure_memory.peak_bytes;
    total.propagations += s.propagations;
    total.optimistic_propagations += s.optimistic_propagations;
    total.arena_bytes_allocated += s.arena_bytes_allocated;
    total.candidates_emitted_early += s.candidates_emitted_early;
    total.candidates_reclaimed += s.candidates_reclaimed;
  }
  return total;
}

// Replays `batch` through `fleet`: document-boundary events go through the
// evaluator's virtual handlers (they carry per-document setup/teardown);
// maximal interior runs go through the devirtualized ReplayRun loop. One
// kReplay flight span covers the whole batch, and the batch counts into
// xaos_dispatch_batches_total. Per-event cost sampling (TimedDispatch) is
// intentionally absent here — the per-event path remains the sampled oracle.
template <typename Evaluator>
void ReplayBatchImpl(Evaluator* evaluator, EngineFleet* fleet,
                     const xml::EventBatch& batch,
                     std::vector<xml::AttributeView>* attr_scratch,
                     int shard, uint64_t doc) {
  const std::vector<xml::BatchedEvent>& events = batch.events();
  obs::flight::ScopedSpan replay_span(obs::flight::SpanKind::kReplay);
  if (replay_span.active()) {
    replay_span.span()->batch = batch.sequence();
    replay_span.span()->shard = shard;
    // A batch opening a document belongs to the document it opens.
    if (!events.empty() &&
        events.front().kind == xml::BatchedEvent::Kind::kStartDocument) {
      ++doc;
    }
    replay_span.span()->doc = doc;
    replay_span.span()->value = static_cast<int64_t>(batch.event_count());
  }
  const size_t n = events.size();
  size_t i = 0;
  while (i < n) {
    const xml::BatchedEvent::Kind kind = events[i].kind;
    if (kind == xml::BatchedEvent::Kind::kStartDocument) {
      evaluator->StartDocument();
      ++i;
      continue;
    }
    if (kind == xml::BatchedEvent::Kind::kEndDocument) {
      evaluator->EndDocument();
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n &&
           events[j].kind != xml::BatchedEvent::Kind::kStartDocument &&
           events[j].kind != xml::BatchedEvent::Kind::kEndDocument) {
      ++j;
    }
    fleet->ReplayRun(batch, i, j, attr_scratch);
    i = j;
  }
  if (obs::Enabled()) {
    static obs::Counter* batches = obs::MetricsRegistry::Default().GetCounter(
        "xaos_dispatch_batches_total");
    batches->Increment();
  }
}

}  // namespace

StatusOr<Query> Query::Compile(std::string_view xpath, int max_paths) {
  XAOS_ASSIGN_OR_RETURN(std::vector<query::XTree> trees,
                        query::CompileToXTrees(xpath, max_paths));
  Query query;
  query.expression_.assign(xpath);
  query.trees_ = std::make_shared<const std::vector<query::XTree>>(
      std::move(trees));
  return query;
}

Query Query::FromTrees(std::vector<query::XTree> trees,
                       std::string expression) {
  Query query;
  query.expression_ = std::move(expression);
  query.trees_ =
      std::make_shared<const std::vector<query::XTree>>(std::move(trees));
  return query;
}

StreamingEvaluator::StreamingEvaluator(const Query& query,
                                       EngineOptions options)
    : trees_(query.trees_),
      registry_(options.metrics_registry != nullptr
                    ? options.metrics_registry
                    : &obs::MetricsRegistry::Default()) {
  engines_.reserve(trees_->size());
  for (const query::XTree& tree : *trees_) {
    engines_.push_back(std::make_unique<XaosEngine>(&tree, options));
    fleet_.AddEngine(engines_.back().get());
  }
  if (obs::Enabled()) {
    sampler_ = obs::EventCostSampler(
        obs::MetricsRegistry::Default().GetHistogram("xaos_engine_event_ns"));
    sample_events_ = true;
  }
  gate_.SetSpec(options.capture_output_subtrees
                    ? query::ProjectionSpec::KeepAll(
                          "subtree capture needs every event")
                    : query::ProjectionSpec::Analyze(*trees_));
}

void StreamingEvaluator::StartDocument() {
  abort_status_ = Status::Ok();
  gate_.Reset();
  if (obs::Enabled() || obs::flight::Active()) {
    ++doc_ordinal_;
    doc_begin_ns_ = obs::NowNs();
  }
  fleet_.StartDocument();
}

void StreamingEvaluator::EndDocument() {
  fleet_.EndDocument();
  if (obs::Enabled() || obs::flight::Active()) {
    RecordDocumentBoundary(obs::Enabled() ? registry_ : nullptr,
                           AggregateStats(), doc_ordinal_, /*shard=*/-1,
                           doc_begin_ns_, obs::NowNs(), engines_.size());
  }
}

void StreamingEvaluator::AbortDocument(const Status& cause) {
  abort_status_ =
      cause.ok() ? InternalError("document aborted without a cause") : cause;
  gate_.Reset();
  fleet_.AbortDocument();
}

void StreamingEvaluator::StartElement(const xml::QName& name,
                                      xml::AttributeSpan attributes) {
  TimedDispatch([&] { fleet_.StartElement(name, attributes); });
}

void StreamingEvaluator::EndElement(std::string_view name) {
  TimedDispatch([&] { fleet_.EndElement(name); });
}

void StreamingEvaluator::Characters(std::string_view text) {
  fleet_.Characters(text);
}

void StreamingEvaluator::SkippedSubtree(const xml::SkipReport& report) {
  fleet_.SkipSubtree(report);
}

void StreamingEvaluator::ReplayBatch(
    const xml::EventBatch& batch,
    std::vector<xml::AttributeView>* attr_scratch) {
  ReplayBatchImpl(this, &fleet_, batch, attr_scratch, /*shard=*/-1,
                  doc_ordinal_);
}

bool StreamingEvaluator::MatchConfirmed() const {
  for (const auto& engine : engines_) {
    if (engine->match_confirmed()) return true;
  }
  return false;
}

Status StreamingEvaluator::status() const {
  if (!abort_status_.ok()) return abort_status_;
  return FirstError(engines_);
}

QueryResult StreamingEvaluator::Result() const {
  return MergeResults(engines_, 0, engines_.size());
}

EngineStats StreamingEvaluator::AggregateStats() const {
  return SumStats(engines_);
}

void StreamingEvaluator::ExportMetrics(obs::MetricsRegistry* registry) const {
  AggregateStats().ToMetrics(registry);
}

MultiQueryEvaluator::MultiQueryEvaluator(EngineOptions options)
    : options_(options),
      // Subtree capture and live-structure limits are per-engine semantics
      // the merged automaton does not reproduce; such pools stay on the
      // per-engine path wholesale.
      shared_enabled_(options.enable_shared_index &&
                      !options.capture_output_subtrees &&
                      options.max_live_structures == 0) {
  if (obs::Enabled()) {
    sampler_ = obs::EventCostSampler(
        obs::MetricsRegistry::Default().GetHistogram("xaos_engine_event_ns"));
    sample_events_ = true;
  }
}

size_t MultiQueryEvaluator::AddQuery(const Query& query,
                                     std::string_view label) {
  QuerySlot slot;
  slot.trees = query.trees_;
  slot.begin = engines_.size();
  slot.end = slot.begin;
  slot.label = label.empty() ? "q" + std::to_string(queries_.size())
                             : std::string(label);

  // Byte-identical repeat of an earlier expression: alias its verdicts, add
  // no matching state. Compositions without an expression (FromTrees) can
  // have distinct trees behind an empty string, so they never alias.
  if (!query.expression().empty()) {
    auto [it, inserted] =
        by_expression_.try_emplace(query.expression(), queries_.size());
    if (!inserted) {
      slot.backend = QuerySlot::Backend::kAlias;
      slot.alias_of = it->second;
      ++alias_subscriptions_;
      const QuerySlot& canonical = queries_[slot.alias_of];
      if (canonical.backend == QuerySlot::Backend::kShared) {
        ++shared_subscriptions_;
      }
      queries_.push_back(std::move(slot));
      return queries_.size() - 1;
    }
  }

  if (shared_enabled_ && SharedIndexBuilder::Shareable(*slot.trees)) {
    slot.backend = QuerySlot::Backend::kShared;
    slot.shared_id = shared_builder_.AddSubscription(*slot.trees);
    ++shared_subscriptions_;
    queries_.push_back(std::move(slot));
    return queries_.size() - 1;
  }

  for (const query::XTree& tree : *slot.trees) {
    engines_.push_back(std::make_unique<XaosEngine>(&tree, options_));
    fleet_.AddEngine(engines_.back().get());
  }
  slot.end = engines_.size();
  queries_.push_back(std::move(slot));
  return queries_.size() - 1;
}

void MultiQueryEvaluator::EnsureSharedIndex() {
  if (shared_built_for_ == shared_builder_.subscription_count()) return;
  shared_built_for_ = shared_builder_.subscription_count();
  shared_index_ = shared_builder_.Build();
  shared_matcher_ = std::make_unique<SharedMatcher>(
      shared_index_.get(), options_.stop_after_confirmed_match);
  fleet_.AttachSharedMatcher(shared_matcher_.get());
}

void MultiQueryEvaluator::StartDocument() {
  abort_status_ = Status::Ok();
  gate_.Reset();
  if (obs::Enabled() || obs::flight::Active()) {
    ++doc_ordinal_;
    doc_begin_ns_ = obs::NowNs();
  }
  EnsureSharedIndex();
  fleet_.StartDocument();
}

void MultiQueryEvaluator::EndDocument() {
  fleet_.EndDocument();
  if (obs::Enabled() || obs::flight::Active()) FinishDocumentObservability();
}

obs::MetricsRegistry& MultiQueryEvaluator::metrics_registry() const {
  return options_.metrics_registry != nullptr
             ? *options_.metrics_registry
             : obs::MetricsRegistry::Default();
}

bool MultiQueryEvaluator::SlotMatched(size_t q, uint64_t* confirm_ns) const {
  const QuerySlot& slot = queries_[q];
  switch (slot.backend) {
    case QuerySlot::Backend::kAlias:
      return SlotMatched(slot.alias_of, confirm_ns);
    case QuerySlot::Backend::kShared:
      if (shared_matcher_ == nullptr || !shared_matcher_->Matched(slot.shared_id)) {
        return false;
      }
      *confirm_ns = shared_matcher_->confirm_ns(slot.shared_id);
      return true;
    case QuerySlot::Backend::kEngine: {
      // Earliest confirmation across the query's disjunct engines; a query
      // matched if any healthy engine matched.
      uint64_t confirm = 0;
      bool matched = false;
      for (size_t i = slot.begin; i < slot.end; ++i) {
        const XaosEngine& engine = *engines_[i];
        if (!engine.status().ok() || !engine.result().matched) continue;
        matched = true;
        uint64_t c = engine.match_confirm_ns();
        if (c != 0 && (confirm == 0 || c < confirm)) confirm = c;
      }
      *confirm_ns = confirm;
      return matched;
    }
  }
  return false;
}

void MultiQueryEvaluator::ExportSharedMetrics(
    obs::MetricsRegistry* registry) const {
  if (shared_index_ == nullptr) return;
  registry->GetGauge("xaos_shared_states_total")
      ->Set(static_cast<int64_t>(shared_index_->state_count()));
  registry->GetGauge("xaos_shared_subscriptions_total")
      ->Set(static_cast<int64_t>(shared_subscriptions_));
  // Per-mille of per-subscription chain nodes that survived as distinct
  // states (gauges are integral): 1000 = nothing shared.
  registry->GetGauge("xaos_shared_state_ratio_permille")
      ->Set(shared_index_->SharingRatioPermille());
  if (shared_matcher_ != nullptr) {
    // Engine deliveries a per-subscription fan-out would have performed
    // minus the automaton states actually touched, cumulative.
    const uint64_t fanout = shared_matcher_->elements_total() *
                            shared_index_->subscription_count();
    const uint64_t touched = shared_matcher_->states_entered_total();
    const uint64_t saved = fanout > touched ? fanout - touched : 0;
    if (saved > dispatch_saved_exported_) {
      registry->GetCounter("xaos_shared_dispatch_saved_total")
          ->Increment(saved - dispatch_saved_exported_);
      dispatch_saved_exported_ = saved;
    }
  }
}

void MultiQueryEvaluator::FinishDocumentObservability() {
  const uint64_t end_ns = obs::NowNs();
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = metrics_registry();
    ExportSharedMetrics(&registry);
    for (size_t q = 0; q < queries_.size(); ++q) {
      QuerySlot& slot = queries_[q];
      uint64_t confirm = 0;
      bool matched = SlotMatched(q, &confirm);
      if (!matched) continue;
      if (slot.match_latency == nullptr) {
        std::string labels =
            "{subscription=\"" + obs::JsonEscape(slot.label) + "\"}";
        slot.match_latency =
            registry.GetHistogram("xaos_sub_match_latency_ns" + labels);
        slot.first_match =
            registry.GetHistogram("xaos_sub_first_match_ns" + labels);
      }
      uint64_t latency = end_ns > doc_begin_ns_ ? end_ns - doc_begin_ns_ : 0;
      slot.match_latency->Record(latency);
      slot.first_match->Record(confirm > doc_begin_ns_
                                   ? confirm - doc_begin_ns_
                                   : latency);
    }
  }
  RecordDocumentBoundary(obs::Enabled() ? &metrics_registry() : nullptr,
                         AggregateStats(), doc_ordinal_, flight_shard_,
                         doc_begin_ns_, end_ns, engines_.size());
}

void MultiQueryEvaluator::AbortDocument(const Status& cause) {
  abort_status_ =
      cause.ok() ? InternalError("document aborted without a cause") : cause;
  gate_.Reset();
  fleet_.AbortDocument();
}

void MultiQueryEvaluator::StartElement(const xml::QName& name,
                                       xml::AttributeSpan attributes) {
  TimedDispatch([&] { fleet_.StartElement(name, attributes); });
}

void MultiQueryEvaluator::EndElement(std::string_view name) {
  TimedDispatch([&] { fleet_.EndElement(name); });
}

void MultiQueryEvaluator::Characters(std::string_view text) {
  fleet_.Characters(text);
}

void MultiQueryEvaluator::SkippedSubtree(const xml::SkipReport& report) {
  fleet_.SkipSubtree(report);
}

void MultiQueryEvaluator::ReplayBatch(
    const xml::EventBatch& batch,
    std::vector<xml::AttributeView>* attr_scratch) {
  ReplayBatchImpl(this, &fleet_, batch, attr_scratch, flight_shard_,
                  doc_ordinal_);
}

xml::ProjectionFilter* MultiQueryEvaluator::projection_filter() {
  if (gate_built_for_ != queries_.size()) {
    gate_built_for_ = queries_.size();
    if (options_.capture_output_subtrees) {
      gate_.SetSpec(
          query::ProjectionSpec::KeepAll("subtree capture needs every event"));
    } else {
      query::ProjectionSpec spec;
      // One trie walk covers every shared subscription; aliases need no
      // projection of their own (their canonical slot contributes it).
      if (shared_builder_.subscription_count() > 0) {
        spec.UnionWith(shared_builder_.AnalyzeProjection());
      }
      for (const QuerySlot& slot : queries_) {
        if (spec.keep_all) break;
        if (slot.backend != QuerySlot::Backend::kEngine) continue;
        spec.UnionWith(query::ProjectionSpec::Analyze(*slot.trees));
      }
      gate_.SetSpec(std::move(spec));
    }
  }
  return gate_.spec().keep_all ? nullptr : &gate_;
}

Status MultiQueryEvaluator::status() const {
  if (!abort_status_.ok()) return abort_status_;
  return FirstError(engines_);
}

bool MultiQueryEvaluator::Matched(size_t q) const {
  const QuerySlot& slot = queries_[q];
  switch (slot.backend) {
    case QuerySlot::Backend::kAlias:
      return Matched(slot.alias_of);
    case QuerySlot::Backend::kShared:
      return shared_matcher_ != nullptr &&
             shared_matcher_->Matched(slot.shared_id);
    case QuerySlot::Backend::kEngine:
      for (size_t i = slot.begin; i < slot.end; ++i) {
        if (engines_[i]->result().matched) return true;
      }
      return false;
  }
  return false;
}

bool MultiQueryEvaluator::MatchConfirmed(size_t q) const {
  const QuerySlot& slot = queries_[q];
  switch (slot.backend) {
    case QuerySlot::Backend::kAlias:
      return MatchConfirmed(slot.alias_of);
    case QuerySlot::Backend::kShared:
      return shared_matcher_ != nullptr &&
             shared_matcher_->MatchConfirmed(slot.shared_id);
    case QuerySlot::Backend::kEngine:
      for (size_t i = slot.begin; i < slot.end; ++i) {
        if (engines_[i]->match_confirmed()) return true;
      }
      return false;
  }
  return false;
}

QueryResult MultiQueryEvaluator::Result(size_t q) const {
  const QuerySlot& slot = queries_[q];
  switch (slot.backend) {
    case QuerySlot::Backend::kAlias:
      return Result(slot.alias_of);
    case QuerySlot::Backend::kShared:
      return shared_matcher_ != nullptr ? shared_matcher_->Result(slot.shared_id)
                                        : QueryResult{};
    case QuerySlot::Backend::kEngine:
      return MergeResults(engines_, slot.begin, slot.end);
  }
  return QueryResult{};
}

EngineStats MultiQueryEvaluator::AggregateStats() const {
  return SumStats(engines_);
}

void MultiQueryEvaluator::ExportMetrics(obs::MetricsRegistry* registry) const {
  AggregateStats().ToMetrics(registry);
  ExportSharedMetrics(registry);
}

StatusOr<QueryResult> EvaluateStreaming(std::string_view xpath,
                                        std::string_view xml_text,
                                        EngineOptions options) {
  XAOS_ASSIGN_OR_RETURN(Query query, Query::Compile(xpath));
  StreamingEvaluator evaluator(query, options);
  if (options.enable_batched_dispatch) {
    BatchedDispatcher dispatcher(&evaluator);
    XAOS_RETURN_IF_ERROR(xml::ParseString(xml_text, &dispatcher));
  } else {
    XAOS_RETURN_IF_ERROR(xml::ParseString(xml_text, &evaluator));
  }
  XAOS_RETURN_IF_ERROR(evaluator.status());
  return evaluator.Result();
}

StatusOr<QueryResult> EvaluateOnDocument(std::string_view xpath,
                                         const dom::Document& document,
                                         EngineOptions options) {
  XAOS_ASSIGN_OR_RETURN(Query query, Query::Compile(xpath));
  StreamingEvaluator evaluator(query, options);
  dom::ReplayDocument(document, &evaluator);
  XAOS_RETURN_IF_ERROR(evaluator.status());
  return evaluator.Result();
}

}  // namespace xaos::core
