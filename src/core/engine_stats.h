// Counters the engine maintains while processing a document. These back the
// paper's storage claims (Table 3: fraction of elements discarded as not
// relevant) and the ablation benchmarks, and fold into an
// obs::MetricsRegistry (ToMetrics) so the benchmark reporter, xaos_grep
// --metrics-json and the exporters all read one source of truth.

#ifndef XAOS_CORE_ENGINE_STATS_H_
#define XAOS_CORE_ENGINE_STATS_H_

#include <cstdint>
#include <string>

#include "obs/memory.h"
#include "obs/metrics.h"

namespace xaos::core {

struct EngineStats {
  // Element start events seen (excluding the virtual root and synthetic
  // attribute/text nodes).
  uint64_t elements_total = 0;
  // Elements for which no matching-structure was created — either no x-node
  // label matched or the looking-for relevance filter rejected them
  // (Section 4.1). These contribute no storage.
  uint64_t elements_discarded = 0;

  uint64_t structures_created = 0;
  // Structures retracted by the undo mechanism (Section 4.3).
  uint64_t structures_undone = 0;
  // Currently allocated structures (maintained via the
  // OnStructureCreated/OnStructureDestroyed hooks that MatchingStructure
  // invokes from its constructor and destructor).
  uint64_t structures_live = 0;
  uint64_t structures_live_peak = 0;
  // Approximate live/peak bytes of those structures (struct footprint,
  // slot headers and retained name/value text) — the paper's "storage
  // proportional to the relevant document" measured in bytes, not counts.
  obs::MemoryAccountant structure_memory;

  // Slot insertions, split into normal propagation (forward axes) and
  // optimistic propagation (backward axes).
  uint64_t propagations = 0;
  uint64_t optimistic_propagations = 0;

  // Allocation traffic served by the engine's pool arena this document
  // (bytes handed out by Allocate, recycled blocks counted every time) —
  // the heap traffic the arena absorbed. Set at EndDocument.
  uint64_t arena_bytes_allocated = 0;

  // Earliest answering: output items emitted before EndDocument (their
  // membership in the final result was proven mid-stream), and structures
  // whose slot/backref storage was eagerly returned to the arena once they
  // could no longer influence the result.
  uint64_t candidates_emitted_early = 0;
  uint64_t candidates_reclaimed = 0;

  double DiscardedFraction() const {
    return elements_total == 0
               ? 0.0
               : static_cast<double>(elements_discarded) /
                     static_cast<double>(elements_total);
  }

  // Creation/destruction hooks. Routing every MatchingStructure through
  // these (rather than ad-hoc updates at allocation sites) guarantees the
  // live count, byte accounting and both peaks stay consistent on every
  // creation path.
  void OnStructureCreated(uint64_t bytes) {
    ++structures_created;
    ++structures_live;
    if (structures_live > structures_live_peak) {
      structures_live_peak = structures_live;
    }
    structure_memory.Add(bytes);
  }
  void OnStructureDestroyed(uint64_t bytes) {
    --structures_live;
    structure_memory.Remove(bytes);
  }

  // Folds the stats into `registry` under `prefix`: monotone event counts
  // become counters (accumulating across documents on a long-lived
  // registry), point-in-time values become gauges. Call once per processed
  // document.
  void ToMetrics(obs::MetricsRegistry* registry,
                 const std::string& prefix = "xaos_engine_") const;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_ENGINE_STATS_H_
