// Counters the engine maintains while processing a document. These back the
// paper's storage claims (Table 3: fraction of elements discarded as not
// relevant) and the ablation benchmarks.

#ifndef XAOS_CORE_ENGINE_STATS_H_
#define XAOS_CORE_ENGINE_STATS_H_

#include <cstdint>

namespace xaos::core {

struct EngineStats {
  // Element start events seen (excluding the virtual root and synthetic
  // attribute/text nodes).
  uint64_t elements_total = 0;
  // Elements for which no matching-structure was created — either no x-node
  // label matched or the looking-for relevance filter rejected them
  // (Section 4.1). These contribute no storage.
  uint64_t elements_discarded = 0;

  uint64_t structures_created = 0;
  // Structures retracted by the undo mechanism (Section 4.3).
  uint64_t structures_undone = 0;
  // Currently allocated structures (maintained via destructor hooks).
  uint64_t structures_live = 0;
  uint64_t structures_live_peak = 0;

  // Slot insertions, split into normal propagation (forward axes) and
  // optimistic propagation (backward axes).
  uint64_t propagations = 0;
  uint64_t optimistic_propagations = 0;

  double DiscardedFraction() const {
    return elements_total == 0
               ? 0.0
               : static_cast<double>(elements_discarded) /
                     static_cast<double>(elements_total);
  }
};

}  // namespace xaos::core

#endif  // XAOS_CORE_ENGINE_STATS_H_
