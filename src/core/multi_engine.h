// Top-level query API: compile an XPath expression (possibly containing
// `or` / `|`) into a set of x-trees and evaluate them together over a
// single event stream, unioning the results (paper Section 5.2).

#ifndef XAOS_CORE_MULTI_ENGINE_H_
#define XAOS_CORE_MULTI_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "core/xaos_engine.h"
#include "dom/document.h"
#include "obs/timer.h"
#include "query/xtree.h"
#include "util/statusor.h"
#include "xml/sax_event.h"

namespace xaos::core {

// A compiled query: the original expression plus one x-tree per or-free
// disjunct. Queries are immutable and reusable across documents and
// evaluators.
class Query {
 public:
  // Parses and compiles `xpath`. `max_paths` bounds the or-expansion.
  static StatusOr<Query> Compile(std::string_view xpath, int max_paths = 64);

  // Wraps externally built x-trees (e.g. from query::Intersect).
  static Query FromTrees(std::vector<query::XTree> trees,
                         std::string expression = "");

  const std::string& expression() const { return expression_; }
  const std::vector<query::XTree>& trees() const { return *trees_; }

 private:
  Query() = default;

  std::string expression_;
  // Shared so evaluators can keep the trees alive independently of the
  // Query object's lifetime.
  std::shared_ptr<const std::vector<query::XTree>> trees_;

  friend class StreamingEvaluator;
};

// Evaluates a compiled query over one document at a time. The evaluator is
// itself a ContentHandler: feed it parser or replayer events; one XaosEngine
// runs per disjunct. Reusable: each StartDocument resets all engines.
class StreamingEvaluator : public xml::ContentHandler {
 public:
  explicit StreamingEvaluator(const Query& query, EngineOptions options = {});

  void StartDocument() override;
  void EndDocument() override;
  void StartElement(std::string_view name,
                    const std::vector<xml::Attribute>& attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;

  // First engine error, if any.
  Status status() const;
  // True as soon as any disjunct's match is guaranteed (usable mid-stream;
  // see XaosEngine::match_confirmed).
  bool MatchConfirmed() const;
  // Union of the disjuncts' results (document order, deduplicated). Valid
  // after EndDocument.
  QueryResult Result() const;
  // Sum of the per-engine statistics.
  EngineStats AggregateStats() const;
  // Folds AggregateStats() into `registry` (see EngineStats::ToMetrics).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  const std::vector<std::unique_ptr<XaosEngine>>& engines() const {
    return engines_;
  }

 private:
  std::shared_ptr<const std::vector<query::XTree>> trees_;
  std::vector<std::unique_ptr<XaosEngine>> engines_;
  // Per-event cost sampling into the default registry's
  // `xaos_engine_event_ns` histogram; armed at construction when obs is
  // enabled, otherwise a single dead branch per event.
  bool sample_events_ = false;
  obs::EventCostSampler sampler_{nullptr};
};

// One-shot convenience: parse `xml_text` and evaluate `xpath` over it in a
// single streaming pass.
StatusOr<QueryResult> EvaluateStreaming(std::string_view xpath,
                                        std::string_view xml_text,
                                        EngineOptions options = {});

// Evaluates `xpath` over an already-built document by replaying it as
// events (the paper's χαoς(DOM) configuration).
StatusOr<QueryResult> EvaluateOnDocument(std::string_view xpath,
                                         const dom::Document& document,
                                         EngineOptions options = {});

}  // namespace xaos::core

#endif  // XAOS_CORE_MULTI_ENGINE_H_
