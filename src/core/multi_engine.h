// Top-level query API: compile an XPath expression (possibly containing
// `or` / `|`) into a set of x-trees and evaluate them together over a
// single event stream, unioning the results (paper Section 5.2) — plus the
// multi-query evaluator that runs many independent subscriptions over one
// stream through the label-indexed dispatch fleet (engine_fleet.h).

#ifndef XAOS_CORE_MULTI_ENGINE_H_
#define XAOS_CORE_MULTI_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engine_fleet.h"
#include "core/result.h"
#include "core/shared_index.h"
#include "core/xaos_engine.h"
#include "dom/document.h"
#include "obs/timer.h"
#include "query/projection.h"
#include "query/xtree.h"
#include "util/statusor.h"
#include "xml/sax_event.h"

namespace xaos::core {

// A compiled query: the original expression plus one x-tree per or-free
// disjunct. Queries are immutable and reusable across documents and
// evaluators.
class Query {
 public:
  // Parses and compiles `xpath`. `max_paths` bounds the or-expansion.
  static StatusOr<Query> Compile(std::string_view xpath, int max_paths = 64);

  // Wraps externally built x-trees (e.g. from query::Intersect).
  static Query FromTrees(std::vector<query::XTree> trees,
                         std::string expression = "");

  const std::string& expression() const { return expression_; }
  const std::vector<query::XTree>& trees() const { return *trees_; }

 private:
  Query() = default;

  std::string expression_;
  // Shared so evaluators can keep the trees alive independently of the
  // Query object's lifetime.
  std::shared_ptr<const std::vector<query::XTree>> trees_;

  friend class StreamingEvaluator;
  friend class MultiQueryEvaluator;
};

// Evaluates a compiled query over one document at a time. The evaluator is
// itself a ContentHandler: feed it parser or replayer events; one XaosEngine
// runs per disjunct, dispatched through an EngineFleet (shared document
// cursor + label index). Reusable: each StartDocument resets all engines.
class StreamingEvaluator : public xml::ContentHandler {
 public:
  explicit StreamingEvaluator(const Query& query, EngineOptions options = {});

  void StartDocument() override;
  void EndDocument() override;
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;
  void SkippedSubtree(const xml::SkipReport& report) override;

  // Batched dispatch: replays a whole captured EventBatch through the
  // fleet's devirtualized run loop (EngineFleet::ReplayRun), handling any
  // document-boundary events the batch contains. Byte-identical to feeding
  // the same events through the per-event ContentHandler interface.
  // `attr_scratch` is per-caller reusable attribute-view storage.
  void ReplayBatch(const xml::EventBatch& batch,
                   std::vector<xml::AttributeView>* attr_scratch);

  // True when any engine reads character data or end-element names; false
  // lets a batching producer skip copying those payloads (lean capture).
  bool wants_text_events() { return fleet_.wants_text_events(); }

  // Document-projection filter derived from the query's x-dags at
  // construction, for installation into xml::ParserOptions. The returned
  // pointer stays valid for the evaluator's lifetime; its per-document
  // state resets through StartDocument/AbortDocument. Returns nullptr when
  // analysis degraded to keep-all — no subtree could ever be skipped, so
  // callers install no filter and the parser pays zero per-tag overhead.
  xml::ProjectionFilter* projection_filter() {
    return gate_.spec().keep_all ? nullptr : &gate_;
  }
  const query::ProjectionSpec& projection_spec() const { return gate_.spec(); }

  // Abandons the current document after a mid-stream producer failure
  // (parse error, limit rejection, I/O error). `cause` is what status()
  // reports until the next StartDocument; the evaluator stays reusable
  // for further documents.
  void AbortDocument(const Status& cause);

  // The abort cause of an abandoned document, else the first engine error.
  Status status() const;
  // True as soon as any disjunct's match is guaranteed (usable mid-stream;
  // see XaosEngine::match_confirmed).
  bool MatchConfirmed() const;
  // Union of the disjuncts' results (document order, deduplicated). Valid
  // after EndDocument.
  QueryResult Result() const;
  // Sum of the per-engine statistics.
  EngineStats AggregateStats() const;
  // Folds AggregateStats() into `registry` (see EngineStats::ToMetrics).
  void ExportMetrics(obs::MetricsRegistry* registry) const;
  // Engine deliveries the dispatch index suppressed (cumulative).
  uint64_t engines_skipped() const { return fleet_.engines_skipped(); }

  const std::vector<std::unique_ptr<XaosEngine>>& engines() const {
    return engines_;
  }

 private:
  // Runs one event dispatch, charging a sampled subset of events to the
  // default registry's `xaos_engine_event_ns` histogram.
  template <typename Fn>
  void TimedDispatch(Fn&& fn) {
    if (sample_events_ && sampler_.ShouldSample()) {
      uint64_t start = obs::NowNs();
      fn();
      sampler_.RecordNs(obs::NowNs() - start);
      return;
    }
    fn();
  }

  std::shared_ptr<const std::vector<query::XTree>> trees_;
  std::vector<std::unique_ptr<XaosEngine>> engines_;
  EngineFleet fleet_;
  query::ProjectionGate gate_;
  obs::MetricsRegistry* registry_ = nullptr;  // EngineOptions::metrics_registry
  Status abort_status_;  // non-OK while the last document was abandoned
  // Per-event cost sampling into the default registry's
  // `xaos_engine_event_ns` histogram; armed at construction when obs is
  // enabled, otherwise a single dead branch per event.
  bool sample_events_ = false;
  obs::EventCostSampler sampler_{nullptr};
  uint64_t doc_ordinal_ = 0;   // documents started (flight attribution)
  uint64_t doc_begin_ns_ = 0;  // StartDocument timestamp when observing
};

// Evaluates many compiled queries ("subscriptions") over one event stream
// in a single pass — the publish/subscribe configuration. Three backends,
// chosen per subscription at AddQuery, all byte-identical to running one
// StreamingEvaluator per query:
//
//   * shared:  queries whose x-dags are linear forward chains merge into
//     one hash-consed automaton (core/shared_index.h) — per-event cost
//     scales with distinct query structure, not subscription count;
//   * engine:  everything else runs one XaosEngine per disjunct behind the
//     label-indexed EngineFleet (also the differential oracle for the
//     shared backend, selected by EngineOptions::enable_shared_index);
//   * alias:   a byte-identical repeat of an earlier expression adds no
//     matching state at all — verdicts fan out from the first copy.
class MultiQueryEvaluator : public xml::ContentHandler {
 public:
  explicit MultiQueryEvaluator(EngineOptions options = {});

  // Registers a subscription and returns its index (stable; used to read
  // per-query results). All queries must be added before StartDocument.
  // `label` names the subscription in exported latency series
  // (`xaos_sub_match_latency_ns{subscription="<label>"}`); empty derives
  // "q<index>".
  size_t AddQuery(const Query& query, std::string_view label = {});
  size_t query_count() const { return queries_.size(); }
  const std::string& query_label(size_t q) const { return queries_[q].label; }

  // Shard index stamped on this evaluator's flight-recorder spans (set by
  // ParallelFleet; -1 = not sharded).
  void set_flight_shard(int shard) { flight_shard_ = shard; }

  void StartDocument() override;
  void EndDocument() override;
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;
  void SkippedSubtree(const xml::SkipReport& report) override;

  // Batched dispatch: replays a whole captured EventBatch through the
  // fleet's devirtualized run loop; see StreamingEvaluator::ReplayBatch.
  void ReplayBatch(const xml::EventBatch& batch,
                   std::vector<xml::AttributeView>* attr_scratch);

  // True when any engine reads character data or end-element names; false
  // lets a batching producer skip copying those payloads (lean capture).
  // The shared automaton never consumes text (shareable queries carry no
  // predicates or captures), so only per-engine subscriptions count.
  bool wants_text_events() { return fleet_.wants_text_events(); }

  // Document-projection filter covering the union of all subscriptions
  // added so far (rebuilt lazily when queries were added since the last
  // call). Install via xml::ParserOptions::projection_filter; valid for the
  // evaluator's lifetime. Returns nullptr when the union degraded to
  // keep-all, so callers skip the per-tag filter overhead entirely.
  xml::ProjectionFilter* projection_filter();
  const query::ProjectionSpec& projection_spec() const { return gate_.spec(); }

  // Abandons the current document after a mid-stream producer failure; see
  // StreamingEvaluator::AbortDocument. The evaluator stays reusable.
  void AbortDocument(const Status& cause);

  // The abort cause of an abandoned document, else the first engine error.
  Status status() const;
  // Whether query `q` matched. Valid after EndDocument.
  bool Matched(size_t q) const;
  // True as soon as query `q`'s match is guaranteed (usable mid-stream).
  bool MatchConfirmed(size_t q) const;
  // Query `q`'s result, disjuncts unioned. Valid after EndDocument.
  QueryResult Result(size_t q) const;

  // Sum of all engines' statistics.
  EngineStats AggregateStats() const;
  void ExportMetrics(obs::MetricsRegistry* registry) const;
  uint64_t engines_skipped() const { return fleet_.engines_skipped(); }
  size_t engine_count() const { return engines_.size(); }

  // --- shared-backend introspection (tests, benches, obs) ---
  // Subscriptions routed through the shared automaton (aliases of shared
  // subscriptions included).
  size_t shared_subscription_count() const { return shared_subscriptions_; }
  // Subscriptions that are byte-identical repeats of an earlier expression.
  size_t alias_count() const { return alias_subscriptions_; }
  // Merged-automaton states, including its root state (0 until the index
  // is built by the first StartDocument).
  size_t shared_state_count() const {
    return shared_index_ != nullptr ? shared_index_->state_count() : 0;
  }
  // The shared matcher (null until the first StartDocument builds it);
  // tests use it to pin flat-stepping limits and read step-cache counters.
  SharedMatcher* shared_matcher_for_test() { return shared_matcher_.get(); }

 private:
  struct QuerySlot {
    // Which matching structure answers for this subscription.
    enum class Backend : uint8_t { kEngine, kShared, kAlias };

    std::shared_ptr<const std::vector<query::XTree>> trees;
    Backend backend = Backend::kEngine;
    size_t begin = 0;        // kEngine: engines occupy [begin, end)
    size_t end = 0;
    uint32_t shared_id = 0;  // kShared: subscription id in the shared index
    size_t alias_of = 0;     // kAlias: canonical slot index
    std::string label;
    // Per-subscription latency series, resolved lazily on first matching
    // document (pointers are stable for the registry's lifetime).
    obs::Histogram* match_latency = nullptr;
    obs::Histogram* first_match = nullptr;
  };

  // The registry latency/high-water series report into.
  obs::MetricsRegistry& metrics_registry() const;
  // Once per document with obs enabled: O(queries + engines) fold of match
  // latency, time-to-first-match and buffered-candidate/arena high-water
  // marks, plus the flight recorder's document span.
  void FinishDocumentObservability();
  // Whether slot `q` matched this document and when the match was first
  // confirmed (0 = unknown), resolving aliases and backends.
  bool SlotMatched(size_t q, uint64_t* confirm_ns) const;
  // (Re)builds the shared index + matcher when subscriptions were added
  // since the last build; attaches the matcher to the fleet.
  void EnsureSharedIndex();
  // Folds shared-index gauges and the dispatch-work-saved counter into
  // `registry`.
  void ExportSharedMetrics(obs::MetricsRegistry* registry) const;

  template <typename Fn>
  void TimedDispatch(Fn&& fn) {
    if (sample_events_ && sampler_.ShouldSample()) {
      uint64_t start = obs::NowNs();
      fn();
      sampler_.RecordNs(obs::NowNs() - start);
      return;
    }
    fn();
  }

  EngineOptions options_;
  std::vector<QuerySlot> queries_;
  std::vector<std::unique_ptr<XaosEngine>> engines_;
  EngineFleet fleet_;
  // Shared-prefix backend: the builder accumulates shareable subscriptions
  // at AddQuery; the index/matcher are (re)built lazily at StartDocument.
  bool shared_enabled_ = false;
  SharedIndexBuilder shared_builder_;
  std::unique_ptr<SharedIndex> shared_index_;
  std::unique_ptr<SharedMatcher> shared_matcher_;
  size_t shared_built_for_ = 0;  // builder sub count the index covers
  size_t shared_subscriptions_ = 0;
  size_t alias_subscriptions_ = 0;
  // expression -> canonical slot index, for byte-identical dedupe.
  std::unordered_map<std::string, size_t> by_expression_;
  // Last exported cumulative dispatch-saved value (counter delta base).
  mutable uint64_t dispatch_saved_exported_ = 0;
  query::ProjectionGate gate_;
  size_t gate_built_for_ = 0;  // query count the gate's spec unions over
  Status abort_status_;  // non-OK while the last document was abandoned
  bool sample_events_ = false;
  obs::EventCostSampler sampler_{nullptr};
  uint64_t doc_ordinal_ = 0;   // documents started (flight attribution)
  uint64_t doc_begin_ns_ = 0;  // StartDocument timestamp when observing
  int flight_shard_ = -1;
};

// One-shot convenience: parse `xml_text` and evaluate `xpath` over it in a
// single streaming pass.
StatusOr<QueryResult> EvaluateStreaming(std::string_view xpath,
                                        std::string_view xml_text,
                                        EngineOptions options = {});

// Evaluates `xpath` over an already-built document by replaying it as
// events (the paper's χαoς(DOM) configuration).
StatusOr<QueryResult> EvaluateOnDocument(std::string_view xpath,
                                         const dom::Document& document,
                                         EngineOptions options = {});

}  // namespace xaos::core

#endif  // XAOS_CORE_MULTI_ENGINE_H_
