// Lightweight descriptors of document nodes retained by the engine.
//
// χαoς stores information only for the (few) document nodes that are
// relevant to the query (paper Section 6.1, Table 3), so these records are
// kept per matching-structure rather than per document node.

#ifndef XAOS_CORE_ELEMENT_INFO_H_
#define XAOS_CORE_ELEMENT_INFO_H_

#include <cstdint>
#include <string>

#include "query/xtree.h"

namespace xaos::core {

// Document-order ordinal of a node; the virtual root is 0. The paper's
// id(·) function (Section 2.1).
using ElementId = uint32_t;

struct ElementInfo {
  ElementId id = 0;
  // Event id of the parent node (0 for the virtual root itself).
  ElementId parent_id = 0;
  // Ordinal among *element* start events, in document order (the virtual
  // root is 0, the document element 1, ...). Matches the element ids the
  // paper uses in Figure 2, and is comparable across event sources that
  // differ in whether they surface attribute/text nodes. For attribute and
  // text nodes this is the owning element's ordinal.
  uint32_t ordinal = 0;
  int level = 0;                  // paper's level(·): virtual root is 0
  query::DocNodeKind kind = query::DocNodeKind::kElement;
  std::string name;               // element tag / attribute name; empty else
  std::string value;              // attribute value / text content

  // Debug rendering in the paper's style, e.g. "Y(2)@2".
  std::string ToString() const;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_ELEMENT_INFO_H_
