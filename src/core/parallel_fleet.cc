#include "core/parallel_fleet.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_set>

#include "core/shared_index.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace xaos::core {
namespace {

// Load estimate for assigning a query to a shard. Every x-node costs one
// unit; features that defeat the label index — wildcard tests (the engine
// joins the always-dispatch set) and sibling axes (dense stack: every
// element is delivered) — cost extra because such engines see every event.
uint64_t EstimateQueryCost(const Query& query) {
  uint64_t cost = 0;
  for (const query::XTree& tree : query.trees()) {
    cost += static_cast<uint64_t>(tree.size());
    for (query::XNodeId id = 0; id < tree.size(); ++id) {
      const query::XNode& node = tree.node(id);
      if (node.test.kind == query::NodeTestSpec::Kind::kAnyElement ||
          node.test.kind == query::NodeTestSpec::Kind::kAnyAttribute) {
        cost += 8;
      }
      if (node.incoming_axis == xpath::Axis::kFollowingSibling ||
          node.incoming_axis == xpath::Axis::kPrecedingSibling) {
        cost += 8;
      }
    }
  }
  return cost;
}

}  // namespace

ParallelFleet::ParallelFleet(ParallelFleetOptions options)
    : options_(options),
      batcher_(this, options.max_batch_events, options.max_batch_text_bytes) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_batch_events == 0) options_.max_batch_events = 1;
  if (options_.ring_capacity < 2) options_.ring_capacity = 2;
  batch_policy_.base = options_.max_batch_events;
  batch_policy_.cap =
      std::max(options_.max_batch_events, options_.max_batch_events_cap);
  batch_policy_.decay_publishes =
      std::max<size_t>(1, options_.adaptive_decay_publishes);
  batch_policy_.current = batch_policy_.base;
}

ParallelFleet::~ParallelFleet() {
  stop_.store(true, std::memory_order_seq_cst);
  for (Worker& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker.park_mu);
      worker.park_cv.notify_one();
    }
    if (worker.thread.joinable()) worker.thread.join();
  }
}

size_t ParallelFleet::AddQuery(const Query& query, std::string_view label) {
  XAOS_CHECK(!finalized_) << "AddQuery after the first StartDocument";
  queries_.push_back(query);
  // Default labels use the fleet-wide index: shard-local defaults would
  // collide across shards in the shared metrics registry.
  labels_.push_back(label.empty() ? "q" + std::to_string(queries_.size() - 1)
                                  : std::string(label));
  assignments_.push_back(Assignment{});
  return queries_.size() - 1;
}

void ParallelFleet::Finalize() {
  if (finalized_) return;
  finalized_ = true;

  size_t worker_count = static_cast<size_t>(options_.num_workers);
  if (!queries_.empty()) worker_count = std::min(worker_count, queries_.size());

  for (size_t i = 0; i < worker_count; ++i) {
    Worker& worker = workers_.emplace_back(options_.ring_capacity);
    worker.index = static_cast<int>(i);
    worker.evaluator =
        std::make_unique<MultiQueryEvaluator>(options_.engine_options);
    worker.evaluator->set_flight_shard(worker.index);
  }

  // Greedy longest-processing-time assignment: heaviest queries first, each
  // onto the shard where it finishes cheapest. For queries the shard
  // evaluators route to the shared automaton, "cheapest" is the *marginal*
  // cost against the shard's already-planned trie — a duplicate expression
  // is an alias (one unit), a shareable chain costs one unit per state the
  // shard does not already hold — so structurally similar subscriptions
  // gravitate to the same shard instead of scattering their prefixes.
  const EngineOptions& eo = options_.engine_options;
  const bool shared_enabled = eo.enable_shared_index &&
                              !eo.capture_output_subtrees &&
                              eo.max_live_structures == 0;
  std::vector<SharedIndexBuilder> planners(workers_.size());
  std::vector<std::unordered_set<std::string>> planned_expressions(
      workers_.size());
  std::vector<size_t> order(queries_.size());
  std::vector<uint64_t> costs(queries_.size());
  std::vector<bool> shareable(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    order[q] = q;
    costs[q] = EstimateQueryCost(queries_[q]);
    shareable[q] =
        shared_enabled && SharedIndexBuilder::Shareable(queries_[q].trees());
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return costs[a] > costs[b];
  });
  auto marginal_cost = [&](size_t q, size_t s) -> uint64_t {
    const std::string& expr = queries_[q].expression();
    if (!expr.empty() && planned_expressions[s].count(expr) > 0) return 1;
    if (shareable[q]) {
      return 1 + static_cast<uint64_t>(
                     planners[s].MarginalStates(queries_[q].trees()));
    }
    return costs[q];
  };
  for (size_t q : order) {
    size_t best = 0;
    uint64_t best_total =
        workers_[0].stats.cost_estimate + marginal_cost(q, 0);
    for (size_t s = 1; s < workers_.size(); ++s) {
      uint64_t total = workers_[s].stats.cost_estimate + marginal_cost(q, s);
      if (total < best_total) {
        best = s;
        best_total = total;
      }
    }
    Worker& shard = workers_[best];
    assignments_[q].shard = best;
    assignments_[q].local_index =
        shard.evaluator->AddQuery(queries_[q], labels_[q]);
    const std::string& expr = queries_[q].expression();
    bool duplicate = !expr.empty() && !planned_expressions[best].insert(expr).second;
    if (shareable[q] && !duplicate) {
      planners[best].AddSubscription(queries_[q].trees());
    }
    shard.stats.cost_estimate = best_total;
    shard.stats.query_count += 1;
  }
  for (Worker& worker : workers_) {
    worker.stats.engine_count = worker.evaluator->engine_count();
    // The worker thread is spawned after the shard's evaluator is fully
    // built, so thread creation publishes the engine state to it.
    worker.thread = std::thread(&ParallelFleet::WorkerLoop, this, &worker);
  }
}

// --- producer side ----------------------------------------------------------

xml::EventBatch* ParallelFleet::AcquireBatch() {
  XAOS_CHECK(current_ == nullptr);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!free_batches_.empty()) {
      current_ = free_batches_.back();
      free_batches_.pop_back();
    }
  }
  if (current_ == nullptr) {
    std::lock_guard<std::mutex> lock(pool_mu_);
    current_ = &all_batches_.emplace_back();
  }
  current_->batch.Clear();
  return &current_->batch;
}

void ParallelFleet::PublishBatch(xml::EventBatch* batch) {
  XAOS_CHECK(current_ != nullptr && batch == &current_->batch);
  PooledBatch* pooled = current_;
  current_ = nullptr;
  // The countdown is written before the ring push; the push's release store
  // publishes both it and the batch contents to each consumer.
  pooled->remaining.store(static_cast<uint32_t>(workers_.size()),
                          std::memory_order_relaxed);
  ++batches_published_;
  // The sequence travels with the batch so each worker's replay span can
  // reference the dispatch span that produced it (cross-thread linkage).
  pooled->batch.set_sequence(batches_published_);
  obs::flight::ScopedSpan dispatch_span(obs::flight::SpanKind::kDispatch);
  if (dispatch_span.active()) {
    dispatch_span.span()->batch = batches_published_;
    dispatch_span.span()->doc = documents_ + documents_aborted_ + 1;
    dispatch_span.span()->value =
        static_cast<int64_t>(pooled->batch.event_count());
  }
  bool stalled = false;
  for (Worker& worker : workers_) {
    stalled = PushBlocking(&worker, pooled) || stalled;
  }
  if (options_.adaptive_batching) {
    // The stall itself is the coalescing signal: by the time the producer
    // got through, the rings were saturated — ship bigger batches until the
    // pressure clears (ROADMAP 5a).
    batcher_.set_max_events(batch_policy_.OnPublish(stalled));
  }
}

bool ParallelFleet::PushBlocking(Worker* worker, PooledBatch* batch) {
  bool stalled = false;
  if (!worker->ring.TryPush(batch)) {
    stalled = true;
    ++publish_stalls_;
    // Clock reads live on the stall path only; an uncontended publish
    // never touches the clock.
    const uint64_t stall_begin_ns = obs::NowNs();
    do {
      std::this_thread::yield();
    } while (!worker->ring.TryPush(batch));
    const uint64_t stall_ns = obs::NowNs() - stall_begin_ns;
    publish_stall_ns_ += stall_ns;
    worker->stats.publish_stall_ns += stall_ns;
    if (obs::flight::Active()) {
      obs::flight::Span span;
      span.kind = obs::flight::SpanKind::kPublishStall;
      span.begin_ns = stall_begin_ns;
      span.end_ns = stall_begin_ns + stall_ns;
      span.batch = batch->batch.sequence();
      span.shard = worker->index;
      obs::flight::Emit(span);
    }
  }
  // Wake the consumer if it parked on an empty ring. The seq_cst fence
  // pairing (push above, parked store in PopBlocking) plus the consumer's
  // bounded wait make a missed hint harmless.
  if (worker->parked.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(worker->park_mu);
    worker->park_cv.notify_one();
  }
  return stalled;
}

void ParallelFleet::StartDocument() {
  Finalize();
  if (obs::flight::Active()) obs::flight::SetCurrentThreadName("parse");
  // Lean capture when no shard's engines read character data or
  // end-element names: the shared ring then carries fixed-size records for
  // those events instead of copies of the document's text.
  bool wants_text = false;
  for (Worker& worker : workers_) {
    wants_text = wants_text || worker.evaluator->wants_text_events();
  }
  batcher_.set_lean_payload(!wants_text);
  document_status_ = Status::Ok();
  gate_.Reset();
  batcher_.StartDocument();
}

void ParallelFleet::AbortDocument(const Status& cause) {
  document_status_ =
      cause.ok() ? InternalError("document aborted without a cause") : cause;
  gate_.Reset();
  if (!finalized_ || workers_.empty()) return;  // nothing is running yet
  ++documents_aborted_;
  batcher_.AbortDocument();
  {
    std::unique_lock<std::mutex> lock(doc_mu_);
    doc_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
    workers_done_ = 0;
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_parallel_documents_aborted_total")
        ->Increment();
  }
}

void ParallelFleet::StartElement(const xml::QName& name,
                                 xml::AttributeSpan attributes) {
  batcher_.StartElement(name, attributes);
}

void ParallelFleet::EndElement(std::string_view name) {
  batcher_.EndElement(name);
}

void ParallelFleet::Characters(std::string_view text) {
  batcher_.Characters(text);
}

void ParallelFleet::SkippedSubtree(const xml::SkipReport& report) {
  // Ship the skip through the batch stream in event order: each shard's
  // replay advances its own DocumentCursor by the same amount.
  batcher_.SkippedSubtree(report);
}

xml::ProjectionFilter* ParallelFleet::projection_filter() {
  Finalize();  // the query set is fixed once a filter is handed out
  if (!gate_built_) {
    gate_built_ = true;
    if (options_.engine_options.capture_output_subtrees) {
      gate_.SetSpec(
          query::ProjectionSpec::KeepAll("subtree capture needs every event"));
    } else {
      query::ProjectionSpec spec;
      for (const Query& query : queries_) {
        spec.UnionWith(query::ProjectionSpec::Analyze(query.trees()));
        if (spec.keep_all) break;
      }
      gate_.SetSpec(std::move(spec));
    }
  }
  return gate_.spec().keep_all ? nullptr : &gate_;
}

void ParallelFleet::EndDocument() {
  batcher_.EndDocument();  // publishes the final (kEndDocument) batch
  {
    std::unique_lock<std::mutex> lock(doc_mu_);
    doc_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
    workers_done_ = 0;
  }
  ++documents_;
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("xaos_parallel_documents_total")->Increment();
    ExportMetrics(&registry);
  }
}

// --- worker side ------------------------------------------------------------

ParallelFleet::PooledBatch* ParallelFleet::PopBlocking(Worker* worker) {
  PooledBatch* batch = nullptr;
  // First-park timestamp; zero while the spin loop has not yet starved. The
  // clock is only read once the worker is already idle, so the hot pop path
  // stays clock-free. The resulting park span runs from the first park to
  // the next successful pop (includes inter-document idle; see
  // ParallelShardStats::park_wait_ns).
  uint64_t park_begin_ns = 0;
  auto account_park = [&] {
    if (park_begin_ns == 0) return;
    const uint64_t now = obs::NowNs();
    worker->stats.park_wait_ns += now - park_begin_ns;
    worker->stats.parks += 1;
    if (obs::flight::Active()) {
      obs::flight::Span span;
      span.kind = obs::flight::SpanKind::kParkWait;
      span.begin_ns = park_begin_ns;
      span.end_ns = now;
      span.shard = worker->index;
      obs::flight::Emit(span);
    }
  };
  for (;;) {
    // Spin briefly: under load the producer refills the ring well within
    // this window and the worker never touches the mutex.
    for (int spin = 0; spin < 2048; ++spin) {
      if (worker->ring.TryPop(&batch)) {
        account_park();
        return batch;
      }
      if (stop_.load(std::memory_order_relaxed)) {
        // Drain-then-exit: only quit on a confirmed-empty ring. Shutdown
        // parking is not accounted — it is teardown, not starvation.
        if (!worker->ring.TryPop(&batch)) return nullptr;
        return batch;
      }
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(worker->park_mu);
    worker->parked.store(true, std::memory_order_seq_cst);
    if (park_begin_ns == 0) park_begin_ns = obs::NowNs();
    if (worker->ring.TryPop(&batch)) {
      worker->parked.store(false, std::memory_order_seq_cst);
      account_park();
      return batch;
    }
    // Bounded wait: a lost wakeup only costs one timeout period.
    worker->park_cv.wait_for(lock, std::chrono::milliseconds(1));
    worker->parked.store(false, std::memory_order_seq_cst);
  }
}

void ParallelFleet::ReleaseBatch(PooledBatch* batch) {
  if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(pool_mu_);
    free_batches_.push_back(batch);
  }
}

void ParallelFleet::WorkerLoop(Worker* worker) {
  for (;;) {
    PooledBatch* batch = PopBlocking(worker);
    if (batch == nullptr) return;
    // An abort marker's events are a partial capture of a failed document:
    // skip them (the shard's engines are reset by the next StartDocument)
    // and acknowledge through the same latch a document end uses.
    bool aborts_document = batch->batch.aborts_document();
    if (!aborts_document) {
      if (obs::flight::Active() && !worker->flight_named) {
        // Named lazily on the worker's own thread (SetCurrentThreadName is
        // a no-op before the recorder is armed).
        worker->flight_named = true;
        obs::flight::SetCurrentThreadName("worker/" +
                                          std::to_string(worker->index));
      }
      if (options_.engine_options.enable_batched_dispatch) {
        // Devirtualized batch loop; ReplayBatch emits the kReplay span.
        worker->evaluator->ReplayBatch(batch->batch, &worker->attr_scratch);
      } else {
        obs::flight::ScopedSpan replay_span(obs::flight::SpanKind::kReplay);
        if (replay_span.active()) {
          replay_span.span()->batch = batch->batch.sequence();
          replay_span.span()->shard = worker->index;
          replay_span.span()->doc = worker->docs_completed + 1;
          replay_span.span()->value =
              static_cast<int64_t>(batch->batch.event_count());
        }
        batch->batch.Replay(worker->evaluator.get(), &worker->attr_scratch);
      }
      worker->stats.batches_consumed += 1;
      worker->stats.events_processed += batch->batch.event_count();
    }
    bool ends_document = batch->batch.ends_document();
    ReleaseBatch(batch);
    if (ends_document || aborts_document) {
      ++worker->docs_completed;
      std::lock_guard<std::mutex> lock(doc_mu_);
      ++workers_done_;
      doc_cv_.notify_all();
    }
  }
}

// --- results ----------------------------------------------------------------

Status ParallelFleet::status() const {
  if (!document_status_.ok()) return document_status_;
  for (const Worker& worker : workers_) {
    Status s = worker.evaluator->status();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

bool ParallelFleet::Matched(size_t q) const {
  const Assignment& a = assignments_[q];
  return workers_[a.shard].evaluator->Matched(a.local_index);
}

QueryResult ParallelFleet::Result(size_t q) const {
  const Assignment& a = assignments_[q];
  return workers_[a.shard].evaluator->Result(a.local_index);
}

std::vector<size_t> ParallelFleet::MatchedQueries() const {
  std::vector<size_t> matched;
  for (size_t q = 0; q < assignments_.size(); ++q) {
    if (Matched(q)) matched.push_back(q);
  }
  return matched;
}

EngineStats ParallelFleet::AggregateStats() const {
  // Every shard replays the whole document, so per-document event counts
  // are uniform across shards (keep the first); structure and arena
  // traffic accumulate, matching MultiQueryEvaluator's aggregation.
  EngineStats total;
  bool first = true;
  for (const Worker& worker : workers_) {
    EngineStats s = worker.evaluator->AggregateStats();
    if (first) {
      total = s;
      first = false;
      continue;
    }
    total.elements_discarded =
        std::min(total.elements_discarded, s.elements_discarded);
    total.structures_created += s.structures_created;
    total.structures_undone += s.structures_undone;
    total.structures_live += s.structures_live;
    total.structures_live_peak += s.structures_live_peak;
    total.structure_memory.live_bytes += s.structure_memory.live_bytes;
    total.structure_memory.peak_bytes += s.structure_memory.peak_bytes;
    total.propagations += s.propagations;
    total.optimistic_propagations += s.optimistic_propagations;
    total.arena_bytes_allocated += s.arena_bytes_allocated;
    total.candidates_emitted_early += s.candidates_emitted_early;
    total.candidates_reclaimed += s.candidates_reclaimed;
  }
  return total;
}

std::vector<ParallelShardStats> ParallelFleet::ShardStats() const {
  std::vector<ParallelShardStats> stats;
  stats.reserve(workers_.size());
  for (const Worker& worker : workers_) stats.push_back(worker.stats);
  return stats;
}

void ParallelFleet::ExportMetrics(obs::MetricsRegistry* registry) const {
  // The fleet's own tallies are cumulative, so exports are idempotent
  // gauges: re-exporting after every document never double-counts.
  registry->GetGauge("xaos_parallel_batches_published")
      ->Set(static_cast<int64_t>(batches_published_));
  registry->GetGauge("xaos_parallel_publish_stalls")
      ->Set(static_cast<int64_t>(publish_stalls_));
  registry->GetGauge("xaos_parallel_publish_stall_ns")
      ->Set(static_cast<int64_t>(publish_stall_ns_));
  registry->GetGauge("xaos_parallel_workers")
      ->Set(static_cast<int64_t>(workers_.size()));
  registry->GetGauge("xaos_parallel_batch_events_current")
      ->Set(static_cast<int64_t>(batch_policy_.current));
  registry->GetGauge("xaos_parallel_documents_aborted")
      ->Set(static_cast<int64_t>(documents_aborted_));
  for (size_t s = 0; s < workers_.size(); ++s) {
    const ParallelShardStats& stats = workers_[s].stats;
    std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    registry->GetGauge("xaos_parallel_shard_queries" + label)
        ->Set(static_cast<int64_t>(stats.query_count));
    registry->GetGauge("xaos_parallel_shard_batches_total" + label)
        ->Set(static_cast<int64_t>(stats.batches_consumed));
    registry->GetGauge("xaos_parallel_shard_events_total" + label)
        ->Set(static_cast<int64_t>(stats.events_processed));
    registry->GetGauge("xaos_parallel_shard_cost_estimate" + label)
        ->Set(static_cast<int64_t>(stats.cost_estimate));
    registry->GetGauge("xaos_parallel_shard_publish_stall_ns" + label)
        ->Set(static_cast<int64_t>(stats.publish_stall_ns));
    // park_wait_ns/parks are written by the worker thread; EndDocument's
    // doc latch ordered those writes before this read.
    registry->GetGauge("xaos_parallel_shard_park_wait_ns" + label)
        ->Set(static_cast<int64_t>(stats.park_wait_ns));
    registry->GetGauge("xaos_parallel_shard_parks" + label)
        ->Set(static_cast<int64_t>(stats.parks));
    registry->GetGauge("xaos_parallel_shard_shared_subscriptions" + label)
        ->Set(static_cast<int64_t>(
            workers_[s].evaluator->shared_subscription_count()));
    registry->GetGauge("xaos_parallel_shard_shared_states" + label)
        ->Set(static_cast<int64_t>(workers_[s].evaluator->shared_state_count()));
  }
}

}  // namespace xaos::core
