#include "core/matching_structure.h"

namespace xaos::core {

std::string ElementInfo::ToString() const {
  std::string out;
  switch (kind) {
    case query::DocNodeKind::kRoot:
      out = "Root";
      break;
    case query::DocNodeKind::kElement:
      out = name;
      break;
    case query::DocNodeKind::kAttribute:
      out = "@";
      out += name;
      break;
    case query::DocNodeKind::kText:
      out = "#text";
      break;
  }
  out += "(" + std::to_string(ordinal) + ")@" + std::to_string(level);
  return out;
}

MatchingStructure::MatchingStructure(query::XNodeId xnode, ElementInfo element,
                                     int slot_count, EngineStats* stats,
                                     util::PoolArena* arena)
    : xnode_(xnode),
      element_(std::move(element)),
      slots_(static_cast<size_t>(slot_count),
             SlotVector(util::PoolAllocator<MatchingPtr>(arena)),
             util::PoolAllocator<SlotVector>(arena)),
      confirmed_counts_(static_cast<size_t>(slot_count), 0,
                        util::PoolAllocator<int>(arena)),
      backrefs_(util::PoolAllocator<BackRef>(arena)),
      stats_(stats) {
  if (stats_ != nullptr) {
    // Engines allocate via allocate_shared, which co-locates a control block
    // of roughly two pointers plus the reference counts with the object.
    constexpr uint64_t kControlBlockBytes = 32;
    accounted_bytes_ =
        sizeof(MatchingStructure) + kControlBlockBytes +
        slots_.capacity() * sizeof(slots_[0]) +
        confirmed_counts_.capacity() * sizeof(confirmed_counts_[0]) +
        element_.name.capacity() + element_.value.capacity();
    stats_->OnStructureCreated(accounted_bytes_);
  }
}

MatchingStructure::~MatchingStructure() {
  if (stats_ != nullptr) stats_->OnStructureDestroyed(accounted_bytes_);
}

bool MatchingStructure::AllSlotsNonEmpty() const {
  for (int i = 0; i < slot_count(); ++i) {
    if (SlotEmpty(i)) return false;
  }
  return true;
}

bool MatchingStructure::AllSlotsConfirmed() const {
  for (int count : confirmed_counts_) {
    if (count == 0) return false;
  }
  return true;
}

void MatchingStructure::Link(const MatchingPtr& parent, int i,
                             MatchingPtr child, bool optimistic) {
  child->backrefs_.push_back({parent, i, optimistic});
  // A child confirmed before this link counts immediately; children
  // confirmed later bump the counter through the engine's cascade (which
  // walks the backrefs existing at confirmation time).
  if (child->confirmed_) parent->bump_confirmed(i);
  parent->slots_[static_cast<size_t>(i)].push_back(std::move(child));
}

void MatchingStructure::ReleaseStorage(util::PoolArena* arena,
                                       util::ArenaVector<BackRef>* detached) {
  for (SlotVector& slot : slots_) {
    SlotVector empty{util::PoolAllocator<MatchingPtr>(arena)};
    slot.swap(empty);
  }
  detached->swap(backrefs_);
}

bool MatchingStructure::RemoveFromSlot(int i, const MatchingStructure* child) {
  SlotVector& slot = slots_[static_cast<size_t>(i)];
  for (size_t k = 0; k < slot.size(); ++k) {
    if (slot[k].get() == child) {
      slot.erase(slot.begin() + static_cast<ptrdiff_t>(k));
      return slot.empty();
    }
  }
  return false;
}

}  // namespace xaos::core
