// Label-indexed multi-engine dispatch.
//
// A fleet drives N XaosEngines from one SAX stream. Instead of fanning
// every event out to every engine (O(N) per event), the fleet keeps an
// inverted index from interned label Symbols to the engines whose x-trees
// mention that label: a start-element only reaches (a) engines mentioning
// the element's tag or one of its attribute names, and (b) a small
// "always-dispatch" set — engines with wildcard node tests, sibling axes
// (they need a dense ancestor stack) or subtree capture (they need every
// event inside matched subtrees). End-element events mirror their start
// exactly; character events go to the engines that test text() or capture.
//
// Event numbering moves to one shared DocumentCursor: the fleet advances it
// for every event, attached engines read node ids/levels/ordinals from it,
// so the filtered view each engine sees produces byte-identical results to
// a naive fan-out (ids are uniform and monotone in document order).

#ifndef XAOS_CORE_ENGINE_FLEET_H_
#define XAOS_CORE_ENGINE_FLEET_H_

#include <cstdint>
#include <vector>

#include "core/document_cursor.h"
#include "core/xaos_engine.h"
#include "util/symbol_table.h"
#include "xml/event_batch.h"
#include "xml/sax_event.h"

namespace xaos::core {

class SharedMatcher;

class EngineFleet {
 public:
  EngineFleet() = default;
  EngineFleet(const EngineFleet&) = delete;
  EngineFleet& operator=(const EngineFleet&) = delete;

  // Registers an engine (not owned; must outlive the fleet's use). All
  // engines must be added before the first StartDocument.
  void AddEngine(XaosEngine* engine);

  // Attaches the shared-prefix subscription matcher (core/shared_index.h;
  // not owned, may be null). The matcher is its own index: it receives
  // every element event, after the shared cursor advanced, alongside the
  // label-filtered engine deliveries. Attach before StartDocument.
  void AttachSharedMatcher(SharedMatcher* matcher) { matcher_ = matcher; }

  // Classifies engines and builds the symbol index. Called lazily by
  // StartDocument; call explicitly after the last AddEngine if you want the
  // cost out of the timed path.
  void Finalize();

  // Event interface, mirroring ContentHandler (the owning evaluator
  // forwards its callbacks here).
  void StartDocument();
  void StartElement(const xml::QName& name, xml::AttributeSpan attributes);
  void EndElement(std::string_view name);
  void Characters(std::string_view text);
  void EndDocument();

  // A projection skip (xml/skip_scanner.h) replaced a subtree's events:
  // advance the shared cursor so downstream ids match a full parse. No
  // engine is notified — a skipped subtree is irrelevant to all of them.
  void SkipSubtree(const xml::SkipReport& report) {
    cursor_.SkipSubtree(report.node_ids, report.elements);
  }

  // Batched dispatch: replays batch events [begin, end) — which must not
  // contain document-boundary events — through one devirtualized loop.
  // Consecutive start-elements resolving to the same candidate-engine set
  // reuse a one-entry (symbol, attr-free) memo instead of re-walking the
  // label index; the shared matcher steps through its flat transition
  // tables. Results are byte-identical to feeding the same events through
  // the per-event interface. `attr_scratch` is per-caller reusable storage
  // for attribute views, as in EventBatch::Replay.
  void ReplayRun(const xml::EventBatch& batch, size_t begin, size_t end,
                 std::vector<xml::AttributeView>* attr_scratch);

  // Abandons the current document mid-stream (the producer failed): resets
  // the per-document dispatch state so the next StartDocument starts clean
  // instead of tripping the balance checks. Engine per-document state is
  // reset by that StartDocument, as always.
  void AbortDocument();

  size_t engine_count() const { return engines_.size(); }
  // True when at least one engine consumes character data or end-element
  // names (text predicates or subtree captures). When false, a batching
  // producer may capture those events lean — record without payload bytes
  // (xml::EventBatcher::set_lean_payload).
  bool wants_text_events() {
    Finalize();
    return !text_engines_.empty();
  }
  // Engine deliveries suppressed by the dispatch index so far (cumulative
  // across documents): for each element event, engines that did not
  // receive it.
  uint64_t engines_skipped() const { return engines_skipped_; }
  const DocumentCursor& cursor() const { return cursor_; }

 private:
  void Deliver(int idx) {
    if (stamps_[static_cast<size_t>(idx)] != stamp_) {
      stamps_[static_cast<size_t>(idx)] = stamp_;
      // An inert engine (stop_after_confirmed_match triggered) ignores
      // every further event of this document — don't dispatch to it. Its
      // skipped tail is folded back in at EndDocument.
      if (engines_[static_cast<size_t>(idx)]->inert()) return;
      delivered_scratch_.push_back(idx);
    }
  }
  void AddSymbolTargets(util::Symbol symbol, std::string_view name);

  std::vector<XaosEngine*> engines_;
  SharedMatcher* matcher_ = nullptr;
  bool finalized_ = false;

  DocumentCursor cursor_;

  // --- dispatch index (rebuilt by Finalize) ---
  std::vector<int> always_dispatch_;           // engine indices
  std::vector<int> text_engines_;              // want Characters events
  std::vector<std::vector<int>> by_symbol_;    // Symbol -> engine indices

  // --- per-event scratch ---
  // Stamp-based dedup: an engine can be reached through several symbols of
  // one event; it is delivered at most once.
  std::vector<uint32_t> stamps_;
  uint32_t stamp_ = 0;
  std::vector<int> delivered_scratch_;
  // Per-depth record of which engines received the StartElement, so the
  // EndElement reaches exactly the same set. Entries are reused across
  // elements at the same depth.
  std::vector<std::vector<int>> delivered_stack_;
  size_t depth_ = 0;

  uint64_t engines_skipped_ = 0;
  uint64_t engines_skipped_document_ = 0;

  // --- batched-dispatch run memo ---
  // One-entry memo over the last start-element's candidate set: consecutive
  // attribute-free elements with the same interned symbol resolve to the
  // same engines, so the label-index walk is skipped for the whole run.
  // Inertness is monotone within a document, so the memoized set is
  // re-filtered by inert() on reuse instead of being re-derived.
  bool memo_valid_ = false;
  util::Symbol memo_symbol_ = util::kInvalidSymbol;
  std::vector<int> memo_delivered_;
  // Length of the current same-candidate-set run, flushed into the
  // xaos_dispatch_run_length histogram at each run break / document end.
  uint64_t run_length_ = 0;
  void BreakRun();
};

}  // namespace xaos::core

#endif  // XAOS_CORE_ENGINE_FLEET_H_
