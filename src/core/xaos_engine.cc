#include "core/xaos_engine.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_set>
#include <utility>

#include "obs/timer.h"

namespace xaos::core {

using query::DocNodeKind;
using query::kRootXNode;
using query::NodeTestSpec;
using query::XNodeId;
using xpath::Axis;

XaosEngine::XaosEngine(const query::XTree* tree, EngineOptions options)
    : tree_(tree), xdag_(*tree), options_(options) {
  XAOS_CHECK(tree_->node(kRootXNode).test.kind == NodeTestSpec::Kind::kRoot)
      << "x-tree node 0 must test for the virtual root";

  int n = tree_->size();
  slot_in_parent_.assign(static_cast<size_t>(n), -1);
  is_output_.assign(static_cast<size_t>(n), false);
  // Name tests are interned once here (the x-tree compiler usually already
  // did — name_symbol — so this is a no-op hash at most once per x-node);
  // at event time candidate lookup is a flat index by the event's Symbol.
  auto add_named = [this](std::vector<std::vector<XNodeId>>* table,
                          const NodeTestSpec& spec, XNodeId v) {
    util::Symbol s = spec.name_symbol != util::kInvalidSymbol
                         ? spec.name_symbol
                         : util::SymbolTable::Global().Intern(spec.name);
    if (static_cast<size_t>(s) >= table->size()) {
      table->resize(static_cast<size_t>(s) + 1);
    }
    (*table)[static_cast<size_t>(s)].push_back(v);
    mentioned_symbols_.push_back(s);
  };
  for (XNodeId v = 0; v < n; ++v) {
    const query::XNode& node = tree_->node(v);
    is_output_[static_cast<size_t>(v)] = node.is_output;
    for (size_t i = 0; i < node.children.size(); ++i) {
      slot_in_parent_[static_cast<size_t>(node.children[i])] =
          static_cast<int>(i);
    }
    switch (node.test.kind) {
      case NodeTestSpec::Kind::kRoot:
        root_candidates_.push_back(v);
        break;
      case NodeTestSpec::Kind::kElement:
        add_named(&element_candidates_, node.test, v);
        break;
      case NodeTestSpec::Kind::kAnyElement:
        any_element_candidates_.push_back(v);
        break;
      case NodeTestSpec::Kind::kAttribute:
        add_named(&attribute_candidates_, node.test, v);
        wants_attributes_ = true;
        break;
      case NodeTestSpec::Kind::kAnyAttribute:
        any_attribute_candidates_.push_back(v);
        wants_attributes_ = true;
        break;
      case NodeTestSpec::Kind::kText:
        text_candidates_.push_back(v);
        wants_text_ = true;
        break;
    }
  }
  std::sort(mentioned_symbols_.begin(), mentioned_symbols_.end());
  mentioned_symbols_.erase(
      std::unique(mentioned_symbols_.begin(), mentioned_symbols_.end()),
      mentioned_symbols_.end());
  // Pre-sort every candidate list by topological rank so that self-edges
  // are resolved in order within a single event.
  auto by_rank = [this](XNodeId a, XNodeId b) {
    return xdag_.TopologicalRank(a) < xdag_.TopologicalRank(b);
  };
  std::sort(root_candidates_.begin(), root_candidates_.end(), by_rank);
  std::sort(any_element_candidates_.begin(), any_element_candidates_.end(),
            by_rank);
  std::sort(any_attribute_candidates_.begin(), any_attribute_candidates_.end(),
            by_rank);
  std::sort(text_candidates_.begin(), text_candidates_.end(), by_rank);
  for (auto& list : element_candidates_) {
    std::sort(list.begin(), list.end(), by_rank);
  }
  for (auto& list : attribute_candidates_) {
    std::sort(list.begin(), list.end(), by_rank);
  }
  open_by_xnode_.resize(static_cast<size_t>(n));

  // Boolean submatchings (Section 5.1): an x-node whose subtree contains no
  // output node never needs its matchings enumerated — confirmed ones are
  // counted and released.
  counted_subtree_.assign(static_cast<size_t>(n), false);
  if (options_.enable_boolean_submatchings) {
    // Post-order: a subtree is output-free if the node itself is not an
    // output and all child subtrees are output-free. Children have larger
    // ids than their parents (builder order), so a reverse scan works.
    for (XNodeId v = n - 1; v >= 0; --v) {
      bool output_free = !tree_->node(v).is_output;
      for (XNodeId w : tree_->node(v).children) {
        output_free = output_free && counted_subtree_[static_cast<size_t>(w)];
      }
      counted_subtree_[static_cast<size_t>(v)] = output_free;
    }
    counted_subtree_[kRootXNode] = false;
  }

  // Sibling support tables: a closed child structure must stay reachable
  // from its parent frame when its x-node (a) supports following-sibling
  // relevance, (b) is a preceding-sibling pull source, or (c) is the target
  // of deferred following-sibling propagation.
  sibling_listed_.assign(static_cast<size_t>(n), false);
  for (XNodeId v = 0; v < n; ++v) {
    for (const query::XDagEdge& edge : xdag_.outgoing(v)) {
      if (edge.axis == Axis::kFollowingSibling) {
        sibling_listed_[static_cast<size_t>(v)] = true;  // (a)
        wants_siblings_ = true;
      }
    }
    if (v != kRootXNode) {
      Axis incoming = tree_->node(v).incoming_axis;
      if (incoming == Axis::kPrecedingSibling) {
        sibling_listed_[static_cast<size_t>(v)] = true;  // (b)
        wants_siblings_ = true;
      }
      if (incoming == Axis::kFollowingSibling) {
        sibling_listed_[static_cast<size_t>(tree_->node(v).parent)] =
            true;  // (c)
        wants_siblings_ = true;
      }
    }
  }

  // Earliest answering: anchored structures can be emitted at any event.
  // Eager reclamation additionally requires a single output x-node (tuple
  // enumeration over several outputs walks the full structure graph) and
  // excludes x-nodes involved in sibling axes: sibling-listed structures
  // stay reachable from parent frames, and a structure with a
  // following-sibling child slot receives late entries through links that
  // reclamation would sever.
  earliest_ = options_.enable_earliest_emission;
  int output_count = 0;
  for (XNodeId v = 0; v < n; ++v) {
    if (is_output_[static_cast<size_t>(v)]) ++output_count;
  }
  reclaim_enabled_ = earliest_ && output_count == 1;
  reclaim_blocked_.assign(static_cast<size_t>(n), false);
  for (XNodeId v = 0; v < n; ++v) {
    if (sibling_listed_[static_cast<size_t>(v)]) {
      reclaim_blocked_[static_cast<size_t>(v)] = true;
    }
    for (XNodeId w : tree_->node(v).children) {
      if (tree_->node(w).incoming_axis == Axis::kFollowingSibling) {
        reclaim_blocked_[static_cast<size_t>(v)] = true;
      }
    }
  }
}

void XaosEngine::ResetDocumentState() {
  for (Frame& frame : stack_) {
    frame.xnodes.clear();
    frame.structures.clear();
    for (auto& list : frame.closed_by_xnode) list.clear();
    frame.capture_index = -1;
  }
  depth_ = 0;
  for (std::vector<MatchingPtr>& open : open_by_xnode_) open.clear();
  active_captures_.clear();
  captured_.clear();
  root_structure_.reset();
  live_root_ = nullptr;
  early_items_.clear();
  emitted_ids_.clear();
  done_ = false;
  early_match_ = false;
  confirm_ns_ = 0;
  inert_ = false;
  error_ = Status::Ok();
  stats_ = EngineStats{};
  result_ = QueryResult{};
  // Releasing the previous document's structures above returned their
  // blocks to the arena's free lists; from here on the delta of
  // bytes_allocated() is this document's allocation traffic.
  arena_baseline_ = arena_.bytes_allocated();
}

void XaosEngine::FailWith(Status status) {
  error_ = std::move(status);
  for (Frame& frame : stack_) {
    frame.xnodes.clear();
    frame.structures.clear();
    for (auto& list : frame.closed_by_xnode) list.clear();
    frame.capture_index = -1;
  }
  depth_ = 0;
  for (std::vector<MatchingPtr>& open : open_by_xnode_) open.clear();
  active_captures_.clear();
  root_structure_.reset();
  live_root_ = nullptr;
  early_items_.clear();
  emitted_ids_.clear();
}

const MatchingPtr* XaosEngine::FindMatch(const Frame& frame, XNodeId xnode) {
  for (size_t i = 0; i < frame.xnodes.size(); ++i) {
    if (frame.xnodes[i] == xnode) return &frame.structures[i];
  }
  return nullptr;
}

void XaosEngine::CollectCandidates(DocNodeKind kind, util::Symbol symbol,
                                   std::vector<XNodeId>* out) const {
  out->clear();
  auto append = [out](const std::vector<XNodeId>& list) {
    out->insert(out->end(), list.begin(), list.end());
  };
  // A symbol outside the table (or never interned at all) cannot equal any
  // interned query name — no candidates by name.
  auto named = [](const std::vector<std::vector<XNodeId>>& table,
                  util::Symbol s) -> const std::vector<XNodeId>* {
    if (s < 0 || static_cast<size_t>(s) >= table.size()) return nullptr;
    const std::vector<XNodeId>& list = table[static_cast<size_t>(s)];
    return list.empty() ? nullptr : &list;
  };
  switch (kind) {
    case DocNodeKind::kRoot:
      append(root_candidates_);
      break;
    case DocNodeKind::kElement: {
      if (const auto* list = named(element_candidates_, symbol)) append(*list);
      append(any_element_candidates_);
      break;
    }
    case DocNodeKind::kAttribute: {
      if (const auto* list = named(attribute_candidates_, symbol)) {
        append(*list);
      }
      append(any_attribute_candidates_);
      break;
    }
    case DocNodeKind::kText:
      append(text_candidates_);
      break;
  }
  // The per-kind lists are pre-sorted by topological rank; a merge is only
  // needed when two lists actually contributed.
  if (out->size() > 1) {
    std::sort(out->begin(), out->end(), [this](XNodeId a, XNodeId b) {
      return xdag_.TopologicalRank(a) < xdag_.TopologicalRank(b);
    });
  }
}

bool XaosEngine::IsRelevant(XNodeId v, const Frame& frame) const {
  for (const query::XDagEdge& edge : xdag_.incoming(v)) {
    XNodeId u = edge.from;
    switch (edge.axis) {
      case Axis::kChild:
      case Axis::kAttribute:
        // The would-be parent of the new node is the current stack top —
        // unless dispatch filtering skipped the real parent (sparse stack),
        // in which case the top is some higher ancestor. A skipped element
        // matched nothing, so the constraint is unsupported either way; the
        // parent-id guard makes that explicit.
        if (depth_ == 0 ||
            stack_[depth_ - 1].info.id != frame.info.parent_id ||
            FindMatch(stack_[depth_ - 1], u) == nullptr) {
          return false;
        }
        break;
      case Axis::kDescendant:
        // Every open element is a proper ancestor of the new node.
        if (open_by_xnode_[static_cast<size_t>(u)].empty()) return false;
        break;
      case Axis::kDescendantOrSelf:
        if (open_by_xnode_[static_cast<size_t>(u)].empty() &&
            FindMatch(frame, u) == nullptr) {
          return false;
        }
        break;
      case Axis::kSelf:
        // Candidates are processed in topological order, so a match of `u`
        // on this very node has already been decided.
        if (FindMatch(frame, u) == nullptr) return false;
        break;
      case Axis::kFollowingSibling: {
        // A preceding sibling (a closed child of the would-be parent) must
        // match `u`. Sibling-axis engines always see every element (dense
        // stack), but guard the parent identity anyway.
        if (depth_ == 0) return false;
        const Frame& parent = stack_[depth_ - 1];
        if (parent.info.id != frame.info.parent_id) return false;
        bool found = false;
        for (const MatchingPtr& p :
             parent.closed_by_xnode[static_cast<size_t>(u)]) {
          if (!p->dead()) {
            found = true;
            break;
          }
        }
        if (!found) return false;
        break;
      }
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kPrecedingSibling:
      case Axis::kFollowing:
      case Axis::kPreceding:
        // Backward axes never appear in an x-dag; following/preceding are
        // desugared by the x-tree builder.
        XAOS_CHECK(false) << "unexpected axis in x-dag";
    }
  }
  return true;
}

void XaosEngine::ProcessStart(DocNodeKind kind, std::string_view name,
                              util::Symbol symbol, std::string_view value,
                              const NodePosition& position) {
  // Acquire (or reuse) the frame at the current depth; it is only made
  // visible (depth_ incremented) after matching, so relevance checks still
  // see the previous top as the parent.
  if (depth_ == stack_.size()) stack_.emplace_back();
  Frame& frame = stack_[depth_];
  frame.xnodes.clear();
  frame.structures.clear();
  frame.capture_index = -1;
  if (wants_siblings_) {
    if (frame.closed_by_xnode.size() != open_by_xnode_.size()) {
      frame.closed_by_xnode.assign(open_by_xnode_.size(), {});
    } else {
      for (auto& list : frame.closed_by_xnode) list.clear();
    }
  }

  // Identity comes from the document cursor, not from this engine's view of
  // the stream: ids/levels/ordinals are uniform across a fleet of engines
  // even when dispatch filtering gives each a different event subset, and
  // remain monotone in document order.
  frame.info.id = position.id;
  frame.info.parent_id = position.parent_id;
  frame.info.level = position.level;
  frame.info.ordinal = position.ordinal;
  frame.info.kind = kind;
  if (kind == DocNodeKind::kElement) ++stats_.elements_total;

  CollectCandidates(kind, symbol, &candidate_scratch_);
  bool info_filled = false;
  for (XNodeId v : candidate_scratch_) {
    const NodeTestSpec& spec = tree_->node(v).test;
    if (!query::MatchesSpec(spec, kind, name, value)) continue;
    if (options_.enable_relevance_filter && !IsRelevant(v, frame)) continue;
    if (!info_filled) {
      // Node names/values are only retained for nodes that match — the
      // storage frugality the paper's Table 3 measures.
      frame.info.name.assign(name);
      frame.info.value.assign(value);
      info_filled = true;
    }
    // Creation/live/peak/byte accounting happens inside the constructor via
    // EngineStats::OnStructureCreated, so no allocation path can miss it.
    // allocate_shared puts object and control block in the arena while
    // keeping shared/weak_ptr semantics and destructor timing.
    auto structure = std::allocate_shared<MatchingStructure>(
        util::PoolAllocator<MatchingStructure>(&arena_), v, frame.info,
        static_cast<int>(tree_->node(v).children.size()), &stats_, &arena_);
    frame.xnodes.push_back(v);
    frame.structures.push_back(std::move(structure));
  }
  if (!info_filled) {
    frame.info.name.clear();
    frame.info.value.clear();
  }
  if (kind == DocNodeKind::kElement && frame.xnodes.empty()) {
    ++stats_.elements_discarded;
  }

  ++depth_;
  for (size_t i = 0; i < frame.xnodes.size(); ++i) {
    open_by_xnode_[static_cast<size_t>(frame.xnodes[i])].push_back(
        frame.structures[i]);
  }

  if (options_.max_live_structures != 0 &&
      stats_.structures_live > options_.max_live_structures) {
    FailWith(ResourceExhaustedError(
        "live matching structures exceeded the configured limit of " +
        std::to_string(options_.max_live_structures)));
  }
}

// Inserts `child` into `parent`'s slot and, if the child is already
// confirmed, lets the confirmation propagate into the parent immediately.
void XaosEngine::LinkChild(const MatchingPtr& parent, int slot,
                           const MatchingPtr& child, bool optimistic) {
  if (child->confirmed() &&
      (IsCountedXNode(child->xnode()) || child->reclaimed())) {
    // Boolean submatching: a confirmed, output-free sub-matching only needs
    // to be counted. No storage, and no back reference either — confirmed
    // structures are never retracted. A reclaimed child is the same shape:
    // its output is already emitted and its storage is gone, so only its
    // (permanent) confirmation matters to the parent.
    parent->bump_confirmed(slot);
    TryConfirm(parent.get());
    return;
  }
  bool was_confirmed = child->confirmed();
  MatchingStructure::Link(parent, slot, child, optimistic);
  if (was_confirmed) TryConfirm(parent.get());
  // A confirmed child linked under an already-anchored parent is itself
  // reachable from the confirmed Root through confirmed structures.
  if (earliest_ && parent->anchored() && child->confirmed() &&
      !child->anchored()) {
    Anchor(child.get());
  }
}

bool XaosEngine::SlotRefillable(const MatchingStructure& parent,
                                int slot) const {
  XNodeId w = tree_->node(parent.xnode()).children[static_cast<size_t>(slot)];
  if (tree_->node(w).incoming_axis != Axis::kFollowingSibling) return false;
  // Following-sibling entries can still arrive while the element's parent
  // is open (later siblings have not been seen yet).
  int level = parent.element().level;
  if (level == 0) return false;
  size_t parent_depth = static_cast<size_t>(level - 1);
  return parent_depth < depth_ &&
         stack_[parent_depth].info.id == parent.element().parent_id;
}

void XaosEngine::CascadeRemoval(MatchingStructure* m, bool retract_only) {
  // Locals share the structure's arena allocator so cascades stay off the
  // heap too.
  util::ArenaVector<MatchingStructure::BackRef> kept(
      m->backrefs().get_allocator());
  util::ArenaVector<MatchingStructure::BackRef> refs(
      m->backrefs().get_allocator());
  refs.swap(m->backrefs());
  for (const MatchingStructure::BackRef& ref : refs) {
    if (retract_only && ref.optimistic) {
      // Optimistic links (backward/sibling pulls) are kept: the consumer
      // will learn of this structure's fate through a later undo or keep
      // the reference if it completes again.
      kept.push_back(ref);
      continue;
    }
    MatchingPtr parent = ref.parent.lock();
    if (parent == nullptr || parent->dead()) continue;
    parent->RemoveFromSlot(ref.slot, m);
    // An anchored parent's slots are satisfied by confirmed counts forever;
    // losing a stored (unconfirmed) extra entry cannot undo it, but it may
    // drain the slot and make the parent reclaimable.
    if (earliest_ && parent->anchored()) {
      MaybeReclaim(parent.get());
      continue;
    }
    // An open parent may still receive entries for this slot. A closed
    // parent's emptiness is final (Table 2, step 23) — unless the slot is a
    // refillable following-sibling slot, in which case the parent merely
    // returns to the pending state. Emptiness accounts for released
    // (counted) confirmed entries, which keep the slot satisfied forever.
    if (!parent->SlotEmpty(ref.slot) || !parent->closed()) continue;
    if (SlotRefillable(*parent, ref.slot)) {
      RetractPropagation(parent.get());
    } else {
      Undo(parent.get());
    }
  }
  m->backrefs() = std::move(kept);
}

void XaosEngine::Undo(MatchingStructure* m) {
  m->set_dead();
  ++stats_.structures_undone;
  CascadeRemoval(m, /*retract_only=*/false);
}

void XaosEngine::RetractPropagation(MatchingStructure* m) {
  if (m->dead() || !m->propagated()) return;
  XAOS_CHECK(!m->confirmed()) << "confirmed matchings cannot be retracted";
  m->set_propagated(false);
  CascadeRemoval(m, /*retract_only=*/true);
}

void XaosEngine::MaybeCompleteDeferred(const MatchingPtr& m) {
  if (m->closed() && !m->dead() && !m->propagated() && m->AllSlotsNonEmpty()) {
    PropagateUp(m);
  }
}

// Pushes a (possibly optimistically) total matching into the appropriate
// submatchings of its parent-matchings. Runs at the structure's own end
// event, or later (deferred) when a pending following-sibling slot fills —
// in that case the current stack top is a later sibling, so the parent
// frame index and the open-ancestor registry are still valid for this
// structure's element.
void XaosEngine::PropagateUp(const MatchingPtr& m) {
  if (m->propagated() || m->dead()) return;
  m->set_propagated(true);
  XNodeId v = m->xnode();
  const ElementId element_id = m->element().id;
  if (v != kRootXNode) {
    XNodeId parent_xnode = tree_->node(v).parent;
    int slot = slot_in_parent_[static_cast<size_t>(v)];
    switch (tree_->node(v).incoming_axis) {
      case Axis::kChild:
      case Axis::kAttribute: {
        // stack_[depth_ - 2] is the document parent only if dispatch did
        // not skip it (sparse stack); a skipped parent matched nothing.
        if (depth_ < 2 ||
            stack_[depth_ - 2].info.id != m->element().parent_id) {
          break;
        }
        const MatchingPtr* p = FindMatch(stack_[depth_ - 2], parent_xnode);
        if (p != nullptr && !(*p)->dead()) {
          LinkChild(*p, slot, m, /*optimistic=*/false);
          ++stats_.propagations;
        }
        break;
      }
      case Axis::kDescendant:
        for (const MatchingPtr& p :
             open_by_xnode_[static_cast<size_t>(parent_xnode)]) {
          // Proper ancestors only: they opened before this element did.
          if (p->element().id >= element_id || p->dead()) continue;
          LinkChild(p, slot, m, /*optimistic=*/false);
          ++stats_.propagations;
        }
        break;
      case Axis::kDescendantOrSelf:
        // The self part is pulled by the parent at its own close; here only
        // proper ancestors receive the push.
        for (const MatchingPtr& p :
             open_by_xnode_[static_cast<size_t>(parent_xnode)]) {
          if (p->element().id >= element_id || p->dead()) continue;
          LinkChild(p, slot, m, /*optimistic=*/false);
          ++stats_.propagations;
        }
        break;
      case Axis::kFollowingSibling: {
        // Targets are the already-closed preceding siblings matched to the
        // parent x-node; filling their slot may complete them (deferred
        // propagation).
        if (depth_ < 2 ||
            stack_[depth_ - 2].info.id != m->element().parent_id) {
          break;
        }
        Frame& parent_frame = stack_[depth_ - 2];
        // Copy: deferred completion may append to this list... it cannot
        // (registration happens at pop), but undo cascades may mutate it.
        std::vector<MatchingPtr> targets =
            parent_frame.closed_by_xnode[static_cast<size_t>(parent_xnode)];
        for (const MatchingPtr& p : targets) {
          if (p->dead() || p->element().id >= element_id) continue;
          LinkChild(p, slot, m, /*optimistic=*/false);
          ++stats_.propagations;
          MaybeCompleteDeferred(p);
        }
        break;
      }
      case Axis::kSelf:
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kPrecedingSibling:
        // Self submatchings are pulled by the x-tree parent at its own end
        // event; backward-axis parent-matchings adopted this structure
        // optimistically when they closed. Nothing to push.
        break;
      case Axis::kFollowing:
      case Axis::kPreceding:
        XAOS_CHECK(false) << "desugared axis in x-tree";
    }
  }
  TryConfirm(m.get());
}

void XaosEngine::ProcessEnd() {
  XAOS_CHECK(depth_ > 0);
  Frame& frame = stack_[depth_ - 1];
  const ElementId element_id = frame.info.id;

  // Children that were pending on a following sibling can no longer
  // complete: once this element closes, no further siblings of its children
  // will ever arrive. Retract them now.
  if (wants_siblings_) {
    for (std::vector<MatchingPtr>& list : frame.closed_by_xnode) {
      for (const MatchingPtr& child : list) {
        if (!child->dead() && !child->AllSlotsNonEmpty()) {
          Undo(child.get());
        }
      }
    }
  }

  // Process deepest x-tree nodes first: x-tree children that may be mapped
  // to this very element (self / *-or-self axes) must be finalized before
  // their x-tree parent fills its slots.
  std::vector<size_t>& order = order_scratch_;
  order.resize(frame.xnodes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (order.size() > 1) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return tree_->node(frame.xnodes[a]).depth >
             tree_->node(frame.xnodes[b]).depth;
    });
  }

  for (size_t idx : order) {
    XNodeId v = frame.xnodes[idx];
    const MatchingPtr& m = frame.structures[idx];
    if (m->dead()) continue;
    m->set_closed();

    // Pull phase: submatchings whose candidates are known at this end event
    // but may not yet be total are adopted *optimistically* and retracted
    // later if they fail (Section 4.3): backward axes map to open
    // ancestors, preceding-sibling to closed earlier siblings, self /
    // descendant-or-self's self part to this very element.
    const std::vector<XNodeId>& children = tree_->node(v).children;
    for (size_t slot = 0; slot < children.size(); ++slot) {
      XNodeId w = children[slot];
      switch (tree_->node(w).incoming_axis) {
        case Axis::kParent: {
          // Sparse-stack guard: stack_[depth_ - 2] must be the document
          // parent (skipped ancestors matched nothing).
          if (depth_ < 2 ||
              stack_[depth_ - 2].info.id != frame.info.parent_id) {
            break;
          }
          const MatchingPtr* p = FindMatch(stack_[depth_ - 2], w);
          if (p != nullptr && !(*p)->dead()) {
            LinkChild(m, static_cast<int>(slot), *p, /*optimistic=*/true);
            ++stats_.optimistic_propagations;
          }
          break;
        }
        case Axis::kAncestor:
          for (const MatchingPtr& p :
               open_by_xnode_[static_cast<size_t>(w)]) {
            if (p->element().id == element_id || p->dead()) continue;
            LinkChild(m, static_cast<int>(slot), p, /*optimistic=*/true);
            ++stats_.optimistic_propagations;
          }
          break;
        case Axis::kAncestorOrSelf:
          for (const MatchingPtr& p :
               open_by_xnode_[static_cast<size_t>(w)]) {
            if (p->dead()) continue;
            LinkChild(m, static_cast<int>(slot), p, /*optimistic=*/true);
            ++stats_.optimistic_propagations;
          }
          break;
        case Axis::kSelf:
        case Axis::kDescendantOrSelf: {
          // The same element may match `w` (its structure was finalized
          // earlier in this event — deeper x-tree nodes first). For
          // descendant-or-self this is the "self" part; proper descendants
          // were pushed when they closed.
          const MatchingPtr* p = FindMatch(frame, w);
          if (p != nullptr && p->get() != m.get() && !(*p)->dead()) {
            LinkChild(m, static_cast<int>(slot), *p, /*optimistic=*/true);
            ++stats_.optimistic_propagations;
          }
          break;
        }
        case Axis::kPrecedingSibling: {
          if (depth_ < 2 ||
              stack_[depth_ - 2].info.id != frame.info.parent_id) {
            break;
          }
          Frame& parent_frame = stack_[depth_ - 2];
          for (const MatchingPtr& p :
               parent_frame.closed_by_xnode[static_cast<size_t>(w)]) {
            if (p->dead()) continue;
            LinkChild(m, static_cast<int>(slot), p, /*optimistic=*/true);
            ++stats_.optimistic_propagations;
          }
          break;
        }
        default:
          break;  // child/descendant/following-sibling: filled by pushes
      }
    }

    if (!m->AllSlotsNonEmpty()) {
      // Distinguish dead from *pending*: an empty following-sibling slot
      // can still fill while this element's parent remains open.
      bool pending = depth_ >= 2;
      if (pending) {
        for (size_t slot = 0; slot < children.size(); ++slot) {
          if (!m->SlotEmpty(static_cast<int>(slot))) continue;
          if (tree_->node(children[slot]).incoming_axis !=
              Axis::kFollowingSibling) {
            pending = false;
            break;
          }
        }
      }
      if (!pending) Undo(m.get());
      // Pending structures stay registered (closed, unpropagated) and are
      // completed by MaybeCompleteDeferred or retracted at parent close.
      continue;
    }

    PropagateUp(m);

    // A structure anchored before (or during) its close: its subtree
    // capture is complete now, so a deferred emission can go out, and its
    // slots may already have drained to confirmed counts.
    if (earliest_ && m->anchored()) {
      if (is_output_[static_cast<size_t>(v)]) EmitEarly(m.get());
      MaybeReclaim(m.get());
    }
  }

  // A confirmed entry in every Root slot guarantees a total matching at
  // Root no matter what the rest of the stream contains (Section 5.1).
  if (!early_match_ && live_root_ != nullptr && !live_root_->dead() &&
      live_root_->AllSlotsConfirmed()) {
    early_match_ = true;
    if (obs::Enabled()) confirm_ns_ = obs::NowNs();
    if (options_.stop_after_confirmed_match) {
      inert_ = true;
    } else if (earliest_) {
      // The Root is confirmed: it and everything reachable from it through
      // confirmed structures is provably in the final result. Anchoring
      // cascades emission (and reclamation) down the confirmed graph; later
      // confirmations anchor incrementally via the TryConfirm / LinkChild
      // hooks. Skipped in stop_after_confirmed_match mode, which reports
      // matched with no items.
      Anchor(live_root_);
    }
  }

  // Unregister this element's open matches (they are the newest entries of
  // their per-x-node stacks).
  for (size_t i = 0; i < frame.xnodes.size(); ++i) {
    std::vector<MatchingPtr>& open =
        open_by_xnode_[static_cast<size_t>(frame.xnodes[i])];
    XAOS_CHECK(!open.empty() && open.back().get() == frame.structures[i].get());
    open.pop_back();
  }
  // Keep sibling-relevant matches reachable from the parent frame until the
  // parent closes.
  if (wants_siblings_ && depth_ >= 2 &&
      stack_[depth_ - 2].info.id == frame.info.parent_id) {
    Frame& parent_frame = stack_[depth_ - 2];
    for (size_t i = 0; i < frame.xnodes.size(); ++i) {
      XNodeId v = frame.xnodes[i];
      if (sibling_listed_[static_cast<size_t>(v)] &&
          !frame.structures[i]->dead()) {
        parent_frame.closed_by_xnode[static_cast<size_t>(v)].push_back(
            frame.structures[i]);
      }
    }
  }
  // Spend the frame: release structure references but keep the vectors'
  // capacity for reuse at this depth.
  frame.xnodes.clear();
  frame.structures.clear();
  frame.capture_index = -1;
  --depth_;
}

void XaosEngine::TryConfirm(MatchingStructure* m) {
  // Note: open structures are confirmable too — their slots only ever gain
  // entries, confirmed entries are never retracted, and the consistency of
  // every existing link was checked when it was made. An open structure
  // with a confirmed entry in every slot is therefore guaranteed to
  // represent a total matching once it closes.
  if (m->confirmed() || m->dead() || !m->AllSlotsConfirmed()) {
    return;
  }
  m->set_confirmed();
  // Walk the parents that linked this structure before it was confirmed
  // (later links count it directly, see LinkChild).
  bool counted = IsCountedXNode(m->xnode());
  util::ArenaVector<MatchingStructure::BackRef> backrefs(
      m->backrefs().get_allocator());
  if (counted) {
    // Once counted, the stored entries (and back references) are released:
    // confirmed structures are immutable, so nothing will ever need to
    // retract or re-find them. This is what frees predicate-only matchings
    // long before end of document.
    backrefs.swap(m->backrefs());
  } else {
    backrefs = m->backrefs();
  }
  bool anchor_after = false;
  for (const MatchingStructure::BackRef& ref : backrefs) {
    MatchingPtr parent = ref.parent.lock();
    if (parent == nullptr || parent->dead()) continue;
    parent->bump_confirmed(ref.slot);
    if (counted) {
      // Migrate from stored entry to count. Note: this may release the last
      // strong reference to `m` held by `parent`; callers of TryConfirm keep
      // `m` alive for the duration of the call.
      parent->RemoveFromSlot(ref.slot, m);
      if (earliest_ && parent->anchored()) MaybeReclaim(parent.get());
    }
    // A live anchored parent makes the freshly confirmed `m` reachable from
    // the confirmed Root. Anchoring is deferred past the loop: Anchor can
    // reclaim `m`, which would detach it from parents not yet visited.
    if (earliest_ && !counted && parent->anchored()) anchor_after = true;
    TryConfirm(parent.get());
  }
  if (anchor_after) Anchor(m);
}

void XaosEngine::Anchor(MatchingStructure* m) {
  if (!earliest_ || m == nullptr || m->anchored() || m->dead() ||
      !m->confirmed()) {
    return;
  }
  m->set_anchored();
  if (is_output_[static_cast<size_t>(m->xnode())] &&
      (m->closed() || !options_.capture_output_subtrees)) {
    // An anchored output structure is provably in the final result. With
    // subtree capture the serialized XML only exists once the element
    // closes; emission of a still-open structure is deferred to its close
    // (ProcessEnd re-checks anchored structures at their end event).
    EmitEarly(m);
  }
  // Recursively anchor the confirmed entries of stored (non-counted)
  // slots: every one of them is reachable through `m`'s confirmed link.
  // Two-phase: anchoring a child can reclaim it, which erases it from the
  // slot vector being iterated, so collect strong references first.
  std::vector<MatchingPtr> to_anchor;
  const std::vector<XNodeId>& children = tree_->node(m->xnode()).children;
  for (size_t slot = 0; slot < children.size(); ++slot) {
    if (IsCountedXNode(children[slot])) continue;
    for (const MatchingPtr& child : m->slot(static_cast<int>(slot))) {
      if (child->confirmed() && !child->anchored()) {
        to_anchor.push_back(child);
      }
    }
  }
  for (const MatchingPtr& child : to_anchor) Anchor(child.get());
  MaybeReclaim(m);
}

void XaosEngine::EmitEarly(MatchingStructure* m) {
  if (!emitted_ids_.insert(m->element().id).second) return;
  OutputItem item;
  item.info = m->element();
  auto it = captured_.find(m->element().id);
  if (it != captured_.end()) {
    // Move the capture buffer out — its heap storage is freed with the
    // item instead of lingering until end of document.
    item.captured_xml = std::move(it->second);
    captured_.erase(it);
  }
  ++stats_.candidates_emitted_early;
  if (options_.early_item_sink) options_.early_item_sink(item);
  early_items_.push_back(std::move(item));
}

void XaosEngine::MaybeReclaim(MatchingStructure* m) {
  if (!reclaim_enabled_ || m->reclaimed() || !m->anchored() || m->dead() ||
      !m->closed() || m->xnode() == kRootXNode ||
      reclaim_blocked_[static_cast<size_t>(m->xnode())]) {
    return;
  }
  // Reclaim only once every non-counted slot has drained to its confirmed
  // count. A stored entry — even an anchored one — may still be the only
  // strong reference keeping an unconfirmed grandchild's backref target
  // alive; destroying it here could lose an item that confirms later.
  // Counted slots never store confirmed entries (TryConfirm migrates them
  // to counts); their remaining stored entries are unconfirmed, output-free
  // candidates whose loss is harmless (expired backrefs are skipped).
  const std::vector<XNodeId>& children = tree_->node(m->xnode()).children;
  for (size_t slot = 0; slot < children.size(); ++slot) {
    if (!IsCountedXNode(children[slot]) &&
        !m->slot(static_cast<int>(slot)).empty()) {
      return;
    }
  }
  m->set_reclaimed();
  ++stats_.candidates_reclaimed;
  util::ArenaVector<MatchingStructure::BackRef> detached(
      m->backrefs().get_allocator());
  m->ReleaseStorage(&arena_, &detached);
  // Detach from parents. Lock every parent first: removing `m` from a slot
  // can drop the last strong reference and destroy it mid-loop, so after
  // the first removal only the raw pointer *value* may be used.
  std::vector<std::pair<MatchingPtr, int>> parents;
  parents.reserve(detached.size());
  for (const MatchingStructure::BackRef& ref : detached) {
    MatchingPtr parent = ref.parent.lock();
    if (parent == nullptr || parent->dead()) continue;
    parents.emplace_back(std::move(parent), ref.slot);
  }
  const MatchingStructure* raw = m;
  for (auto& [parent, slot] : parents) {
    // Anchored => every confirmed count >= 1, so the slot stays satisfied
    // and no undo can trigger; this is pure storage release.
    parent->RemoveFromSlot(slot, raw);
  }
  for (auto& [parent, slot] : parents) {
    (void)slot;
    if (parent->anchored()) MaybeReclaim(parent.get());
  }
}

void XaosEngine::StartDocument() {
  ResetDocumentState();
  if (!external_cursor_) own_cursor_.Reset();
  ProcessStart(DocNodeKind::kRoot, "", util::kInvalidSymbol, "",
               NodePosition{});
  const MatchingPtr* root = FindMatch(stack_[0], kRootXNode);
  live_root_ = (root != nullptr) ? root->get() : nullptr;
}

void XaosEngine::StartElement(const xml::QName& name,
                              xml::AttributeSpan attributes) {
  if (!error_.ok() || inert_) return;
  if (!external_cursor_) own_cursor_.StartElement(attributes.size());
  const DocumentCursor::Node& node = cursor_->top();
  // Replay paths (DOM replayer, recorded events, hand-fed tests) deliver
  // names without interned symbols; resolve against the global table. A
  // name the table has never seen cannot match any query name test.
  util::Symbol symbol = name.symbol;
  if (symbol == util::kInvalidSymbol) {
    symbol = util::SymbolTable::Global().Lookup(name.text);
  }
  ProcessStart(DocNodeKind::kElement, name.text, symbol, "",
               NodePosition{node.id, node.parent_id,
                            static_cast<int>(node.level),
                            static_cast<uint32_t>(node.ordinal)});
  if (!error_.ok()) return;

  if (options_.capture_output_subtrees) {
    for (const CapturePtr& capture : active_captures_) {
      capture->writer.StartElement(name.text);
      for (const xml::AttributeView& attr : attributes) {
        capture->writer.WriteAttribute(attr.name, attr.value);
      }
    }
    Frame& top = stack_[depth_ - 1];
    bool output_match = false;
    for (XNodeId v : top.xnodes) {
      if (is_output_[static_cast<size_t>(v)]) {
        output_match = true;
        break;
      }
    }
    if (output_match) {
      CapturePtr capture(new (arena_.Allocate(sizeof(Capture))) Capture,
                         CaptureDeleter{&arena_});
      capture->element_id = top.info.id;
      capture->writer.StartElement(name.text);
      for (const xml::AttributeView& attr : attributes) {
        capture->writer.WriteAttribute(attr.name, attr.value);
      }
      top.capture_index = static_cast<int>(active_captures_.size());
      active_captures_.push_back(std::move(capture));
    }
  }

  if (wants_attributes_) {
    for (size_t k = 0; k < attributes.size(); ++k) {
      const xml::AttributeView& attr = attributes[k];
      util::Symbol attr_symbol = attr.symbol;
      if (attr_symbol == util::kInvalidSymbol) {
        attr_symbol = util::SymbolTable::Global().Lookup(attr.name);
      }
      ProcessStart(DocNodeKind::kAttribute, attr.name, attr_symbol, attr.value,
                   NodePosition{cursor_->attribute_id(k), node.id,
                                static_cast<int>(node.level) + 1,
                                static_cast<uint32_t>(node.ordinal)});
      if (!error_.ok()) return;
      ProcessEnd();
    }
  }
}

void XaosEngine::Characters(std::string_view text) {
  if (!error_.ok() || inert_ || depth_ == 0) return;
  if (!external_cursor_) own_cursor_.Characters();
  if (options_.capture_output_subtrees) {
    for (const CapturePtr& capture : active_captures_) {
      capture->writer.WriteText(text);
    }
  }
  if (wants_text_) {
    const DocumentCursor::Node& node = cursor_->top();
    ProcessStart(DocNodeKind::kText, "", util::kInvalidSymbol, text,
                 NodePosition{cursor_->text_id(), node.id,
                              static_cast<int>(node.level) + 1,
                              static_cast<uint32_t>(node.ordinal)});
    if (!error_.ok()) return;
    ProcessEnd();
  }
}

void XaosEngine::EndElement(std::string_view /*name*/) {
  if (!error_.ok() || inert_) return;
  if (options_.capture_output_subtrees) {
    for (const CapturePtr& capture : active_captures_) {
      capture->writer.EndElement();
    }
    Frame& top = stack_[depth_ - 1];
    if (top.capture_index >= 0) {
      XAOS_CHECK_EQ(top.capture_index,
                    static_cast<int>(active_captures_.size()) - 1);
      Capture& capture = *active_captures_.back();
      captured_[capture.element_id] = std::move(capture.xml);
      active_captures_.pop_back();
    }
  }
  ProcessEnd();
  if (!external_cursor_) own_cursor_.EndElement();
}

void XaosEngine::EndDocument() {
  if (!error_.ok()) return;
  if (inert_) {
    stats_.arena_bytes_allocated = arena_.bytes_allocated() - arena_baseline_;
    // Early-terminated filtering mode: the match is guaranteed; per-item
    // results were not tracked past the confirmation point.
    result_ = QueryResult{};
    result_.matched = true;
    done_ = true;
    return;
  }
  XAOS_CHECK_EQ(depth_, 1u) << "unbalanced events";
  const MatchingPtr* root = FindMatch(stack_[0], kRootXNode);
  root_structure_ = (root != nullptr) ? *root : nullptr;
  ProcessEnd();
  stats_.arena_bytes_allocated = arena_.bytes_allocated() - arena_baseline_;
  BuildResult(root_structure_);
  done_ = true;
  // A match that was never confirmed early becomes certain here.
  if (result_.matched && confirm_ns_ == 0 && obs::Enabled()) {
    confirm_ns_ = obs::NowNs();
  }
}

void XaosEngine::BuildResult(const MatchingPtr& root_structure) {
  result_ = QueryResult{};
  if (root_structure == nullptr || root_structure->dead() ||
      !root_structure->AllSlotsNonEmpty()) {
    // Emission requires an anchored (confirmed-through-Root) structure, so
    // an unmatched document can never have emitted anything.
    XAOS_CHECK(early_items_.empty()) << "early items without a root match";
    return;
  }
  result_.matched = true;

  // Items already emitted by earliest answering come first; the residual
  // marked traversal adds only what was never anchored (it skips emitted
  // ids), and the final sort restores document order — byte-identical to
  // the non-earliest engine.
  result_.items = std::move(early_items_);
  early_items_.clear();

  // Marked traversal (Section 4.4): every structure reachable from a
  // satisfied root participates in at least one total matching, so each
  // output x-node's reachable structures are exactly the selected nodes.
  std::unordered_set<const MatchingStructure*> visited;
  std::unordered_set<ElementId> emitted(emitted_ids_.begin(),
                                        emitted_ids_.end());
  std::vector<const MatchingStructure*> pending{root_structure.get()};
  visited.insert(root_structure.get());
  while (!pending.empty()) {
    const MatchingStructure* m = pending.back();
    pending.pop_back();
    if (is_output_[static_cast<size_t>(m->xnode())] &&
        emitted.insert(m->element().id).second) {
      OutputItem item;
      item.info = m->element();
      auto it = captured_.find(m->element().id);
      if (it != captured_.end()) item.captured_xml = it->second;
      result_.items.push_back(std::move(item));
    }
    for (int i = 0; i < m->slot_count(); ++i) {
      for (const MatchingPtr& child : m->slot(i)) {
        if (visited.insert(child.get()).second) {
          pending.push_back(child.get());
        }
      }
    }
  }
  std::sort(result_.items.begin(), result_.items.end(),
            [](const OutputItem& a, const OutputItem& b) {
              return a.info.id < b.info.id;
            });
}

TupleEnumeration XaosEngine::OutputTuples(size_t max_tuples) const {
  TupleEnumeration enumeration;
  if (!done_ || !result_.matched || root_structure_ == nullptr) {
    return enumeration;
  }
  if (stats_.candidates_reclaimed > 0) {
    // Parts of the structure graph were eagerly reclaimed. Reclamation is
    // only enabled for single-output trees, where the distinct tuples are
    // exactly the result items — synthesize singletons instead of walking
    // the (partially released) graph.
    for (const OutputItem& item : result_.items) {
      if (enumeration.tuples.size() >= max_tuples) {
        enumeration.complete = false;
        break;
      }
      enumeration.tuples.push_back(OutputTuple{item.info});
    }
    return enumeration;
  }
  std::vector<XNodeId> out_nodes;
  for (XNodeId v = 0; v < tree_->size(); ++v) {
    if (is_output_[static_cast<size_t>(v)]) out_nodes.push_back(v);
  }

  std::vector<const ElementInfo*> assignment(
      static_cast<size_t>(tree_->size()), nullptr);
  std::set<std::vector<ElementId>> seen;
  size_t explored = 0;
  const size_t explore_budget = max_tuples * 64;

  // Full product enumeration over the structure graph: one entry is chosen
  // per slot, recursively; a complete choice is a total matching (x-tree
  // subtree domains are disjoint, so any per-slot combination is valid).
  // The work list holds (structure, next slot to decide) pairs.
  std::function<bool(std::vector<std::pair<const MatchingStructure*, int>>&)>
      run = [&](std::vector<std::pair<const MatchingStructure*, int>>& work)
      -> bool {
    if (++explored > explore_budget) {
      enumeration.complete = false;
      return false;
    }
    if (work.empty()) {
      std::vector<ElementId> key;
      OutputTuple tuple;
      key.reserve(out_nodes.size());
      for (XNodeId v : out_nodes) {
        const ElementInfo* info = assignment[static_cast<size_t>(v)];
        XAOS_CHECK(info != nullptr);
        key.push_back(info->id);
        tuple.push_back(*info);
      }
      if (seen.insert(std::move(key)).second) {
        enumeration.tuples.push_back(std::move(tuple));
        if (enumeration.tuples.size() >= max_tuples) {
          enumeration.complete = false;
          return false;
        }
      }
      return true;
    }
    auto [m, slot] = work.back();
    if (slot == m->slot_count()) {
      work.pop_back();
      bool keep_going = run(work);
      work.push_back({m, slot});
      return keep_going;
    }
    // Boolean submatchings: output-free slots contribute nothing to the
    // projection; their (released) entries need not be enumerated.
    XNodeId slot_child =
        tree_->node(m->xnode()).children[static_cast<size_t>(slot)];
    if (IsCountedXNode(slot_child)) {
      work.back().second = slot + 1;
      bool keep_going = run(work);
      work.back().second = slot;
      return keep_going;
    }
    work.back().second = slot + 1;
    bool keep_going = true;
    for (const MatchingPtr& child : m->slot(slot)) {
      assignment[static_cast<size_t>(child->xnode())] = &child->element();
      work.push_back({child.get(), 0});
      keep_going = run(work);
      work.pop_back();
      assignment[static_cast<size_t>(child->xnode())] = nullptr;
      if (!keep_going) break;
    }
    work.back().second = slot;
    return keep_going;
  };

  assignment[kRootXNode] = &root_structure_->element();
  std::vector<std::pair<const MatchingStructure*, int>> work{
      {root_structure_.get(), 0}};
  run(work);
  return enumeration;
}

std::vector<LookingForEntry> XaosEngine::DebugLookingForSet() const {
  std::vector<LookingForEntry> out;
  if (depth_ == 0 || done_) {
    out.push_back({kRootXNode, 0, "Root"});
    return out;
  }
  constexpr int kAbsent = -3;
  constexpr int kAny = LookingForEntry::kAnyLevel;  // -1
  int top_level = stack_[depth_ - 1].info.level;
  std::vector<int> lf(static_cast<size_t>(tree_->size()), kAbsent);

  for (XNodeId v : xdag_.TopologicalOrder()) {
    if (v == kRootXNode) continue;  // the root is already matched, not sought
    int combined = kAny;
    for (const query::XDagEdge& edge : xdag_.incoming(v)) {
      XNodeId u = edge.from;
      int constraint = kAbsent;
      bool top_has_u = FindMatch(stack_[depth_ - 1], u) != nullptr;
      bool any_open_u = !open_by_xnode_[static_cast<size_t>(u)].empty();
      switch (edge.axis) {
        case Axis::kChild:
        case Axis::kAttribute:
          if (top_has_u) constraint = top_level + 1;
          break;
        case Axis::kDescendant:
          if (any_open_u) constraint = kAny;
          break;
        case Axis::kDescendantOrSelf:
          if (any_open_u) {
            constraint = kAny;
          } else if (lf[static_cast<size_t>(u)] != kAbsent) {
            constraint = lf[static_cast<size_t>(u)];
          }
          break;
        case Axis::kSelf:
          if (lf[static_cast<size_t>(u)] != kAbsent) {
            constraint = lf[static_cast<size_t>(u)];
          }
          break;
        case Axis::kFollowingSibling: {
          const Frame& top = stack_[depth_ - 1];
          for (const MatchingPtr& p :
               top.closed_by_xnode[static_cast<size_t>(u)]) {
            if (!p->dead()) {
              constraint = top_level + 1;
              break;
            }
          }
          break;
        }
        case Axis::kParent:
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf:
        case Axis::kPrecedingSibling:
        case Axis::kFollowing:
        case Axis::kPreceding:
          XAOS_CHECK(false) << "unexpected axis in x-dag";
      }
      if (constraint == kAbsent) {
        combined = kAbsent;
        break;
      }
      if (constraint == kAny) continue;
      if (combined == kAny) {
        combined = constraint;
      } else if (combined != constraint) {
        combined = kAbsent;
        break;
      }
    }
    lf[static_cast<size_t>(v)] = combined;
    if (combined != kAbsent) {
      out.push_back({v, combined, tree_->node(v).test.Label()});
    }
  }
  return out;
}

}  // namespace xaos::core
