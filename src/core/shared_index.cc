#include "core/shared_index.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "util/check.h"
#include "xpath/ast.h"

namespace xaos::core {
namespace {

using Kind = query::NodeTestSpec::Kind;

util::Symbol SymbolFor(const query::NodeTestSpec& test) {
  if (test.name_symbol != util::kInvalidSymbol) return test.name_symbol;
  return util::SymbolTable::Global().Intern(test.name);
}

void AddSeed(std::vector<util::Symbol>* seeds, util::Symbol s) {
  if (std::find(seeds->begin(), seeds->end(), s) == seeds->end()) {
    seeds->push_back(s);
  }
}

}  // namespace

// --- SharedIndexBuilder -----------------------------------------------------

SharedIndexBuilder::SharedIndexBuilder() {
  states_.emplace_back();  // the root state, level 0
}

bool SharedIndexBuilder::ShareableTree(const query::XTree& tree) {
  if (tree.size() < 2) return false;
  const query::XNode& root = tree.node(query::kRootXNode);
  if (root.test.kind != Kind::kRoot || root.is_output) return false;
  // Walk the single-child spine; it must cover the whole tree.
  int visited = 1;
  query::XNodeId cur = query::kRootXNode;
  while (!tree.node(cur).children.empty()) {
    if (tree.node(cur).children.size() != 1) return false;  // predicate branch
    cur = tree.node(cur).children[0];
    ++visited;
    const query::XNode& node = tree.node(cur);
    if (node.incoming_axis != xpath::Axis::kChild &&
        node.incoming_axis != xpath::Axis::kDescendant) {
      return false;  // backward, sibling, self or attribute axis
    }
    if (node.test.kind != Kind::kElement && node.test.kind != Kind::kAnyElement) {
      return false;  // attribute / text / root test mid-chain
    }
    if (node.test.value.has_value()) return false;
    const bool leaf = node.children.empty();
    if (node.is_output != leaf) return false;  // output exactly at the leaf
  }
  return visited == tree.size();
}

bool SharedIndexBuilder::Shareable(const std::vector<query::XTree>& trees) {
  if (trees.empty()) return false;
  for (const query::XTree& tree : trees) {
    if (!ShareableTree(tree)) return false;
  }
  return true;
}

uint64_t SharedIndexBuilder::EdgeKey(int32_t parent, EdgeKind kind,
                                     util::Symbol symbol) {
  // parent (31 bits) | kind (2 bits) | symbol (31 bits). Symbols are dense
  // interned ids; wildcard kinds pass 0.
  uint32_t s = kind == kChildNamed || kind == kDescNamed
                   ? static_cast<uint32_t>(symbol)
                   : 0u;
  return (static_cast<uint64_t>(static_cast<uint32_t>(parent)) << 33) |
         (static_cast<uint64_t>(kind) << 31) | static_cast<uint64_t>(s);
}

int32_t SharedIndexBuilder::Lookup(int32_t parent, EdgeKind kind,
                                   util::Symbol symbol) const {
  auto it = edges_.find(EdgeKey(parent, kind, symbol));
  return it == edges_.end() ? -1 : it->second;
}

int32_t SharedIndexBuilder::Intern(int32_t parent, EdgeKind kind,
                                   util::Symbol symbol) {
  auto [it, inserted] = edges_.try_emplace(EdgeKey(parent, kind, symbol), 0);
  if (!inserted) return it->second;
  int32_t id = static_cast<int32_t>(states_.size());
  it->second = id;
  State& parent_state = states_[static_cast<size_t>(parent)];
  parent_state.out.push_back(Edge{kind, symbol, id});
  const bool desc = kind == kDescNamed || kind == kDescWild;
  if (desc) {
    parent_state.has_desc_out = true;
    // A fixed-level source of a descendant step keeps its whole subtree
    // (projection portal); from the root state that is the entire document.
    if (parent == SharedIndex::kRootState) {
      root_portal_ = true;
    } else if (parent_state.level >= 0) {
      parent_state.portal = true;
    }
  }
  const int parent_level = parent_state.level;
  State state;
  state.level = desc || parent_level < 0 ? kFloatingLevel : parent_level + 1;
  state.symbol = symbol;
  state.wildcard = kind == kChildWild || kind == kDescWild;
  state.desc_in = desc;
  states_.push_back(std::move(state));
  return id;
}

size_t SharedIndexBuilder::MarginalStates(
    const std::vector<query::XTree>& trees) const {
  // Dry-run insertion. States a previous chain of the same probe would have
  // created are approximated as still-missing suffixes: once a chain leaves
  // the existing trie, every remaining step is new.
  size_t missing = 0;
  for (const query::XTree& tree : trees) {
    XAOS_CHECK(ShareableTree(tree));
    int32_t cur = SharedIndex::kRootState;
    query::XNodeId id = query::kRootXNode;
    while (!tree.node(id).children.empty()) {
      id = tree.node(id).children[0];
      const query::XNode& node = tree.node(id);
      const bool wild = node.test.kind == Kind::kAnyElement;
      const bool desc = node.incoming_axis == xpath::Axis::kDescendant;
      EdgeKind kind = desc ? (wild ? kDescWild : kDescNamed)
                           : (wild ? kChildWild : kChildNamed);
      util::Symbol s = wild ? util::kInvalidSymbol : SymbolFor(node.test);
      int32_t next = cur < 0 ? -1 : Lookup(cur, kind, s);
      if (next < 0) {
        ++missing;
        cur = -1;  // left the trie; the rest of the chain is new
      } else {
        cur = next;
      }
    }
  }
  return missing;
}

uint32_t SharedIndexBuilder::AddSubscription(
    const std::vector<query::XTree>& trees) {
  XAOS_CHECK(Shareable(trees)) << "unshareable query passed to AddSubscription";
  uint32_t sub = subscription_count_++;
  for (const query::XTree& tree : trees) {
    int32_t cur = SharedIndex::kRootState;
    query::XNodeId id = query::kRootXNode;
    while (!tree.node(id).children.empty()) {
      id = tree.node(id).children[0];
      const query::XNode& node = tree.node(id);
      const bool wild = node.test.kind == Kind::kAnyElement;
      const bool desc = node.incoming_axis == xpath::Axis::kDescendant;
      EdgeKind kind = desc ? (wild ? kDescWild : kDescNamed)
                           : (wild ? kChildWild : kChildNamed);
      util::Symbol s = wild ? util::kInvalidSymbol : SymbolFor(node.test);
      cur = Intern(cur, kind, s);
      ++chain_nodes_total_;
    }
    // Identical disjunct chains of one query accept once.
    std::vector<uint32_t>& accepts = states_[static_cast<size_t>(cur)].accepts;
    if (accepts.empty() || accepts.back() != sub) accepts.push_back(sub);
  }
  return sub;
}

query::ProjectionSpec SharedIndexBuilder::AnalyzeProjection() const {
  if (root_portal_) {
    return query::ProjectionSpec::KeepAll(
        "unanchored '//' step keeps the whole document");
  }
  query::ProjectionSpec spec;
  size_t max_level = 0;
  for (size_t i = 1; i < states_.size(); ++i) {
    if (states_[i].level >= 1) {
      max_level = std::max(max_level, static_cast<size_t>(states_[i].level));
    }
  }
  spec.levels.resize(max_level);
  for (size_t i = 1; i < states_.size(); ++i) {
    const State& state = states_[i];
    if (state.level >= 1) {
      query::ProjectionSpec::Level& level =
          spec.levels[static_cast<size_t>(state.level - 1)];
      if (state.wildcard) {
        level.any_name = true;
        level.any_keep_subtree |= state.portal;
      } else {
        query::ProjectionSpec::NameEntry& entry = level.names[state.symbol];
        entry.keep_subtree |= state.portal;
        if (state.level == 1) AddSeed(&spec.seed_symbols, state.symbol);
      }
    }
    // Targets of anchored descendant steps start relevant matches at any
    // depth (mirrors ProjectionSpec::Analyze's seed rule).
    if (state.desc_in && !state.wildcard) {
      AddSeed(&spec.seed_symbols, state.symbol);
    }
  }
  return spec;
}

std::unique_ptr<SharedIndex> SharedIndexBuilder::Build() const {
  auto index = std::make_unique<SharedIndex>();
  index->states_.resize(states_.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    const State& src = states_[i];
    SharedIndex::StateMeta& dst = index->states_[i];
    dst.has_desc_out = src.has_desc_out;
    dst.child_begin = static_cast<uint32_t>(index->named_edges_.size());
    for (const Edge& edge : src.out) {
      if (edge.kind == kChildNamed) {
        index->named_edges_.push_back(
            SharedIndex::NamedEdge{edge.symbol, edge.target});
      }
    }
    dst.child_end = static_cast<uint32_t>(index->named_edges_.size());
    for (const Edge& edge : src.out) {
      if (edge.kind == kDescNamed) {
        index->named_edges_.push_back(
            SharedIndex::NamedEdge{edge.symbol, edge.target});
      }
    }
    dst.desc_begin = dst.child_end;
    dst.desc_end = static_cast<uint32_t>(index->named_edges_.size());
    auto by_symbol = [](const SharedIndex::NamedEdge& a,
                       const SharedIndex::NamedEdge& b) {
      return a.symbol < b.symbol;
    };
    std::sort(index->named_edges_.begin() + dst.child_begin,
              index->named_edges_.begin() + dst.child_end, by_symbol);
    std::sort(index->named_edges_.begin() + dst.desc_begin,
              index->named_edges_.begin() + dst.desc_end, by_symbol);
    for (const Edge& edge : src.out) {
      if (edge.kind == kChildWild) dst.child_wild = edge.target;
      if (edge.kind == kDescWild) dst.desc_wild = edge.target;
    }
    dst.accept_begin = static_cast<uint32_t>(index->accepts_.size());
    index->accepts_.insert(index->accepts_.end(), src.accepts.begin(),
                           src.accepts.end());
    dst.accept_end = static_cast<uint32_t>(index->accepts_.size());
  }
  index->stats_.states = states_.size();
  index->stats_.subscriptions = subscription_count_;
  index->stats_.chain_nodes = chain_nodes_total_;
  index->BuildStepTable();
  return index;
}

// --- SharedIndex ------------------------------------------------------------

int32_t SharedIndex::FindNamed(uint32_t begin, uint32_t end,
                               util::Symbol symbol) const {
  if (symbol == util::kInvalidSymbol) return -1;
  const NamedEdge* first = named_edges_.data() + begin;
  const NamedEdge* last = named_edges_.data() + end;
  const NamedEdge* it = std::lower_bound(
      first, last, symbol,
      [](const NamedEdge& edge, util::Symbol s) { return edge.symbol < s; });
  if (it != last && it->symbol == symbol) return it->target;
  return -1;
}

void SharedIndex::BuildStepTable() {
  step_table_.clear();
  step_mask_ = 0;
  if (named_edges_.empty()) return;
  // First-fit open addressing at <= 50% load: probes terminate on the first
  // empty slot, so lookups for absent keys stay short.
  size_t capacity = 16;
  while (capacity < named_edges_.size() * 2) capacity <<= 1;
  step_table_.assign(capacity, StepEntry{});
  step_mask_ = capacity - 1;
  auto upsert = [&](int32_t state, util::Symbol symbol, int32_t child,
                    int32_t desc) {
    size_t slot = StepHash(state, symbol) & step_mask_;
    for (;;) {
      StepEntry& entry = step_table_[slot];
      if (entry.state < 0) {
        entry.state = state;
        entry.symbol = symbol;
        entry.child_target = child;
        entry.desc_target = desc;
        return;
      }
      if (entry.state == state && entry.symbol == symbol) {
        if (child >= 0) entry.child_target = child;
        if (desc >= 0) entry.desc_target = desc;
        return;
      }
      slot = (slot + 1) & step_mask_;
    }
  };
  for (size_t i = 0; i < states_.size(); ++i) {
    const StateMeta& m = states_[i];
    int32_t state = static_cast<int32_t>(i);
    for (uint32_t e = m.child_begin; e < m.child_end; ++e) {
      upsert(state, named_edges_[e].symbol, named_edges_[e].target, -1);
    }
    for (uint32_t e = m.desc_begin; e < m.desc_end; ++e) {
      upsert(state, named_edges_[e].symbol, -1, named_edges_[e].target);
    }
  }
}

// --- SharedMatcher ----------------------------------------------------------

SharedMatcher::SharedMatcher(const SharedIndex* index, bool bool_only)
    : index_(index), bool_only_(bool_only) {
  in_carry_.assign(index_->state_count(), 0);
  subs_.resize(index_->subscription_count());
  fresh_.emplace_back();
  carry_added_.push_back(0);
}

void SharedMatcher::StartDocument() {
  depth_ = 0;
  end_seen_ = false;
  // A saturated interner re-learns from scratch: ids and cached steps are
  // invalidated together, never separately.
  if (!flat_ok_) ResetFlatUniverse();
  flat_active_ = false;
  carry_.clear();
  std::fill(in_carry_.begin(), in_carry_.end(), 0);
  fresh_[0].clear();
  fresh_[0].push_back(SharedIndex::kRootState);
  carry_added_[0] = 0;
  if (index_->HasDescOut(SharedIndex::kRootState)) {
    carry_.push_back(SharedIndex::kRootState);
    in_carry_[SharedIndex::kRootState] = 1;
    carry_added_[0] = 1;
  }
  for (SubState& sub : subs_) {
    sub.confirmed = false;
    sub.confirm_ns = 0;
    sub.items.clear();
  }
  confirmed_subs_ = 0;
  elements_document_ = 0;
  states_entered_document_ = 0;
}

void SharedMatcher::Fire(uint32_t sub, const DocumentCursor::Node& node,
                         std::string_view name) {
  SubState& state = subs_[sub];
  if (!state.confirmed) {
    state.confirmed = true;
    ++confirmed_subs_;
    if (obs::Enabled()) state.confirm_ns = obs::NowNs();
  }
  if (bool_only_) return;
  // Several accepting states (disjunct chains) can select the same element;
  // ids are strictly increasing across elements, so adjacent-id dedup keeps
  // the item list sorted and duplicate-free.
  if (!state.items.empty() && state.items.back().info.id == node.id) return;
  OutputItem item;
  item.info.id = node.id;
  item.info.parent_id = node.parent_id;
  item.info.ordinal = static_cast<uint32_t>(node.ordinal);
  item.info.level = static_cast<int>(node.level);
  item.info.kind = query::DocNodeKind::kElement;
  item.info.name.assign(name);
  state.items.push_back(std::move(item));
}

void SharedMatcher::Enter(int32_t state, size_t depth,
                          const DocumentCursor::Node& node,
                          std::string_view name) {
  fresh_[depth].push_back(state);
  ++states_entered_document_;
  ++states_entered_total_;
  if (index_->HasDescOut(state) && !in_carry_[static_cast<size_t>(state)]) {
    in_carry_[static_cast<size_t>(state)] = 1;
    carry_.push_back(state);
    ++carry_added_[depth];
  }
  for (const uint32_t* sub = index_->AcceptsBegin(state);
       sub != index_->AcceptsEnd(state); ++sub) {
    Fire(*sub, node, name);
  }
}

void SharedMatcher::StartElement(util::Symbol symbol, std::string_view name,
                                 const DocumentCursor::Node& node) {
  ++elements_total_;
  ++elements_document_;
  const size_t depth = ++depth_;
  if (depth == fresh_.size()) {
    fresh_.emplace_back();
    carry_added_.push_back(0);
  }
  fresh_[depth].clear();
  carry_added_[depth] = 0;

  // Inert fast path (earliest answering): under bool_only, once every
  // subscription is confirmed no transition can change any verdict — the
  // depth bookkeeping above keeps EndElement balanced and the automaton is
  // skipped for the rest of the document.
  if (bool_only_ && confirmed_subs_ == subs_.size()) return;

  util::Symbol s = symbol;
  if (s == util::kInvalidSymbol) {
    // Replay paths without interning; an unseen name has no named edges,
    // but wildcard transitions still apply.
    s = util::SymbolTable::Global().Lookup(name);
  }

  // Descendant transitions fire only from states armed at shallower depths:
  // cap the carry scan before any Enter() of this event can append.
  const size_t carry_before = carry_.size();
  for (int32_t from : fresh_[depth - 1]) {
    index_->ForEachChildTarget(from, s,
                               [&](int32_t t) { Enter(t, depth, node, name); });
  }
  for (size_t i = 0; i < carry_before; ++i) {
    index_->ForEachDescTarget(carry_[i], s,
                              [&](int32_t t) { Enter(t, depth, node, name); });
  }
}

void SharedMatcher::EndElement() {
  XAOS_CHECK(depth_ > 0) << "unbalanced events";
  for (uint32_t k = 0; k < carry_added_[depth_]; ++k) {
    in_carry_[static_cast<size_t>(carry_.back())] = 0;
    carry_.pop_back();
  }
  carry_added_[depth_] = 0;
  fresh_[depth_].clear();
  --depth_;
}

void SharedMatcher::EndDocument() { end_seen_ = true; }

void SharedMatcher::AbortDocument() {
  // Per-subscription confirmation persists (mirrors XaosEngine: the flag
  // survives an abort until the next StartDocument) but Matched() reports
  // false because the document never ended.
  depth_ = 0;
  end_seen_ = false;
  carry_.clear();
  std::fill(in_carry_.begin(), in_carry_.end(), 0);
  for (std::vector<int32_t>& f : fresh_) f.clear();
  std::fill(carry_added_.begin(), carry_added_.end(), 0);
  flat_active_ = false;
}

// --- flat stepping (batched dispatch) ---------------------------------------

namespace {

uint64_t HashStates(const int32_t* data, uint32_t size) {
  uint64_t h = 0x9e3779b97f4a7c15ull + size;
  for (uint32_t i = 0; i < size; ++i) {
    uint64_t x = static_cast<uint32_t>(data[i]);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    h = (h ^ x) * 0x94d049bb133111ebull;
    h ^= h >> 31;
  }
  return h;
}

size_t ConfigHash(uint32_t fresh, uint32_t carry, util::Symbol symbol) {
  uint64_t key = fresh;
  key = key * 0x9e3779b97f4a7c15ull ^ carry;
  key = key * 0x9e3779b97f4a7c15ull ^ static_cast<uint32_t>(symbol);
  key ^= key >> 29;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 32;
  return static_cast<size_t>(key);
}

}  // namespace

void SharedMatcher::ResetFlatUniverse() {
  set_pool_.clear();
  sets_.clear();
  accept_pool_.clear();
  set_accepts_.clear();
  set_table_.assign(1024, 0);
  set_mask_ = set_table_.size() - 1;
  step_cache_.assign(kStepCacheSize, StepSlot{});
  // Id 0 is the empty set; InternSet returns it without a table probe.
  sets_.push_back(SetSpan{0, 0});
  set_accepts_.push_back(SetSpan{0, 0});
  flat_ok_ = true;
  flat_active_ = false;
}

uint32_t SharedMatcher::InternSet(const int32_t* data, uint32_t size,
                                  bool* ok) {
  if (size == 0) return kEmptySetId;
  const uint64_t hash = HashStates(data, size);
  size_t slot = static_cast<size_t>(hash) & set_mask_;
  for (;;) {
    const uint32_t stored = set_table_[slot];
    if (stored == 0) break;  // first fit: not interned yet
    const SetSpan& span = sets_[stored - 1];
    if (span.size == size &&
        std::equal(data, data + size, set_pool_.data() + span.begin)) {
      return stored - 1;
    }
    slot = (slot + 1) & set_mask_;
  }
  if (sets_.size() >= flat_set_limit_) {
    *ok = false;
    return kEmptySetId;
  }
  const uint32_t id = static_cast<uint32_t>(sets_.size());
  SetSpan span;
  span.begin = static_cast<uint32_t>(set_pool_.size());
  span.size = size;
  set_pool_.insert(set_pool_.end(), data, data + size);
  sets_.push_back(span);
  SetSpan accepts;
  accepts.begin = static_cast<uint32_t>(accept_pool_.size());
  for (uint32_t i = 0; i < size; ++i) {
    accept_pool_.insert(accept_pool_.end(), index_->AcceptsBegin(data[i]),
                        index_->AcceptsEnd(data[i]));
  }
  accepts.size = static_cast<uint32_t>(accept_pool_.size()) - accepts.begin;
  set_accepts_.push_back(accepts);
  set_table_[slot] = id + 1;
  if (sets_.size() * 2 > set_table_.size()) {
    // Keep <= 50% load; rehash every id into the doubled table.
    std::vector<uint32_t> bigger(set_table_.size() * 2, 0);
    const size_t mask = bigger.size() - 1;
    for (uint32_t i = 1; i < sets_.size(); ++i) {
      size_t s = static_cast<size_t>(HashStates(
                     set_pool_.data() + sets_[i].begin, sets_[i].size)) &
                 mask;
      while (bigger[s] != 0) s = (s + 1) & mask;
      bigger[s] = i + 1;
    }
    set_table_ = std::move(bigger);
    set_mask_ = mask;
  }
  return id;
}

bool SharedMatcher::ComputeStep(uint32_t fresh, uint32_t carry,
                                util::Symbol symbol, uint32_t* fresh_child,
                                uint32_t* carry_child) {
  // Enter order mirrors StartElement: child transitions from the parent's
  // fresh set (named then wildcard per state), then descendant transitions
  // from the armed carry — accept firing order, and therefore item order
  // and confirmation timing, stay byte-identical to the per-event path.
  flat_entered_scratch_.clear();
  const SetSpan fresh_span = sets_[fresh];
  for (uint32_t i = 0; i < fresh_span.size; ++i) {
    const int32_t from = set_pool_[fresh_span.begin + i];
    if (const SharedIndex::StepEntry* e = index_->FindStep(from, symbol)) {
      if (e->child_target >= 0) {
        flat_entered_scratch_.push_back(e->child_target);
      }
    }
    const int32_t wild = index_->child_wild(from);
    if (wild >= 0) flat_entered_scratch_.push_back(wild);
  }
  const SetSpan carry_span = sets_[carry];
  for (uint32_t i = 0; i < carry_span.size; ++i) {
    const int32_t from = set_pool_[carry_span.begin + i];
    if (const SharedIndex::StepEntry* e = index_->FindStep(from, symbol)) {
      if (e->desc_target >= 0) flat_entered_scratch_.push_back(e->desc_target);
    }
    const int32_t wild = index_->desc_wild(from);
    if (wild >= 0) flat_entered_scratch_.push_back(wild);
  }

  // The child carry is the parent's armed stack extended by entered states
  // with descendant out-edges (arming order = enter order) — the prefix
  // property FlatFallback rebuilds the legacy stack from.
  flat_carry_scratch_.clear();
  for (uint32_t i = 0; i < carry_span.size; ++i) {
    flat_carry_scratch_.push_back(set_pool_[carry_span.begin + i]);
  }
  bool extended = false;
  for (const int32_t entered : flat_entered_scratch_) {
    if (!index_->HasDescOut(entered)) continue;
    if (std::find(flat_carry_scratch_.begin(), flat_carry_scratch_.end(),
                  entered) != flat_carry_scratch_.end()) {
      continue;  // re-entered under an ancestor that already armed it
    }
    flat_carry_scratch_.push_back(entered);
    extended = true;
  }

  bool ok = true;
  *fresh_child =
      InternSet(flat_entered_scratch_.data(),
                static_cast<uint32_t>(flat_entered_scratch_.size()), &ok);
  if (!ok) return false;
  *carry_child =
      extended ? InternSet(flat_carry_scratch_.data(),
                           static_cast<uint32_t>(flat_carry_scratch_.size()),
                           &ok)
               : carry;
  return ok;
}

void SharedMatcher::FlatFallback() {
  // depth_ is the parent depth of the element being started: materialize
  // configurations [0, depth_] into the per-event structures so the legacy
  // StartElement can finish this element and the rest of the document.
  const size_t top = depth_;
  while (fresh_.size() <= top) {
    fresh_.emplace_back();
    carry_added_.push_back(0);
  }
  carry_.clear();
  std::fill(in_carry_.begin(), in_carry_.end(), 0);
  uint32_t prev_carry = 0;
  for (size_t d = 0; d <= top; ++d) {
    const SetSpan fresh_span = sets_[flat_fresh_stack_[d]];
    fresh_[d].assign(
        set_pool_.begin() + fresh_span.begin,
        set_pool_.begin() + fresh_span.begin + fresh_span.size);
    const SetSpan carry_span = sets_[flat_carry_stack_[d]];
    XAOS_CHECK(carry_span.size >= prev_carry) << "carry prefix violated";
    carry_added_[d] = carry_span.size - prev_carry;
    for (uint32_t i = prev_carry; i < carry_span.size; ++i) {
      const int32_t state = set_pool_[carry_span.begin + i];
      carry_.push_back(state);
      in_carry_[static_cast<size_t>(state)] = 1;
    }
    prev_carry = carry_span.size;
  }
  for (size_t d = top + 1; d < fresh_.size(); ++d) {
    fresh_[d].clear();
    carry_added_[d] = 0;
  }
  flat_ok_ = false;
  flat_active_ = false;
}

void SharedMatcher::StartElementFlat(util::Symbol symbol,
                                     std::string_view name,
                                     const DocumentCursor::Node& node) {
  if (!flat_ok_) {
    StartElement(symbol, name, node);
    return;
  }
  if (!flat_active_) {
    // First element of a flat-stepped document: seed depth 0 with the root
    // configuration (StartDocument seeded the legacy structures, which stay
    // authoritative if interning fails right here).
    if (sets_.empty()) ResetFlatUniverse();
    flat_active_ = true;
    int32_t root = SharedIndex::kRootState;
    bool ok = true;
    const uint32_t fresh0 = InternSet(&root, 1, &ok);
    if (!ok) {
      flat_ok_ = false;
      flat_active_ = false;
      StartElement(symbol, name, node);
      return;
    }
    const uint32_t carry0 = index_->HasDescOut(root) ? fresh0 : kEmptySetId;
    flat_fresh_stack_.assign(1, fresh0);
    flat_carry_stack_.assign(1, carry0);
  }

  // Inert fast path (earliest answering), mirroring StartElement: depth
  // bookkeeping only once every subscription is confirmed.
  if (bool_only_ && confirmed_subs_ == subs_.size()) {
    ++elements_total_;
    ++elements_document_;
    const size_t depth = ++depth_;
    if (flat_fresh_stack_.size() <= depth) {
      flat_fresh_stack_.resize(depth + 1);
      flat_carry_stack_.resize(depth + 1);
    }
    flat_fresh_stack_[depth] = kEmptySetId;
    flat_carry_stack_[depth] = kEmptySetId;
    return;
  }

  util::Symbol s = symbol;
  if (s == util::kInvalidSymbol) {
    s = util::SymbolTable::Global().Lookup(name);
  }
  const uint32_t fresh_parent = flat_fresh_stack_[depth_];
  const uint32_t carry_parent = flat_carry_stack_[depth_];
  StepSlot& slot = step_cache_[ConfigHash(fresh_parent, carry_parent, s) &
                               (kStepCacheSize - 1)];
  uint32_t fresh_child;
  uint32_t carry_child;
  if (slot.fresh == fresh_parent && slot.carry == carry_parent &&
      slot.symbol == s) {
    ++flat_cache_hits_;
    fresh_child = slot.fresh_child;
    carry_child = slot.carry_child;
  } else {
    ++flat_cache_misses_;
    if (!ComputeStep(fresh_parent, carry_parent, s, &fresh_child,
                     &carry_child)) {
      FlatFallback();  // interner saturated; depth_ still the parent depth
      StartElement(symbol, name, node);
      return;
    }
    slot.fresh = fresh_parent;
    slot.carry = carry_parent;
    slot.symbol = s;
    slot.fresh_child = fresh_child;
    slot.carry_child = carry_child;
  }

  ++elements_total_;
  ++elements_document_;
  const size_t depth = ++depth_;
  if (flat_fresh_stack_.size() <= depth) {
    flat_fresh_stack_.resize(depth + 1);
    flat_carry_stack_.resize(depth + 1);
  }
  flat_fresh_stack_[depth] = fresh_child;
  flat_carry_stack_[depth] = carry_child;

  const SetSpan entered = sets_[fresh_child];
  states_entered_total_ += entered.size;
  states_entered_document_ += entered.size;
  const SetSpan accepts = set_accepts_[fresh_child];
  for (uint32_t i = 0; i < accepts.size; ++i) {
    Fire(accept_pool_[accepts.begin + i], node, name);
  }
}

void SharedMatcher::EndElementFlat() {
  if (!flat_ok_) {
    EndElement();
    return;
  }
  XAOS_CHECK(depth_ > 0) << "unbalanced events";
  --depth_;
}

QueryResult SharedMatcher::Result(uint32_t sub) const {
  QueryResult result;
  result.matched = Matched(sub);
  if (result.matched && !bool_only_) result.items = subs_[sub].items;
  return result;
}

}  // namespace xaos::core
