#include "core/engine_fleet.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "core/shared_index.h"
#include "obs/metrics.h"

namespace xaos::core {
namespace {

// Folds the growth of the global symbol table since the last fold into the
// process-wide registry. The table is process-global while registries can
// be many, so the counter lives in the default registry and the baseline is
// shared: each fold publishes only the delta it won via CAS (no double
// counting across concurrent fleets).
void FoldSymbolsInterned(obs::MetricsRegistry* registry) {
  static std::atomic<uint64_t> folded{0};
  uint64_t now = util::SymbolTable::Global().size();
  uint64_t prev = folded.load(std::memory_order_relaxed);
  while (prev < now) {
    if (folded.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
      registry->GetCounter("xaos_symbols_interned")->Increment(now - prev);
      break;
    }
  }
}

}  // namespace

void EngineFleet::AddEngine(XaosEngine* engine) {
  engines_.push_back(engine);
  finalized_ = false;
}

void EngineFleet::Finalize() {
  if (finalized_) return;
  always_dispatch_.clear();
  text_engines_.clear();
  by_symbol_.clear();
  for (size_t i = 0; i < engines_.size(); ++i) {
    XaosEngine* engine = engines_[i];
    engine->AttachCursor(&cursor_);
    int idx = static_cast<int>(i);
    // Wildcard tests match any name; sibling axes rely on a dense stack
    // (every element delivered); capture mode records whole subtrees.
    bool always = engine->has_any_element_candidates() ||
                  engine->has_any_attribute_candidates() ||
                  engine->wants_siblings() || engine->captures_subtrees();
    if (always) {
      always_dispatch_.push_back(idx);
    } else {
      for (util::Symbol s : engine->mentioned_symbols()) {
        if (static_cast<size_t>(s) >= by_symbol_.size()) {
          by_symbol_.resize(static_cast<size_t>(s) + 1);
        }
        by_symbol_[static_cast<size_t>(s)].push_back(idx);
      }
    }
    if (engine->wants_text() || engine->captures_subtrees()) {
      text_engines_.push_back(idx);
    }
  }
  stamps_.assign(engines_.size(), 0);
  stamp_ = 0;
  finalized_ = true;
}

void EngineFleet::AddSymbolTargets(util::Symbol symbol,
                                   std::string_view name) {
  util::Symbol s = symbol;
  if (s == util::kInvalidSymbol) {
    // Event source without interning (replay paths). A name the table has
    // never seen cannot be mentioned by any engine.
    s = util::SymbolTable::Global().Lookup(name);
  }
  if (s < 0 || static_cast<size_t>(s) >= by_symbol_.size()) return;
  for (int idx : by_symbol_[static_cast<size_t>(s)]) Deliver(idx);
}

void EngineFleet::StartDocument() {
  Finalize();
  cursor_.Reset();
  depth_ = 0;
  engines_skipped_document_ = 0;
  // The memo holds an inert-filtered candidate set; inertness resets per
  // document, so a stale memo would under-deliver.
  memo_valid_ = false;
  BreakRun();
  if (matcher_ != nullptr) matcher_->StartDocument();
  for (XaosEngine* engine : engines_) engine->StartDocument();
}

void EngineFleet::StartElement(const xml::QName& name,
                               xml::AttributeSpan attributes) {
  cursor_.StartElement(attributes.size());
  if (matcher_ != nullptr) {
    matcher_->StartElement(name.symbol, name.text, cursor_.top());
  }

  if (++stamp_ == 0) {
    // Stamp wrap: invalidate all marks and restart.
    std::fill(stamps_.begin(), stamps_.end(), 0);
    stamp_ = 1;
  }
  delivered_scratch_.clear();
  for (int idx : always_dispatch_) Deliver(idx);
  AddSymbolTargets(name.symbol, name.text);
  for (const xml::AttributeView& attr : attributes) {
    AddSymbolTargets(attr.symbol, attr.name);
  }

  uint64_t skipped = engines_.size() - delivered_scratch_.size();
  engines_skipped_ += skipped;
  engines_skipped_document_ += skipped;

  for (int idx : delivered_scratch_) {
    engines_[static_cast<size_t>(idx)]->StartElement(name, attributes);
  }

  if (depth_ == delivered_stack_.size()) delivered_stack_.emplace_back();
  delivered_stack_[depth_] = delivered_scratch_;  // reuses capacity
  ++depth_;
}

void EngineFleet::EndElement(std::string_view name) {
  XAOS_CHECK(depth_ > 0) << "unbalanced events";
  --depth_;
  for (int idx : delivered_stack_[depth_]) {
    engines_[static_cast<size_t>(idx)]->EndElement(name);
  }
  if (matcher_ != nullptr) matcher_->EndElement();
  cursor_.EndElement();
}

void EngineFleet::Characters(std::string_view text) {
  cursor_.Characters();
  for (int idx : text_engines_) {
    engines_[static_cast<size_t>(idx)]->Characters(text);
  }
}

void EngineFleet::BreakRun() {
  if (run_length_ > 0 && obs::Enabled()) {
    static obs::Histogram* hist =
        obs::MetricsRegistry::Default().GetHistogram(
            "xaos_dispatch_run_length");
    hist->Record(run_length_);
  }
  run_length_ = 0;
}

void EngineFleet::ReplayRun(const xml::EventBatch& batch, size_t begin,
                            size_t end,
                            std::vector<xml::AttributeView>* attr_scratch) {
  const std::vector<xml::BatchedEvent>& events = batch.events();
  for (size_t e = begin; e < end; ++e) {
    const xml::BatchedEvent& event = events[e];
    switch (event.kind) {
      case xml::BatchedEvent::Kind::kStartElement: {
        cursor_.StartElement(event.attr_count);
        const std::string_view name =
            batch.text_slice(event.text_offset, event.text_size);
        if (matcher_ != nullptr) {
          matcher_->StartElementFlat(event.symbol, name, cursor_.top());
        }
        const bool memo_hit = memo_valid_ && event.attr_count == 0 &&
                              event.symbol != util::kInvalidSymbol &&
                              event.symbol == memo_symbol_;
        if (memo_hit) {
          // Same candidate set as the previous start-element: re-filter the
          // memoized set by inert() (inertness is monotone within a
          // document, so this equals a fresh index walk) and skip the walk.
          ++run_length_;
          delivered_scratch_.clear();
          for (int idx : memo_delivered_) {
            if (!engines_[static_cast<size_t>(idx)]->inert()) {
              delivered_scratch_.push_back(idx);
            }
          }
        } else {
          BreakRun();
          run_length_ = 1;
          if (++stamp_ == 0) {
            std::fill(stamps_.begin(), stamps_.end(), 0);
            stamp_ = 1;
          }
          delivered_scratch_.clear();
          for (int idx : always_dispatch_) Deliver(idx);
          AddSymbolTargets(event.symbol, name);
          for (uint32_t a = 0; a < event.attr_count; ++a) {
            const xml::BatchedAttribute& attr =
                batch.attribute(event.attr_begin + a);
            AddSymbolTargets(
                attr.symbol,
                batch.text_slice(attr.name_offset, attr.name_size));
          }
          // Attribute names can widen the candidate set, so only
          // attribute-free elements with an interned symbol are memoizable.
          if (event.attr_count == 0 && event.symbol != util::kInvalidSymbol) {
            memo_valid_ = true;
            memo_symbol_ = event.symbol;
            memo_delivered_ = delivered_scratch_;  // reuses capacity
          } else {
            memo_valid_ = false;
          }
        }

        const uint64_t skipped = engines_.size() - delivered_scratch_.size();
        engines_skipped_ += skipped;
        engines_skipped_document_ += skipped;

        if (!delivered_scratch_.empty()) {
          attr_scratch->clear();
          for (uint32_t a = 0; a < event.attr_count; ++a) {
            const xml::BatchedAttribute& attr =
                batch.attribute(event.attr_begin + a);
            attr_scratch->push_back(xml::AttributeView{
                batch.text_slice(attr.name_offset, attr.name_size),
                batch.text_slice(attr.value_offset, attr.value_size),
                attr.symbol});
          }
          const xml::QName qname(name, event.symbol);
          const xml::AttributeSpan attrs(*attr_scratch);
          for (int idx : delivered_scratch_) {
            engines_[static_cast<size_t>(idx)]->StartElement(qname, attrs);
          }
        }

        if (depth_ == delivered_stack_.size()) delivered_stack_.emplace_back();
        delivered_stack_[depth_] = delivered_scratch_;  // reuses capacity
        ++depth_;
        break;
      }
      case xml::BatchedEvent::Kind::kEndElement: {
        XAOS_CHECK(depth_ > 0) << "unbalanced events";
        --depth_;
        const std::string_view name =
            batch.text_slice(event.text_offset, event.text_size);
        for (int idx : delivered_stack_[depth_]) {
          engines_[static_cast<size_t>(idx)]->EndElement(name);
        }
        if (matcher_ != nullptr) matcher_->EndElementFlat();
        cursor_.EndElement();
        break;
      }
      case xml::BatchedEvent::Kind::kCharacters: {
        cursor_.Characters();
        if (!text_engines_.empty()) {
          const std::string_view text =
              batch.text_slice(event.text_offset, event.text_size);
          for (int idx : text_engines_) {
            engines_[static_cast<size_t>(idx)]->Characters(text);
          }
        }
        break;
      }
      case xml::BatchedEvent::Kind::kSkipSubtree: {
        xml::SkipReport report;
        std::memcpy(
            &report,
            batch.text_slice(event.text_offset, event.text_size).data(),
            sizeof(report));
        cursor_.SkipSubtree(report.node_ids, report.elements);
        break;
      }
      default:
        XAOS_CHECK(false) << "document boundary inside a replay run";
    }
  }
}

void EngineFleet::AbortDocument() {
  depth_ = 0;
  cursor_.Reset();
  memo_valid_ = false;
  BreakRun();
  if (matcher_ != nullptr) matcher_->AbortDocument();
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_dispatch_engines_skipped_total")
        ->Increment(engines_skipped_document_);
  }
  engines_skipped_document_ = 0;
}

void EngineFleet::EndDocument() {
  memo_valid_ = false;
  BreakRun();
  if (matcher_ != nullptr) matcher_->EndDocument();
  for (XaosEngine* engine : engines_) {
    engine->EndDocument();
    // The engine only counted the elements it was shown; fold the filtered
    // ones in as discarded so per-document stats still describe the whole
    // document. (For engines that went inert mid-stream this also covers
    // the post-confirmation tail, same as before dispatch filtering.)
    uint64_t seen = engine->stats().elements_total;
    if (cursor_.elements_total() > seen) {
      engine->AccountSkippedElements(cursor_.elements_total() - seen);
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("xaos_dispatch_engines_skipped_total")
        ->Increment(engines_skipped_document_);
    FoldSymbolsInterned(&registry);
  }
}

}  // namespace xaos::core
