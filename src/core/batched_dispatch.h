// Sequential batched dispatch: the driver between a SAX producer and an
// evaluator's devirtualized batch loop.
//
// The per-event match path pays one virtual ContentHandler hop per SAX
// event before any matching work starts. BatchedDispatcher interposes an
// EventBatcher: parser callbacks append fixed-size records into a pooled
// EventBatch, and each full batch is replayed in one call through
// MultiQueryEvaluator/StreamingEvaluator::ReplayBatch — a single tight loop
// with the cursor, depth stack and candidate lookups hoisted out of the
// per-event path (EngineFleet::ReplayRun), and the shared matcher stepping
// through its flattened transition tables. Results are byte-identical to
// feeding the evaluator directly (the per-event path stays available behind
// EngineOptions::enable_batched_dispatch=false as the differential oracle);
// only the instant at which buffered events reach the evaluator shifts — by
// at most one batch, and Flush() hands over the buffer on demand when a
// caller wants a mid-stream verdict at an exact event boundary.
//
// Batches come from a small internal free pool and return to it after
// replay, so steady-state dispatch performs no heap allocation. An aborting
// batch (mid-stream producer failure) is returned unreplayed; the pool
// return is guarded against double-release, which an AbortDocument
// re-entering mid-publish would otherwise cause.

#ifndef XAOS_CORE_BATCHED_DISPATCH_H_
#define XAOS_CORE_BATCHED_DISPATCH_H_

#include <memory>
#include <vector>

#include "core/multi_engine.h"
#include "xml/event_batch.h"
#include "xml/sax_event.h"

namespace xaos::core {

struct BatchedDispatchOptions {
  // Default batch budgets for the sequential path: large enough to
  // amortize the replay-loop entry, small enough to keep mid-stream
  // verdict latency at sub-document granularity.
  size_t max_batch_events = 256;
  size_t max_batch_text_bytes = 32 * 1024;
};

class BatchedDispatcher : public xml::ContentHandler,
                          private xml::EventBatcher::Sink {
 public:
  using Options = BatchedDispatchOptions;

  explicit BatchedDispatcher(MultiQueryEvaluator* evaluator,
                             Options options = {});
  explicit BatchedDispatcher(StreamingEvaluator* evaluator,
                             Options options = {});

  // ContentHandler: every event is captured into the current batch; full
  // batches replay synchronously into the evaluator. Payload capture is
  // re-decided per document: when no engine reads character data or
  // end-element names, those events are recorded lean (no byte copy).
  void StartDocument() override {
    batcher_.set_lean_payload(!EvaluatorWantsText());
    batcher_.StartDocument();
  }
  void EndDocument() override { batcher_.EndDocument(); }
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override {
    batcher_.StartElement(name, attributes);
  }
  void EndElement(std::string_view name) override {
    batcher_.EndElement(name);
  }
  void Characters(std::string_view text) override {
    batcher_.Characters(text);
  }
  void SkippedSubtree(const xml::SkipReport& report) override {
    batcher_.SkippedSubtree(report);
  }

  // Replays buffered events now, so the evaluator's mid-stream state
  // (MatchConfirmed, early item sinks) reflects everything fed so far.
  void Flush() { batcher_.Flush(); }

  // Abandons the in-progress document: buffered events are discarded (the
  // aborting batch returns to the pool unreplayed — a partial capture must
  // not reach the engines) and the evaluator's AbortDocument runs with
  // `cause`. The dispatcher stays reusable for further documents.
  void AbortDocument(const Status& cause);

  uint64_t batches_replayed() const { return batches_replayed_; }
  size_t pool_free_for_test() const { return free_.size(); }

 private:
  // xml::EventBatcher::Sink
  xml::EventBatch* AcquireBatch() override;
  void PublishBatch(xml::EventBatch* batch) override;

  void ReleaseToPool(xml::EventBatch* batch);
  void Replay(xml::EventBatch* batch);
  bool EvaluatorWantsText();

  MultiQueryEvaluator* multi_ = nullptr;
  StreamingEvaluator* streaming_ = nullptr;
  xml::EventBatcher batcher_;
  std::vector<std::unique_ptr<xml::EventBatch>> pool_;  // owns every batch
  std::vector<xml::EventBatch*> free_;
  std::vector<xml::AttributeView> attr_scratch_;
  uint64_t sequence_ = 0;
  uint64_t batches_replayed_ = 0;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_BATCHED_DISPATCH_H_
