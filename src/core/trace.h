// Event-by-event execution tracing in the style of the paper's Table 2.
//
// TraceHandler wraps a XaosEngine: it forwards every event and emits, per
// element event, a line with the event, the engine's activity delta
// (structures created/undone, propagations) and the resulting looking-for
// set. Useful for debugging queries and for teaching the algorithm — the
// output of the paper's walkthrough query over its Figure 2 document
// reproduces Table 2's columns.
//
// Two output formats are supported:
//  - kTable2: the human-readable aligned text described above.
//  - kJsonLines: one JSON object per event (machine-readable; each line is
//    a self-contained record suitable for `jq` or log ingestion). Element
//    events look like
//      {"step":3,"event":"start","node":"b","created":1,"propagated":0,
//       "optimistic":0,"undone":0,"discarded":0,
//       "looking_for":[{"label":"c","level":3},{"label":"b","level":-1}]}
//    where level -1 encodes the paper's "∞" (any level). The final record
//    is a verdict: {"event":"verdict","matched":true}.

#ifndef XAOS_CORE_TRACE_H_
#define XAOS_CORE_TRACE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/xaos_engine.h"
#include "xml/sax_event.h"

namespace xaos::core {

// Sink for trace lines (e.g. [](std::string_view s){ std::cout << s; }).
using TraceSink = std::function<void(std::string_view)>;

enum class TraceFormat {
  kTable2,     // aligned text, one line per event (paper Table 2)
  kJsonLines,  // one JSON object per event, newline-delimited
};

class TraceHandler : public xml::ContentHandler {
 public:
  // `engine` must outlive the handler; `sink` receives one line per event
  // (newline included).
  TraceHandler(XaosEngine* engine, TraceSink sink,
               TraceFormat format = TraceFormat::kTable2);

  void StartDocument() override;
  void EndDocument() override;
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;

 private:
  // Emits the trace record for a start ('S') or end ('E') event on `node`.
  void Emit(char kind, std::string_view node);
  void EmitTable2(char kind, std::string_view node);
  void EmitJson(char kind, std::string_view node);
  // Emits the final matched/no-match record.
  void EmitVerdict();
  std::string LookingForString() const;
  std::string LookingForJson() const;

  XaosEngine* engine_;
  TraceSink sink_;
  TraceFormat format_;
  int step_ = 0;
  EngineStats before_;
};

// Convenience: evaluates the engine's query over `xml_text` with tracing,
// returning the full trace as one string (and the engine's result through
// `engine`).
std::string TraceDocument(XaosEngine* engine, std::string_view xml_text);

// Same, but emits JSON-lines records (TraceFormat::kJsonLines). A parse
// error appends a final {"event":"error","message":...} record.
std::string TraceDocumentJson(XaosEngine* engine, std::string_view xml_text);

}  // namespace xaos::core

#endif  // XAOS_CORE_TRACE_H_
