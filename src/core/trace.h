// Event-by-event execution tracing in the style of the paper's Table 2.
//
// TraceHandler wraps a XaosEngine: it forwards every event and emits, per
// element event, a line with the event, the engine's activity delta
// (structures created/undone, propagations) and the resulting looking-for
// set. Useful for debugging queries and for teaching the algorithm — the
// output of the paper's walkthrough query over its Figure 2 document
// reproduces Table 2's columns.

#ifndef XAOS_CORE_TRACE_H_
#define XAOS_CORE_TRACE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/xaos_engine.h"
#include "xml/sax_event.h"

namespace xaos::core {

// Sink for trace lines (e.g. [](std::string_view s){ std::cout << s; }).
using TraceSink = std::function<void(std::string_view)>;

class TraceHandler : public xml::ContentHandler {
 public:
  // `engine` must outlive the handler; `sink` receives one line per event
  // (newline included).
  TraceHandler(XaosEngine* engine, TraceSink sink);

  void StartDocument() override;
  void EndDocument() override;
  void StartElement(std::string_view name,
                    const std::vector<xml::Attribute>& attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;

 private:
  // Emits the trace line for the event named `event`.
  void Emit(const std::string& event);
  std::string LookingForString() const;

  XaosEngine* engine_;
  TraceSink sink_;
  int step_ = 0;
  EngineStats before_;
};

// Convenience: evaluates `tree` over `xml_text` with tracing, returning the
// full trace as one string (and the engine's result through `engine`).
std::string TraceDocument(XaosEngine* engine, std::string_view xml_text);

}  // namespace xaos::core

#endif  // XAOS_CORE_TRACE_H_
