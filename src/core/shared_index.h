// Shared-prefix subscription index: many compiled x-dags merged into one
// automaton, for sublinear multi-query matching.
//
// The per-engine pub/sub path (engine_fleet.h) runs one XaosEngine per
// subscription behind a label index; an event still costs O(engines whose
// labels it carries), i.e. linear in the subscription count for popular
// labels. This module collapses the *shareable* subscriptions — queries
// whose x-dags are linear forward chains (child/descendant axes, element or
// wildcard tests, no predicates, no value tests, output at the leaf) — into
// one hash-consed trie-automaton, YFilter-style: structurally identical
// prefix states are shared across subscriptions, and per-subscription
// acceptance sets hang off the accepting states. Fully identical queries
// collapse to a single state chain with an N-entry acceptance set, so
// per-event cost scales with *distinct query structure*, not with the
// subscription count.
//
// Hash-consing invariant: a state is identified by (parent state, edge kind,
// symbol), where edge kind is child/descendant x named/wildcard. Each key
// has at most one target, so a document element can enter any given state at
// most once per event — the runtime needs no per-event deduplication.
//
// The runtime (SharedMatcher) is an NFA simulation with the classic
// fresh/carry split: child transitions fire only from the states entered at
// the parent element ("fresh" set of the parent depth), while descendant
// transitions fire from a persistent "carry" stack of armed states — a
// state with descendant out-edges is armed when entered and stays armed
// until the element that entered it closes, covering its whole subtree.
//
// Queries the merger cannot share (backward or sibling axes, predicates,
// attribute/text tests, value constraints) stay on the per-engine path,
// which doubles as the differential oracle: verdicts and result items are
// byte-identical between the two backends (tests/shared_index_test.cc,
// fuzz/fuzz_shared_index_diff.cc).

#ifndef XAOS_CORE_SHARED_INDEX_H_
#define XAOS_CORE_SHARED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/document_cursor.h"
#include "core/result.h"
#include "query/projection.h"
#include "query/xtree.h"
#include "util/symbol_table.h"

namespace xaos::core {

class SharedIndex;

// Accumulates subscriptions into the hash-consed trie. Build() snapshots it
// into the flat, immutable SharedIndex the matcher runs on; the builder
// stays usable for marginal-cost probes (ParallelFleet shard planning) and
// for further AddSubscription calls followed by a rebuild.
class SharedIndexBuilder {
 public:
  SharedIndexBuilder();

  // True if `tree` is a linear forward chain the merger can represent:
  // Root at node 0, every step child or descendant with an element or
  // wildcard test (no value), single-child spine, output exactly at the
  // leaf.
  static bool ShareableTree(const query::XTree& tree);
  // A query is shareable iff every disjunct tree is.
  static bool Shareable(const std::vector<query::XTree>& trees);

  // States AddSubscription(trees) would create, without inserting — the
  // marginal cost of co-locating this query with the already-inserted pool
  // (0 for a fully shared duplicate). Trees must be shareable.
  size_t MarginalStates(const std::vector<query::XTree>& trees) const;

  // Inserts a subscription's chains and returns its dense id (0, 1, ...).
  // Trees must be shareable (checked).
  uint32_t AddSubscription(const std::vector<query::XTree>& trees);

  // Trie states so far, including the root state.
  size_t state_count() const { return states_.size(); }
  size_t subscription_count() const { return subscription_count_; }
  // Chain nodes inserted before sharing (the root excluded): what a
  // per-subscription representation would have cost. state_count()-1 over
  // this is the sharing ratio.
  uint64_t chain_nodes_total() const { return chain_nodes_total_; }

  // The document-projection spec of the whole inserted pool, derived from
  // one walk of the merged trie. Equivalent to unioning
  // ProjectionSpec::Analyze over every inserted chain: shared prefixes are
  // analyzed once. Empty spec (keeps nothing) when no subscriptions.
  query::ProjectionSpec AnalyzeProjection() const;

  // Snapshots the trie into the immutable runtime form.
  std::unique_ptr<SharedIndex> Build() const;

 private:
  // Edge kinds, two axes x named/wildcard. A named target and a wildcard
  // target of the same parent are distinct states ("/a/b" and "/a/*" do not
  // share their second step).
  enum EdgeKind : uint32_t {
    kChildNamed = 0,
    kDescNamed = 1,
    kChildWild = 2,
    kDescWild = 3,
  };

  struct Edge {
    EdgeKind kind;
    util::Symbol symbol;  // kInvalidSymbol for wildcard kinds
    int32_t target;
  };

  struct State {
    std::vector<Edge> out;
    std::vector<uint32_t> accepts;
    // Projection bookkeeping, fixed at creation (a trie state has exactly
    // one incoming path): document level when every match sits at one
    // depth, kFloatingLevel below a descendant step.
    int level = 0;
    util::Symbol symbol = util::kInvalidSymbol;  // incoming named test
    bool wildcard = false;   // incoming wildcard test
    bool desc_in = false;    // entered via a descendant edge
    bool portal = false;     // fixed-level source of a descendant edge
    bool has_desc_out = false;
  };

  static constexpr int kFloatingLevel = -1;

  static uint64_t EdgeKey(int32_t parent, EdgeKind kind, util::Symbol symbol);
  // Follows (parent, kind, symbol); returns the target or -1.
  int32_t Lookup(int32_t parent, EdgeKind kind, util::Symbol symbol) const;
  // Lookup-or-create; updates portal/has_desc_out bookkeeping.
  int32_t Intern(int32_t parent, EdgeKind kind, util::Symbol symbol);

  std::vector<State> states_;
  std::unordered_map<uint64_t, int32_t> edges_;
  uint32_t subscription_count_ = 0;
  uint64_t chain_nodes_total_ = 0;
  // A descendant edge leaves the root state: every chain below it floats
  // from the document root, so projection degrades to keep-all.
  bool root_portal_ = false;
};

// The immutable runtime form: per-state transition tables as flat sorted
// arrays (binary-searched by symbol), wildcard targets, and acceptance
// slices. Read-only after construction, so fleet workers can share one
// index across threads.
class SharedIndex {
 public:
  struct BuildStats {
    size_t states = 0;          // including the root state
    size_t subscriptions = 0;
    uint64_t chain_nodes = 0;   // pre-merge chain nodes (root excluded)
  };

  static constexpr int32_t kRootState = 0;

  size_t state_count() const { return states_.size(); }
  size_t subscription_count() const { return stats_.subscriptions; }
  const BuildStats& stats() const { return stats_; }

  // Sharing ratio in per-mille: 1000 * (states - root) / chain_nodes.
  // 1000 = nothing shared; small = heavy sharing.
  int64_t SharingRatioPermille() const {
    if (stats_.chain_nodes == 0) return 1000;
    return static_cast<int64_t>((stats_.states - 1) * 1000 /
                                stats_.chain_nodes);
  }

  // Child transition of `state` on `symbol` (named then wildcard target);
  // calls fn(target) for each, at most twice.
  template <typename Fn>
  void ForEachChildTarget(int32_t state, util::Symbol symbol, Fn&& fn) const {
    const StateMeta& m = states_[static_cast<size_t>(state)];
    int32_t named = FindNamed(m.child_begin, m.child_end, symbol);
    if (named >= 0) fn(named);
    if (m.child_wild >= 0) fn(m.child_wild);
  }
  template <typename Fn>
  void ForEachDescTarget(int32_t state, util::Symbol symbol, Fn&& fn) const {
    const StateMeta& m = states_[static_cast<size_t>(state)];
    int32_t named = FindNamed(m.desc_begin, m.desc_end, symbol);
    if (named >= 0) fn(named);
    if (m.desc_wild >= 0) fn(m.desc_wild);
  }

  // --- flat transition table (batched stepping) ---
  // One open-addressed first-fit probe resolves both named targets of
  // (state, symbol); the sorted per-state binary search above stays as the
  // independent per-event oracle. Entries exist only for keys with at least
  // one named edge.
  struct StepEntry {
    int32_t state = -1;  // -1 marks an empty slot
    util::Symbol symbol = util::kInvalidSymbol;
    int32_t child_target = -1;
    int32_t desc_target = -1;
  };
  const StepEntry* FindStep(int32_t state, util::Symbol symbol) const {
    if (step_mask_ == 0 || symbol == util::kInvalidSymbol) return nullptr;
    size_t slot = StepHash(state, symbol) & step_mask_;
    for (;;) {
      const StepEntry& entry = step_table_[slot];
      if (entry.state == state && entry.symbol == symbol) return &entry;
      if (entry.state < 0) return nullptr;
      slot = (slot + 1) & step_mask_;
    }
  }
  int32_t child_wild(int32_t state) const {
    return states_[static_cast<size_t>(state)].child_wild;
  }
  int32_t desc_wild(int32_t state) const {
    return states_[static_cast<size_t>(state)].desc_wild;
  }

  bool HasDescOut(int32_t state) const {
    return states_[static_cast<size_t>(state)].has_desc_out;
  }
  // Subscriptions accepted at `state` ([begin, end) into a stable array).
  const uint32_t* AcceptsBegin(int32_t state) const {
    return accepts_.data() + states_[static_cast<size_t>(state)].accept_begin;
  }
  const uint32_t* AcceptsEnd(int32_t state) const {
    return accepts_.data() + states_[static_cast<size_t>(state)].accept_end;
  }

 private:
  friend class SharedIndexBuilder;

  struct StateMeta {
    uint32_t child_begin = 0, child_end = 0;  // into named_edges_
    uint32_t desc_begin = 0, desc_end = 0;    // into named_edges_
    int32_t child_wild = -1;
    int32_t desc_wild = -1;
    uint32_t accept_begin = 0, accept_end = 0;
    bool has_desc_out = false;
  };
  struct NamedEdge {
    util::Symbol symbol;
    int32_t target;
  };

  int32_t FindNamed(uint32_t begin, uint32_t end, util::Symbol symbol) const;

  static size_t StepHash(int32_t state, util::Symbol symbol) {
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(state)) << 32) |
                   static_cast<uint32_t>(symbol);
    // splitmix64 finalizer: dense state/symbol ids need real mixing before
    // the power-of-two mask.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return static_cast<size_t>(key);
  }
  void BuildStepTable();

  std::vector<StateMeta> states_;
  std::vector<NamedEdge> named_edges_;  // child slice then desc slice, sorted
  std::vector<uint32_t> accepts_;
  std::vector<StepEntry> step_table_;   // open-addressed, power-of-two size
  size_t step_mask_ = 0;                // table size - 1; 0 = no named edges
  BuildStats stats_;
};

// Per-evaluator runtime over one SharedIndex: the only mutable state of the
// shared backend. Driven by EngineFleet for every element event (the trie
// is its own index; no label pre-filtering). Verdict semantics mirror
// XaosEngine: MatchConfirmed is monotone and usable mid-stream, Matched and
// Result are valid after EndDocument, an aborted document reports
// Matched() == false while the confirmation flag persists until the next
// StartDocument.
class SharedMatcher {
 public:
  // `index` must outlive the matcher. `bool_only` mirrors
  // EngineOptions::stop_after_confirmed_match: report matched with no
  // items.
  SharedMatcher(const SharedIndex* index, bool bool_only);

  void StartDocument();
  // `node` is the cursor node of the element being started (the fleet
  // advances the shared cursor first). `symbol` may be kInvalidSymbol
  // (replay paths); `name` resolves it.
  void StartElement(util::Symbol symbol, std::string_view name,
                    const DocumentCursor::Node& node);
  void EndElement();
  void EndDocument();
  void AbortDocument();

  // Batched stepping (EngineFleet::ReplayRun): observable behavior is
  // byte-identical to StartElement/EndElement, but an element is stepped as
  // one interned (fresh-set, carry-set) configuration through the index's
  // flat transition table, with a direct-mapped (config, symbol) step cache
  // short-circuiting repeated tags to two id pushes and the accept scan.
  // Interned configurations are document-independent and persist across
  // documents; if the interner saturates (set_flat_set_limit_for_test, or
  // pathological tag diversity), the current depth stack is materialized
  // back into the per-event structures and the document finishes on the
  // legacy path — the next StartDocument re-learns from an empty interner.
  // A document must be stepped through exactly one of the two paths.
  void StartElementFlat(util::Symbol symbol, std::string_view name,
                        const DocumentCursor::Node& node);
  void EndElementFlat();

  // --- flat-path introspection (tests, benches) ---
  void set_flat_set_limit_for_test(size_t limit) { flat_set_limit_ = limit; }
  bool flat_fallback_active() const { return !flat_ok_; }
  uint64_t flat_cache_hits() const { return flat_cache_hits_; }
  uint64_t flat_cache_misses() const { return flat_cache_misses_; }

  // Valid after EndDocument (false mid-stream and after an abort).
  bool Matched(uint32_t sub) const {
    return end_seen_ && subs_[sub].confirmed;
  }
  // Monotone mid-stream confirmation, like XaosEngine::match_confirmed.
  bool MatchConfirmed(uint32_t sub) const { return subs_[sub].confirmed; }
  // obs::NowNs() of the confirmation transition; 0 unmatched / obs off.
  uint64_t confirm_ns(uint32_t sub) const { return subs_[sub].confirm_ns; }
  // The subscription's result; items in document order, deduplicated
  // (empty under bool_only, like stop_after_confirmed_match).
  QueryResult Result(uint32_t sub) const;

  // --- accounting (cumulative across documents) ---
  uint64_t elements_total() const { return elements_total_; }
  uint64_t states_entered_total() const { return states_entered_total_; }
  // This document's element / state-entry counts (dispatch-work-saved
  // attribution at document end).
  uint64_t elements_document() const { return elements_document_; }
  uint64_t states_entered_document() const { return states_entered_document_; }

 private:
  struct SubState {
    bool confirmed = false;
    uint64_t confirm_ns = 0;
    std::vector<OutputItem> items;
  };

  void Enter(int32_t state, size_t depth, const DocumentCursor::Node& node,
             std::string_view name);
  void Fire(uint32_t sub, const DocumentCursor::Node& node,
            std::string_view name);

  // --- flat stepping internals ---
  // Interns the state list [data, data+size) and returns its id; sets *ok
  // to false (id unusable) when the interner is at flat_set_limit_.
  uint32_t InternSet(const int32_t* data, uint32_t size, bool* ok);
  // Computes the child configuration of (fresh, carry) on `symbol` through
  // the flat table. False = interner saturated, nothing was pushed.
  bool ComputeStep(uint32_t fresh, uint32_t carry, util::Symbol symbol,
                   uint32_t* fresh_child, uint32_t* carry_child);
  // Materializes fresh_/carry_/in_carry_/carry_added_ from the flat depth
  // stacks [0, depth_] and routes the rest of the document to the legacy
  // per-event path.
  void FlatFallback();
  // Drops every interned set and cached step (set ids are invalidated
  // together, so the step cache can never serve a stale id).
  void ResetFlatUniverse();

  const SharedIndex* index_;
  bool bool_only_;

  // fresh_[d]: states entered at the open element of depth d (document
  // element at 1; fresh_[0] holds the root state). Vectors are reused
  // across elements at the same depth, allocation-free in steady state.
  std::vector<std::vector<int32_t>> fresh_;
  // Armed states with descendant out-edges, in arming order (a stack:
  // deeper arms are popped before shallower ones). carry_added_[d] entries
  // were armed at depth d.
  std::vector<int32_t> carry_;
  std::vector<uint32_t> carry_added_;
  std::vector<uint8_t> in_carry_;  // per state
  size_t depth_ = 0;
  bool end_seen_ = false;

  std::vector<SubState> subs_;
  // Subscriptions confirmed this document. Under bool_only, once every
  // subscription is confirmed no transition can change any verdict, so
  // StartElement degrades to depth bookkeeping (earliest answering's inert
  // mode for the shared acceptance path).
  uint32_t confirmed_subs_ = 0;

  uint64_t elements_total_ = 0;
  uint64_t states_entered_total_ = 0;
  uint64_t elements_document_ = 0;
  uint64_t states_entered_document_ = 0;

  // --- flat stepping state (batched dispatch) ---
  // Active-state sets interned into one flat pool: sets_[id] spans pool_.
  // Id 0 is always the empty set. Configurations (fresh id, carry id) per
  // depth replace the per-event vectors; a carry set is always a prefix
  // extension of its parent depth's carry set, which is what FlatFallback
  // relies on to rebuild the legacy armed stack.
  struct SetSpan {
    uint32_t begin = 0;
    uint32_t size = 0;
  };
  static constexpr uint32_t kEmptySetId = 0;
  static constexpr size_t kDefaultFlatSetLimit = 1 << 16;
  static constexpr size_t kStepCacheSize = 4096;  // direct-mapped, power of 2

  struct StepSlot {
    uint32_t fresh = UINT32_MAX;  // UINT32_MAX = never filled
    uint32_t carry = 0;
    util::Symbol symbol = util::kInvalidSymbol;
    uint32_t fresh_child = 0;
    uint32_t carry_child = 0;
  };

  std::vector<int32_t> set_pool_;
  std::vector<SetSpan> sets_;
  // Per-set accept lists, concatenated in member-state order at intern
  // time: the per-element fire loop reads one span (usually empty) instead
  // of probing every entered state's accept range.
  std::vector<uint32_t> accept_pool_;
  std::vector<SetSpan> set_accepts_;
  std::vector<uint32_t> set_table_;  // open-addressed: id + 1, 0 = empty
  size_t set_mask_ = 0;
  std::vector<StepSlot> step_cache_;
  std::vector<uint32_t> flat_fresh_stack_;  // config ids, indexed by depth
  std::vector<uint32_t> flat_carry_stack_;
  std::vector<int32_t> flat_entered_scratch_;
  std::vector<int32_t> flat_carry_scratch_;
  size_t flat_set_limit_ = kDefaultFlatSetLimit;
  bool flat_ok_ = true;      // false: fell back to the legacy path mid-doc
  bool flat_active_ = false; // this document is being stepped flat
  uint64_t flat_cache_hits_ = 0;
  uint64_t flat_cache_misses_ = 0;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_SHARED_INDEX_H_
