#include "core/batched_dispatch.h"

#include <algorithm>

namespace xaos::core {

BatchedDispatcher::BatchedDispatcher(MultiQueryEvaluator* evaluator,
                                     Options options)
    : multi_(evaluator),
      batcher_(this, options.max_batch_events, options.max_batch_text_bytes) {}

BatchedDispatcher::BatchedDispatcher(StreamingEvaluator* evaluator,
                                     Options options)
    : streaming_(evaluator),
      batcher_(this, options.max_batch_events, options.max_batch_text_bytes) {}

xml::EventBatch* BatchedDispatcher::AcquireBatch() {
  if (free_.empty()) {
    pool_.push_back(std::make_unique<xml::EventBatch>());
    return pool_.back().get();
  }
  xml::EventBatch* batch = free_.back();
  free_.pop_back();
  return batch;
}

void BatchedDispatcher::ReleaseToPool(xml::EventBatch* batch) {
  // Guard against double-release: an AbortDocument firing while the batch
  // is mid-publish (abort cause raised by replay-side observers) would
  // publish the same pointer again; a duplicate free-list entry would hand
  // one batch to two writers later.
  if (std::find(free_.begin(), free_.end(), batch) != free_.end()) return;
  batch->Clear();
  free_.push_back(batch);
}

bool BatchedDispatcher::EvaluatorWantsText() {
  return multi_ != nullptr ? multi_->wants_text_events()
                           : streaming_->wants_text_events();
}

void BatchedDispatcher::Replay(xml::EventBatch* batch) {
  if (multi_ != nullptr) {
    multi_->ReplayBatch(*batch, &attr_scratch_);
  } else {
    streaming_->ReplayBatch(*batch, &attr_scratch_);
  }
}

void BatchedDispatcher::PublishBatch(xml::EventBatch* batch) {
  if (batch->aborts_document()) {
    // Partial capture of an abandoned document: never replay it. The
    // evaluator's AbortDocument (run by our caller) does the bookkeeping.
    ReleaseToPool(batch);
    return;
  }
  batch->set_sequence(++sequence_);
  Replay(batch);
  ++batches_replayed_;
  ReleaseToPool(batch);
}

void BatchedDispatcher::AbortDocument(const Status& cause) {
  // Publishes the current batch with the abort marker (discarded above),
  // then resets the evaluator. Order matters: the batcher must let go of
  // its in-flight batch before the next document starts filling a new one.
  batcher_.AbortDocument();
  if (multi_ != nullptr) {
    multi_->AbortDocument(cause);
  } else {
    streaming_->AbortDocument(cause);
  }
}

}  // namespace xaos::core
