#include "core/engine_stats.h"

namespace xaos::core {

void EngineStats::ToMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) const {
  registry->GetCounter(prefix + "elements_total")->Increment(elements_total);
  registry->GetCounter(prefix + "elements_discarded_total")
      ->Increment(elements_discarded);
  registry->GetCounter(prefix + "structures_created_total")
      ->Increment(structures_created);
  registry->GetCounter(prefix + "structures_undone_total")
      ->Increment(structures_undone);
  registry->GetCounter(prefix + "propagations_total")
      ->Increment(propagations);
  registry->GetCounter(prefix + "optimistic_propagations_total")
      ->Increment(optimistic_propagations);
  registry->GetCounter(prefix + "candidates_emitted_early_total")
      ->Increment(candidates_emitted_early);
  // Exact names from the observability contract (no prefix): total bytes
  // the matching arenas served in place of heap allocations, and structures
  // eagerly reclaimed by earliest answering.
  registry->GetCounter("xaos_arena_bytes_allocated")
      ->Increment(arena_bytes_allocated);
  registry->GetCounter("xaos_candidates_reclaimed_total")
      ->Increment(candidates_reclaimed);
  registry->GetGauge(prefix + "structures_live")
      ->Set(static_cast<int64_t>(structures_live));
  registry->GetGauge(prefix + "structures_live_peak")
      ->SetMax(static_cast<int64_t>(structures_live_peak));
  registry->GetGauge(prefix + "structure_bytes_live")
      ->Set(static_cast<int64_t>(structure_memory.live_bytes));
  registry->GetGauge(prefix + "structure_bytes_peak")
      ->SetMax(static_cast<int64_t>(structure_memory.peak_bytes));
}

}  // namespace xaos::core
