#include "core/trace.h"

#include <utility>

#include "obs/json.h"
#include "xml/sax_parser.h"

namespace xaos::core {

TraceHandler::TraceHandler(XaosEngine* engine, TraceSink sink,
                           TraceFormat format)
    : engine_(engine), sink_(std::move(sink)), format_(format) {}

std::string TraceHandler::LookingForString() const {
  std::string out = "{";
  bool first = true;
  for (const LookingForEntry& entry : engine_->DebugLookingForSet()) {
    if (!first) out += ", ";
    first = false;
    out += "(" + entry.label + ", ";
    out += entry.level == LookingForEntry::kAnyLevel
               ? "inf"
               : std::to_string(entry.level);
    out += ")";
  }
  return out + "}";
}

std::string TraceHandler::LookingForJson() const {
  std::string out = "[";
  bool first = true;
  for (const LookingForEntry& entry : engine_->DebugLookingForSet()) {
    if (!first) out += ",";
    first = false;
    out += "{\"label\":\"" + obs::JsonEscape(entry.label) + "\",\"level\":";
    // -1 encodes the paper's "∞" (the entry matches at any level).
    out += entry.level == LookingForEntry::kAnyLevel
               ? "-1"
               : std::to_string(entry.level);
    out += "}";
  }
  return out + "]";
}

void TraceHandler::Emit(char kind, std::string_view node) {
  if (format_ == TraceFormat::kJsonLines) {
    EmitJson(kind, node);
  } else {
    EmitTable2(kind, node);
  }
  before_ = engine_->stats();
}

void TraceHandler::EmitTable2(char kind, std::string_view node) {
  const EngineStats& now = engine_->stats();
  std::string line = std::to_string(++step_) + "  " + kind + ": ";
  line.append(node);
  line.append(line.size() < 24 ? 24 - line.size() : 1, ' ');

  std::string actions;
  auto delta = [&](uint64_t now_v, uint64_t before_v, const char* label) {
    if (now_v > before_v) {
      if (!actions.empty()) actions += ", ";
      actions += std::to_string(now_v - before_v) + " " + label;
    }
  };
  delta(now.structures_created, before_.structures_created, "matched");
  delta(now.propagations, before_.propagations, "propagated");
  delta(now.optimistic_propagations, before_.optimistic_propagations,
        "optimistic");
  delta(now.structures_undone, before_.structures_undone, "undone");
  delta(now.elements_discarded, before_.elements_discarded, "discarded");
  if (actions.empty()) actions = "-";
  actions.append(actions.size() < 44 ? 44 - actions.size() : 1, ' ');

  line += actions + "L = " + LookingForString() + "\n";
  sink_(line);
}

void TraceHandler::EmitJson(char kind, std::string_view node) {
  const EngineStats& now = engine_->stats();
  auto delta = [](uint64_t now_v, uint64_t before_v) {
    return std::to_string(now_v - before_v);
  };
  std::string line = "{\"step\":" + std::to_string(++step_);
  line += ",\"event\":\"";
  line += kind == 'S' ? "start" : "end";
  line += "\",\"node\":\"" + obs::JsonEscape(node) + "\"";
  line +=
      ",\"created\":" + delta(now.structures_created,
                              before_.structures_created);
  line += ",\"propagated\":" + delta(now.propagations, before_.propagations);
  line += ",\"optimistic\":" + delta(now.optimistic_propagations,
                                     before_.optimistic_propagations);
  line += ",\"undone\":" + delta(now.structures_undone,
                                 before_.structures_undone);
  line += ",\"discarded\":" + delta(now.elements_discarded,
                                    before_.elements_discarded);
  line += ",\"looking_for\":" + LookingForJson() + "}\n";
  sink_(line);
}

void TraceHandler::EmitVerdict() {
  if (format_ == TraceFormat::kJsonLines) {
    sink_(engine_->Matched() ? "{\"event\":\"verdict\",\"matched\":true}\n"
                             : "{\"event\":\"verdict\",\"matched\":false}\n");
  } else {
    sink_(engine_->Matched() ? "=> matched\n" : "=> no match\n");
  }
}

void TraceHandler::StartDocument() {
  step_ = 0;
  engine_->StartDocument();
  before_ = engine_->stats();
  Emit('S', "Root");
}

void TraceHandler::EndDocument() {
  engine_->EndDocument();
  Emit('E', "Root");
  EmitVerdict();
}

void TraceHandler::StartElement(const xml::QName& name,
                                xml::AttributeSpan attrs) {
  engine_->StartElement(name, attrs);
  Emit('S', name.text);
}

void TraceHandler::EndElement(std::string_view name) {
  engine_->EndElement(name);
  Emit('E', name);
}

void TraceHandler::Characters(std::string_view text) {
  engine_->Characters(text);
}

namespace {

std::string TraceWithFormat(XaosEngine* engine, std::string_view xml_text,
                            TraceFormat format) {
  std::string trace;
  TraceHandler handler(
      engine,
      [&trace](std::string_view line) { trace.append(line.data(), line.size()); },
      format);
  Status status = xml::ParseString(xml_text, &handler);
  if (!status.ok()) {
    if (format == TraceFormat::kJsonLines) {
      trace += "{\"event\":\"error\",\"message\":\"" +
               obs::JsonEscape(status.ToString()) + "\"}\n";
    } else {
      trace += "parse error: " + status.ToString() + "\n";
    }
  }
  return trace;
}

}  // namespace

std::string TraceDocument(XaosEngine* engine, std::string_view xml_text) {
  return TraceWithFormat(engine, xml_text, TraceFormat::kTable2);
}

std::string TraceDocumentJson(XaosEngine* engine, std::string_view xml_text) {
  return TraceWithFormat(engine, xml_text, TraceFormat::kJsonLines);
}

}  // namespace xaos::core
