#include "core/trace.h"

#include <utility>

#include "xml/sax_parser.h"

namespace xaos::core {

TraceHandler::TraceHandler(XaosEngine* engine, TraceSink sink)
    : engine_(engine), sink_(std::move(sink)) {}

std::string TraceHandler::LookingForString() const {
  std::string out = "{";
  bool first = true;
  for (const LookingForEntry& entry : engine_->DebugLookingForSet()) {
    if (!first) out += ", ";
    first = false;
    out += "(" + entry.label + ", ";
    out += entry.level == LookingForEntry::kAnyLevel
               ? "inf"
               : std::to_string(entry.level);
    out += ")";
  }
  return out + "}";
}

void TraceHandler::Emit(const std::string& event) {
  const EngineStats& now = engine_->stats();
  std::string line = std::to_string(++step_) + "  " + event;
  line.append(line.size() < 24 ? 24 - line.size() : 1, ' ');

  std::string actions;
  auto delta = [&](uint64_t now_v, uint64_t before_v, const char* label) {
    if (now_v > before_v) {
      if (!actions.empty()) actions += ", ";
      actions += std::to_string(now_v - before_v) + " " + label;
    }
  };
  delta(now.structures_created, before_.structures_created, "matched");
  delta(now.propagations, before_.propagations, "propagated");
  delta(now.optimistic_propagations, before_.optimistic_propagations,
        "optimistic");
  delta(now.structures_undone, before_.structures_undone, "undone");
  delta(now.elements_discarded, before_.elements_discarded, "discarded");
  if (actions.empty()) actions = "-";
  actions.append(actions.size() < 44 ? 44 - actions.size() : 1, ' ');

  line += actions + "L = " + LookingForString() + "\n";
  before_ = now;
  sink_(line);
}

void TraceHandler::StartDocument() {
  step_ = 0;
  engine_->StartDocument();
  before_ = engine_->stats();
  Emit("S: Root");
}

void TraceHandler::EndDocument() {
  engine_->EndDocument();
  Emit("E: Root");
  sink_(engine_->Matched() ? "=> matched\n" : "=> no match\n");
}

void TraceHandler::StartElement(std::string_view name,
                                const std::vector<xml::Attribute>& attrs) {
  engine_->StartElement(name, attrs);
  Emit("S: " + std::string(name));
}

void TraceHandler::EndElement(std::string_view name) {
  engine_->EndElement(name);
  Emit("E: " + std::string(name));
}

void TraceHandler::Characters(std::string_view text) {
  engine_->Characters(text);
}

std::string TraceDocument(XaosEngine* engine, std::string_view xml_text) {
  std::string trace;
  TraceHandler handler(engine, [&trace](std::string_view line) {
    trace.append(line.data(), line.size());
  });
  Status status = xml::ParseString(xml_text, &handler);
  if (!status.ok()) {
    trace += "parse error: " + status.ToString() + "\n";
  }
  return trace;
}

}  // namespace xaos::core
