// A shared document cursor: uniform node-id, level and ordinal assignment
// for a fleet of engines fed from one event stream.
//
// Historically each XaosEngine numbered document nodes with its own private
// counter, advanced only by the events it chose to receive (attributes and
// text were numbered only when the query mentioned them). With label-indexed
// dispatch an engine no longer sees every event, so ids must come from a
// source that does: the fleet advances one DocumentCursor per event and
// every engine reads ids from it. The numbering is uniform — every element,
// every attribute and every text run gets an id whether or not any engine
// cares — so ids are identical across engines and monotone in document
// order (the property the engine's ancestor/ordering checks rely on).
//
// An engine attached to a cursor keeps only a *sparse* stack (frames for
// elements it was shown); parent-id guards in its matching logic treat
// skipped ancestors as empty frames.

#ifndef XAOS_CORE_DOCUMENT_CURSOR_H_
#define XAOS_CORE_DOCUMENT_CURSOR_H_

#include <cstdint>
#include <vector>

#include "core/element_info.h"
#include "util/check.h"

namespace xaos::core {

class DocumentCursor {
 public:
  struct Node {
    ElementId id = 0;         // this element's id (virtual root: 0)
    ElementId parent_id = 0;
    ElementId attr_base = 0;  // id of this element's first attribute
    uint32_t level = 0;       // virtual root: 0, document element: 1
    uint64_t ordinal = 0;     // 1-based start-element ordinal; root: 0
  };

  DocumentCursor() { Reset(); }

  // Starts a new document: spine holds only the virtual root.
  void Reset() {
    spine_.clear();
    spine_.push_back(Node{});
    next_id_ = 1;
    text_id_ = 0;
    elements_total_ = 0;
  }

  // Advances past a start-element with `attr_count` attributes. Ids are
  // assigned in event order: the element first, then one per attribute.
  void StartElement(size_t attr_count) {
    Node node;
    node.parent_id = spine_.back().id;
    node.id = next_id_++;
    node.attr_base = next_id_;
    next_id_ += static_cast<ElementId>(attr_count);
    node.level = static_cast<uint32_t>(spine_.size());
    node.ordinal = ++elements_total_;
    spine_.push_back(node);
  }

  void EndElement() {
    XAOS_CHECK(spine_.size() > 1);
    spine_.pop_back();
  }

  // Advances past one text run (each run gets its own id).
  void Characters() { text_id_ = next_id_++; }

  // Advances past a skipped subtree (document projection): `node_ids` ids
  // and `elements` start-elements the subtree would have consumed, so ids
  // and ordinals downstream stay identical to a full parse.
  void SkipSubtree(uint64_t node_ids, uint64_t elements) {
    next_id_ += static_cast<ElementId>(node_ids);
    elements_total_ += elements;
  }

  // The innermost open element (or the virtual root).
  const Node& top() const { return spine_.back(); }
  // Depth of the spine including the virtual root (== top().level + 1).
  size_t depth() const { return spine_.size(); }

  // Id of attribute `k` (0-based) of the innermost open element.
  ElementId attribute_id(size_t k) const {
    return spine_.back().attr_base + static_cast<ElementId>(k);
  }
  // Id of the text run most recently announced via Characters().
  ElementId text_id() const { return text_id_; }

  // Total start-elements seen this document.
  uint64_t elements_total() const { return elements_total_; }

 private:
  std::vector<Node> spine_;
  ElementId next_id_ = 1;
  ElementId text_id_ = 0;
  uint64_t elements_total_ = 0;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_DOCUMENT_CURSOR_H_
