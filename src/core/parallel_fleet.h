// Parallel engine fleet: parse once, match on N worker threads.
//
// The single-threaded MultiQueryEvaluator already makes per-event cost
// sub-linear in the subscription count via label-indexed dispatch, but the
// whole fleet still shares one core with the parser. ParallelFleet splits
// the work across threads with the shape streaming pub/sub systems use:
//
//   parse thread ──batches──> worker 0: shard {q3, q7, ...}
//               └─batches──> worker 1: shard {q1, q4, ...}   ...
//
// One SAX parse (the caller's thread — ParallelFleet is a ContentHandler)
// captures the event stream into EventBatches (xml/event_batch.h): events
// carry interned Symbols and slices of a batch-owned text arena, so a
// sealed batch is immutable and safely shared. Each worker owns a disjoint
// shard of the subscriptions — a full MultiQueryEvaluator with its own
// EngineFleet, DocumentCursor and per-engine arenas — and consumes every
// batch through a bounded lock-free SPSC ring (util/spsc_ring.h), so no
// engine state is ever touched by two threads. Because every shard replays
// the entire event stream, each shard's DocumentCursor assigns the same
// node ids the sequential evaluator would, which is what makes per-query
// results byte-identical to MultiQueryEvaluator and lets the end-of-
// document merge simply concatenate per-shard answers (each per-query
// result is already in document order; see DESIGN.md "Threading model").
//
// EndDocument blocks until every shard has drained the document, after
// which Matched()/Result()/status() are safe to read from the calling
// thread. Between documents the workers park; the fleet is reusable for a
// stream of documents like the sequential evaluators.

#ifndef XAOS_CORE_PARALLEL_FLEET_H_
#define XAOS_CORE_PARALLEL_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/multi_engine.h"
#include "util/spsc_ring.h"
#include "xml/event_batch.h"

namespace xaos::core {

struct ParallelFleetOptions {
  // Worker (match) threads. Clamped to [1, query count] at finalization —
  // a shard with no engines would only burn a core replaying the stream.
  int num_workers = 2;
  // A batch is published once it holds this many events ...
  size_t max_batch_events = 512;
  // ... or its text arena reaches this many bytes, whichever first.
  size_t max_batch_text_bytes = 64 * 1024;
  // Batches in flight per worker ring; the producer stalls when the
  // slowest worker falls this far behind (bounded memory back-pressure).
  size_t ring_capacity = 8;
  // Adaptive publish coalescing: when the producer stalls on a full ring,
  // the per-batch event budget doubles (up to `max_batch_events_cap`) so
  // fewer, larger publishes amortize ring traffic exactly when the rings
  // are saturated; after `adaptive_decay_publishes` consecutive stall-free
  // publishes the budget halves back toward `max_batch_events`, restoring
  // low batch latency for light loads.
  bool adaptive_batching = true;
  size_t max_batch_events_cap = 8192;
  size_t adaptive_decay_publishes = 16;
  EngineOptions engine_options;
};

// The producer-side controller for adaptive publish coalescing, driven by
// the same stall signal the kPublishStall spans record. Exposed for unit
// tests; ParallelFleet owns one and applies it per publish.
struct AdaptiveBatchPolicy {
  size_t base = 512;
  size_t cap = 8192;
  size_t decay_publishes = 16;
  size_t current = 512;
  size_t quiet = 0;  // consecutive stall-free publishes

  // Feeds one publish's outcome; returns the event budget for the next
  // batch. Growth is immediate (stalls are expensive), decay is slow
  // (half after a quiet stretch) so the budget doesn't oscillate.
  size_t OnPublish(bool stalled) {
    if (stalled) {
      quiet = 0;
      if (current < cap) current = current * 2 < cap ? current * 2 : cap;
    } else if (current > base && ++quiet >= decay_publishes) {
      quiet = 0;
      current = current / 2 > base ? current / 2 : base;
    }
    return current;
  }
};

// Per-shard accounting, readable after EndDocument (cumulative).
struct ParallelShardStats {
  size_t query_count = 0;
  size_t engine_count = 0;
  uint64_t cost_estimate = 0;     // sharding heuristic's load estimate
  uint64_t batches_consumed = 0;
  uint64_t events_processed = 0;
  // Producer time spent stalled on this shard's full ring (the
  // back-pressure the PR-3 writeup named as the bottleneck), and the
  // shard's own parked time while waiting for a batch. Park time spans
  // from the first park to the next successful pop, so it includes idle
  // gaps between documents, not just mid-document starvation.
  uint64_t publish_stall_ns = 0;  // written by the producer thread
  uint64_t park_wait_ns = 0;      // written by the worker thread
  uint64_t parks = 0;             // park episodes (worker thread)
};

class ParallelFleet : public xml::ContentHandler,
                      private xml::EventBatcher::Sink {
 public:
  explicit ParallelFleet(ParallelFleetOptions options = {});
  ~ParallelFleet() override;

  ParallelFleet(const ParallelFleet&) = delete;
  ParallelFleet& operator=(const ParallelFleet&) = delete;

  // Registers a subscription; returns its index. All queries must be added
  // before the first StartDocument. `label` names the subscription in
  // exported latency series (see MultiQueryEvaluator::AddQuery); empty
  // derives "q<index>" from the fleet-wide index so labels stay unique
  // across shards.
  size_t AddQuery(const Query& query, std::string_view label = {});
  size_t query_count() const { return assignments_.size(); }

  // Builds the shards and spawns the workers. Called lazily by the first
  // StartDocument; call explicitly to take the cost out of the timed path.
  void Finalize();

  // ContentHandler interface — the calling thread is the parse/producer
  // thread. EndDocument blocks until all shards finished the document. A
  // stream abandoned mid-document (parse error, limit rejection) must be
  // closed out with AbortDocument before the next StartDocument.
  void StartDocument() override;
  void EndDocument() override;
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;
  void SkippedSubtree(const xml::SkipReport& report) override;

  // Document-projection filter covering the union of all registered
  // subscriptions. Finalizes the fleet (no queries can be added after this
  // call). Install via xml::ParserOptions::projection_filter: the producer
  // forwards each skip into the batch stream, so every shard's cursor
  // advances identically and per-query results stay byte-identical.
  // Returns nullptr when the union degraded to keep-all, so callers skip
  // the per-tag filter overhead entirely.
  xml::ProjectionFilter* projection_filter();
  const query::ProjectionSpec& projection_spec() const { return gate_.spec(); }

  // Abandons the current document after a mid-stream producer failure:
  // publishes an abort marker behind the events already shipped, wakes
  // every shard (workers skip the partial batch), and blocks until all of
  // them acknowledged — draining the rings, so no stale events leak into
  // the next document. `cause` is what status() reports until the next
  // StartDocument; the fleet stays reusable. Never deadlocks: workers
  // always drain their rings, and the marker is the last entry.
  void AbortDocument(const Status& cause);

  // --- results; valid after EndDocument (or AbortDocument) returned ---
  // The abort cause of an abandoned document, else the first engine error
  // across all shards, if any.
  Status status() const;
  bool Matched(size_t q) const;
  QueryResult Result(size_t q) const;
  // Indices of all matched queries, ascending — the per-document "merge"
  // of the shard answers for routing consumers.
  std::vector<size_t> MatchedQueries() const;
  EngineStats AggregateStats() const;

  // --- accounting ---
  size_t worker_count() const { return workers_.size(); }
  uint64_t batches_published() const { return batches_published_; }
  // Times the producer found a worker ring full and had to wait.
  uint64_t publish_stalls() const { return publish_stalls_; }
  // The adaptive policy's current per-batch event budget.
  size_t current_batch_events() const { return batch_policy_.current; }
  // Total producer time spent in those stalls, across all shards. Timed on
  // the stall path only, so the uncontended publish stays clock-free.
  uint64_t publish_stall_ns() const { return publish_stall_ns_; }
  std::vector<ParallelShardStats> ShardStats() const;
  // Folds fleet-level and per-shard counters into `registry`
  // (xaos_parallel_* metric family).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  // A pooled batch: payload plus the countdown of shards that still have
  // to consume it. Recycled through free_batches_ when it hits zero.
  struct PooledBatch {
    xml::EventBatch batch;
    std::atomic<uint32_t> remaining{0};
  };

  struct Worker {
    explicit Worker(size_t ring_capacity) : ring(ring_capacity) {}

    util::SpscRing<PooledBatch*> ring;
    std::unique_ptr<MultiQueryEvaluator> evaluator;
    std::vector<xml::AttributeView> attr_scratch;
    ParallelShardStats stats;
    int index = -1;  // shard number, for span attribution
    // Worker-thread-only flight bookkeeping.
    uint64_t docs_completed = 0;
    bool flight_named = false;

    // Parking for an empty ring (see WorkerLoop). `parked` is the
    // producer's hint that a notify is needed after a push.
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> parked{false};

    std::thread thread;
  };

  // EventBatcher::Sink — producer side of the pool.
  xml::EventBatch* AcquireBatch() override;
  void PublishBatch(xml::EventBatch* batch) override;

  // Returns true if the push stalled on a full ring (adaptive signal).
  bool PushBlocking(Worker* worker, PooledBatch* batch);
  void WorkerLoop(Worker* worker);
  // Blocking pop; returns nullptr on shutdown with an empty ring.
  PooledBatch* PopBlocking(Worker* worker);
  void ReleaseBatch(PooledBatch* batch);

  ParallelFleetOptions options_;
  bool finalized_ = false;

  // Queries registered before finalization, then assigned to shards.
  std::vector<Query> queries_;
  std::vector<std::string> labels_;  // subscription labels, same indexing
  struct Assignment {
    size_t shard = 0;
    size_t local_index = 0;  // query index within the shard's evaluator
  };
  std::vector<Assignment> assignments_;

  std::deque<Worker> workers_;  // deque: Workers are immovable
  xml::EventBatcher batcher_;

  // Producer-side projection gate (built once by projection_filter(); its
  // per-document state is only touched by the producer thread).
  query::ProjectionGate gate_;
  bool gate_built_ = false;

  // Batch pool. `all_batches_` owns; `free_batches_` holds the recyclable
  // ones (guarded by pool_mu_: producer acquires, last consumer returns).
  std::mutex pool_mu_;
  std::deque<PooledBatch> all_batches_;
  std::vector<PooledBatch*> free_batches_;
  PooledBatch* current_ = nullptr;  // batch being filled by the producer

  // End-of-document latch: each worker that replays the kEndDocument event
  // of a document counts itself done; EndDocument waits for all of them.
  std::mutex doc_mu_;
  std::condition_variable doc_cv_;
  size_t workers_done_ = 0;

  std::atomic<bool> stop_{false};

  // Why the last document was abandoned; cleared by StartDocument. Written
  // by the producer thread, read by the caller after the abort latch.
  Status document_status_;

  AdaptiveBatchPolicy batch_policy_;  // producer thread only

  uint64_t batches_published_ = 0;  // producer thread only
  uint64_t publish_stalls_ = 0;     // producer thread only
  uint64_t publish_stall_ns_ = 0;   // producer thread only
  uint64_t documents_ = 0;          // producer thread only
  uint64_t documents_aborted_ = 0;  // producer thread only
};

}  // namespace xaos::core

#endif  // XAOS_CORE_PARALLEL_FLEET_H_
