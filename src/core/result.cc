#include "core/result.h"

namespace xaos::core {

std::vector<ElementId> QueryResult::ItemIds() const {
  std::vector<ElementId> ids;
  ids.reserve(items.size());
  for (const OutputItem& item : items) ids.push_back(item.info.id);
  return ids;
}

std::vector<std::string> QueryResult::ItemNames() const {
  std::vector<std::string> names;
  names.reserve(items.size());
  for (const OutputItem& item : items) names.push_back(item.info.name);
  return names;
}

}  // namespace xaos::core
