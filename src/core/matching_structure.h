// The matching-structure: the paper's compact representation of all
// matchings at an x-node (Section 4.2, Figure 4).
//
// A MatchingStructure M(v, e) records that document node `e` matches x-node
// `v`, and holds one *submatching slot* per x-tree child of `v`. Each slot
// is a set of references to child structures M(w, e') with (v,e) consistent
// with (w,e'). M(v,e) represents at least one total matching at `v` exactly
// when every slot is non-empty (with all referenced structures themselves
// total) — the engine maintains this invariant through propagation and undo
// (Section 4.3).
//
// Storage: structures and their internal vectors live in the owning
// engine's PoolArena (created via std::allocate_shared, so shared_ptr /
// weak_ptr semantics and destructor-timed accounting are preserved while
// steady-state allocation traffic never reaches the heap). The arena must
// outlive every structure allocated from it.

#ifndef XAOS_CORE_MATCHING_STRUCTURE_H_
#define XAOS_CORE_MATCHING_STRUCTURE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/element_info.h"
#include "core/engine_stats.h"
#include "query/xtree.h"
#include "util/pool_arena.h"

namespace xaos::core {

class MatchingStructure;
using MatchingPtr = std::shared_ptr<MatchingStructure>;

class MatchingStructure {
 public:
  using SlotVector = util::ArenaVector<MatchingPtr>;

  // `stats`, if non-null, receives OnStructureCreated now (with this
  // structure's approximate byte footprint) and OnStructureDestroyed on
  // destruction, so live/peak counts and bytes are maintained on every
  // creation path by construction. `arena` backs the slot/count/backref
  // vectors and must outlive the structure.
  MatchingStructure(query::XNodeId xnode, ElementInfo element, int slot_count,
                    EngineStats* stats, util::PoolArena* arena);
  ~MatchingStructure();

  // Approximate heap footprint accounted for this structure: the object
  // itself, its shared_ptr control block, the slot/count headers and the
  // retained element name/value text. Slot *entries* are shared pointers to
  // structures accounted on their own, so they are charged per-header only
  // at creation (slot growth is not re-accounted — an undercount bounded by
  // the propagation counters).
  uint64_t AccountedBytes() const { return accounted_bytes_; }

  MatchingStructure(const MatchingStructure&) = delete;
  MatchingStructure& operator=(const MatchingStructure&) = delete;

  query::XNodeId xnode() const { return xnode_; }
  const ElementInfo& element() const { return element_; }

  int slot_count() const { return static_cast<int>(slots_.size()); }
  const SlotVector& slot(int i) const { return slots_[static_cast<size_t>(i)]; }
  // A slot counts as non-empty if it stores an entry or has accumulated
  // confirmed entries (boolean submatchings release confirmed entries and
  // keep only the count — paper Section 5.1).
  bool SlotEmpty(int i) const {
    return slots_[static_cast<size_t>(i)].empty() &&
           confirmed_counts_[static_cast<size_t>(i)] == 0;
  }
  // True when every submatching slot is non-empty (a leaf is trivially
  // satisfied).
  bool AllSlotsNonEmpty() const;

  // Inserts `child` into slot `i` of `parent` and records the back
  // reference used by undo. `parent` must be a shared_ptr because the child
  // keeps a weak reference to it. `optimistic` marks links made before the
  // child's own satisfaction is known (backward-axis and sibling pulls);
  // they are preserved when a push-propagation is retracted.
  static void Link(const MatchingPtr& parent, int i, MatchingPtr child,
                   bool optimistic);

  // Removes the entry `child` from slot `i`; returns true if the slot is
  // now empty. No-op (returns false) if the entry is absent.
  bool RemoveFromSlot(int i, const MatchingStructure* child);

  bool closed() const { return closed_; }
  void set_closed() { closed_ = true; }
  bool dead() const { return dead_; }
  void set_dead() { dead_ = true; }
  // True while this structure's satisfaction has been pushed into its
  // parent-matchings. Cleared if the propagation is retracted because a
  // refillable (following-sibling) slot emptied.
  bool propagated() const { return propagated_; }
  void set_propagated(bool value) { propagated_ = value; }

  // --- confirmation (eager output, paper Section 5.1) ---
  // A structure is *confirmed* once it provably represents a total matching
  // regardless of future events: it is closed and every slot holds at least
  // one confirmed entry. Confirmation is monotone — confirmed structures
  // are never undone — which lets the engine report a guaranteed document
  // match before the end of the stream.
  bool confirmed() const { return confirmed_; }
  void set_confirmed() { confirmed_ = true; }
  // Number of confirmed entries in slot `i`.
  int confirmed_count(int i) const {
    return confirmed_counts_[static_cast<size_t>(i)];
  }
  void bump_confirmed(int i) { ++confirmed_counts_[static_cast<size_t>(i)]; }
  // True if every slot holds a confirmed entry.
  bool AllSlotsConfirmed() const;

  // --- anchoring (earliest answering) ---
  // A structure is *anchored* once it is confirmed AND reachable from a
  // confirmed root through a chain of confirmed structures. Anchored
  // structures with an output x-node are provably part of the final result
  // and can be emitted before end-of-document; anchored structures whose
  // slots have drained to confirmed counts can release their storage back
  // to the arena (engine's MaybeReclaim).
  bool anchored() const { return anchored_; }
  void set_anchored() { anchored_ = true; }
  // Set when the engine has emitted this structure's output (if any) and
  // returned its slot/backref storage to the arena. A reclaimed structure
  // is only kept alive by stray shared_ptrs; it must never be re-linked.
  bool reclaimed() const { return reclaimed_; }
  void set_reclaimed() { reclaimed_ = true; }

  // Parents that currently reference this structure, for undo cascades.
  struct BackRef {
    std::weak_ptr<MatchingStructure> parent;
    int slot;
    bool optimistic;
  };
  util::ArenaVector<BackRef>& backrefs() { return backrefs_; }

  // Swaps the slot and backref vectors with empty ones so their arena
  // blocks are returned immediately (earliest answering's eager reclaim).
  // Confirmed counts are preserved — they carry slot satisfaction after the
  // stored entries are dropped. `detached` receives the former backrefs so
  // the caller can unlink this structure from its parents.
  void ReleaseStorage(util::PoolArena* arena,
                      util::ArenaVector<BackRef>* detached);

 private:
  query::XNodeId xnode_;
  ElementInfo element_;
  util::ArenaVector<SlotVector> slots_;
  util::ArenaVector<int> confirmed_counts_;  // parallel to slots_
  util::ArenaVector<BackRef> backrefs_;
  bool closed_ = false;
  bool dead_ = false;
  bool confirmed_ = false;
  bool propagated_ = false;
  bool anchored_ = false;
  bool reclaimed_ = false;
  EngineStats* stats_;
  uint64_t accounted_bytes_ = 0;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_MATCHING_STRUCTURE_H_
