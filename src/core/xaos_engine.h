// The χαoς streaming XPath engine (paper Section 4).
//
// XaosEngine evaluates one x-tree over a stream of SAX events in a single
// document-order pass, in time linear in the document and with storage
// proportional to the *relevant* part of the document only. It combines:
//
//   * relevance filtering driven by the x-dag — the looking-for machinery
//     of Section 4.1: an element is examined further only if every incoming
//     (forward-only) x-dag constraint of a candidate x-node is supported by
//     currently open elements;
//   * matching-structure composition over the x-tree (Sections 4.2/4.3):
//     at each end-element event, structures of completed sub-matchings are
//     propagated into their parent structures; backward-axis submatchings
//     are filled in *optimistically* from the open ancestor stack and
//     retracted (undone, recursively) if the optimism proves wrong;
//   * output emission (Section 4.4): at end of document, a marked traversal
//     of the structure graph projects all total matchings at Root onto the
//     output x-node(s).
//
// The engine is a ContentHandler, so it can be driven by xml::SaxParser
// (streaming), by dom::ReplayDocument (the paper's χαoς(DOM) configuration)
// or by any other event source.
//
// Attribute and text() node tests are supported by synthesizing leaf child
// nodes for attributes and character runs; this is an extension beyond the
// paper's element-only data model and is enabled automatically when the
// query mentions attributes or text().

#ifndef XAOS_CORE_XAOS_ENGINE_H_
#define XAOS_CORE_XAOS_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/document_cursor.h"
#include "core/element_info.h"
#include "core/engine_stats.h"
#include "core/matching_structure.h"
#include "core/result.h"
#include "query/xdag.h"
#include "query/xtree.h"
#include "util/pool_arena.h"
#include "util/statusor.h"
#include "util/symbol_table.h"
#include "xml/sax_event.h"
#include "xml/xml_writer.h"

namespace xaos::core {

struct EngineOptions {
  // The looking-for relevance filter of Section 4.1. Disabling it is only
  // useful for the ablation study: results are unchanged but every
  // label-matching element allocates a structure.
  bool enable_relevance_filter = true;

  // Record the serialized XML subtree of every element matched to an output
  // x-node (whether or not it survives to the final result); survivors
  // carry it in OutputItem::captured_xml. This implements "storing the
  // relevant portions of the document" for consumers that need content,
  // not just node identities.
  bool capture_output_subtrees = false;

  // Abort processing with ResourceExhausted when more than this many
  // matching structures are simultaneously alive (0 = unlimited).
  uint64_t max_live_structures = 0;

  // Boolean submatchings (paper Section 5.1): slots whose x-tree subtree
  // contains no output node do not need stored matchings — a count of
  // confirmed sub-matchings suffices, and confirmed entries are released
  // immediately. Cuts retained memory on predicate-heavy queries; results
  // are identical.
  bool enable_boolean_submatchings = true;

  // Stop doing any per-event work once a total matching at Root is
  // *guaranteed* (see match_confirmed()). The final result then reports
  // matched == true with no items — the publish/subscribe filtering mode,
  // where only the boolean answer is needed and documents can be routed
  // without reading them to the end (paper Section 5.1's eager emission).
  bool stop_after_confirmed_match = false;

  // Multi-query evaluators route shareable subscriptions (linear forward
  // chains — see core/shared_index.h) through the merged shared-prefix
  // automaton instead of one engine each; per-event cost then scales with
  // distinct query structure, not subscription count. Results are identical
  // either way — disabling selects the per-engine path everywhere, which
  // the differential tests use as the oracle. Ignored by single-query
  // evaluators; automatically off when capture_output_subtrees or
  // max_live_structures demand exact per-engine semantics.
  bool enable_shared_index = true;

  // Registry the evaluators report per-subscription latency and high-water
  // instrumentation into when obs::Enabled(); nullptr selects
  // obs::MetricsRegistry::Default(). Lets embedders (pubsub_router,
  // parallel-fleet shards) keep those series in their own registry.
  obs::MetricsRegistry* metrics_registry = nullptr;

  // Batched match loop: drivers that hold whole EventBatches
  // (core/batched_dispatch.h sequentially, ParallelFleet workers) replay
  // them through the evaluators' devirtualized batch loop — one tight
  // switch per batch with the cursor, depth stack and candidate lookups
  // hoisted out of the per-event path, and the shared automaton stepping
  // through its flat transition table + step cache. Results are
  // byte-identical either way; disabling selects the per-event virtual
  // ContentHandler path everywhere, which the differential tests and
  // fuzz_batched_dispatch_diff use as the oracle.
  bool enable_batched_dispatch = true;

  // Earliest answering ("Earliest query answering over streamed trees"):
  // emit each output item at the earliest event where its membership in the
  // final result is provable — when its structure is *anchored*, i.e.
  // confirmed and reachable from the confirmed Root through a chain of
  // confirmed structures — instead of waiting for EndDocument. For queries
  // with a single output x-node, anchored structures whose slots have
  // drained to confirmed counts additionally release their slot, backref
  // and capture storage back to the arena, so peak matching-structure bytes
  // track open-path state rather than document size. Results stay
  // byte-identical (document order, no duplicates) either way; only the
  // moment of emission and the amount of live state change.
  bool enable_earliest_emission = true;

  // Optional callback invoked once per output item at the moment it is
  // proven to be in the final result (requires enable_earliest_emission).
  // Emission order follows proof order, which can differ from document
  // order (an ancestor output may be proven only when an inner descendant
  // confirms); the final QueryResult is still sorted into document order.
  std::function<void(const OutputItem&)> early_item_sink;
};

// Result of tuple enumeration (multiple output nodes, Section 5.3).
struct TupleEnumeration {
  std::vector<OutputTuple> tuples;
  // False if enumeration stopped at the tuple or exploration limit.
  bool complete = true;
};

// An entry of the paper's looking-for set L (Table 2): an x-node we are
// prepared to match, at a specific level or at any level (kAnyLevel).
struct LookingForEntry {
  query::XNodeId xnode;
  int level;  // kAnyLevel for the paper's ∞
  std::string label;

  static constexpr int kAnyLevel = -1;
};

class XaosEngine : public xml::ContentHandler {
 public:
  // `tree` must outlive the engine. Node 0 of the tree must test for the
  // virtual root (which every tree built by BuildXTree does).
  explicit XaosEngine(const query::XTree* tree, EngineOptions options = {});

  // ContentHandler interface. StartDocument resets per-document state, so
  // one engine can process a sequence of documents.
  void StartDocument() override;
  void EndDocument() override;
  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;

  // --- multi-query dispatch support (EngineFleet) ---
  // Reads document-node ids/levels/ordinals from `cursor` instead of the
  // engine's private one. The caller then owns event numbering: it must
  // advance the cursor for *every* document event (including events it does
  // not deliver to this engine) before delivering the ones it does. Must be
  // called before StartDocument; the cursor must outlive the engine's use.
  void AttachCursor(const DocumentCursor* cursor) {
    cursor_ = cursor;
    external_cursor_ = (cursor != nullptr);
    if (!external_cursor_) cursor_ = &own_cursor_;
  }
  // Folds `n` elements this engine never saw (filtered out by dispatch)
  // into its per-document stats as discarded, so elements_total still
  // reflects the whole document.
  void AccountSkippedElements(uint64_t n) {
    stats_.elements_total += n;
    stats_.elements_discarded += n;
  }
  // Interned names this engine's x-tree tests mention (elements and
  // attributes, deduplicated) — the dispatch index key set.
  const std::vector<util::Symbol>& mentioned_symbols() const {
    return mentioned_symbols_;
  }
  // True if the engine must see every element regardless of its name.
  bool has_any_element_candidates() const {
    return !any_element_candidates_.empty();
  }
  bool has_any_attribute_candidates() const {
    return !any_attribute_candidates_.empty();
  }
  bool wants_attributes() const { return wants_attributes_; }
  bool wants_text() const { return wants_text_; }
  bool wants_siblings() const { return wants_siblings_; }
  bool captures_subtrees() const { return options_.capture_output_subtrees; }

  const query::XTree& tree() const { return *tree_; }
  const query::XDag& xdag() const { return xdag_; }
  const EngineStats& stats() const { return stats_; }

  // Non-OK if processing hit a configured limit; the engine then ignores
  // further events and reports no results.
  const Status& status() const { return error_; }
  // True once EndDocument has been processed.
  bool done() const { return done_; }

  // True if at least one total matching at Root exists. Valid after
  // EndDocument.
  bool Matched() const { return result_.matched; }

  // True as soon as a total matching at Root is guaranteed regardless of
  // future events — typically long before EndDocument. Monotone:
  // confirmation is only granted to matchings with no optimistic
  // (retractable) constituents, so it is never revoked. Usable mid-stream
  // for early routing decisions (see EngineOptions::
  // stop_after_confirmed_match).
  bool match_confirmed() const {
    return early_match_ || (done_ && result_.matched);
  }
  // obs::NowNs() timestamp of the moment the match became guaranteed (or,
  // failing early confirmation, of EndDocument for a matching document).
  // 0 when unmatched or when obs was disabled. Recorded only at the rare
  // confirmation transition, so it adds no per-event cost; evaluators turn
  // it into the per-subscription time-to-first-match histogram.
  uint64_t match_confirm_ns() const { return confirm_ns_; }
  // True once the engine has stopped doing per-event work for the current
  // document (stop_after_confirmed_match triggered). Dispatchers can skip
  // delivering further events to an inert engine.
  bool inert() const { return inert_; }
  // The computed result. Valid after EndDocument.
  const QueryResult& result() const { return result_; }

  // Enumerates distinct output tuples (projections of total matchings onto
  // the output x-nodes, ordered by x-node id). Exploration stops after
  // `max_tuples` tuples or `max_tuples * 64` partial matchings. Valid after
  // EndDocument.
  TupleEnumeration OutputTuples(size_t max_tuples = 10000) const;

  // The current looking-for set in the paper's presentation (Table 2);
  // intended for tests and debugging. {(Root, 0)} before the document
  // starts and after it ends.
  std::vector<LookingForEntry> DebugLookingForSet() const;

 private:
  struct Frame {
    ElementInfo info;
    std::vector<query::XNodeId> xnodes;       // matched x-nodes (topo order)
    std::vector<MatchingPtr> structures;      // parallel to xnodes
    // Structures of already-closed children, per x-node; only maintained
    // (and only for sibling-relevant x-nodes) when the query uses sibling
    // axes. Sources of following-sibling relevance, targets of deferred
    // following-sibling propagation, and candidates for preceding-sibling
    // pulls.
    std::vector<std::vector<MatchingPtr>> closed_by_xnode;
    int capture_index = -1;                   // index into active_captures_
  };

  struct Capture {
    ElementId element_id;
    std::string xml;
    xml::XmlWriter writer{&xml};
  };
  // Captures are placement-new'd into the arena; the deleter returns the
  // block to its free list.
  struct CaptureDeleter {
    util::PoolArena* arena;
    void operator()(Capture* c) const {
      c->~Capture();
      arena->Deallocate(c, sizeof(Capture));
    }
  };
  using CapturePtr = std::unique_ptr<Capture, CaptureDeleter>;

  // Document-position identity of the node being started, read off the
  // cursor by the event handlers.
  struct NodePosition {
    ElementId id = 0;
    ElementId parent_id = 0;
    int level = 0;
    uint32_t ordinal = 0;
  };

  // Creates the frame for a new document node, matching it against
  // candidate x-nodes, and pushes it onto the stack. `symbol` is the
  // interned name if the event source supplied one (kInvalidSymbol
  // otherwise — resolved via SymbolTable::Lookup).
  void ProcessStart(query::DocNodeKind kind, std::string_view name,
                    util::Symbol symbol, std::string_view value,
                    const NodePosition& position);
  // Closes the top frame: optimistic pulls, satisfaction checks,
  // propagation/undo, and stack maintenance (Section 4.3).
  void ProcessEnd();

  // The relevance check of Section 4.1 for candidate x-node `v` against the
  // not-yet-pushed `frame`.
  bool IsRelevant(query::XNodeId v, const Frame& frame) const;

  // Collects x-nodes whose tests could match a node of the given kind and
  // interned name, sorted by x-dag topological rank (so self-edges see
  // their sources first). Name tests resolve through the symbol-indexed
  // candidate tables — integer index, no hashing.
  void CollectCandidates(query::DocNodeKind kind, util::Symbol symbol,
                         std::vector<query::XNodeId>* out) const;

  // Recursively retracts a structure that cannot be part of a total
  // matching (the undo of Section 4.3 / Table 2 step 23).
  void Undo(MatchingStructure* m);

  // Pushes a satisfied structure into its parent-matchings (the forward
  // half of Section 4.3's propagation) and attempts confirmation. Safe to
  // call late for structures whose following-sibling slots filled after
  // their close (deferred completion).
  void PropagateUp(const MatchingPtr& m);

  // If `m` (a closed sibling-axis target) just became satisfied, runs its
  // deferred propagation.
  void MaybeCompleteDeferred(const MatchingPtr& m);

  // Removes `m` from its parents. In full mode (dead structure) all links
  // go; in retract mode only push-links go, optimistic links stay.
  void CascadeRemoval(MatchingStructure* m, bool retract_only);

  // Un-propagates a closed structure whose refillable (following-sibling)
  // slot emptied; it may complete and re-propagate later.
  void RetractPropagation(MatchingStructure* m);

  // True if slot `slot` of `parent` can still gain entries: it is a
  // following-sibling slot and the element's parent is still open.
  bool SlotRefillable(const MatchingStructure& parent, int slot) const;

  // True if entries of this x-node are counted rather than stored once
  // confirmed (its subtree contains no output node).
  bool IsCountedXNode(query::XNodeId xnode) const {
    return counted_subtree_[static_cast<size_t>(xnode)];
  }

  // Marks `m` confirmed if it provably represents a total matching, and
  // cascades the confirmation into its parents.
  void TryConfirm(MatchingStructure* m);

  // --- earliest answering (see EngineOptions::enable_earliest_emission) ---
  // Marks `m` anchored (confirmed + reachable from the confirmed Root via
  // confirmed structures), emits its output if it is an output x-node, and
  // recursively anchors the confirmed entries of its non-counted slots.
  void Anchor(MatchingStructure* m);
  // Emits the output item for an anchored output structure exactly once
  // (capture buffers move into the item and are erased).
  void EmitEarly(MatchingStructure* m);
  // Releases `m`'s storage back to the arena and detaches it from its
  // parents if it can no longer influence the result: anchored, closed,
  // every non-counted slot drained to confirmed counts, and its x-node not
  // reclaim-blocked (sibling axes). Only active when reclaim_enabled_.
  void MaybeReclaim(MatchingStructure* m);

  // Links a child into a parent slot, propagating confirmation if the
  // child is already confirmed. `optimistic` — see MatchingStructure::Link.
  void LinkChild(const MatchingPtr& parent, int slot, const MatchingPtr& child,
                 bool optimistic);

  // Finds the structure matched to `xnode` in `frame`, or null.
  static const MatchingPtr* FindMatch(const Frame& frame,
                                      query::XNodeId xnode);

  void BuildResult(const MatchingPtr& root_structure);
  void ResetDocumentState();
  void FailWith(Status status);

  const query::XTree* tree_;
  query::XDag xdag_;
  EngineOptions options_;

  // Backing store for all matching structures, their internal vectors and
  // captures. Declared before every member that can hold a MatchingPtr
  // (stack_, open_by_xnode_, active_captures_, root_structure_) so it is
  // destroyed after them. Freed blocks recycle through size-classed free
  // lists, so steady-state per-event allocation never reaches the heap.
  util::PoolArena arena_;

  // --- immutable query-derived tables ---
  // Candidate x-node ids indexed by interned element tag / attribute name
  // Symbol (empty slot = no candidates), plus wildcard and kind lists; all
  // pre-sorted by topological rank.
  std::vector<std::vector<query::XNodeId>> element_candidates_;
  std::vector<std::vector<query::XNodeId>> attribute_candidates_;
  std::vector<util::Symbol> mentioned_symbols_;
  std::vector<query::XNodeId> any_element_candidates_;
  std::vector<query::XNodeId> any_attribute_candidates_;
  std::vector<query::XNodeId> text_candidates_;
  std::vector<query::XNodeId> root_candidates_;
  std::vector<int> slot_in_parent_;  // x-node id -> slot index in its parent
  std::vector<bool> is_output_;
  // X-nodes whose closed structures must stay reachable from the parent
  // frame for sibling-axis processing.
  std::vector<bool> sibling_listed_;
  // X-nodes whose subtree contains no output node: structures matched to
  // them are counted, not stored, once confirmed (boolean submatchings).
  std::vector<bool> counted_subtree_;
  // X-nodes whose structures must never be reclaimed early: sibling-listed
  // nodes (their closed structures stay reachable from the parent frame)
  // and nodes with a following-sibling child slot (late entries arrive
  // through links that reclaim would sever).
  std::vector<bool> reclaim_blocked_;
  bool wants_attributes_ = false;
  bool wants_text_ = false;
  bool wants_siblings_ = false;
  // enable_earliest_emission resolved against this tree; reclaim_enabled_
  // additionally requires exactly one output x-node (multi-output tuple
  // enumeration needs the full structure graph).
  bool earliest_ = false;
  bool reclaim_enabled_ = false;

  // --- per-document state ---
  // Frame stack. `stack_` is used as an arena indexed by `depth_` so that
  // frame vectors keep their capacity across elements (allocation-free in
  // steady state). Frames at index >= depth_ are spent and empty.
  std::vector<Frame> stack_;
  size_t depth_ = 0;
  // Structures of currently open document nodes, per x-node (stack
  // discipline: the newest open match is at the back).
  std::vector<std::vector<MatchingPtr>> open_by_xnode_;
  std::vector<CapturePtr> active_captures_;
  std::unordered_map<ElementId, std::string> captured_;
  MatchingPtr root_structure_;
  // The Root structure of the document in progress (owned by stack_[0]);
  // used to detect early match confirmation.
  MatchingStructure* live_root_ = nullptr;
  // Node numbering: by default the engine advances its own cursor on every
  // event it receives; under a fleet (AttachCursor) the shared cursor is
  // advanced by the fleet for every event of the document, so ids stay
  // uniform across engines even though each sees only a filtered stream.
  DocumentCursor own_cursor_;
  const DocumentCursor* cursor_ = &own_cursor_;
  bool external_cursor_ = false;
  // arena_.bytes_allocated() at the start of the current document.
  uint64_t arena_baseline_ = 0;
  // Items emitted before EndDocument (proof order) and the ids already
  // emitted — BuildResult merges these with the residual traversal and
  // restores document order.
  std::vector<OutputItem> early_items_;
  std::unordered_set<ElementId> emitted_ids_;
  bool done_ = false;
  bool early_match_ = false;
  uint64_t confirm_ns_ = 0;  // see match_confirm_ns()
  bool inert_ = false;  // stop_after_confirmed_match triggered
  Status error_;
  EngineStats stats_;
  QueryResult result_;

  mutable std::vector<query::XNodeId> candidate_scratch_;
  std::vector<size_t> order_scratch_;
};

}  // namespace xaos::core

#endif  // XAOS_CORE_XAOS_ENGINE_H_
