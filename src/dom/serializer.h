// Serializes a dom::Document (or subtree) back to XML text.

#ifndef XAOS_DOM_SERIALIZER_H_
#define XAOS_DOM_SERIALIZER_H_

#include <string>

#include "dom/document.h"

namespace xaos::dom {

// Serializes the subtree rooted at `node` (an element, text node, or the
// document node). `indent` spaces per nesting level; 0 = single line.
// Note: indentation inserts whitespace and is meant for human inspection;
// round-tripping tests should use indent = 0.
std::string SerializeSubtree(const Document& document, NodeId node,
                             int indent = 0);

// Serializes the whole document.
std::string SerializeDocument(const Document& document, int indent = 0);

}  // namespace xaos::dom

#endif  // XAOS_DOM_SERIALIZER_H_
