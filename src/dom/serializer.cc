#include "dom/serializer.h"

#include "dom/dom_replayer.h"
#include "xml/entities.h"
#include "xml/xml_writer.h"

namespace xaos::dom {
namespace {

// Bridges replayed events into an XmlWriter.
class WriterHandler : public xml::ContentHandler {
 public:
  explicit WriterHandler(xml::XmlWriter* writer) : writer_(writer) {}

  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override {
    writer_->StartElement(name.text);
    for (const xml::AttributeView& attr : attributes) {
      writer_->WriteAttribute(attr.name, attr.value);
    }
  }
  void EndElement(std::string_view /*name*/) override {
    writer_->EndElement();
  }
  void Characters(std::string_view text) override { writer_->WriteText(text); }

 private:
  xml::XmlWriter* writer_;
};

}  // namespace

std::string SerializeSubtree(const Document& document, NodeId node,
                             int indent) {
  std::string out;
  if (document.kind(node) == NodeKind::kText) {
    out = xml::EscapeText(document.text(node));
    return out;
  }
  xml::XmlWriter writer(&out, indent);
  WriterHandler handler(&writer);
  ReplaySubtree(document, node, &handler);
  return out;
}

std::string SerializeDocument(const Document& document, int indent) {
  return SerializeSubtree(document, document.document_node(), indent);
}

}  // namespace xaos::dom
