#include "dom/document.h"

namespace xaos::dom {

Document::Document() {
  Node doc;
  doc.kind = NodeKind::kDocument;
  doc.level = 0;
  nodes_.push_back(std::move(doc));
}

NodeId Document::root_element() const {
  for (NodeId child = first_child(0); child != kInvalidNode;
       child = next_sibling(child)) {
    if (IsElement(child)) return child;
  }
  return kInvalidNode;
}

NodeId Document::CreateElement(std::string_view name) {
  Node node;
  node.kind = NodeKind::kElement;
  node.name.assign(name);
  nodes_.push_back(std::move(node));
  ++element_count_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Document::CreateText(std::string_view text) {
  Node node;
  node.kind = NodeKind::kText;
  node.text.assign(text);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Document::AppendChild(NodeId parent, NodeId child) {
  XAOS_CHECK(parent < nodes_.size() && child < nodes_.size());
  XAOS_CHECK(nodes_[child].parent == kInvalidNode)
      << "node already has a parent";
  XAOS_CHECK(kind(parent) != NodeKind::kText) << "text nodes are leaves";
  Node& p = nodes_[parent];
  Node& c = nodes_[child];
  c.parent = parent;
  c.level = p.level + 1;
  if (p.last_child == kInvalidNode) {
    p.first_child = child;
  } else {
    nodes_[p.last_child].next_sibling = child;
  }
  p.last_child = child;
}

void Document::AddAttribute(NodeId id, std::string_view name,
                            std::string_view value) {
  XAOS_CHECK(IsElement(id));
  nodes_[id].attributes.push_back({std::string(name), std::string(value)});
}

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view name) const {
  for (const xml::Attribute& attr : nodes_[id].attributes) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

std::string Document::StringValue(NodeId id) const {
  std::string out;
  // Iterative pre-order walk of the subtree rooted at `id`.
  NodeId node = id;
  while (true) {
    if (kind(node) == NodeKind::kText) out += text(node);
    if (first_child(node) != kInvalidNode && kind(node) != NodeKind::kText) {
      node = first_child(node);
      continue;
    }
    while (node != id && next_sibling(node) == kInvalidNode) {
      node = parent(node);
    }
    if (node == id) break;
    node = next_sibling(node);
  }
  return out;
}

size_t Document::ApproximateMemoryBytes() const {
  size_t total = nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.name.capacity() + node.text.capacity();
    total += node.attributes.capacity() * sizeof(xml::Attribute);
    for (const xml::Attribute& attr : node.attributes) {
      total += attr.name.capacity() + attr.value.capacity();
    }
  }
  return total;
}

}  // namespace xaos::dom
