#include "dom/dom_builder.h"

#include <utility>

namespace xaos::dom {

DomBuilder::DomBuilder(Document* document) : document_(document) {
  stack_.push_back(document->document_node());
}

void DomBuilder::StartElement(const xml::QName& name,
                              xml::AttributeSpan attributes) {
  NodeId element = document_->CreateElement(name.text);
  for (const xml::AttributeView& attr : attributes) {
    document_->AddAttribute(element, attr.name, attr.value);
  }
  document_->AppendChild(stack_.back(), element);
  stack_.push_back(element);
}

void DomBuilder::EndElement(std::string_view /*name*/) {
  stack_.pop_back();
}

void DomBuilder::Characters(std::string_view text) {
  // Text at document level (whitespace between top-level constructs) is not
  // represented in the tree.
  if (stack_.size() == 1) return;
  NodeId node = document_->CreateText(text);
  document_->AppendChild(stack_.back(), node);
}

StatusOr<Document> ParseToDocument(std::string_view xml_text,
                                   xml::ParserOptions options) {
  Document document;
  DomBuilder builder(&document);
  XAOS_RETURN_IF_ERROR(xml::ParseString(xml_text, &builder, options));
  return std::move(document);
}

}  // namespace xaos::dom
