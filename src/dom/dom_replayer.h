// Replays a dom::Document as a stream of SAX events.
//
// This is the χαoς(DOM) configuration of the paper's Section 6.2: to factor
// out parse cost, the document is materialized once and then traversed in
// depth-first order, generating the events a SAX parser would.

#ifndef XAOS_DOM_DOM_REPLAYER_H_
#define XAOS_DOM_DOM_REPLAYER_H_

#include "dom/document.h"
#include "xml/sax_event.h"

namespace xaos::dom {

// Emits StartDocument, the depth-first element/text events of `document`,
// and EndDocument into `handler`.
void ReplayDocument(const Document& document, xml::ContentHandler* handler);

// Replays only the subtree rooted at `subtree_root` (no document events).
void ReplaySubtree(const Document& document, NodeId subtree_root,
                   xml::ContentHandler* handler);

}  // namespace xaos::dom

#endif  // XAOS_DOM_DOM_REPLAYER_H_
