// Builds a dom::Document from a stream of SAX events.

#ifndef XAOS_DOM_DOM_BUILDER_H_
#define XAOS_DOM_DOM_BUILDER_H_

#include <string_view>
#include <vector>

#include "dom/document.h"
#include "util/statusor.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::dom {

// ContentHandler that materializes the event stream into a Document.
// NodeIds are assigned in document order.
class DomBuilder : public xml::ContentHandler {
 public:
  // `document` must be freshly constructed and outlive the builder.
  explicit DomBuilder(Document* document);

  void StartElement(const xml::QName& name,
                    xml::AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;

 private:
  Document* document_;
  std::vector<NodeId> stack_;
};

// Parses `xml_text` into a Document. Whitespace-only text runs are kept or
// dropped according to `options`.
StatusOr<Document> ParseToDocument(std::string_view xml_text,
                                   xml::ParserOptions options = {});

}  // namespace xaos::dom

#endif  // XAOS_DOM_DOM_BUILDER_H_
