// In-memory XML tree (DOM) substrate.
//
// The navigational baseline engine (src/baseline) evaluates XPath over this
// tree, mirroring how Xalan keeps the whole document in memory (paper
// Section 6). The χαoς(DOM) configuration of Section 6.2 replays a Document
// as SAX events (see dom_replayer.h).
//
// Nodes live in a flat arena indexed by NodeId. When built through
// DomBuilder, NodeIds are assigned in document order (pre-order), so id
// comparison is document-order comparison.

#ifndef XAOS_DOM_DOCUMENT_H_
#define XAOS_DOM_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "xml/sax_event.h"

namespace xaos::dom {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : uint8_t {
  kDocument,  // the virtual root (level 0); exactly one, id 0
  kElement,
  kText,
};

// A document tree. Create nodes with CreateElement/CreateText and link them
// with AppendChild, or build from XML text via dom::DomBuilder.
class Document {
 public:
  // Constructs a document containing only the virtual document node (id 0).
  Document();

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  NodeId document_node() const { return 0; }
  // The document (root) element, or kInvalidNode if none was added yet.
  NodeId root_element() const;

  NodeId CreateElement(std::string_view name);
  NodeId CreateText(std::string_view text);
  // Appends `child` under `parent`. `child` must not already have a parent.
  void AppendChild(NodeId parent, NodeId child);

  // Accessors. All ids must be valid.
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  bool IsElement(NodeId id) const { return kind(id) == NodeKind::kElement; }
  const std::string& name(NodeId id) const { return nodes_[id].name; }
  const std::string& text(NodeId id) const { return nodes_[id].text; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  // Distance from the document node (document node: 0, root element: 1).
  int level(NodeId id) const { return nodes_[id].level; }

  const std::vector<xml::Attribute>& attributes(NodeId id) const {
    return nodes_[id].attributes;
  }
  void AddAttribute(NodeId id, std::string_view name, std::string_view value);
  // Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  // Total number of nodes (including the document node and text nodes).
  size_t node_count() const { return nodes_.size(); }
  // Number of element nodes.
  size_t element_count() const { return element_count_; }

  // Concatenation of all descendant text (the XPath string-value of an
  // element).
  std::string StringValue(NodeId id) const;

  // Rough memory footprint in bytes (nodes + strings + attributes); used by
  // the benchmarks to report the baseline's memory behaviour.
  size_t ApproximateMemoryBytes() const;

 private:
  struct Node {
    NodeKind kind;
    int level = 0;
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId last_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    std::string name;
    std::string text;
    std::vector<xml::Attribute> attributes;
  };

  std::vector<Node> nodes_;
  size_t element_count_ = 0;
};

}  // namespace xaos::dom

#endif  // XAOS_DOM_DOCUMENT_H_
