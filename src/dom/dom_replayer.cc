#include "dom/dom_replayer.h"

namespace xaos::dom {

void ReplaySubtree(const Document& document, NodeId subtree_root,
                   xml::ContentHandler* handler) {
  // Iterative pre-order traversal with explicit end-element emission.
  std::vector<xml::AttributeView> attr_scratch;
  NodeId node = subtree_root;
  while (true) {
    bool descend = false;
    if (document.kind(node) == NodeKind::kText) {
      handler->Characters(document.text(node));
    } else if (document.IsElement(node)) {
      handler->StartElement(
          document.name(node),
          xml::MakeAttributeViews(document.attributes(node), &attr_scratch));
      descend = document.first_child(node) != kInvalidNode;
      if (!descend) handler->EndElement(document.name(node));
    } else {
      // Document node: descend through children without emitting events.
      descend = document.first_child(node) != kInvalidNode;
    }
    if (descend) {
      node = document.first_child(node);
      continue;
    }
    // Climb until a next sibling exists, closing elements on the way.
    while (node != subtree_root &&
           document.next_sibling(node) == kInvalidNode) {
      node = document.parent(node);
      if (document.IsElement(node)) handler->EndElement(document.name(node));
    }
    if (node == subtree_root) break;
    node = document.next_sibling(node);
  }
}

void ReplayDocument(const Document& document, xml::ContentHandler* handler) {
  handler->StartDocument();
  ReplaySubtree(document, document.document_node(), handler);
  handler->EndDocument();
}

}  // namespace xaos::dom
