#include "query/xtree_builder.h"

#include "obs/metrics.h"
#include "obs/timer.h"
#include "query/normalizer.h"
#include "xpath/parser.h"

namespace xaos::query {
namespace {

using xpath::Axis;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::PredExpr;
using xpath::Step;

// Converts a step's node test into a NodeTestSpec.
StatusOr<NodeTestSpec> SpecForStep(const Step& step) {
  NodeTestSpec spec;
  if (step.axis == Axis::kAttribute) {
    switch (step.test.kind) {
      case NodeTestKind::kName:
        spec.kind = NodeTestSpec::Kind::kAttribute;
        spec.name = step.test.name;
        break;
      case NodeTestKind::kWildcard:
        spec.kind = NodeTestSpec::Kind::kAnyAttribute;
        break;
      case NodeTestKind::kText:
        return UnsupportedError("text() on the attribute axis");
    }
  } else {
    switch (step.test.kind) {
      case NodeTestKind::kName:
        spec.kind = NodeTestSpec::Kind::kElement;
        spec.name = step.test.name;
        break;
      case NodeTestKind::kWildcard:
        spec.kind = NodeTestSpec::Kind::kAnyElement;
        break;
      case NodeTestKind::kText:
        spec.kind = NodeTestSpec::Kind::kText;
        break;
    }
  }
  spec.value = step.compare_literal;
  if (!spec.name.empty()) {
    spec.name_symbol = util::SymbolTable::Global().Intern(spec.name);
  }
  return spec;
}

bool IsLeafOnlySpec(const NodeTestSpec& spec) {
  return spec.kind == NodeTestSpec::Kind::kAttribute ||
         spec.kind == NodeTestSpec::Kind::kAnyAttribute ||
         spec.kind == NodeTestSpec::Kind::kText;
}

class Builder {
 public:
  // Appends `path`'s steps under `context`; `in_predicate` suppresses the
  // default output designation. Appendix A: the Step and RelLocPath rules
  // chain node tests; the PredExpr rules branch at the current node;
  // AbsLocPath anchors at Root.
  Status BuildPath(const LocationPath& path, XNodeId context,
                   bool in_predicate) {
    XNodeId current = path.absolute ? kRootXNode : context;
    for (const Step& step : path.steps) {
      if (IsLeafOnlySpec(tree_.node(current).test)) {
        return UnsupportedError(
            "attribute/text() steps must be the last step of a path");
      }
      XAOS_ASSIGN_OR_RETURN(NodeTestSpec spec, SpecForStep(step));
      Axis axis = step.axis;
      if (axis == Axis::kFollowing || axis == Axis::kPreceding) {
        // Standard identity: following:: ≡ ancestor-or-self::*/
        // following-sibling::*/descendant-or-self:: (and symmetrically for
        // preceding::). The engine's result sets and predicate semantics
        // are duplicate-free, so the multiple derivations are harmless.
        NodeTestSpec any;
        any.kind = NodeTestSpec::Kind::kAnyElement;
        current = tree_.AddNode(current, Axis::kAncestorOrSelf, any);
        current = tree_.AddNode(current,
                                axis == Axis::kFollowing
                                    ? Axis::kFollowingSibling
                                    : Axis::kPrecedingSibling,
                                any);
        axis = Axis::kDescendantOrSelf;
      }
      current = tree_.AddNode(current, axis, std::move(spec));
      if (step.output_marked) {
        tree_.MarkOutput(current);
        has_explicit_outputs_ = true;
      }
      if (!step.predicates.empty() &&
          IsLeafOnlySpec(tree_.node(current).test)) {
        return UnsupportedError("predicates on attribute/text() steps");
      }
      for (const PredExpr& pred : step.predicates) {
        XAOS_RETURN_IF_ERROR(BuildPred(pred, current));
      }
    }
    if (!in_predicate) {
      default_output_ = current;
    }
    return Status::Ok();
  }

  Status BuildPred(const PredExpr& pred, XNodeId context) {
    switch (pred.kind) {
      case PredExpr::Kind::kPath:
        return BuildPath(pred.path, context, /*in_predicate=*/true);
      case PredExpr::Kind::kAnd:
        for (const PredExpr& child : pred.children) {
          XAOS_RETURN_IF_ERROR(BuildPred(child, context));
        }
        return Status::Ok();
      case PredExpr::Kind::kOr:
        return UnsupportedError(
            "`or` predicates must be expanded with ExpandOrs before "
            "building an x-tree");
    }
    return InternalError("unknown PredExpr kind");
  }

  StatusOr<XTree> Finish() {
    if (!has_explicit_outputs_) {
      if (default_output_ == kRootXNode) {
        return UnsupportedError("expression selects only the virtual root");
      }
      tree_.MarkOutput(default_output_);
    }
    return std::move(tree_);
  }

 private:
  XTree tree_;
  XNodeId default_output_ = kRootXNode;
  bool has_explicit_outputs_ = false;
};

}  // namespace

StatusOr<XTree> BuildXTree(const LocationPath& path) {
  if (path.steps.empty()) {
    return UnsupportedError("empty location path");
  }
  Builder builder;
  XAOS_RETURN_IF_ERROR(builder.BuildPath(path, kRootXNode,
                                         /*in_predicate=*/false));
  return builder.Finish();
}

StatusOr<std::vector<XTree>> CompileToXTrees(std::string_view expression,
                                             int max_paths) {
  // Query-compile phase accounting; successful compiles only.
  uint64_t start = obs::Enabled() ? obs::NowNs() : 0;
  XAOS_ASSIGN_OR_RETURN(xpath::Expression parsed,
                        xpath::ParseExpression(expression));
  XAOS_ASSIGN_OR_RETURN(std::vector<LocationPath> paths,
                        ExpandOrs(parsed, max_paths));
  std::vector<XTree> trees;
  trees.reserve(paths.size());
  for (const LocationPath& path : paths) {
    XAOS_ASSIGN_OR_RETURN(XTree tree, BuildXTree(path));
    trees.push_back(std::move(tree));
  }
  if (start != 0) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetHistogram("xaos_compile_ns")->Record(obs::NowNs() - start);
    registry.GetCounter("xaos_queries_compiled_total")->Increment();
    registry.GetCounter("xaos_xtrees_built_total")
        ->Increment(trees.size());
  }
  return trees;
}

}  // namespace xaos::query
