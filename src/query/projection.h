// Static document projection: which parts of a document can a compiled
// query possibly touch?
//
// Type-based projection (Benzaken et al., PAPERS.md) prunes a document down
// to the regions a query can inspect before evaluating it. This header
// derives the streaming analogue from the x-dag, without a schema: a
// ProjectionSpec lists, per element depth, the element names that may start
// a relevant match along a rooted (fixed-depth) prefix of the query, plus
// which of them must keep their entire subtree because a descendant step
// ("//") is anchored there. An element whose (depth, name) the spec does
// not mention — and that is not below a kept subtree — provably cannot
// contribute a node to any match, so the parser may skip its whole subtree
// (xml/skip_scanner.h).
//
// Soundness over precision: every construct the analysis cannot bound —
// wildcards anchored at "//", sibling axes, re-rooted trees, contradictory
// depth constraints — degrades to "keep everything", so projection never
// changes results, only cost. The levels are sound because an x-node fixed
// at depth L is constrained level-by-level back to the virtual root: each
// candidate's ancestor chain threads exclusively through kept entries, so
// no ancestor of a relevant node is ever skipped.

#ifndef XAOS_QUERY_PROJECTION_H_
#define XAOS_QUERY_PROJECTION_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "query/xtree.h"
#include "util/symbol_table.h"
#include "xml/skip_scanner.h"

namespace xaos::query {

// The relevance table for one query (or the union across subscriptions).
struct ProjectionSpec {
  // What a kept element name at a given depth needs from the parser.
  // keep_subtree: a descendant step is anchored here, so the whole subtree
  // stays. needs_text / needs_attributes: a text()/attribute test applies
  // directly to this element (conservative; advisory for finer-grained
  // skipping — subtree-level skipping keeps both regardless).
  struct NameEntry {
    bool keep_subtree = false;
    bool needs_text = false;
    bool needs_attributes = false;
  };

  // Elements allowed at one open-element depth (the document element is at
  // depth 0). `any_name` covers wildcard steps fixed at this depth.
  struct Level {
    bool any_name = false;
    bool any_keep_subtree = false;
    bool any_needs_text = false;
    bool any_needs_attributes = false;
    std::unordered_map<util::Symbol, NameEntry> names;
  };

  // When set, the analysis could not bound the query; nothing is skipped.
  bool keep_all = false;
  std::string keep_all_reason;

  // levels[d] constrains elements at open depth d. Depths beyond the table
  // are irrelevant unless inside a kept subtree. An empty table (zero
  // queries) keeps nothing.
  std::vector<Level> levels;

  // Element names that can start a relevant match (rooted level-1 names and
  // targets of anchored descendant steps). Informational.
  std::vector<util::Symbol> seed_symbols;

  static ProjectionSpec KeepAll(std::string reason);
  // Analyzes one x-tree / the union over a query's disjunct trees.
  static ProjectionSpec Analyze(const XTree& tree);
  static ProjectionSpec Analyze(const std::vector<XTree>& trees);

  // Widens this spec to also cover everything `other` covers.
  void UnionWith(const ProjectionSpec& other);

  // Compact rendering for logs/--explain, e.g.
  // "keep-all (unanchored '//' step)" or "levels=3 [site; catgraph; edge]".
  std::string ToString() const;
};

// ProjectionFilter over a ProjectionSpec, installable via
// xml::ParserOptions::projection_filter. Tracks one piece of state: the
// depth of the shallowest open kept-subtree ("watermark"), below which
// nothing is skipped. The watermark needs no end-tag notification: leaving
// the subtree is only observable at the next start tag at or above the
// watermark depth, which re-evaluates and replaces it. Reset() must run at
// every document start/abort (the evaluators do this from their own
// StartDocument/AbortDocument).
class ProjectionGate : public xml::ProjectionFilter {
 public:
  ProjectionGate() = default;

  void SetSpec(ProjectionSpec spec);
  const ProjectionSpec& spec() const { return spec_; }

  void Reset() { keep_watermark_ = kNoWatermark; }

  bool ShouldSkipSubtree(std::string_view name, size_t open_depth) override;

 private:
  static constexpr size_t kNoWatermark = static_cast<size_t>(-1);

  ProjectionSpec spec_;
  size_t keep_watermark_ = kNoWatermark;
};

}  // namespace xaos::query

#endif  // XAOS_QUERY_PROJECTION_H_
