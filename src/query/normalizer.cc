#include "query/normalizer.h"

#include <utility>

namespace xaos::query {
namespace {

using xpath::LocationPath;
using xpath::PredExpr;
using xpath::Step;

// A conjunction of or-free predicate paths.
using Conjunction = std::vector<LocationPath>;
// A disjunction of conjunctions (DNF).
using Dnf = std::vector<Conjunction>;

constexpr int kNoLimitGuard = 1 << 20;  // hard cap against blow-up mid-expansion

StatusOr<std::vector<LocationPath>> ExpandPath(const LocationPath& path,
                                               int max_paths);

// Expands a predicate expression into DNF with or-free paths.
StatusOr<Dnf> ExpandPred(const PredExpr& pred, int max_paths) {
  switch (pred.kind) {
    case PredExpr::Kind::kPath: {
      XAOS_ASSIGN_OR_RETURN(std::vector<LocationPath> paths,
                            ExpandPath(pred.path, max_paths));
      Dnf dnf;
      for (LocationPath& p : paths) {
        dnf.push_back(Conjunction{std::move(p)});
      }
      return dnf;
    }
    case PredExpr::Kind::kOr: {
      Dnf dnf;
      for (const PredExpr& child : pred.children) {
        XAOS_ASSIGN_OR_RETURN(Dnf child_dnf, ExpandPred(child, max_paths));
        for (Conjunction& conj : child_dnf) {
          dnf.push_back(std::move(conj));
        }
        if (static_cast<int>(dnf.size()) > kNoLimitGuard) {
          return ResourceExhaustedError("or-expansion too large");
        }
      }
      return dnf;
    }
    case PredExpr::Kind::kAnd: {
      Dnf dnf{Conjunction{}};
      for (const PredExpr& child : pred.children) {
        XAOS_ASSIGN_OR_RETURN(Dnf child_dnf, ExpandPred(child, max_paths));
        Dnf next;
        for (const Conjunction& left : dnf) {
          for (const Conjunction& right : child_dnf) {
            Conjunction merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (static_cast<int>(next.size()) > kNoLimitGuard) {
              return ResourceExhaustedError("or-expansion too large");
            }
          }
        }
        dnf = std::move(next);
      }
      return dnf;
    }
  }
  return InternalError("unknown PredExpr kind");
}

// Expands one step into alternatives whose predicates are or-free kPath
// conjunctions.
StatusOr<std::vector<Step>> ExpandStep(const Step& step, int max_paths) {
  std::vector<Step> alternatives;
  Step bare = step;
  bare.predicates.clear();
  alternatives.push_back(std::move(bare));

  for (const PredExpr& pred : step.predicates) {
    XAOS_ASSIGN_OR_RETURN(Dnf dnf, ExpandPred(pred, max_paths));
    std::vector<Step> next;
    for (const Step& alt : alternatives) {
      for (const Conjunction& conj : dnf) {
        Step combined = alt;
        for (const LocationPath& p : conj) {
          PredExpr leaf;
          leaf.kind = PredExpr::Kind::kPath;
          leaf.path = p;
          combined.predicates.push_back(std::move(leaf));
        }
        next.push_back(std::move(combined));
        if (static_cast<int>(next.size()) > kNoLimitGuard) {
          return ResourceExhaustedError("or-expansion too large");
        }
      }
    }
    alternatives = std::move(next);
  }
  return alternatives;
}

StatusOr<std::vector<LocationPath>> ExpandPath(const LocationPath& path,
                                               int max_paths) {
  std::vector<LocationPath> results;
  LocationPath seed;
  seed.absolute = path.absolute;
  results.push_back(std::move(seed));

  for (const Step& step : path.steps) {
    XAOS_ASSIGN_OR_RETURN(std::vector<Step> step_alts,
                          ExpandStep(step, max_paths));
    std::vector<LocationPath> next;
    for (const LocationPath& prefix : results) {
      for (const Step& alt : step_alts) {
        LocationPath extended = prefix;
        extended.steps.push_back(alt);
        next.push_back(std::move(extended));
        if (static_cast<int>(next.size()) > kNoLimitGuard) {
          return ResourceExhaustedError("or-expansion too large");
        }
      }
    }
    results = std::move(next);
  }
  (void)max_paths;
  return results;
}

}  // namespace

StatusOr<std::vector<xpath::LocationPath>> ExpandOrs(
    const xpath::Expression& expression, int max_paths) {
  std::vector<LocationPath> all;
  for (const LocationPath& branch : expression.union_branches) {
    XAOS_ASSIGN_OR_RETURN(std::vector<LocationPath> expanded,
                          ExpandPath(branch, max_paths));
    for (LocationPath& p : expanded) {
      all.push_back(std::move(p));
    }
  }
  if (static_cast<int>(all.size()) > max_paths) {
    return ResourceExhaustedError(
        "or-expansion produced " + std::to_string(all.size()) +
        " disjuncts, exceeding the limit of " + std::to_string(max_paths));
  }
  return all;
}

}  // namespace xaos::query
