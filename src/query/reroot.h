// Re-rooting of x-trees and intersection/join composition of queries
// (paper Section 5.4).
//
// The x-dag of an expression like /descendant::Y[U]/descendant::W with a
// second expression //Z[V]//W merged at the shared output W represents the
// *intersection* of the two queries. This module realizes that composition
// at the x-tree level: the second tree is re-rooted at its output node
// (inverting each axis along the way) and grafted onto the first tree's
// output node, producing an ordinary x-tree the engine can evaluate in a
// single pass.

#ifndef XAOS_QUERY_REROOT_H_
#define XAOS_QUERY_REROOT_H_

#include "query/xtree.h"
#include "util/statusor.h"

namespace xaos::query {

// Returns an x-tree expressing the same constraints as `tree`, but with
// `new_root` as the tree root. Edges on the path from `new_root` to the old
// root are inverted (child↔parent, descendant↔ancestor,
// descendant-or-self↔ancestor-or-self, self↔self); the old Root x-node
// becomes an ordinary node whose test matches only the virtual root.
// Fails if an attribute edge would need inversion.
StatusOr<XTree> Reroot(const XTree& tree, XNodeId new_root);

// Computes the intersection of two single-output queries: the result
// matches exactly the elements selected by both `a` and `b`. The two output
// node tests must be compatible (equal names, or one a wildcard); the
// merged node carries the more specific test. The result's only output is
// the merged node.
StatusOr<XTree> Intersect(const XTree& a, const XTree& b);

// Like Intersect, but keeps every output mark from both inputs (the
// "join" form of Section 5.4: the merged node plus any additional
// $-marked nodes, enabling tuple output across the two queries).
StatusOr<XTree> Join(const XTree& a, const XTree& b);

}  // namespace xaos::query

#endif  // XAOS_QUERY_REROOT_H_
