#include "query/projection.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "query/xdag.h"
#include "xpath/ast.h"

namespace xaos::query {
namespace {

using Kind = NodeTestSpec::Kind;

// Level lattice: kUnset < fixed depth (>= 0) < kFloating. A node is fixed
// at L when every candidate sits at document depth exactly L (virtual root
// at 0, document element at 1); floating when the depth is unbounded.
constexpr int kFloating = -1;
constexpr int kUnset = -2;

util::Symbol SymbolFor(const NodeTestSpec& test) {
  if (test.name_symbol != util::kInvalidSymbol) return test.name_symbol;
  return util::SymbolTable::Global().Intern(test.name);
}

void AddSeed(std::vector<util::Symbol>* seeds, util::Symbol s) {
  if (std::find(seeds->begin(), seeds->end(), s) == seeds->end()) {
    seeds->push_back(s);
  }
}

}  // namespace

ProjectionSpec ProjectionSpec::KeepAll(std::string reason) {
  ProjectionSpec spec;
  spec.keep_all = true;
  spec.keep_all_reason = std::move(reason);
  return spec;
}

ProjectionSpec ProjectionSpec::Analyze(const XTree& tree) {
  const int n = tree.size();
  for (XNodeId id = 0; id < n; ++id) {
    const XNode& node = tree.node(id);
    if ((node.test.kind == Kind::kRoot) != (id == kRootXNode)) {
      // Re-rooted intersections move the virtual-root test around; their
      // depth semantics are not the plain rooted ones this analysis knows.
      return KeepAll("re-rooted tree");
    }
    if (id == kRootXNode) continue;
    switch (node.incoming_axis) {
      case xpath::Axis::kChild:
      case xpath::Axis::kDescendant:
      case xpath::Axis::kParent:
      case xpath::Axis::kAncestor:
      case xpath::Axis::kSelf:
      case xpath::Axis::kDescendantOrSelf:
      case xpath::Axis::kAncestorOrSelf:
      case xpath::Axis::kAttribute:
        break;
      default:
        // Sibling (and undesugared following/preceding) constraints reach
        // outside the matched element's own ancestor chain, and the engine
        // tracks them with a dense per-level stack that skipping would
        // starve.
        return KeepAll("sibling axes need the full sibling sequence");
    }
    if (node.test.kind != Kind::kElement &&
        node.test.kind != Kind::kAnyElement && !node.children.empty()) {
      return KeepAll("non-element x-node with children");
    }
  }

  XDag dag(tree);
  std::vector<int> level(static_cast<size_t>(n), kUnset);
  std::vector<bool> portal(static_cast<size_t>(n), false);
  level[kRootXNode] = 0;
  for (XNodeId id : dag.TopologicalOrder()) {
    if (id == kRootXNode) continue;
    int combined = kUnset;
    for (const XDagEdge& edge : dag.incoming(id)) {
      int from = level[static_cast<size_t>(edge.from)];
      int candidate = kFloating;
      switch (edge.axis) {
        case xpath::Axis::kChild:
        case xpath::Axis::kAttribute:
          candidate = (from >= 0) ? from + 1 : kFloating;
          break;
        case xpath::Axis::kSelf:
          candidate = from;
          break;
        case xpath::Axis::kDescendant:
        case xpath::Axis::kDescendantOrSelf:
          // Candidates live anywhere below `from`: when `from` is fixed it
          // becomes a portal (its whole subtree is kept); when floating,
          // its own portal already covers everything below.
          if (from >= 0) portal[static_cast<size_t>(edge.from)] = true;
          break;
        default:
          return KeepAll("unanalyzable x-dag edge");  // dag edges are forward
      }
      // Constraints conjoin, so one fixed edge pins the node; two fixed
      // edges must agree.
      if (candidate >= 0) {
        if (combined >= 0 && combined != candidate) {
          return KeepAll("contradictory depth constraints");
        }
        combined = candidate;
      } else if (combined == kUnset) {
        combined = kFloating;
      }
    }
    if (combined == kUnset) {
      return KeepAll("x-node without incoming x-dag edges");
    }
    if (combined == 0) {
      return KeepAll("non-root x-node constrained to the root level");
    }
    level[static_cast<size_t>(id)] = combined;
  }
  if (portal[kRootXNode]) {
    return KeepAll("unanchored '//' step keeps the whole document");
  }

  ProjectionSpec spec;
  size_t max_level = 0;
  for (XNodeId id = 1; id < n; ++id) {
    const Kind kind = tree.node(id).test.kind;
    if ((kind == Kind::kElement || kind == Kind::kAnyElement) &&
        level[static_cast<size_t>(id)] >= 1) {
      max_level =
          std::max(max_level, static_cast<size_t>(level[static_cast<size_t>(id)]));
    }
  }
  spec.levels.resize(max_level);

  for (XNodeId id = 1; id < n; ++id) {
    const XNode& node = tree.node(id);
    const int lvl = level[static_cast<size_t>(id)];
    const bool is_portal = portal[static_cast<size_t>(id)];
    switch (node.test.kind) {
      case Kind::kElement: {
        util::Symbol s = SymbolFor(node.test);
        if (lvl >= 1) {
          NameEntry& entry = spec.levels[static_cast<size_t>(lvl - 1)].names[s];
          entry.keep_subtree |= is_portal;
          if (lvl == 1) AddSeed(&spec.seed_symbols, s);
        }
        // Targets of anchored descendant steps start relevant matches too.
        for (const XDagEdge& edge : dag.incoming(id)) {
          if (edge.axis == xpath::Axis::kDescendant ||
              edge.axis == xpath::Axis::kDescendantOrSelf) {
            AddSeed(&spec.seed_symbols, s);
          }
        }
        break;
      }
      case Kind::kAnyElement:
        if (lvl >= 1) {
          Level& l = spec.levels[static_cast<size_t>(lvl - 1)];
          l.any_name = true;
          l.any_keep_subtree |= is_portal;
        }
        break;
      case Kind::kAttribute:
      case Kind::kAnyAttribute:
      case Kind::kText: {
        // Mark what the owning element needs. Only child/attribute edges
        // from a fixed element matter: floating owners sit inside a kept
        // subtree already, and anchored-descendant owners are portals.
        const bool wants_text = node.test.kind == Kind::kText;
        for (const XDagEdge& edge : dag.incoming(id)) {
          if (edge.axis != xpath::Axis::kChild &&
              edge.axis != xpath::Axis::kAttribute) {
            continue;
          }
          if (edge.from == kRootXNode) {
            return KeepAll("attribute or text test at the root");
          }
          const XNode& owner = tree.node(edge.from);
          const int owner_level = level[static_cast<size_t>(edge.from)];
          if (owner_level < 1) continue;
          Level& l = spec.levels[static_cast<size_t>(owner_level - 1)];
          if (owner.test.kind == Kind::kAnyElement) {
            (wants_text ? l.any_needs_text : l.any_needs_attributes) = true;
          } else if (owner.test.kind == Kind::kElement) {
            NameEntry& entry = l.names[SymbolFor(owner.test)];
            (wants_text ? entry.needs_text : entry.needs_attributes) = true;
          }
        }
        break;
      }
      case Kind::kRoot:
        break;  // excluded above
    }
  }
  return spec;
}

ProjectionSpec ProjectionSpec::Analyze(const std::vector<XTree>& trees) {
  ProjectionSpec spec;
  for (const XTree& tree : trees) {
    spec.UnionWith(Analyze(tree));
    if (spec.keep_all) break;
  }
  return spec;
}

void ProjectionSpec::UnionWith(const ProjectionSpec& other) {
  if (keep_all) return;
  if (other.keep_all) {
    keep_all = true;
    keep_all_reason = other.keep_all_reason;
    levels.clear();
    seed_symbols.clear();
    return;
  }
  if (other.levels.size() > levels.size()) levels.resize(other.levels.size());
  for (size_t d = 0; d < other.levels.size(); ++d) {
    const Level& src = other.levels[d];
    Level& dst = levels[d];
    dst.any_name |= src.any_name;
    dst.any_keep_subtree |= src.any_keep_subtree;
    dst.any_needs_text |= src.any_needs_text;
    dst.any_needs_attributes |= src.any_needs_attributes;
    for (const auto& [symbol, entry] : src.names) {
      NameEntry& merged = dst.names[symbol];
      merged.keep_subtree |= entry.keep_subtree;
      merged.needs_text |= entry.needs_text;
      merged.needs_attributes |= entry.needs_attributes;
    }
  }
  for (util::Symbol s : other.seed_symbols) AddSeed(&seed_symbols, s);
}

std::string ProjectionSpec::ToString() const {
  if (keep_all) return "keep-all (" + keep_all_reason + ")";
  std::string out = "levels=" + std::to_string(levels.size()) + " [";
  for (size_t d = 0; d < levels.size(); ++d) {
    if (d > 0) out += "; ";
    const Level& l = levels[d];
    bool first = true;
    if (l.any_name) {
      out += l.any_keep_subtree ? "*.." : "*";
      first = false;
    }
    // Deterministic order for logs and tests.
    std::vector<util::Symbol> symbols;
    symbols.reserve(l.names.size());
    for (const auto& [symbol, entry] : l.names) symbols.push_back(symbol);
    std::sort(symbols.begin(), symbols.end(),
              [](util::Symbol a, util::Symbol b) {
                return util::SymbolTable::Global().Name(a) <
                       util::SymbolTable::Global().Name(b);
              });
    for (util::Symbol s : symbols) {
      if (!first) out += ",";
      first = false;
      out += util::SymbolTable::Global().Name(s);
      if (l.names.at(s).keep_subtree) out += "..";
    }
  }
  out += "]";
  return out;
}

void ProjectionGate::SetSpec(ProjectionSpec spec) {
  spec_ = std::move(spec);
  keep_watermark_ = kNoWatermark;
  if (spec_.keep_all && obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_projection_disabled_total")
        ->Increment();
  }
}

bool ProjectionGate::ShouldSkipSubtree(std::string_view name,
                                       size_t open_depth) {
  if (spec_.keep_all) return false;
  if (keep_watermark_ != kNoWatermark) {
    if (open_depth > keep_watermark_) return false;  // inside a kept subtree
    keep_watermark_ = kNoWatermark;  // left it; re-evaluate at this tag
  }
  if (open_depth >= spec_.levels.size()) return true;
  const ProjectionSpec::Level& level = spec_.levels[open_depth];
  bool kept = false;
  bool keep_subtree = false;
  if (level.any_name) {
    kept = true;
    keep_subtree = level.any_keep_subtree;
  }
  if (!keep_subtree && !level.names.empty()) {
    util::Symbol s = util::SymbolTable::Global().Lookup(name);
    if (s != util::kInvalidSymbol) {
      auto it = level.names.find(s);
      if (it != level.names.end()) {
        kept = true;
        keep_subtree |= it->second.keep_subtree;
      }
    }
  }
  if (!kept) return true;
  if (keep_subtree) keep_watermark_ = open_depth;
  return false;
}

}  // namespace xaos::query
