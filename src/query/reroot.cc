#include "query/reroot.h"

#include <utility>
#include <vector>

namespace xaos::query {
namespace {

using xpath::Axis;

// Recursively copies the subtree below `src_node` into `dst` under
// `dst_parent`, preserving axes. Output marks are carried over when
// `keep_outputs` is set. `id_map`, if non-null, receives dst ids indexed by
// src id.
void CopyChildren(const XTree& src, XNodeId src_node, XTree* dst,
                  XNodeId dst_parent, bool keep_outputs,
                  std::vector<XNodeId>* id_map) {
  for (XNodeId child : src.node(src_node).children) {
    const XNode& c = src.node(child);
    XNodeId copied = dst->AddNode(dst_parent, c.incoming_axis, c.test);
    if (keep_outputs && c.is_output) dst->MarkOutput(copied);
    if (id_map != nullptr) (*id_map)[static_cast<size_t>(child)] = copied;
    CopyChildren(src, child, dst, copied, keep_outputs, id_map);
  }
}

// Merges two node tests; fails if no document node can satisfy both.
StatusOr<NodeTestSpec> MergeSpecs(const NodeTestSpec& a,
                                  const NodeTestSpec& b) {
  NodeTestSpec merged;
  using Kind = NodeTestSpec::Kind;
  auto incompatible = [&]() {
    return InvalidArgumentError("incompatible node tests: " + a.Label() +
                                " vs " + b.Label());
  };

  if (a.kind == b.kind && a.name == b.name) {
    merged = a;
  } else if (a.kind == Kind::kAnyElement && b.kind == Kind::kElement) {
    merged = b;
  } else if (b.kind == Kind::kAnyElement && a.kind == Kind::kElement) {
    merged = a;
  } else if (a.kind == Kind::kAnyAttribute && b.kind == Kind::kAttribute) {
    merged = b;
  } else if (b.kind == Kind::kAnyAttribute && a.kind == Kind::kAttribute) {
    merged = a;
  } else {
    return incompatible();
  }

  if (a.value.has_value() && b.value.has_value() && *a.value != *b.value) {
    return incompatible();
  }
  merged.value = a.value.has_value() ? a.value : b.value;
  return merged;
}

}  // namespace

StatusOr<XTree> Reroot(const XTree& tree, XNodeId new_root) {
  XAOS_CHECK(new_root >= 0 && new_root < tree.size());
  XTree result;
  result.SetTest(kRootXNode, tree.node(new_root).test);
  if (tree.node(new_root).is_output) result.MarkOutput(kRootXNode);

  // DFS over the undirected tree from new_root. `from` avoids revisiting.
  auto visit = [&](auto&& self, XNodeId src, XNodeId from,
                   XNodeId dst) -> Status {
    const XNode& node = tree.node(src);
    // Original children (edges src -> child keep their axis).
    for (XNodeId child : node.children) {
      if (child == from) continue;
      const XNode& c = tree.node(child);
      XNodeId copied = result.AddNode(dst, c.incoming_axis, c.test);
      if (c.is_output) result.MarkOutput(copied);
      XAOS_RETURN_IF_ERROR(self(self, child, src, copied));
    }
    // Original parent (edge parent -> src is inverted into src -> parent).
    if (node.parent != kInvalidXNode && node.parent != from) {
      if (node.incoming_axis == Axis::kAttribute) {
        return UnsupportedError("cannot re-root across an attribute edge");
      }
      const XNode& p = tree.node(node.parent);
      XNodeId copied =
          result.AddNode(dst, InverseAxis(node.incoming_axis), p.test);
      if (p.is_output) result.MarkOutput(copied);
      XAOS_RETURN_IF_ERROR(self(self, node.parent, src, copied));
    }
    return Status::Ok();
  };
  XAOS_RETURN_IF_ERROR(visit(visit, new_root, kInvalidXNode, kRootXNode));
  return result;
}

namespace {

StatusOr<XTree> Compose(const XTree& a, const XTree& b, bool keep_all_marks) {
  std::vector<XNodeId> a_outputs = a.OutputNodes();
  std::vector<XNodeId> b_outputs = b.OutputNodes();
  if (a_outputs.empty() || b_outputs.empty()) {
    return InvalidArgumentError("both queries need an output node");
  }
  if (!keep_all_marks && (a_outputs.size() != 1 || b_outputs.size() != 1)) {
    return InvalidArgumentError(
        "Intersect requires single-output queries; use Join for "
        "multi-output composition");
  }
  // The merge point is each side's *main* output: the rightmost node of
  // the main location path, which the builder creates last — i.e. the
  // highest-numbered output (for joins, additional $-marked outputs are
  // preserved as extra tuple columns).
  XNodeId merge_a = a_outputs.back();
  XNodeId merge_b = b_outputs.back();

  XAOS_ASSIGN_OR_RETURN(XTree b_rerooted, Reroot(b, merge_b));
  XAOS_ASSIGN_OR_RETURN(
      NodeTestSpec merged,
      MergeSpecs(a.node(merge_a).test, b_rerooted.node(kRootXNode).test));

  // Copy `a` wholesale, tracking where each of its nodes landed.
  XTree result;
  std::vector<XNodeId> id_map(static_cast<size_t>(a.size()), kInvalidXNode);
  id_map[kRootXNode] = kRootXNode;
  CopyChildren(a, kRootXNode, &result, kRootXNode, /*keep_outputs=*/true,
               &id_map);
  XNodeId merge_point = id_map[static_cast<size_t>(merge_a)];
  result.SetTest(merge_point, std::move(merged));
  if (!keep_all_marks) {
    for (XNodeId id : result.OutputNodes()) {
      if (id != merge_point) result.ClearOutput(id);
    }
  }
  // Graft the re-rooted second query under the merge point. The re-rooted
  // root itself *is* the merge point; only its children are copied.
  CopyChildren(b_rerooted, kRootXNode, &result, merge_point, keep_all_marks,
               nullptr);
  return result;
}

}  // namespace

StatusOr<XTree> Intersect(const XTree& a, const XTree& b) {
  return Compose(a, b, /*keep_all_marks=*/false);
}

StatusOr<XTree> Join(const XTree& a, const XTree& b) {
  return Compose(a, b, /*keep_all_marks=*/true);
}

}  // namespace xaos::query
