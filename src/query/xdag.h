// The x-dag: the paper's directed acyclic reformulation of the x-tree in
// which every backward constraint (parent/ancestor) becomes a forward
// constraint (Section 3.2). The engine uses it to decide which incoming
// events are relevant (the looking-for machinery of Section 4.1).

#ifndef XAOS_QUERY_XDAG_H_
#define XAOS_QUERY_XDAG_H_

#include <string>
#include <vector>

#include "query/xtree.h"
#include "xpath/ast.h"

namespace xaos::query {

// One directed edge of the x-dag. Semantics: the document node matched to
// `to` must stand in relation `axis` to the node matched to `from`
// (child = direct child of it, descendant = proper descendant, ...).
struct XDagEdge {
  XNodeId from;
  XNodeId to;
  xpath::Axis axis;

  friend bool operator==(const XDagEdge&, const XDagEdge&) = default;
};

// Derived from an XTree by the three rules of Section 3.2:
//  1. child / descendant (and the other forward axes) edges are kept;
//  2. parent / ancestor (/ancestor-or-self) edges are reversed and
//     relabeled child / descendant (/descendant-or-self);
//  3. every non-root x-node left without an incoming edge receives a
//     descendant edge from Root (a self edge if the node's test is the
//     virtual root itself, which arises from re-rooted intersections).
class XDag {
 public:
  // `tree` must outlive the XDag.
  explicit XDag(const XTree& tree);

  const XTree& tree() const { return *tree_; }
  int size() const { return tree_->size(); }

  // Incoming edges of `node` (edges whose `to` is the node).
  const std::vector<XDagEdge>& incoming(XNodeId node) const {
    return incoming_[static_cast<size_t>(node)];
  }
  // Outgoing edges of `node`.
  const std::vector<XDagEdge>& outgoing(XNodeId node) const {
    return outgoing_[static_cast<size_t>(node)];
  }

  // X-node ids in a topological order of the dag (Root first).
  const std::vector<XNodeId>& TopologicalOrder() const { return topo_; }
  // Position of each node in TopologicalOrder().
  int TopologicalRank(XNodeId node) const {
    return topo_rank_[static_cast<size_t>(node)];
  }

  // Compact rendering of all edges, e.g. "Root-desc->Y, Z-child->V, ...".
  std::string ToString() const;
  std::string ToDot(std::string_view graph_name = "xdag") const;

 private:
  void AddEdge(XNodeId from, XNodeId to, xpath::Axis axis);
  void ComputeTopologicalOrder();

  const XTree* tree_;
  std::vector<std::vector<XDagEdge>> incoming_;
  std::vector<std::vector<XDagEdge>> outgoing_;
  std::vector<XNodeId> topo_;
  std::vector<int> topo_rank_;
};

}  // namespace xaos::query

#endif  // XAOS_QUERY_XDAG_H_
