// Disjunction elimination (paper Section 5.2).
//
// χαoς handles `or` by rewriting an expression into disjunctive normal
// form and running one engine per disjunct, unioning the results. This
// module performs the rewrite: the output paths contain no kOr predicate
// nodes (conjunction is expressed as multiple predicates per step).

#ifndef XAOS_QUERY_NORMALIZER_H_
#define XAOS_QUERY_NORMALIZER_H_

#include <vector>

#include "util/statusor.h"
#include "xpath/ast.h"

namespace xaos::query {

// Expands all `or`s in `expression` (including union branches) into a list
// of or-free location paths whose union is equivalent. The expansion is
// worst-case exponential in the number of `or`s; if more than `max_paths`
// disjuncts would be produced, returns ResourceExhausted.
StatusOr<std::vector<xpath::LocationPath>> ExpandOrs(
    const xpath::Expression& expression, int max_paths = 64);

}  // namespace xaos::query

#endif  // XAOS_QUERY_NORMALIZER_H_
