// Construction of x-trees from parsed XPath expressions, following the
// rules of the paper's Appendix A.

#ifndef XAOS_QUERY_XTREE_BUILDER_H_
#define XAOS_QUERY_XTREE_BUILDER_H_

#include <string_view>
#include <vector>

#include "query/xtree.h"
#include "util/statusor.h"
#include "xpath/ast.h"

namespace xaos::query {

// Builds the x-tree for an or-free location path (see normalizer.h).
// Output designation: if any step is $-marked, exactly the marked x-nodes
// are outputs (Section 5.3); otherwise the rightmost node test not inside a
// predicate (Appendix A). Returns Unsupported for constructs the engine
// cannot evaluate (predicates or child steps under attribute/text nodes,
// `or` predicates that were not expanded).
StatusOr<XTree> BuildXTree(const xpath::LocationPath& path);

// Parses `expression`, expands `or`s and unions, and builds one x-tree per
// disjunct. This is the one-stop query-compilation entry point.
StatusOr<std::vector<XTree>> CompileToXTrees(std::string_view expression,
                                             int max_paths = 64);

}  // namespace xaos::query

#endif  // XAOS_QUERY_XTREE_BUILDER_H_
