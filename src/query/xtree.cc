#include "query/xtree.h"

namespace xaos::query {

std::string NodeTestSpec::Label() const {
  std::string label;
  switch (kind) {
    case Kind::kRoot:
      label = "#root";
      break;
    case Kind::kElement:
      label = name;
      break;
    case Kind::kAnyElement:
      label = "*";
      break;
    case Kind::kAttribute:
      label = "@" + name;
      break;
    case Kind::kAnyAttribute:
      label = "@*";
      break;
    case Kind::kText:
      label = "#text";
      break;
  }
  if (value.has_value()) label += "='" + *value + "'";
  return label;
}

bool MatchesSpec(const NodeTestSpec& spec, DocNodeKind kind,
                 std::string_view name, std::string_view value) {
  switch (spec.kind) {
    case NodeTestSpec::Kind::kRoot:
      return kind == DocNodeKind::kRoot;
    case NodeTestSpec::Kind::kElement:
      return kind == DocNodeKind::kElement && name == spec.name;
    case NodeTestSpec::Kind::kAnyElement:
      return kind == DocNodeKind::kElement;
    case NodeTestSpec::Kind::kAttribute:
      if (kind != DocNodeKind::kAttribute || name != spec.name) return false;
      break;
    case NodeTestSpec::Kind::kAnyAttribute:
      if (kind != DocNodeKind::kAttribute) return false;
      break;
    case NodeTestSpec::Kind::kText:
      if (kind != DocNodeKind::kText) return false;
      break;
  }
  // Attribute / text: optionally constrain the string value.
  return !spec.value.has_value() || value == *spec.value;
}

xpath::Axis InverseAxis(xpath::Axis axis) {
  using xpath::Axis;
  switch (axis) {
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kDescendantOrSelf:
      return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf:
      return Axis::kDescendantOrSelf;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
    case Axis::kFollowing:
      return Axis::kPreceding;
    case Axis::kPreceding:
      return Axis::kFollowing;
    case Axis::kAttribute:
      break;
  }
  XAOS_CHECK(false) << "attribute axis has no inverse";
  return Axis::kChild;
}

XTree::XTree() {
  XNode root;
  root.test.kind = NodeTestSpec::Kind::kRoot;
  root.depth = 0;
  nodes_.push_back(std::move(root));
}

XNodeId XTree::AddNode(XNodeId parent, xpath::Axis axis, NodeTestSpec test) {
  XAOS_CHECK(parent >= 0 && parent < size());
  XNode node;
  node.test = std::move(test);
  node.parent = parent;
  node.incoming_axis = axis;
  node.depth = nodes_[static_cast<size_t>(parent)].depth + 1;
  XNodeId id = static_cast<XNodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

std::vector<XNodeId> XTree::OutputNodes() const {
  std::vector<XNodeId> out;
  for (int i = 0; i < size(); ++i) {
    if (nodes_[static_cast<size_t>(i)].is_output) out.push_back(i);
  }
  return out;
}

bool XTree::HasBackwardEdges() const {
  for (int i = 1; i < size(); ++i) {
    if (xpath::IsBackwardAxis(node(i).incoming_axis)) return true;
  }
  return false;
}

namespace {

// Short axis tag for ToString.
std::string_view AxisTag(xpath::Axis axis) {
  using xpath::Axis;
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "desc";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "anc";
    case Axis::kSelf:
      return "self";
    case Axis::kDescendantOrSelf:
      return "desc-self";
    case Axis::kAncestorOrSelf:
      return "anc-self";
    case Axis::kAttribute:
      return "attr";
    case Axis::kFollowingSibling:
      return "fsib";
    case Axis::kPrecedingSibling:
      return "psib";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
  }
  return "?";
}

}  // namespace

std::string XTree::ToString() const {
  std::string out;
  // Recursive lambda over the tree.
  auto render = [&](auto&& self, XNodeId id) -> void {
    const XNode& n = node(id);
    if (id != kRootXNode) {
      out += n.test.Label();
      out += "<";
      out += AxisTag(n.incoming_axis);
      out += ">";
    } else {
      out += "Root";
    }
    if (n.is_output) out += "[out]";
    if (!n.children.empty()) {
      out += "(";
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i > 0) out += ", ";
        self(self, n.children[i]);
      }
      out += ")";
    }
  };
  render(render, kRootXNode);
  return out;
}

std::string XTree::ToDot(std::string_view graph_name) const {
  std::string out = "digraph " + std::string(graph_name) + " {\n";
  for (int i = 0; i < size(); ++i) {
    const XNode& n = node(i);
    out += "  n" + std::to_string(i) + " [label=\"" +
           (i == kRootXNode ? "Root" : n.test.Label()) + "\"" +
           (n.is_output ? ", penwidth=2" : "") + "];\n";
  }
  for (int i = 1; i < size(); ++i) {
    const XNode& n = node(i);
    out += "  n" + std::to_string(n.parent) + " -> n" + std::to_string(i) +
           " [label=\"" + std::string(AxisTag(n.incoming_axis)) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace xaos::query
