#include "query/xdag.h"

#include <deque>

namespace xaos::query {

XDag::XDag(const XTree& tree) : tree_(&tree) {
  size_t n = static_cast<size_t>(tree.size());
  incoming_.resize(n);
  outgoing_.resize(n);

  using xpath::Axis;
  // Rules 1 and 2: keep forward edges, reverse + relabel backward edges.
  for (int id = 1; id < tree.size(); ++id) {
    const XNode& node = tree.node(id);
    Axis axis = node.incoming_axis;
    if (xpath::IsBackwardAxis(axis)) {
      AddEdge(id, node.parent, InverseAxis(axis));
    } else {
      AddEdge(node.parent, id, axis);
    }
  }
  // Rule 3: connect parentless nodes to Root.
  for (int id = 1; id < tree.size(); ++id) {
    if (incoming_[static_cast<size_t>(id)].empty()) {
      // A node testing for the virtual root can only be matched to the
      // virtual root itself, so the connecting constraint is `self`.
      Axis axis = tree.node(id).test.kind == NodeTestSpec::Kind::kRoot
                      ? Axis::kSelf
                      : Axis::kDescendant;
      AddEdge(kRootXNode, id, axis);
    }
  }
  ComputeTopologicalOrder();
}

void XDag::AddEdge(XNodeId from, XNodeId to, xpath::Axis axis) {
  XDagEdge edge{from, to, axis};
  incoming_[static_cast<size_t>(to)].push_back(edge);
  outgoing_[static_cast<size_t>(from)].push_back(edge);
}

void XDag::ComputeTopologicalOrder() {
  size_t n = incoming_.size();
  std::vector<int> pending(n);
  std::deque<XNodeId> ready;
  for (size_t i = 0; i < n; ++i) {
    pending[i] = static_cast<int>(incoming_[i].size());
    if (pending[i] == 0) ready.push_back(static_cast<XNodeId>(i));
  }
  topo_.clear();
  while (!ready.empty()) {
    XNodeId node = ready.front();
    ready.pop_front();
    topo_.push_back(node);
    for (const XDagEdge& edge : outgoing_[static_cast<size_t>(node)]) {
      if (--pending[static_cast<size_t>(edge.to)] == 0) {
        ready.push_back(edge.to);
      }
    }
  }
  XAOS_CHECK_EQ(topo_.size(), n) << "x-dag has a cycle";
  topo_rank_.assign(n, 0);
  for (size_t i = 0; i < topo_.size(); ++i) {
    topo_rank_[static_cast<size_t>(topo_[i])] = static_cast<int>(i);
  }
}

std::string XDag::ToString() const {
  std::string out;
  for (int id = 0; id < size(); ++id) {
    for (const XDagEdge& edge : outgoing_[static_cast<size_t>(id)]) {
      if (!out.empty()) out += ", ";
      out += (edge.from == kRootXNode ? "Root"
                                      : tree_->node(edge.from).test.Label());
      out += "-" + xpath::AxisToString(edge.axis) + "->";
      out += tree_->node(edge.to).test.Label();
    }
  }
  return out;
}

std::string XDag::ToDot(std::string_view graph_name) const {
  std::string out = "digraph " + std::string(graph_name) + " {\n";
  for (int i = 0; i < size(); ++i) {
    const XNode& n = tree_->node(i);
    out += "  n" + std::to_string(i) + " [label=\"" +
           (i == kRootXNode ? "Root" : n.test.Label()) + "\"" +
           (n.is_output ? ", penwidth=2" : "") + "];\n";
  }
  for (int i = 0; i < size(); ++i) {
    for (const XDagEdge& edge : outgoing_[static_cast<size_t>(i)]) {
      out += "  n" + std::to_string(edge.from) + " -> n" +
             std::to_string(edge.to) + " [label=\"" +
             xpath::AxisToString(edge.axis) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace xaos::query
