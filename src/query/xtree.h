// The x-tree: the paper's tree representation of an Rxp (Section 3.1).
//
// An x-tree is a rooted tree whose vertices ("x-nodes") carry node tests and
// whose edges carry axes. The root is the virtual Root x-node. One or more
// x-nodes are designated output nodes. The x-dag (xdag.h) is derived from
// this structure; the matching engine (src/core) composes matchings over the
// x-tree and filters events with the x-dag.

#ifndef XAOS_QUERY_XTREE_H_
#define XAOS_QUERY_XTREE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/symbol_table.h"
#include "xpath/ast.h"

namespace xaos::query {

using XNodeId = int;
inline constexpr XNodeId kRootXNode = 0;
inline constexpr XNodeId kInvalidXNode = -1;

// Kind of document node an x-node can be matched to, together with the
// node-test it must satisfy.
struct NodeTestSpec {
  enum class Kind {
    kRoot,               // only the virtual root (level 0)
    kElement,            // element with tag == name
    kAnyElement,         // any element (*)
    kAttribute,          // attribute with name == name
    kAnyAttribute,       // any attribute (@*)
    kText,               // text node
  };

  Kind kind = Kind::kElement;
  std::string name;                    // kElement / kAttribute
  std::optional<std::string> value;    // required string value (attr/text)
  // Interned id of `name`, filled in by the x-tree compiler so the engine
  // can index candidate tables without hashing. kInvalidSymbol on
  // hand-built specs; the engine interns lazily in that case.
  util::Symbol name_symbol = util::kInvalidSymbol;

  // Display label, e.g. "Y", "*", "@id", "#text", "#root".
  std::string Label() const;

  // Equality is over the test semantics (kind/name/value); the cached
  // symbol is derived from `name` and deliberately excluded so hand-built
  // specs compare equal to compiler-produced ones.
  friend bool operator==(const NodeTestSpec& a, const NodeTestSpec& b) {
    return a.kind == b.kind && a.name == b.name && a.value == b.value;
  }
};

// The document-node kinds the engine distinguishes when matching.
enum class DocNodeKind : uint8_t { kRoot, kElement, kAttribute, kText };

// True if a document node of `kind` with the given `name` (element tag or
// attribute name) and string `value` (attribute value / text content; pass
// empty for elements) satisfies `spec`.
bool MatchesSpec(const NodeTestSpec& spec, DocNodeKind kind,
                 std::string_view name, std::string_view value);

// Returns the axis naming the inverse document relation: child↔parent,
// descendant↔ancestor, self↔self, descendant-or-self↔ancestor-or-self.
// The attribute axis has no inverse in the subset; calling with it aborts.
xpath::Axis InverseAxis(xpath::Axis axis);

struct XNode {
  NodeTestSpec test;
  XNodeId parent = kInvalidXNode;
  // Axis of the edge parent→this (meaning: the element matched to this
  // x-node stands in this relation to the element matched to the parent).
  xpath::Axis incoming_axis = xpath::Axis::kChild;
  std::vector<XNodeId> children;
  bool is_output = false;
  int depth = 0;  // distance from the x-tree root
};

// A rooted, labeled x-tree. Node 0 is always the Root x-node.
class XTree {
 public:
  XTree();

  // Adds a node under `parent` with the given incoming axis and test;
  // returns its id.
  XNodeId AddNode(XNodeId parent, xpath::Axis axis, NodeTestSpec test);

  void MarkOutput(XNodeId id) { nodes_[static_cast<size_t>(id)].is_output = true; }
  void ClearOutput(XNodeId id) { nodes_[static_cast<size_t>(id)].is_output = false; }

  // Replaces the node test of `id`. Used by query composition (reroot.h):
  // a re-rooted tree's node 0 is not the virtual Root, and intersection
  // merges two output tests into one. Use with care — the engine expects
  // node 0 of a tree it runs to test for the virtual root.
  void SetTest(XNodeId id, NodeTestSpec test) {
    nodes_[static_cast<size_t>(id)].test = std::move(test);
  }

  const XNode& node(XNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(nodes_.size()); }

  // Ids of output x-nodes, ascending.
  std::vector<XNodeId> OutputNodes() const;

  // True if any edge uses a backward axis (parent/ancestor/ancestor-or-self).
  bool HasBackwardEdges() const;

  // Compact single-line rendering, e.g.
  // "Root(Y<desc>(U<child>, W<desc>[out](Z<anc>(V<child>))))".
  std::string ToString() const;

  // GraphViz rendering of the tree (and, for documentation, of its axes).
  std::string ToDot(std::string_view graph_name = "xtree") const;

 private:
  std::vector<XNode> nodes_;
};

}  // namespace xaos::query

#endif  // XAOS_QUERY_XTREE_H_
