#include "xpath/lexer.h"

namespace xaos::xpath {
namespace {

bool IsNameStartChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c >= 0x80;
}

bool IsNameChar(unsigned char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

}  // namespace

std::string TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDoubleSlash:
      return "'//'";
    case TokenKind::kLeftBracket:
      return "'['";
    case TokenKind::kRightBracket:
      return "']'";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kDoubleColon:
      return "'::'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kDollar:
      return "'$'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kName:
      return "name";
    case TokenKind::kLiteral:
      return "literal";
    case TokenKind::kEnd:
      return "end of expression";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view expression) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, size_t pos) {
    tokens.push_back({kind, std::move(text), static_cast<int>(pos)});
  };
  while (i < expression.size()) {
    char c = expression[i];
    size_t start = i;
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    switch (c) {
      case '/':
        if (i + 1 < expression.size() && expression[i + 1] == '/') {
          push(TokenKind::kDoubleSlash, "//", start);
          i += 2;
        } else {
          push(TokenKind::kSlash, "/", start);
          ++i;
        }
        continue;
      case '[':
        push(TokenKind::kLeftBracket, "[", start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRightBracket, "]", start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLeftParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRightParen, ")", start);
        ++i;
        continue;
      case ':':
        if (i + 1 < expression.size() && expression[i + 1] == ':') {
          push(TokenKind::kDoubleColon, "::", start);
          i += 2;
          continue;
        }
        return ParseError("single ':' in XPath at offset " +
                          std::to_string(start));
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        continue;
      case '@':
        push(TokenKind::kAt, "@", start);
        ++i;
        continue;
      case '$':
        push(TokenKind::kDollar, "$", start);
        ++i;
        continue;
      case '|':
        push(TokenKind::kPipe, "|", start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEquals, "=", start);
        ++i;
        continue;
      case '.':
        if (i + 1 < expression.size() && expression[i + 1] == '.') {
          push(TokenKind::kDotDot, "..", start);
          i += 2;
        } else {
          push(TokenKind::kDot, ".", start);
          ++i;
        }
        continue;
      case '\'':
      case '"': {
        size_t end = expression.find(c, i + 1);
        if (end == std::string_view::npos) {
          return ParseError("unterminated literal at offset " +
                            std::to_string(start));
        }
        push(TokenKind::kLiteral,
             std::string(expression.substr(i + 1, end - i - 1)), start);
        i = end + 1;
        continue;
      }
      default:
        break;
    }
    if (IsNameStartChar(static_cast<unsigned char>(c))) {
      size_t n = 1;
      while (i + n < expression.size() &&
             IsNameChar(static_cast<unsigned char>(expression[i + n]))) {
        ++n;
      }
      push(TokenKind::kName, std::string(expression.substr(i, n)), start);
      i += n;
      continue;
    }
    return ParseError("unexpected character '" + std::string(1, c) +
                      "' in XPath at offset " + std::to_string(start));
  }
  push(TokenKind::kEnd, "", expression.size());
  return tokens;
}

}  // namespace xaos::xpath
