// Abstract syntax tree for the supported XPath subset.
//
// The grammar is the paper's Rxp (Table 1) — absolute/relative location
// paths over the axes child, descendant, parent, ancestor, with
// conjunctive predicates — extended with:
//   * the additional axes self, descendant-or-self, ancestor-or-self and
//     attribute,
//   * abbreviated syntax (`//`, `@name`, `.`, `..`, omitted `child::`),
//   * `or` inside predicates and top-level union `|` (paper Section 5.2),
//   * `$`-prefixed node tests marking additional output nodes (Section 5.3),
//   * value comparisons on attribute and text() node tests, e.g.
//     `[@id='x']` or `[child::text()='y']`.

#ifndef XAOS_XPATH_AST_H_
#define XAOS_XPATH_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace xaos::xpath {

enum class Axis {
  kChild,
  kDescendant,
  kParent,
  kAncestor,
  kSelf,
  kDescendantOrSelf,
  kAncestorOrSelf,
  kAttribute,
  kFollowingSibling,
  kPrecedingSibling,
  // `following` and `preceding` are desugared by the x-tree builder into
  // ancestor-or-self::* / (following|preceding)-sibling::* /
  // descendant-or-self:: steps, so compiled x-trees never contain them.
  kFollowing,
  kPreceding,
};

// True for axes that select ancestors of the context node (the paper's
// "backward" axes, Section 1).
bool IsBackwardAxis(Axis axis);
std::string AxisToString(Axis axis);

enum class NodeTestKind {
  kName,       // element name
  kWildcard,   // *
  kText,       // text()
};

struct NodeTest {
  NodeTestKind kind = NodeTestKind::kName;
  std::string name;  // for kName

  friend bool operator==(const NodeTest&, const NodeTest&) = default;
};

struct PredExpr;  // defined below; mutually recursive with Step

// One location step: axis :: node-test [pred]*, optionally $-marked as an
// output node, optionally compared to a literal value (only meaningful for
// attribute-axis and text() steps, enforced by the x-tree builder).
struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  bool output_marked = false;
  std::vector<PredExpr> predicates;
  std::optional<std::string> compare_literal;
};

struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;
};

// Predicate expression tree: conjunctions/disjunctions of location paths.
struct PredExpr {
  enum class Kind { kPath, kAnd, kOr };

  Kind kind = Kind::kPath;
  LocationPath path;               // kPath
  std::vector<PredExpr> children;  // kAnd / kOr
};

// A full expression: union of one or more location paths.
struct Expression {
  std::vector<LocationPath> union_branches;
};

// Unparses back to (canonical, unabbreviated) XPath syntax.
std::string ToString(const NodeTest& test);
std::string ToString(const Step& step);
std::string ToString(const LocationPath& path);
std::string ToString(const PredExpr& pred);
std::string ToString(const Expression& expression);

// Number of node tests in the path/expression (the paper's notion of
// expression "size", Section 6.2).
int NodeTestCount(const LocationPath& path);
int NodeTestCount(const Expression& expression);

// True if any step in the expression uses a backward axis.
bool UsesBackwardAxes(const Expression& expression);

}  // namespace xaos::xpath

#endif  // XAOS_XPATH_AST_H_
