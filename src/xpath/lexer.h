// Tokenizer for XPath expressions.

#ifndef XAOS_XPATH_LEXER_H_
#define XAOS_XPATH_LEXER_H_

#include <string_view>
#include <vector>

#include "util/statusor.h"
#include "xpath/token.h"

namespace xaos::xpath {

// Tokenizes `expression`. The returned vector always ends with a kEnd token.
StatusOr<std::vector<Token>> Tokenize(std::string_view expression);

}  // namespace xaos::xpath

#endif  // XAOS_XPATH_LEXER_H_
