// Recursive-descent parser for the supported XPath subset (see ast.h for
// the exact grammar and extensions).

#ifndef XAOS_XPATH_PARSER_H_
#define XAOS_XPATH_PARSER_H_

#include <string_view>

#include "util/statusor.h"
#include "xpath/ast.h"

namespace xaos::xpath {

// Parses `expression` into an AST. Both unabbreviated
// (`/descendant::Y[child::U]`) and abbreviated (`//Y[U]`) syntax are
// accepted. Returns ParseError with an offset on malformed input and
// Unsupported for constructs outside the subset (e.g. a value comparison on
// an element step).
StatusOr<Expression> ParseExpression(std::string_view expression);

// Convenience for the common single-path case; fails if the expression is a
// union of several paths.
StatusOr<LocationPath> ParseSinglePath(std::string_view expression);

}  // namespace xaos::xpath

#endif  // XAOS_XPATH_PARSER_H_
