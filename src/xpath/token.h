// Token vocabulary for the XPath lexer.

#ifndef XAOS_XPATH_TOKEN_H_
#define XAOS_XPATH_TOKEN_H_

#include <string>

namespace xaos::xpath {

enum class TokenKind {
  kSlash,         // /
  kDoubleSlash,   // //
  kLeftBracket,   // [
  kRightBracket,  // ]
  kLeftParen,     // (
  kRightParen,    // )
  kDoubleColon,   // ::
  kStar,          // *
  kAt,            // @
  kDollar,        // $   (output marker extension, paper Section 5.3)
  kDot,           // .
  kDotDot,        // ..
  kPipe,          // |   (union extension)
  kEquals,        // =   (value comparison extension)
  kName,          // NCName (axis names and and/or are contextual)
  kLiteral,       // 'string' or "string"
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // name or literal body
  int position = 0;  // byte offset in the expression, for error messages
};

// Human-readable token description for diagnostics.
std::string TokenKindToString(TokenKind kind);

}  // namespace xaos::xpath

#endif  // XAOS_XPATH_TOKEN_H_
