#include "xpath/ast.h"

#include "util/check.h"

namespace xaos::xpath {

bool IsBackwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:  // points to earlier document positions
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

std::string AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kSelf:
      return "self";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
  }
  return "?";
}

std::string ToString(const NodeTest& test) {
  switch (test.kind) {
    case NodeTestKind::kName:
      return test.name;
    case NodeTestKind::kWildcard:
      return "*";
    case NodeTestKind::kText:
      return "text()";
  }
  return "?";
}

std::string ToString(const Step& step) {
  std::string out = AxisToString(step.axis);
  out += "::";
  if (step.output_marked) out += "$";
  out += ToString(step.test);
  if (step.compare_literal.has_value()) {
    out += "='" + *step.compare_literal + "'";
  }
  for (const PredExpr& pred : step.predicates) {
    out += "[" + ToString(pred) + "]";
  }
  return out;
}

std::string ToString(const LocationPath& path) {
  std::string out;
  if (path.absolute) out += "/";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += "/";
    out += ToString(path.steps[i]);
  }
  return out;
}

std::string ToString(const PredExpr& pred) {
  switch (pred.kind) {
    case PredExpr::Kind::kPath:
      return ToString(pred.path);
    case PredExpr::Kind::kAnd:
    case PredExpr::Kind::kOr: {
      const char* op = pred.kind == PredExpr::Kind::kAnd ? " and " : " or ";
      std::string out;
      for (size_t i = 0; i < pred.children.size(); ++i) {
        if (i > 0) out += op;
        const PredExpr& child = pred.children[i];
        bool needs_parens = child.kind != PredExpr::Kind::kPath;
        if (needs_parens) out += "(";
        out += ToString(child);
        if (needs_parens) out += ")";
      }
      return out;
    }
  }
  return "?";
}

std::string ToString(const Expression& expression) {
  std::string out;
  for (size_t i = 0; i < expression.union_branches.size(); ++i) {
    if (i > 0) out += " | ";
    out += ToString(expression.union_branches[i]);
  }
  return out;
}

namespace {

int NodeTestCount(const PredExpr& pred) {
  if (pred.kind == PredExpr::Kind::kPath) return NodeTestCount(pred.path);
  int total = 0;
  for (const PredExpr& child : pred.children) total += NodeTestCount(child);
  return total;
}

bool UsesBackwardAxes(const LocationPath& path);

bool UsesBackwardAxes(const PredExpr& pred) {
  if (pred.kind == PredExpr::Kind::kPath) return UsesBackwardAxes(pred.path);
  for (const PredExpr& child : pred.children) {
    if (UsesBackwardAxes(child)) return true;
  }
  return false;
}

bool UsesBackwardAxes(const LocationPath& path) {
  for (const Step& step : path.steps) {
    if (IsBackwardAxis(step.axis)) return true;
    for (const PredExpr& pred : step.predicates) {
      if (UsesBackwardAxes(pred)) return true;
    }
  }
  return false;
}

}  // namespace

int NodeTestCount(const LocationPath& path) {
  int total = 0;
  for (const Step& step : path.steps) {
    ++total;
    for (const PredExpr& pred : step.predicates) {
      total += NodeTestCount(pred);
    }
  }
  return total;
}

int NodeTestCount(const Expression& expression) {
  int total = 0;
  for (const LocationPath& path : expression.union_branches) {
    total += NodeTestCount(path);
  }
  return total;
}

bool UsesBackwardAxes(const Expression& expression) {
  for (const LocationPath& path : expression.union_branches) {
    if (UsesBackwardAxes(path)) return true;
  }
  return false;
}

}  // namespace xaos::xpath
