#include "xpath/parser.h"

#include <utility>

#include "xpath/lexer.h"

namespace xaos::xpath {
namespace {

// Maps an axis-name token to an Axis; returns false for unknown names.
bool LookupAxis(std::string_view name, Axis* axis) {
  if (name == "child") {
    *axis = Axis::kChild;
  } else if (name == "descendant") {
    *axis = Axis::kDescendant;
  } else if (name == "parent") {
    *axis = Axis::kParent;
  } else if (name == "ancestor") {
    *axis = Axis::kAncestor;
  } else if (name == "self") {
    *axis = Axis::kSelf;
  } else if (name == "descendant-or-self") {
    *axis = Axis::kDescendantOrSelf;
  } else if (name == "ancestor-or-self") {
    *axis = Axis::kAncestorOrSelf;
  } else if (name == "attribute") {
    *axis = Axis::kAttribute;
  } else if (name == "following-sibling") {
    *axis = Axis::kFollowingSibling;
  } else if (name == "preceding-sibling") {
    *axis = Axis::kPrecedingSibling;
  } else if (name == "following") {
    *axis = Axis::kFollowing;
  } else if (name == "preceding") {
    *axis = Axis::kPreceding;
  } else {
    return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Expression> ParseFull() {
    Expression expression;
    XAOS_ASSIGN_OR_RETURN(LocationPath first, ParsePath());
    expression.union_branches.push_back(std::move(first));
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      XAOS_ASSIGN_OR_RETURN(LocationPath branch, ParsePath());
      expression.union_branches.push_back(std::move(branch));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return expression;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = index_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[index_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }

  Status Error(std::string message) const {
    return ParseError(message + " at offset " +
                      std::to_string(Peek().position) + " (found " +
                      TokenKindToString(Peek().kind) +
                      (Peek().text.empty() ? "" : " '" + Peek().text + "'") +
                      ")");
  }

  // Path := ('/' | '//')? Step (('/' | '//') Step)*
  // A leading '/' or '//' makes the path absolute; '//' inserts a
  // descendant axis (the paper treats '//' as descendant, Section 2.3).
  StatusOr<LocationPath> ParsePath() {
    LocationPath path;
    bool next_is_descendant = false;
    if (Match(TokenKind::kSlash)) {
      path.absolute = true;
    } else if (Match(TokenKind::kDoubleSlash)) {
      path.absolute = true;
      next_is_descendant = true;
    }
    while (true) {
      XAOS_ASSIGN_OR_RETURN(Step step, ParseStep(next_is_descendant));
      path.steps.push_back(std::move(step));
      if (Match(TokenKind::kSlash)) {
        next_is_descendant = false;
      } else if (Match(TokenKind::kDoubleSlash)) {
        next_is_descendant = true;
      } else {
        break;
      }
    }
    return path;
  }

  // Step := '.' | '..'
  //       | '$'? ('@' | AxisName '::')? '$'? NodeTestCore Predicate*
  // `force_descendant` overrides the default child axis (set after '//').
  StatusOr<Step> ParseStep(bool force_descendant) {
    Step step;
    if (Match(TokenKind::kDot)) {
      step.axis = Axis::kSelf;
      step.test.kind = NodeTestKind::kWildcard;
      if (force_descendant) step.axis = Axis::kDescendantOrSelf;
      return ParsePredicates(std::move(step));
    }
    if (Match(TokenKind::kDotDot)) {
      step.axis = Axis::kParent;
      step.test.kind = NodeTestKind::kWildcard;
      if (force_descendant) {
        return Error("'..' cannot follow '//' in the supported subset");
      }
      return ParsePredicates(std::move(step));
    }

    if (Match(TokenKind::kDollar)) step.output_marked = true;

    bool axis_explicit = false;
    if (Match(TokenKind::kAt)) {
      step.axis = Axis::kAttribute;
      axis_explicit = true;
    } else if (Peek().kind == TokenKind::kName &&
               Peek(1).kind == TokenKind::kDoubleColon) {
      Axis axis;
      if (!LookupAxis(Peek().text, &axis)) {
        return Error("unknown axis '" + Peek().text + "'");
      }
      step.axis = axis;
      Advance();  // axis name
      Advance();  // ::
      axis_explicit = true;
    }
    if (!axis_explicit) {
      step.axis = force_descendant ? Axis::kDescendant : Axis::kChild;
    } else if (force_descendant) {
      // `//axis::t` means descendant with the named axis applied after; the
      // paper's subset has no such composition, so reject it explicitly.
      return Error("explicit axis cannot follow '//' in the supported "
                   "subset; write the descendant step explicitly");
    }

    if (Match(TokenKind::kDollar)) {
      if (step.output_marked) return Error("duplicate '$'");
      step.output_marked = true;
    }

    // NodeTestCore := Name | '*' | 'text' '(' ')'
    if (Match(TokenKind::kStar)) {
      step.test.kind = NodeTestKind::kWildcard;
    } else if (Peek().kind == TokenKind::kName) {
      if (Peek().text == "text" && Peek(1).kind == TokenKind::kLeftParen) {
        Advance();
        Advance();
        if (!Match(TokenKind::kRightParen)) {
          return Error("expected ')' after 'text('");
        }
        if (step.axis == Axis::kAttribute) {
          return Error("text() is not valid on the attribute axis");
        }
        step.test.kind = NodeTestKind::kText;
      } else {
        step.test.kind = NodeTestKind::kName;
        step.test.name = Advance().text;
      }
    } else {
      return Error("expected a node test");
    }
    return ParsePredicates(std::move(step));
  }

  // Attaches predicates and an optional value comparison to `step`.
  StatusOr<Step> ParsePredicates(Step step) {
    while (Match(TokenKind::kLeftBracket)) {
      XAOS_ASSIGN_OR_RETURN(PredExpr pred, ParsePredExpr());
      step.predicates.push_back(std::move(pred));
      if (!Match(TokenKind::kRightBracket)) {
        return Error("expected ']'");
      }
    }
    if (Peek().kind == TokenKind::kEquals) {
      if (step.axis != Axis::kAttribute &&
          step.test.kind != NodeTestKind::kText) {
        return UnsupportedError(
            "value comparison is only supported on attribute and text() "
            "steps");
      }
      Advance();
      if (Peek().kind != TokenKind::kLiteral) {
        return Error("expected a string literal after '='");
      }
      step.compare_literal = Advance().text;
    }
    return step;
  }

  // PredExpr := AndExpr ('or' AndExpr)*
  StatusOr<PredExpr> ParsePredExpr() {
    XAOS_ASSIGN_OR_RETURN(PredExpr left, ParseAndExpr());
    if (!(Peek().kind == TokenKind::kName && Peek().text == "or")) {
      return left;
    }
    PredExpr result;
    result.kind = PredExpr::Kind::kOr;
    result.children.push_back(std::move(left));
    while (Peek().kind == TokenKind::kName && Peek().text == "or") {
      Advance();
      XAOS_ASSIGN_OR_RETURN(PredExpr right, ParseAndExpr());
      result.children.push_back(std::move(right));
    }
    return result;
  }

  // AndExpr := Primary ('and' Primary)*
  StatusOr<PredExpr> ParseAndExpr() {
    XAOS_ASSIGN_OR_RETURN(PredExpr left, ParsePrimary());
    if (!(Peek().kind == TokenKind::kName && Peek().text == "and")) {
      return left;
    }
    PredExpr result;
    result.kind = PredExpr::Kind::kAnd;
    result.children.push_back(std::move(left));
    while (Peek().kind == TokenKind::kName && Peek().text == "and") {
      Advance();
      XAOS_ASSIGN_OR_RETURN(PredExpr right, ParsePrimary());
      result.children.push_back(std::move(right));
    }
    return result;
  }

  // Primary := '(' PredExpr ')' | LocationPath
  StatusOr<PredExpr> ParsePrimary() {
    if (Match(TokenKind::kLeftParen)) {
      XAOS_ASSIGN_OR_RETURN(PredExpr inner, ParsePredExpr());
      if (!Match(TokenKind::kRightParen)) {
        return Error("expected ')'");
      }
      return inner;
    }
    PredExpr pred;
    pred.kind = PredExpr::Kind::kPath;
    XAOS_ASSIGN_OR_RETURN(pred.path, ParsePath());
    return pred;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

StatusOr<Expression> ParseExpression(std::string_view expression) {
  XAOS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(expression));
  Parser parser(std::move(tokens));
  return parser.ParseFull();
}

StatusOr<LocationPath> ParseSinglePath(std::string_view expression) {
  XAOS_ASSIGN_OR_RETURN(Expression parsed, ParseExpression(expression));
  if (parsed.union_branches.size() != 1) {
    return InvalidArgumentError(
        "expected a single location path, found a union of " +
        std::to_string(parsed.union_branches.size()));
  }
  return std::move(parsed.union_branches[0]);
}

}  // namespace xaos::xpath
