#include "util/symbol_table.h"

#include "util/check.h"

namespace xaos::util {

namespace {
constexpr size_t kInitialBuckets = 256;  // power of two
}  // namespace

SymbolTable::SymbolTable()
    : buckets_(new Buckets(kInitialBuckets)),
      chunks_(new std::atomic<Chunk*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

SymbolTable::~SymbolTable() {
  delete buckets_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

Symbol SymbolTable::Probe(const Buckets* buckets, std::string_view name) {
  const std::atomic<const Link*>& slot = buckets->slots[Hash(name) &
                                                        buckets->mask];
  for (const Link* link = slot.load(std::memory_order_acquire);
       link != nullptr; link = link->next) {
    if (link->node->name == name) return link->node->symbol;
  }
  return kInvalidSymbol;
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  return Probe(buckets_.load(std::memory_order_acquire), name);
}

std::string_view SymbolTable::Name(Symbol s) const {
  XAOS_CHECK(s >= 0);
  size_t index = static_cast<size_t>(s);
  Chunk* chunk = chunks_[index >> kChunkBits].load(std::memory_order_acquire);
  XAOS_CHECK(chunk != nullptr);
  const Node* node =
      chunk[index & (kChunkSize - 1)].load(std::memory_order_acquire);
  XAOS_CHECK(node != nullptr);
  return node->name;
}

void SymbolTable::RehashLocked(size_t new_count) {
  auto fresh = std::make_unique<Buckets>(new_count);
  for (const Node& node : nodes_) {
    std::atomic<const Link*>& slot =
        fresh->slots[Hash(node.name) & fresh->mask];
    links_.push_back(Link{&node, slot.load(std::memory_order_relaxed)});
    // Not yet visible to readers: `fresh` publishes below.
    slot.store(&links_.back(), std::memory_order_relaxed);
  }
  retired_.emplace_back(buckets_.load(std::memory_order_relaxed));
  buckets_.store(fresh.release(), std::memory_order_release);
}

Symbol SymbolTable::Intern(std::string_view name) {
  if (Symbol s = Lookup(name); s != kInvalidSymbol) return s;

  std::lock_guard<std::mutex> lock(mu_);
  // Double-checked: another thread may have interned between the probe and
  // the lock.
  if (Symbol s = Lookup(name); s != kInvalidSymbol) return s;

  Symbol s = static_cast<Symbol>(nodes_.size());
  XAOS_CHECK(static_cast<size_t>(s) < kMaxChunks * kChunkSize)
      << "symbol table full";
  nodes_.push_back(Node{std::string(name), s});
  const Node* node = &nodes_.back();

  // Publish the symbol -> name entry before the symbol can escape through
  // the bucket chain or the return value.
  size_t chunk_index = static_cast<size_t>(s) >> kChunkBits;
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk[kChunkSize];
    for (size_t i = 0; i < kChunkSize; ++i) {
      chunk[i].store(nullptr, std::memory_order_relaxed);
    }
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[static_cast<size_t>(s) & (kChunkSize - 1)].store(
      node, std::memory_order_release);

  Buckets* buckets = buckets_.load(std::memory_order_relaxed);
  if (nodes_.size() > buckets->mask + 1) {
    // Load factor reached 1: double. The rehash links every node in
    // nodes_ — including the one just appended — into the new generation.
    RehashLocked(2 * (buckets->mask + 1));
  } else {
    std::atomic<const Link*>& slot = buckets->slots[Hash(name) &
                                                    buckets->mask];
    links_.push_back(Link{node, slot.load(std::memory_order_relaxed)});
    slot.store(&links_.back(), std::memory_order_release);
  }
  size_.store(nodes_.size(), std::memory_order_release);
  return s;
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

}  // namespace xaos::util
