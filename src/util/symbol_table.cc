#include "util/symbol_table.h"

#include <mutex>

namespace xaos::util {

Symbol SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Double-checked: another thread may have interned between the locks.
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Symbol s = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), s);
  return s;
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  return it != index_.end() ? it->second : kInvalidSymbol;
}

std::string_view SymbolTable::Name(Symbol s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_[static_cast<size_t>(s)];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

}  // namespace xaos::util
