#include "util/status.h"

namespace xaos {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace xaos
