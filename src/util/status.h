// Error-handling primitives for the xaos library.
//
// The library is exception-free: fallible operations return a Status (or a
// StatusOr<T>, see statusor.h) that callers must inspect. A Status is a
// cheap value type carrying an error code and a human-readable message.

#ifndef XAOS_UTIL_STATUS_H_
#define XAOS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xaos {

// Broad classification of an error. Kept deliberately small; the message
// carries the details (including line/column positions for parse errors).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something structurally wrong
  kParseError,        // malformed XML or XPath input
  kUnsupported,       // syntactically valid but outside the supported subset
  kResourceExhausted, // a configured limit (memory, result size) was hit
  kInternal,          // invariant violation; indicates a library bug
};

// Returns a stable human-readable name, e.g. "ParseError".
std::string_view StatusCodeToString(StatusCode code);

// Value type representing success or a (code, message) error.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories mirroring the StatusCode values.
Status InvalidArgumentError(std::string message);
Status ParseError(std::string message);
Status UnsupportedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);

// Propagates a non-OK status to the caller. Usable in functions returning
// Status or StatusOr<T>.
#define XAOS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::xaos::Status xaos_status_tmp_ = (expr);       \
    if (!xaos_status_tmp_.ok()) {                   \
      return xaos_status_tmp_;                      \
    }                                               \
  } while (false)

}  // namespace xaos

#endif  // XAOS_UTIL_STATUS_H_
