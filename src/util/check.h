// Fatal assertion macros. XAOS_CHECK verifies internal invariants in all
// build modes; a failure prints the condition, location, and any streamed
// context, then aborts. These are for programming errors only — user input
// errors are reported through Status (see util/status.h).

#ifndef XAOS_UTIL_CHECK_H_
#define XAOS_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace xaos {
namespace internal_check {

// Accumulates the streamed message and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "XAOS_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace xaos

#define XAOS_CHECK(condition)                                       \
  while (!(condition))                                              \
  ::xaos::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)

#define XAOS_CHECK_EQ(a, b) XAOS_CHECK((a) == (b))
#define XAOS_CHECK_NE(a, b) XAOS_CHECK((a) != (b))
#define XAOS_CHECK_LT(a, b) XAOS_CHECK((a) < (b))
#define XAOS_CHECK_LE(a, b) XAOS_CHECK((a) <= (b))
#define XAOS_CHECK_GT(a, b) XAOS_CHECK((a) > (b))
#define XAOS_CHECK_GE(a, b) XAOS_CHECK((a) >= (b))

#endif  // XAOS_UTIL_CHECK_H_
