#include "util/string_util.h"

namespace xaos {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAllXmlWhitespace(std::string_view text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

}  // namespace xaos
