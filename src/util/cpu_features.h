// Runtime CPU feature detection for the vectorized hot paths.
//
// The structural scanner (xml/structural_scanner.h) picks its kernel from a
// function-pointer table at startup; this module answers "what can this
// machine actually run" via cpuid, independently of what the compiler was
// allowed to emit. AVX2 additionally requires the OS to save the YMM state
// (xgetbv), so a hypervisor that masks OSXSAVE correctly demotes us to SSE2.

#ifndef XAOS_UTIL_CPU_FEATURES_H_
#define XAOS_UTIL_CPU_FEATURES_H_

#include <string>

namespace xaos::util {

struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;   // AVX usable: cpuid bit + OS ymm-state support
  bool avx2 = false;  // implies `avx`
  unsigned hardware_concurrency = 0;
};

// Detected once on first call, then cached (detection is pure cpuid reads,
// so caching is only about not paying the serializing instructions twice).
const CpuFeatures& DetectCpuFeatures();

// Comma-separated list of the detected SIMD tiers, e.g. "sse2,avx2" —
// recorded into BENCH_*.json so the regression gate can tell when baseline
// and candidate ran on machines with different vector capabilities.
std::string CpuFeatureSummary();

}  // namespace xaos::util

#endif  // XAOS_UTIL_CPU_FEATURES_H_
