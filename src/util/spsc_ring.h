// A bounded lock-free single-producer / single-consumer ring buffer — the
// conduit between the parallel fleet's parse thread and each match worker
// (core/parallel_fleet.h). One thread may call TryPush, one (other) thread
// may call TryPop; the head/tail indices use acquire/release pairs so every
// value popped is fully constructed, and each side caches the opposite
// index to avoid a cache-line ping per operation.
//
// The ring itself never blocks; callers layer their own waiting strategy
// (spin / yield / park) on top of the Try* primitives so policy concerns
// like stall counting and shutdown stay out of the data structure.

#ifndef XAOS_UTIL_SPSC_RING_H_
#define XAOS_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "util/check.h"

namespace xaos::util {

template <typename T>
class SpscRing {
 public:
  // `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t rounded = 2;
    while (rounded < capacity) rounded *= 2;
    mask_ = rounded - 1;
    slots_ = std::make_unique<T[]>(rounded);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false if the ring is full.
  bool TryPush(T value) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false if the ring is empty.
  bool TryPop(T* out) {
    size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy; exact only when called from the producer or the
  // consumer thread while the other side is quiescent.
  size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  // Producer and consumer indices live on separate cache lines so the two
  // threads only share a line when one actually has to refresh its cache of
  // the other's progress.
  alignas(64) std::atomic<size_t> tail_{0};   // next slot to write
  size_t head_cache_ = 0;                     // producer's view of head_
  alignas(64) std::atomic<size_t> head_{0};   // next slot to read
  size_t tail_cache_ = 0;                     // consumer's view of tail_
  alignas(64) size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;
};

}  // namespace xaos::util

#endif  // XAOS_UTIL_SPSC_RING_H_
