// StatusOr<T>: either a value of type T or an error Status.

#ifndef XAOS_UTIL_STATUSOR_H_
#define XAOS_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace xaos {

// Holds either a T (when ok()) or a non-OK Status. Accessing the value of a
// non-OK StatusOr aborts the program, so callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so `return SomeT;` and `return SomeStatus;`
  // both work inside functions returning StatusOr<T>.
  StatusOr(const T& value) : value_(value) {}
  StatusOr(T&& value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    XAOS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    XAOS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    XAOS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    XAOS_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
// otherwise assigns the value into `lhs` (which may be a declaration).
#define XAOS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  XAOS_ASSIGN_OR_RETURN_IMPL_(                                   \
      XAOS_STATUS_MACRO_CONCAT_(statusor_, __LINE__), lhs, rexpr)

#define XAOS_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) {                                   \
    return var.status();                             \
  }                                                  \
  lhs = std::move(var).value()

#define XAOS_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define XAOS_STATUS_MACRO_CONCAT_(x, y) XAOS_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace xaos

#endif  // XAOS_UTIL_STATUSOR_H_
