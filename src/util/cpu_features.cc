#include "util/cpu_features.h"

#include <thread>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define XAOS_CPU_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

namespace xaos::util {
namespace {

CpuFeatures Detect() {
  CpuFeatures features;
  features.hardware_concurrency = std::thread::hardware_concurrency();
#if defined(XAOS_CPU_X86) && (defined(__GNUC__) || defined(__clang__))
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    features.sse2 = (edx & (1u << 26)) != 0;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx_bit = (ecx & (1u << 28)) != 0;
    bool ymm_enabled = false;
    if (osxsave) {
      // xgetbv(0): bits 1 (SSE) and 2 (YMM) must both be OS-managed.
      unsigned xcr0_lo, xcr0_hi;
      __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      ymm_enabled = (xcr0_lo & 0x6) == 0x6;
    }
    features.avx = avx_bit && ymm_enabled;
    if (features.avx) {
      unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
      if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
        features.avx2 = (ebx7 & (1u << 5)) != 0;
      }
    }
  }
#endif
  return features;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string CpuFeatureSummary() {
  const CpuFeatures& features = DetectCpuFeatures();
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (features.sse2) add("sse2");
  if (features.avx) add("avx");
  if (features.avx2) add("avx2");
  if (out.empty()) out = "none";
  return out;
}

}  // namespace xaos::util
