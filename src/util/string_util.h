// Small string helpers shared across modules.

#ifndef XAOS_UTIL_STRING_UTIL_H_
#define XAOS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xaos {

// Joins the elements of `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Splits `text` at every occurrence of `separator`; adjacent separators
// produce empty pieces. Splitting the empty string yields one empty piece.
std::vector<std::string> Split(std::string_view text, char separator);

// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// True if every character of `text` is XML whitespace (space, tab, CR, LF).
bool IsAllXmlWhitespace(std::string_view text);

}  // namespace xaos

#endif  // XAOS_UTIL_STRING_UTIL_H_
