// A size-classed pool arena: bump allocation out of retained slabs with
// per-size free lists, so a workload that repeatedly allocates and frees
// objects of a few recurring sizes (matching structures, slot vectors,
// captures) reaches a steady state with zero heap traffic — freed blocks
// are recycled, slabs are kept for the arena's lifetime.
//
// Not thread-safe: each engine owns its arena and runs single-threaded.
// PoolAllocator adapts the arena to the std allocator interface so it can
// back std::vector and std::allocate_shared (which preserves shared_ptr /
// weak_ptr semantics and destructor timing — the engine's undo machinery
// and byte accounting keep working unchanged on arena storage).

#ifndef XAOS_UTIL_POOL_ARENA_H_
#define XAOS_UTIL_POOL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace xaos::util {

class PoolArena {
 public:
  explicit PoolArena(size_t slab_bytes = 1 << 16) : slab_bytes_(slab_bytes) {}

  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  void* Allocate(size_t size) {
    size_t rounded = RoundUp(size);
    FreeNode*& head = FreeListFor(rounded);
    bytes_allocated_ += rounded;
    if (head != nullptr) {
      FreeNode* node = head;
      head = node->next;
      return node;
    }
    if (bump_left_ < rounded) NewSlab(rounded);
    char* out = bump_;
    bump_ += rounded;
    bump_left_ -= rounded;
    return out;
  }

  void Deallocate(void* p, size_t size) {
    size_t rounded = RoundUp(size);
    FreeNode*& head = FreeListFor(rounded);
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = head;
    head = node;
  }

  // Cumulative bytes served by Allocate (monotone; recycled blocks count
  // every time they are handed out). This is the per-document allocation
  // traffic the arena absorbs that would otherwise hit the heap.
  uint64_t bytes_allocated() const { return bytes_allocated_; }
  // Heap bytes actually reserved in slabs (the arena's real footprint).
  uint64_t bytes_reserved() const { return bytes_reserved_; }
  size_t slab_count() const { return slabs_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr size_t kAlignment = alignof(std::max_align_t);

  static size_t RoundUp(size_t n) {
    if (n < sizeof(FreeNode)) n = sizeof(FreeNode);
    return (n + kAlignment - 1) & ~(kAlignment - 1);
  }

  FreeNode*& FreeListFor(size_t rounded) {
    // A handful of distinct sizes occur in practice (one per structure
    // shape plus vector capacity doublings), so a linear scan beats a map.
    for (auto& [size, head] : classes_) {
      if (size == rounded) return head;
    }
    classes_.push_back({rounded, nullptr});
    return classes_.back().head;
  }

  void NewSlab(size_t at_least) {
    size_t size = slab_bytes_ > at_least ? slab_bytes_ : at_least;
    slabs_.push_back(std::make_unique<char[]>(size));
    bump_ = slabs_.back().get();
    bump_left_ = size;
    bytes_reserved_ += size;
  }

  struct SizeClass {
    size_t size;
    FreeNode* head;
  };

  size_t slab_bytes_;
  std::vector<SizeClass> classes_;
  std::vector<std::unique_ptr<char[]>> slabs_;
  char* bump_ = nullptr;
  size_t bump_left_ = 0;
  uint64_t bytes_allocated_ = 0;
  uint64_t bytes_reserved_ = 0;
};

// std-allocator adapter over a PoolArena (the arena must outlive every
// container and allocate_shared control block using it).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(PoolArena* arena) : arena_(arena) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { arena_->Deallocate(p, n * sizeof(T)); }

  PoolArena* arena() const { return arena_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  PoolArena* arena_;
};

// A vector whose storage lives in a PoolArena.
template <typename T>
using ArenaVector = std::vector<T, PoolAllocator<T>>;

}  // namespace xaos::util

#endif  // XAOS_UTIL_POOL_ARENA_H_
