// QName interning: a process-wide table mapping element/attribute names to
// dense integer Symbols, so name tests downstream become integer compares
// and flat-array lookups instead of per-event string hashing (the technique
// fast XPath engines use to turn label tests into symbol-space arithmetic).
//
// The table only ever grows; Symbols are stable for the process lifetime
// and identical names always intern to the same Symbol, so ids are
// comparable across parsers, compiled queries and engines. Producers (the
// SAX parser, the x-tree compiler) call Intern() once per name occurrence
// they own; consumers on hot paths use the Symbol and fall back to the
// read-only Lookup() when an event source did not supply one.
//
// Concurrency: inserts serialize on a mutex; readers (Lookup, Name, size)
// are lock-free. The bucket array is an insert-only chained hash table
// published through an atomic pointer — links are immutable once visible,
// and a resize builds a fresh generation of link cells over the same nodes,
// retiring (not freeing) the old one so in-flight readers stay valid. This
// is what lets one parse thread intern while N match threads resolve names,
// the contention shape of the parallel fleet (core/parallel_fleet.h).

#ifndef XAOS_UTIL_SYMBOL_TABLE_H_
#define XAOS_UTIL_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xaos::util {

// Dense id of an interned name. Valid Symbols are >= 0 and contiguous from
// 0 in interning order, so they index flat vectors directly.
using Symbol = int32_t;
inline constexpr Symbol kInvalidSymbol = -1;

class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the Symbol for `name`, interning it if absent. Thread-safe; the
  // hit path is a lock-free probe, only a genuine insert takes the mutex.
  Symbol Intern(std::string_view name);

  // Returns the Symbol for `name` or kInvalidSymbol if it was never
  // interned. Never mutates the table (a name a table has not seen cannot
  // match any interned query label, so callers treat absence as "no
  // candidates"). Lock-free.
  Symbol Lookup(std::string_view name) const;

  // The interned spelling of `s`. `s` must be a valid Symbol of this table.
  // Lock-free.
  std::string_view Name(Symbol s) const;

  // Number of interned names (== the smallest invalid Symbol). Lock-free.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // The process-wide table shared by parsers, compilers and engines.
  static SymbolTable& Global();

 private:
  struct Node {
    std::string name;
    Symbol symbol;
  };
  // Hash-chain cell. Immutable after publication; a resize allocates fresh
  // links instead of relinking, so concurrent readers of the old generation
  // never observe a mutated `next`.
  struct Link {
    const Node* node;
    const Link* next;
  };
  struct Buckets {
    explicit Buckets(size_t count)
        : mask(count - 1), slots(new std::atomic<const Link*>[count]) {
      for (size_t i = 0; i < count; ++i) {
        slots[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    size_t mask;  // count - 1; count is a power of two
    std::unique_ptr<std::atomic<const Link*>[]> slots;
  };

  // Symbol -> Node* map as a two-level chunked array so it can grow without
  // ever moving entries a reader might be loading.
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 12;  // 16.7M symbols

  static size_t Hash(std::string_view name) {
    return std::hash<std::string_view>{}(name);
  }

  // Probes `buckets` for `name`. Lock-free; safe on any published
  // generation.
  static Symbol Probe(const Buckets* buckets, std::string_view name);

  // Doubles the bucket array (caller holds mu_), linking every node in
  // nodes_ into a fresh generation and retiring the old one.
  void RehashLocked(size_t new_count);

  std::mutex mu_;  // serializes Intern's insert path
  std::atomic<Buckets*> buckets_;
  std::atomic<size_t> size_{0};

  // Writer-side storage; readers only ever follow stable pointers into it.
  std::deque<Node> nodes_;        // guarded by mu_; addresses stable
  std::deque<Link> links_;        // guarded by mu_; addresses stable
  std::vector<std::unique_ptr<Buckets>> retired_;  // guarded by mu_

  using Chunk = std::atomic<const Node*>;
  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
};

}  // namespace xaos::util

#endif  // XAOS_UTIL_SYMBOL_TABLE_H_
