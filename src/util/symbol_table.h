// QName interning: a process-wide table mapping element/attribute names to
// dense integer Symbols, so name tests downstream become integer compares
// and flat-array lookups instead of per-event string hashing (the technique
// fast XPath engines use to turn label tests into symbol-space arithmetic).
//
// The table only ever grows; Symbols are stable for the process lifetime
// and identical names always intern to the same Symbol, so ids are
// comparable across parsers, compiled queries and engines. Producers (the
// SAX parser, the x-tree compiler) call Intern() once per name occurrence
// they own; consumers on hot paths use the Symbol and fall back to the
// read-only Lookup() when an event source did not supply one.

#ifndef XAOS_UTIL_SYMBOL_TABLE_H_
#define XAOS_UTIL_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xaos::util {

// Dense id of an interned name. Valid Symbols are >= 0 and contiguous from
// 0 in interning order, so they index flat vectors directly.
using Symbol = int32_t;
inline constexpr Symbol kInvalidSymbol = -1;

class SymbolTable {
 public:
  // Returns the Symbol for `name`, interning it if absent. Thread-safe;
  // the hit path takes only a shared lock.
  Symbol Intern(std::string_view name);

  // Returns the Symbol for `name` or kInvalidSymbol if it was never
  // interned. Never mutates the table (a name a table has not seen cannot
  // match any interned query label, so callers treat absence as "no
  // candidates").
  Symbol Lookup(std::string_view name) const;

  // The interned spelling of `s`. `s` must be a valid Symbol of this table.
  std::string_view Name(Symbol s) const;

  // Number of interned names (== the smallest invalid Symbol).
  size_t size() const;

  // The process-wide table shared by parsers, compilers and engines.
  static SymbolTable& Global();

 private:
  mutable std::shared_mutex mu_;
  // Keys view into names_, whose deque storage never reallocates strings.
  std::unordered_map<std::string_view, Symbol> index_;
  std::deque<std::string> names_;
};

}  // namespace xaos::util

#endif  // XAOS_UTIL_SYMBOL_TABLE_H_
