// Event model for streaming XML processing.
//
// The χαoς paper (Section 2.2) drives its algorithm from SAX-style start/end
// element events carrying the element name and level. This header defines
// the event vocabulary produced by xml::SaxParser and dom::DomReplayer and
// consumed by ContentHandler implementations (core::XaosEngine,
// dom::DomBuilder, ...).

#ifndef XAOS_XML_SAX_EVENT_H_
#define XAOS_XML_SAX_EVENT_H_

#include <string>
#include <string_view>
#include <vector>

namespace xaos::xml {

// A single attribute of a start-element event. The value has entity and
// character references already resolved.
struct Attribute {
  std::string name;
  std::string value;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.value == b.value;
  }
};

// Interface for consumers of a stream of parse events. Methods are invoked
// in document order; StartElement/EndElement calls are properly nested.
// Default implementations ignore the event, so handlers only override what
// they need.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  // Invoked once before any other event.
  virtual void StartDocument() {}
  // Invoked once after the document element closes (and trailing misc).
  virtual void EndDocument() {}

  // `name` and `attributes` are only valid for the duration of the call.
  virtual void StartElement(std::string_view name,
                            const std::vector<Attribute>& attributes) {
    (void)name;
    (void)attributes;
  }
  virtual void EndElement(std::string_view name) { (void)name; }

  // Character data; references are resolved. May be invoked multiple times
  // for one contiguous run unless the producer coalesces (SaxParser does
  // when ParserOptions::coalesce_text is set).
  virtual void Characters(std::string_view text) { (void)text; }

  virtual void Comment(std::string_view text) { (void)text; }
  virtual void ProcessingInstruction(std::string_view target,
                                     std::string_view data) {
    (void)target;
    (void)data;
  }
};

// A materialized event, convenient for tests and for recording/replaying
// streams. Produced by EventRecorder.
struct Event {
  enum class Kind {
    kStartDocument,
    kEndDocument,
    kStartElement,
    kEndElement,
    kCharacters,
    kComment,
    kProcessingInstruction,
  };

  Kind kind;
  std::string name;                    // element name or PI target
  std::string text;                    // characters / comment / PI data
  std::vector<Attribute> attributes;   // start-element only

  friend bool operator==(const Event& a, const Event& b) {
    return a.kind == b.kind && a.name == b.name && a.text == b.text &&
           a.attributes == b.attributes;
  }
};

// Renders an event as a compact debug string, e.g. `<a x="1">`, `</a>`,
// `text("hi")`.
std::string EventToString(const Event& event);

// ContentHandler that materializes the stream into a vector of Events.
class EventRecorder : public ContentHandler {
 public:
  void StartDocument() override {
    events_.push_back({Event::Kind::kStartDocument, "", "", {}});
  }
  void EndDocument() override {
    events_.push_back({Event::Kind::kEndDocument, "", "", {}});
  }
  void StartElement(std::string_view name,
                    const std::vector<Attribute>& attributes) override {
    events_.push_back(
        {Event::Kind::kStartElement, std::string(name), "", attributes});
  }
  void EndElement(std::string_view name) override {
    events_.push_back({Event::Kind::kEndElement, std::string(name), "", {}});
  }
  void Characters(std::string_view text) override {
    events_.push_back({Event::Kind::kCharacters, "", std::string(text), {}});
  }
  void Comment(std::string_view text) override {
    events_.push_back({Event::Kind::kComment, "", std::string(text), {}});
  }
  void ProcessingInstruction(std::string_view target,
                             std::string_view data) override {
    events_.push_back({Event::Kind::kProcessingInstruction,
                       std::string(target), std::string(data), {}});
  }

  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

// Replays recorded events into a handler.
void ReplayEvents(const std::vector<Event>& events, ContentHandler* handler);

}  // namespace xaos::xml

#endif  // XAOS_XML_SAX_EVENT_H_
