// Event model for streaming XML processing.
//
// The χαoς paper (Section 2.2) drives its algorithm from SAX-style start/end
// element events carrying the element name and level. This header defines
// the event vocabulary produced by xml::SaxParser and dom::DomReplayer and
// consumed by ContentHandler implementations (core::XaosEngine,
// dom::DomBuilder, ...).
//
// Names travel as views paired with interned Symbols (util/symbol_table.h):
// the parser interns each element/attribute name once per event, and
// consumers that index by name (the engine's candidate tables, the
// multi-query dispatcher) use the integer id instead of hashing the string
// again. Producers that cannot cheaply supply a Symbol pass kInvalidSymbol;
// consumers fall back to SymbolTable::Global().Lookup().

#ifndef XAOS_XML_SAX_EVENT_H_
#define XAOS_XML_SAX_EVENT_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/symbol_table.h"

namespace xaos::xml {

// An element or attribute name: the spelling plus (optionally) its interned
// Symbol. Implicitly convertible from and to string_view so handler code
// that only cares about the text keeps reading naturally.
struct QName {
  std::string_view text;
  util::Symbol symbol = util::kInvalidSymbol;

  QName() = default;
  QName(std::string_view t) : text(t) {}                        // NOLINT
  QName(const char* t) : text(t) {}                             // NOLINT
  QName(const std::string& t) : text(t) {}                      // NOLINT
  QName(std::string_view t, util::Symbol s) : text(t), symbol(s) {}
  operator std::string_view() const { return text; }            // NOLINT
};

// A single attribute of a start-element event. The value has entity and
// character references already resolved. Non-owning: the views are only
// valid for the duration of the StartElement call.
struct AttributeView {
  std::string_view name;
  std::string_view value;
  util::Symbol symbol = util::kInvalidSymbol;  // interned `name`, if known
};

using AttributeSpan = std::span<const AttributeView>;

// Summary of a subtree the parser skipped under document projection
// (xml/skip_scanner.h). The subtree produced no Start/End/Characters
// events; consumers that assign dense node ids advance their counters by
// `node_ids` so ids downstream of the skip are identical to a full parse.
struct SkipReport {
  uint64_t elements = 0;  // element count, including the skipped root
  uint64_t node_ids = 0;  // ids the subtree would have consumed
                          // (elements + attributes + reported text runs)
  uint64_t bytes = 0;     // raw document bytes covered by the skip
};

// An owning attribute, for materialized events and DOM storage.
struct Attribute {
  std::string name;
  std::string value;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.value == b.value;
  }
};

// Fills `scratch` with views over owned `attributes` and returns a span of
// it — the bridge for producers that store Attributes (event replay, DOM
// replay). Symbols are left unresolved.
AttributeSpan MakeAttributeViews(const std::vector<Attribute>& attributes,
                                 std::vector<AttributeView>* scratch);

// Interface for consumers of a stream of parse events. Methods are invoked
// in document order; StartElement/EndElement calls are properly nested.
// Default implementations ignore the event, so handlers only override what
// they need.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  // Invoked once before any other event.
  virtual void StartDocument() {}
  // Invoked once after the document element closes (and trailing misc).
  virtual void EndDocument() {}

  // `name` and `attributes` (including every view they contain) are only
  // valid for the duration of the call.
  virtual void StartElement(const QName& name, AttributeSpan attributes) {
    (void)name;
    (void)attributes;
  }
  virtual void EndElement(std::string_view name) { (void)name; }

  // Character data; references are resolved. May be invoked multiple times
  // for one contiguous run unless the producer coalesces (SaxParser does
  // when ParserOptions::coalesce_text is set).
  virtual void Characters(std::string_view text) { (void)text; }

  // Invoked in place of the event stream of a subtree the producer skipped
  // under document projection. Only emitted when a ProjectionFilter is
  // installed (xml/skip_scanner.h); handlers that track dense node ids
  // advance them by `report.node_ids`. Default: ignore.
  virtual void SkippedSubtree(const SkipReport& report) { (void)report; }

  virtual void Comment(std::string_view text) { (void)text; }
  virtual void ProcessingInstruction(std::string_view target,
                                     std::string_view data) {
    (void)target;
    (void)data;
  }
};

// A materialized event, convenient for tests and for recording/replaying
// streams. Produced by EventRecorder.
struct Event {
  enum class Kind {
    kStartDocument,
    kEndDocument,
    kStartElement,
    kEndElement,
    kCharacters,
    kComment,
    kProcessingInstruction,
  };

  Kind kind;
  std::string name;                    // element name or PI target
  std::string text;                    // characters / comment / PI data
  std::vector<Attribute> attributes;   // start-element only

  friend bool operator==(const Event& a, const Event& b) {
    return a.kind == b.kind && a.name == b.name && a.text == b.text &&
           a.attributes == b.attributes;
  }
};

// Renders an event as a compact debug string, e.g. `<a x="1">`, `</a>`,
// `text("hi")`.
std::string EventToString(const Event& event);

// ContentHandler that materializes the stream into a vector of Events.
class EventRecorder : public ContentHandler {
 public:
  void StartDocument() override {
    events_.push_back({Event::Kind::kStartDocument, "", "", {}});
  }
  void EndDocument() override {
    events_.push_back({Event::Kind::kEndDocument, "", "", {}});
  }
  void StartElement(const QName& name, AttributeSpan attributes) override {
    Event event{Event::Kind::kStartElement, std::string(name.text), "", {}};
    event.attributes.reserve(attributes.size());
    for (const AttributeView& attr : attributes) {
      event.attributes.push_back(
          {std::string(attr.name), std::string(attr.value)});
    }
    events_.push_back(std::move(event));
  }
  void EndElement(std::string_view name) override {
    events_.push_back({Event::Kind::kEndElement, std::string(name), "", {}});
  }
  void Characters(std::string_view text) override {
    events_.push_back({Event::Kind::kCharacters, "", std::string(text), {}});
  }
  void Comment(std::string_view text) override {
    events_.push_back({Event::Kind::kComment, "", std::string(text), {}});
  }
  void ProcessingInstruction(std::string_view target,
                             std::string_view data) override {
    events_.push_back({Event::Kind::kProcessingInstruction,
                       std::string(target), std::string(data), {}});
  }

  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

// Replays recorded events into a handler.
void ReplayEvents(const std::vector<Event>& events, ContentHandler* handler);

}  // namespace xaos::xml

#endif  // XAOS_XML_SAX_EVENT_H_
