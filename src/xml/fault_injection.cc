#include "xml/fault_injection.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace xaos::xml {

FaultInjectingSource::FaultInjectingSource(std::string document,
                                          FaultSpec spec)
    : document_(std::move(document)), spec_(std::move(spec)) {
  if (spec_.corrupt_at < document_.size()) {
    document_[spec_.corrupt_at] =
        static_cast<char>(document_[spec_.corrupt_at] ^ spec_.corrupt_mask);
  }
  if (spec_.truncate_at < document_.size()) {
    document_.resize(spec_.truncate_at);
  }
}

Status FaultInjectingSource::Parse(ContentHandler* handler,
                                   ParserOptions options) const {
  SaxParser parser(handler, options);
  std::string_view rest = document_;
  size_t schedule_index = 0;
  while (!rest.empty()) {
    size_t want = spec_.chunk_bytes;
    if (!spec_.chunk_sizes.empty()) {
      want = spec_.chunk_sizes[schedule_index % spec_.chunk_sizes.size()];
      ++schedule_index;
    }
    want = std::clamp<size_t>(want, 1, rest.size());
    XAOS_RETURN_IF_ERROR(parser.Feed(rest.substr(0, want)));
    rest.remove_prefix(want);
  }
  return parser.Finish();
}

Status ParseFileWithFaults(const std::string& path, const FaultSpec& spec,
                           ContentHandler* handler, ParserOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return InvalidArgumentError("cannot open file: " + path);
  }
  std::string document;
  std::vector<char> buffer(64 * 1024);
  while (true) {
    size_t n = std::fread(buffer.data(), 1, buffer.size(), file);
    if (n == 0) break;
    document.append(buffer.data(), n);
  }
  bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return InvalidArgumentError("I/O error reading: " + path);
  }
  FaultInjectingSource source(std::move(document), spec);
  return source.Parse(handler, options);
}

}  // namespace xaos::xml
