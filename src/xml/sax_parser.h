// A from-scratch streaming (push) XML parser.
//
// The parser accepts input in arbitrary chunks via Feed() and emits SAX-style
// events to a ContentHandler as soon as they are complete, so memory use is
// bounded by the largest single token (tag/comment/CDATA section), not the
// document size. This is the event source the χαoς engine consumes
// (paper Section 2.2, Figure 1).
//
// Supported: elements, attributes, character data, CDATA sections, comments,
// processing instructions, the XML declaration, a skipped DOCTYPE, the five
// predefined entities and numeric character references, and full
// well-formedness checking of everything above (tag balance, single root,
// attribute uniqueness and quoting, name syntax, illegal characters).
// Out of scope (reported as ParseError where encountered): external or
// internal DTD entity definitions beyond the predefined five.

#ifndef XAOS_XML_SAX_PARSER_H_
#define XAOS_XML_SAX_PARSER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/sax_event.h"
#include "xml/skip_scanner.h"
#include "xml/structural_scanner.h"

namespace xaos::obs {
class PhaseTimers;
}  // namespace xaos::obs

namespace xaos::xml {

// Resource-exhaustion guardrails for untrusted input. Every bound that a
// document exceeds fails the parse with StatusCode::kResourceExhausted
// (distinct from kParseError: the document may be well-formed, it just
// costs more than this deployment allows). Defaults are generous enough
// for any sane document; a service facing adversarial traffic should
// tighten them to its actual workload. A value of 0 disables the
// corresponding bound where noted.
struct ParserLimits {
  // Maximum open-element nesting depth.
  int max_depth = 20000;
  // Maximum attributes on one start tag.
  size_t max_attribute_count = 4096;
  // Maximum decoded size of one attribute value, in bytes.
  size_t max_attribute_value_bytes = 8u << 20;
  // Maximum length of one element/attribute/PI name, in bytes.
  size_t max_name_bytes = 64u << 10;
  // Maximum bytes buffered for one incomplete token (tag, comment, CDATA
  // section, DOCTYPE). Bounds parser memory: a stream that never closes a
  // construct is rejected instead of buffered forever. 0 = unlimited.
  size_t max_token_bytes = 256u << 20;
  // Total entity/character references decoded per document. 0 = unlimited.
  uint64_t max_entity_references = 0;
  // Total document size in bytes accepted through Feed(). 0 = unlimited.
  uint64_t max_total_bytes = 0;
};

struct ParserOptions {
  // Merge adjacent character runs (including across CDATA boundaries) into a
  // single Characters() call.
  bool coalesce_text = true;
  // Deliver character runs consisting solely of whitespace. Off by default:
  // the χαoς data model (paper Section 2.1) ignores inter-element whitespace.
  bool report_whitespace_text = false;
  // Deliver Comment() / ProcessingInstruction() events.
  bool report_comments = false;
  bool report_processing_instructions = false;
  // Guardrails against resource-exhausting input (see ParserLimits).
  ParserLimits limits;
  // Optional phase accounting (obs/timer.h): when set, time spent inside
  // handler callbacks is attributed to Phase::kMatch and the remainder of
  // each Feed()/Finish() to Phase::kParse, splitting the single streaming
  // pass into the paper's parse vs. match phases. Costs two clock reads per
  // delivered event; leave null (the default) for zero overhead.
  obs::PhaseTimers* phase_timers = nullptr;
  // Optional document projection (xml/skip_scanner.h): when set, each start
  // tag is offered to the filter, and a subtree it proves irrelevant is
  // skipped by a raw scanner — no attribute parsing, entity decoding or
  // events; the handler receives one SkippedSubtree() instead. Ignored
  // (with xaos_projection_disabled_total incremented) when combined with
  // options it cannot preserve exactly: coalesce_text off (node-id
  // assignment would become chunk-dependent) or reported comments/PIs
  // (their events would be lost inside skips). Must outlive the parser.
  ProjectionFilter* projection_filter = nullptr;
  // Structural-scanner kernel for this parser (and its skip scanner). Unset
  // (the default) uses the process-wide DefaultScannerBackend(), i.e. the
  // XAOS_SCANNER override or the best the CPU supports. Every backend
  // produces byte-identical events and error positions; this exists for
  // benchmarking, CI pinning and differential tests.
  std::optional<ScannerBackend> scanner_backend;
};

// Incremental push parser. Typical use:
//
//   MyHandler handler;
//   SaxParser parser(&handler);
//   while (ReadChunk(&chunk)) {
//     XAOS_RETURN_IF_ERROR(parser.Feed(chunk));
//   }
//   XAOS_RETURN_IF_ERROR(parser.Finish());
//
// After the first error the parser is poisoned: further calls return the
// same error. The handler pointer must outlive the parser.
class SaxParser {
 public:
  explicit SaxParser(ContentHandler* handler, ParserOptions options = {});

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  // Consumes the next chunk of document text.
  Status Feed(std::string_view chunk);

  // Signals end of input; verifies the document is complete and emits
  // EndDocument().
  Status Finish();

  // 1-based position of the next unconsumed input character; used in error
  // messages.
  int line() const { return line_; }
  int column() const { return column_; }

  // Number of start-element events emitted so far.
  uint64_t element_count() const { return element_count_; }

  // Bytes accepted through Feed() so far.
  uint64_t bytes_fed() const { return bytes_fed_; }

 private:
  enum class Progress { kOk, kNeedMore, kError };

  Progress Pump();                      // parse as much of buffer_ as possible
  Progress ParseText();                 // content until '<'
  Progress ParseMarkup();               // dispatch on "<...": tag/comment/...
  // `scan` is the structural scan of the tag body (rest[1..tag_end)); it
  // carries the quoted-value count and newline accounting for the tag.
  Progress ParseStartTag(size_t tag_end, bool self_closing,
                         const TagScan& scan);
  Progress ParseEndTag(size_t tag_end);
  Progress ParseComment();
  Progress ParseCData();
  Progress ParsePi();
  Progress ParseDoctype();
  Progress PumpSkip();                  // advance an active subtree skip
  // Completes a skip: updates projection counters, marks the root seen when
  // the skipped subtree was the document element, and notifies the handler.
  Progress DeliverSkip(const SkipReport& report);

  // Record a well-formedness error (kParseError) / a limit rejection
  // (kResourceExhausted); both poison the parser and return kError.
  Progress Fail(std::string message);
  Progress FailLimit(std::string message);
  Progress FailWith(StatusCode code, std::string message);
  // Flush pending text to the handler. Called once per markup event, and
  // usually with nothing pending — the guard stays inline.
  void EmitPendingText() {
    if (text_pending_) EmitPendingTextSlow();
  }
  void EmitPendingTextSlow();
  // Appends one character-data piece to the pending run. The bool facts
  // come from a structural scan of `raw` (whole-span coverage); the hot
  // paths hand down the facts they already computed, the cold wrapper
  // AppendText() derives them itself.
  Status AppendTextPiece(std::string_view raw, bool decode, bool has_amp,
                         bool has_ctl, bool all_ws);
  Status AppendText(std::string_view raw, bool decode);
  // Copies a zero-copy pending-text view into text_accum_. Must run before
  // anything mutates buffer_ (the view points into it).
  void MaterializeTextView();
  void Consume(size_t n);               // advance pos_, track line/column
  // Consume() with the newline accounting precomputed by a structural scan
  // of the consumed span: `newlines` '\n's, the last at offset `last_nl`.
  void ConsumeCounted(size_t n, uint32_t newlines, size_t last_nl);

  // Validating helpers.
  static bool IsNameStartChar(unsigned char c);
  static bool IsNameChar(unsigned char c);
  static bool IsWhitespace(char c);
  // Parses a Name starting at `i` within `s`; returns its length or 0.
  static size_t ScanName(std::string_view s, size_t i);

  // Open-element-stack accessors over the arena representation (see
  // open_names_ / open_offsets_ below).
  size_t OpenDepth() const { return open_offsets_.size(); }
  std::string_view TopOpenName() const {
    return std::string_view(open_names_).substr(open_offsets_.back());
  }
  void PushOpenName(std::string_view name) {
    open_offsets_.push_back(open_names_.size());
    open_names_.append(name);
  }
  void PopOpenName() {
    open_names_.resize(open_offsets_.back());
    open_offsets_.pop_back();
  }

  ContentHandler* handler_;
  ParserOptions options_;
  // When options_.phase_timers is set, handler_ points at this wrapper,
  // which times callbacks into the match phase before forwarding to the
  // user's handler.
  std::unique_ptr<ContentHandler> timing_wrapper_;

  std::string buffer_;     // unconsumed input (suffix of the stream)
  size_t pos_ = 0;         // consumed prefix of buffer_

  // Pending character data. The common case — one contiguous raw run, no
  // references to decode — is held as a zero-copy view into buffer_
  // (text_in_view_); it is materialized into text_accum_ only when a
  // second piece coalesces onto it, a piece needs reference decoding, or
  // the next Feed() is about to mutate buffer_. text_all_ws_ tracks
  // whether the pending run (after decoding) is entirely XML whitespace,
  // maintained incrementally so emission never rescans the text.
  std::string text_accum_;     // pending character data (decoded)
  std::string_view text_view_;
  bool text_in_view_ = false;
  bool text_all_ws_ = true;
  bool text_pending_ = false;  // a (possibly empty) run is pending

  // Stack of open element names as one arena string plus start offsets:
  // push/pop happen once per element, and this layout makes them a byte
  // append / resize instead of a std::string construct / destroy.
  std::string open_names_;
  std::vector<size_t> open_offsets_;
  bool started_document_ = false;
  bool seen_root_ = false;
  bool seen_any_content_ = false;  // anything consumed (XML decl gating)
  bool finished_ = false;

  Status error_;
  int line_ = 1;
  int column_ = 1;
  uint64_t element_count_ = 0;
  uint64_t bytes_fed_ = 0;
  uint64_t text_event_count_ = 0;
  uint64_t entity_references_ = 0;  // decoded so far (limits budget)

  // Per-start-tag scratch, reused across tags so steady-state parsing does
  // no per-attribute heap allocation: `attributes_` holds views into
  // buffer_ (or into a reused decode slot when the raw value contains
  // references).
  std::vector<AttributeView> attributes_;
  // Deque: slot strings must not move while attributes_ views into them.
  std::deque<std::string> attr_decode_slots_;

  // Vectorized structural front-end shared by every hot loop below; the
  // skip scanner owns a sibling instance pinned to the same backend.
  StructuralScanner scanner_;

  // Parser-local front for SymbolTable::Global(): element and attribute
  // names repeat heavily within one document, so a tiny direct-mapped
  // cache turns most Intern calls (hash + atomic probe + chain walk) into
  // one memcmp against a cached spelling.
  struct NameCacheSlot {
    uint8_t len = 0;  // 0 = empty
    char bytes[23];
    util::Symbol symbol = util::kInvalidSymbol;
  };
  static constexpr size_t kNameCacheSlots = 64;  // power of two
  NameCacheSlot name_cache_[kNameCacheSlots];
  util::Symbol InternName(std::string_view name);

  // Document projection. Null unless options_.projection_filter is set and
  // compatible with the event options (see ParserOptions).
  ProjectionFilter* projection_filter_ = nullptr;
  SkipScanner skip_scanner_;
  bool skip_active_ = false;  // Pump routes input to skip_scanner_
  uint64_t skip_begin_ns_ = 0;  // flight-recorder skip-span start
};

// Convenience: parses a complete in-memory document.
Status ParseString(std::string_view document, ContentHandler* handler,
                   ParserOptions options = {});

}  // namespace xaos::xml

#endif  // XAOS_XML_SAX_PARSER_H_
