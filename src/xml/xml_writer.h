// Streaming XML writer: builds well-formed documents into a growing string.
// Used by the workload generators (src/gen) and the DOM serializer.

#ifndef XAOS_XML_XML_WRITER_H_
#define XAOS_XML_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

#include "xml/sax_event.h"

namespace xaos::xml {

// Minimal writer with optional indentation. Element nesting is tracked and
// checked: closing more elements than were opened aborts (programming
// error). Typical use:
//
//   std::string out;
//   XmlWriter w(&out, /*indent=*/2);
//   w.StartElement("site");
//   w.WriteAttribute("id", "s1");   // must precede content
//   w.WriteText("hello & goodbye");
//   w.EndElement();                 // </site>
class XmlWriter {
 public:
  // `out` must outlive the writer. `indent` spaces per depth level;
  // 0 writes everything on one line.
  explicit XmlWriter(std::string* out, int indent = 0);

  // Writes an XML declaration; call first if at all.
  void WriteDeclaration();

  void StartElement(std::string_view name);
  // Adds an attribute to the most recently started element. Must be called
  // before any content or child element is written.
  void WriteAttribute(std::string_view name, std::string_view value);
  void EndElement();

  // Writes escaped character data.
  void WriteText(std::string_view text);
  void WriteComment(std::string_view text);

  // Opens + closes an element holding only `text`.
  void WriteTextElement(std::string_view name, std::string_view text);

  int depth() const { return static_cast<int>(open_.size()); }

 private:
  void CloseStartTagIfOpen();
  void Newline();

  std::string* out_;
  int indent_;
  std::vector<std::string> open_;
  bool start_tag_open_ = false;   // "<name ..." not yet closed with '>'
  bool last_was_text_ = false;    // suppress indentation around text
};

}  // namespace xaos::xml

#endif  // XAOS_XML_XML_WRITER_H_
