#include "xml/file_source.h"

#include <cstdio>
#include <vector>

#include "xml/sax_parser.h"

namespace xaos::xml {

Status ParseFile(const std::string& path, ContentHandler* handler,
                 size_t chunk_bytes, ParserOptions options) {
  std::FILE* file = nullptr;
  bool is_stdin = (path == "-");
  if (is_stdin) {
    file = stdin;
  } else {
    file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return InvalidArgumentError("cannot open file: " + path);
    }
  }

  SaxParser parser(handler, options);
  std::vector<char> buffer(chunk_bytes);
  Status status;
  while (true) {
    size_t n = std::fread(buffer.data(), 1, buffer.size(), file);
    if (n == 0) break;
    status = parser.Feed(std::string_view(buffer.data(), n));
    if (!status.ok()) break;
  }
  bool read_error = status.ok() && std::ferror(file) != 0;
  if (!is_stdin) std::fclose(file);
  if (!status.ok()) return status;
  if (read_error) {
    return InvalidArgumentError("I/O error reading: " + path);
  }
  return parser.Finish();
}

}  // namespace xaos::xml
