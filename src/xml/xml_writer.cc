#include "xml/xml_writer.h"

#include "util/check.h"
#include "xml/entities.h"

namespace xaos::xml {

XmlWriter::XmlWriter(std::string* out, int indent)
    : out_(out), indent_(indent) {
  XAOS_CHECK(out_ != nullptr);
}

void XmlWriter::WriteDeclaration() {
  XAOS_CHECK(out_->empty()) << "declaration must be first";
  *out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
}

void XmlWriter::Newline() {
  if (indent_ <= 0 || out_->empty()) return;
  out_->push_back('\n');
  out_->append(static_cast<size_t>(indent_) * open_.size(), ' ');
}

void XmlWriter::CloseStartTagIfOpen() {
  if (!start_tag_open_) return;
  out_->push_back('>');
  start_tag_open_ = false;
}

void XmlWriter::StartElement(std::string_view name) {
  CloseStartTagIfOpen();
  if (!last_was_text_) Newline();
  out_->push_back('<');
  out_->append(name);
  open_.emplace_back(name);
  start_tag_open_ = true;
  last_was_text_ = false;
}

void XmlWriter::WriteAttribute(std::string_view name, std::string_view value) {
  XAOS_CHECK(start_tag_open_) << "WriteAttribute outside a start tag";
  out_->push_back(' ');
  out_->append(name);
  out_->append("=\"");
  out_->append(EscapeAttributeValue(value));
  out_->push_back('"');
}

void XmlWriter::WriteText(std::string_view text) {
  XAOS_CHECK(!open_.empty()) << "text outside the document element";
  CloseStartTagIfOpen();
  out_->append(EscapeText(text));
  last_was_text_ = true;
}

void XmlWriter::WriteComment(std::string_view text) {
  CloseStartTagIfOpen();
  if (!last_was_text_) Newline();
  out_->append("<!--");
  out_->append(text);
  out_->append("-->");
}

void XmlWriter::EndElement() {
  XAOS_CHECK(!open_.empty()) << "EndElement with no open element";
  std::string name = open_.back();
  if (start_tag_open_) {
    out_->append("/>");
    start_tag_open_ = false;
    open_.pop_back();
  } else {
    open_.pop_back();
    if (!last_was_text_) Newline();
    out_->append("</");
    out_->append(name);
    out_->push_back('>');
  }
  last_was_text_ = false;
}

void XmlWriter::WriteTextElement(std::string_view name, std::string_view text) {
  StartElement(name);
  WriteText(text);
  EndElement();
}

}  // namespace xaos::xml
